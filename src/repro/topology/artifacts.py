"""Session-scoped topology artifacts: build once, serve many runs.

Every expensive structure a cluster derives from its topology —
:class:`~repro.topology.steiner.RoutingIndex` LCA tables, memoised
Steiner decompositions, the canonical compute order, rank-ownership
lookups — is a pure function of the immutable
:class:`~repro.topology.tree.TreeTopology` (Hu, Koutris & Blanas
parameterize the whole cost model by the topology alone).  A one-shot
``run()`` rebuilding them per cluster is fine; a serving engine
answering thousands of queries on one fat tree is not.  This module
factors those structures into :class:`TopologyArtifacts`, cached in an
:class:`ArtifactCache` keyed by a stable :func:`topology_fingerprint`
and installed thread-locally exactly like the :mod:`repro.obs`
tracer/registry/auditor:

* :class:`~repro.session.EngineSession` installs a long-lived cache, so
  every cluster built inside the session — by any protocol, any
  superstep, any plan stage — shares one set of artifacts per topology;
* the module-level engine wraps each run in
  :func:`ensure_artifact_cache`, a *one-shot* cache torn down with the
  run — multi-cluster runs (graph supersteps, plan pipelines) stop
  rebuilding the routing index per cluster, but nothing leaks across
  independent ``run()`` calls.

Sharing is byte-identity-safe by construction: artifacts hold no
data-dependent state (the destination-set memo is a validation cache;
path/Steiner memos are pure topology queries), so a warm cluster
produces ledgers, storage, and reports identical to a cold one — the
property the serve benchmark and the session property tests pin down.
"""

from __future__ import annotations

import hashlib
import threading
from contextlib import contextmanager
from typing import Iterator
from weakref import WeakValueDictionary

import numpy as np

from repro.obs.metrics import get_registry
from repro.topology.steiner import PathOracle
from repro.topology.tree import TreeTopology, node_sort_key


def topology_fingerprint(tree: TreeTopology) -> str:
    """A stable content digest of a topology's *structure*.

    Two trees with the same nodes (type + repr), the same directed
    edges with the same bandwidths, and the same compute-node set map
    to the same fingerprint — the ``name`` label is deliberately
    excluded, so differently-labelled builds of the same network share
    artifacts.  Node identity uses :func:`node_sort_key` (type name,
    str, repr): distinct ids that stringify identically but differ in
    type or repr stay distinct, matching the canonical orders every
    artifact is built from.
    """
    digest = hashlib.blake2b(digest_size=16)
    for node in sorted(tree.nodes, key=node_sort_key):
        digest.update(repr(node_sort_key(node)).encode())
        digest.update(b"\x01" if node in tree.compute_nodes else b"\x00")
    for (u, v) in sorted(
        tree.directed_edges, key=lambda e: (node_sort_key(e[0]), node_sort_key(e[1]))
    ):
        digest.update(
            repr((node_sort_key(u), node_sort_key(v), tree.bandwidth(u, v))).encode()
        )
    return digest.hexdigest()


class TopologyArtifacts:
    """The shared per-topology structures one or many clusters run on.

    Everything here is a deterministic pure function of ``tree``;
    construction is cheap (the heavy pieces — the routing index, the
    Steiner memos — still build lazily on first use, but now build
    *once per topology* instead of once per cluster).  Instances are
    safe to share across ``run_many`` threads: the routing index is
    assigned atomically (a racing rebuild yields an equivalent,
    deterministic structure), dict/set memo insertion is atomic under
    the GIL, and the rank-lookup table is guarded by a lock.
    """

    def __init__(self, tree: TreeTopology) -> None:
        self.tree = tree
        self.fingerprint = topology_fingerprint(tree)
        self.oracle = PathOracle(tree)
        self.compute_order: tuple = tuple(
            sorted(tree.compute_nodes, key=node_sort_key)
        )
        #: Destination frozensets already validated against this tree
        #: (see :meth:`RoundContext.exchange_multicast`); a validation
        #: memo, never consulted for routing or accounting.
        self.checked_destination_sets: set = set()
        self._lock = threading.Lock()
        self._compute_lookup_array: np.ndarray | None = None
        self._rank_lookups: dict[int, np.ndarray] = {}

    def compute_lookup(self, routing, dtype) -> np.ndarray:
        """Routing-index ids of the canonical compute order (cached)."""
        if self._compute_lookup_array is None:
            self._compute_lookup_array = np.fromiter(
                (routing.index_of[v] for v in self.compute_order),
                dtype,
                len(self.compute_order),
            )
        return self._compute_lookup_array

    def rank_lookup(self, routing, num_workers: int) -> np.ndarray:
        """Routing-index -> owning rank (``-1`` for routers), per rank count.

        The process backend assigns compute nodes to ranks in
        contiguous blocks of the canonical compute order; the table
        depends only on (topology, ``num_workers``), so sessions mixing
        worker counts keep one entry per count.
        """
        table = self._rank_lookups.get(num_workers)
        if table is None:
            with self._lock:
                table = self._rank_lookups.get(num_workers)
                if table is None:
                    computes = self.compute_order
                    table = np.full(routing.num_nodes, -1, dtype=np.int32)
                    for index, node in enumerate(computes):
                        table[routing.index_of[node]] = (
                            index * num_workers
                        ) // len(computes)
                    self._rank_lookups[num_workers] = table
        return table


class ArtifactCache:
    """A bounded, thread-safe LRU of :class:`TopologyArtifacts`.

    Keyed by :func:`topology_fingerprint`, with a weak identity fast
    path: the same ``TreeTopology`` *object* skips fingerprinting
    entirely (the common case inside a session pinning one tree).
    Hits and misses are recorded on the installed metrics registry as
    ``repro_artifact_cache_hits_total`` / ``_misses_total``.
    """

    def __init__(self, max_entries: int = 16) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self._max_entries = max_entries
        self._lock = threading.RLock()
        self._entries: dict[str, TopologyArtifacts] = {}
        self._by_identity: WeakValueDictionary = WeakValueDictionary()
        self.hits = 0
        self.misses = 0

    def get(self, tree: TreeTopology) -> TopologyArtifacts:
        """The artifacts for ``tree``, built on first sight."""
        registry = get_registry()
        with self._lock:
            artifacts = self._by_identity.get(id(tree))
            if artifacts is not None and artifacts.tree is tree:
                self.hits += 1
                if registry.enabled:
                    registry.counter("repro_artifact_cache_hits_total").inc()
                return artifacts
            artifacts = self._entries.get(topology_fingerprint(tree))
            if artifacts is not None:
                # LRU touch: re-insert at the back of the dict order.
                self._entries.pop(artifacts.fingerprint)
                self._entries[artifacts.fingerprint] = artifacts
                self._by_identity[id(tree)] = artifacts
                self.hits += 1
                if registry.enabled:
                    registry.counter("repro_artifact_cache_hits_total").inc()
                return artifacts
            artifacts = TopologyArtifacts(tree)
            self._entries[artifacts.fingerprint] = artifacts
            self._by_identity[id(tree)] = artifacts
            while len(self._entries) > self._max_entries:
                evicted = next(iter(self._entries))
                del self._entries[evicted]
            self.misses += 1
            if registry.enabled:
                registry.counter("repro_artifact_cache_misses_total").inc()
            return artifacts

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        """Hit/miss counts and current size, for session summaries."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
            }


# ---------------------------------------------------------------------- #
# installation (mirrors repro.obs.metrics)
# ---------------------------------------------------------------------- #


class _ArtifactState(threading.local):
    def __init__(self) -> None:
        self.cache: ArtifactCache | None = None


_STATE = _ArtifactState()


def get_artifact_cache() -> ArtifactCache | None:
    """The artifact cache installed in this thread (``None`` when cold)."""
    return _STATE.cache


def set_artifact_cache(cache: ArtifactCache | None) -> ArtifactCache | None:
    """Install ``cache`` in this thread; returns the previous one."""
    previous = _STATE.cache
    _STATE.cache = cache
    return previous


@contextmanager
def use_artifacts(cache: ArtifactCache) -> Iterator[ArtifactCache]:
    """Install ``cache`` in this thread for the duration of the block.

    Exception-safe like every installer in this codebase (the previous
    cache is restored in a ``finally``): a failing run inside a session
    cannot leak the session's cache onto the caller's thread.
    """
    previous = set_artifact_cache(cache)
    try:
        yield cache
    finally:
        _STATE.cache = previous


@contextmanager
def ensure_artifact_cache() -> Iterator[ArtifactCache]:
    """A one-shot cache if none is active; a no-op inside a session.

    The module-level engine wraps each run in this: clusters built
    within the run share artifacts (graph supersteps, plan stages), the
    cache dies with the run, and — crucially — an enclosing session's
    long-lived cache is left in place untouched, so
    ``session.run(...)`` and plain ``run(...)`` stay the same code path.
    """
    active = _STATE.cache
    if active is not None:
        yield active
        return
    with use_artifacts(ArtifactCache()) as cache:
        yield cache


def resolve_artifacts(tree: TreeTopology) -> TopologyArtifacts:
    """Artifacts for ``tree`` from the installed cache, else built fresh.

    The constructor-side hook: :class:`~repro.sim.cluster.Cluster` calls
    this when not handed prebuilt artifacts explicitly, which preserves
    cold-path behavior exactly (a private, unshared build) while letting
    sessions and one-shot run scopes share transparently.
    """
    cache = _STATE.cache
    if cache is not None:
        return cache.get(tree)
    return TopologyArtifacts(tree)

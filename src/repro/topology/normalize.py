"""The two w.l.o.g. normalizations of Section 2.1.

The paper's tree algorithms assume, without loss of generality, that

1. **every compute node is a leaf** — a non-leaf compute node ``v`` is
   replaced by a router, with a fresh compute leaf ``v'`` attached through
   a link that is never the bottleneck; and
2. **no node has degree two** — a degree-2 node ``v`` with incident links
   ``(v, u1)`` and ``(v, u2)`` is spliced out, the two links merging into
   one link ``(u1, u2)`` whose per-direction bandwidth is the minimum of
   the two replaced directions.

:func:`normalize` applies both and returns the transformed topology plus
the compute-node relocation map, so an initial data distribution on the
original tree can be replayed on the normalized one
(:meth:`repro.data.distribution.Distribution.remap`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Hashable, Literal

from repro.errors import TopologyError
from repro.topology.tree import NodeId, TreeTopology

VirtualBandwidth = Literal["infinite", "sum"]


@dataclass(frozen=True)
class NormalizedTopology:
    """Result of :func:`normalize`.

    Attributes
    ----------
    tree:
        The normalized topology (compute nodes are leaves, no degree-2
        nodes).
    node_map:
        Maps each *original* compute node to the node holding its data in
        the normalized topology (identity for nodes that did not move).
    """

    tree: TreeTopology
    node_map: dict = field(default_factory=dict)

    def relocated(self) -> dict:
        """Only the entries where a compute node actually moved."""
        return {old: new for old, new in self.node_map.items() if old != new}


def _leaf_alias(node: NodeId, existing: frozenset) -> str:
    """A fresh leaf name derived from ``node`` that avoids collisions."""
    base = f"{node}::leaf"
    candidate = base
    suffix = 1
    while candidate in existing:
        suffix += 1
        candidate = f"{base}{suffix}"
    return candidate


def ensure_compute_leaves(
    tree: TreeTopology,
    *,
    virtual_bandwidth: VirtualBandwidth | float = "infinite",
) -> NormalizedTopology:
    """Make every compute node a leaf (first transform of Section 2.1).

    The paper attaches the fresh leaf with bandwidth ``+inf``.  A finite
    alternative, ``virtual_bandwidth="sum"``, uses the total bandwidth of
    the node's other links — still never the bottleneck, but finite, which
    the cartesian-product packing needs to size squares.  A float value
    uses that bandwidth directly.
    """
    edges = tree.directed_edges
    node_map: dict = {v: v for v in tree.compute_nodes}
    computes = set(tree.compute_nodes)
    all_nodes = set(tree.nodes)
    for node in sorted(tree.compute_nodes, key=str):
        if tree.degree(node) <= 1 and len(tree.nodes) > 1:
            continue
        if len(tree.nodes) == 1:
            continue
        if virtual_bandwidth == "infinite":
            bandwidth = math.inf
        elif virtual_bandwidth == "sum":
            bandwidth = sum(
                tree.bandwidth(node, nbr) for nbr in tree.neighbors(node)
            )
        else:
            bandwidth = float(virtual_bandwidth)
            if bandwidth <= 0:
                raise TopologyError("virtual bandwidth must be positive")
        leaf = _leaf_alias(node, frozenset(all_nodes))
        all_nodes.add(leaf)
        edges[(node, leaf)] = bandwidth
        edges[(leaf, node)] = bandwidth
        computes.discard(node)
        computes.add(leaf)
        node_map[node] = leaf
    return NormalizedTopology(
        TreeTopology(edges, computes, name=tree.name), node_map
    )


def suppress_degree_two(tree: TreeTopology) -> TreeTopology:
    """Splice out degree-2 routers (second transform of Section 2.1).

    Only routers are removed; a degree-2 *compute* node must first be
    turned into a leaf with :func:`ensure_compute_leaves`.  Each splice
    replaces links ``(u1, v), (v, u2)`` with ``(u1, u2)`` taking the
    per-direction minimum bandwidth, exactly as in the paper.
    """
    adjacency: dict[NodeId, dict[NodeId, float]] = {}
    for (u, v), w in tree.directed_edges.items():
        adjacency.setdefault(u, {})[v] = w
        adjacency.setdefault(v, {})
    computes = set(tree.compute_nodes)

    def removable() -> NodeId | None:
        for node in sorted(adjacency, key=str):
            if node not in computes and len(adjacency[node]) == 2:
                return node
        return None

    while True:
        node = removable()
        if node is None:
            break
        (u1, u2) = sorted(adjacency[node], key=str)
        forward = min(adjacency[u1][node], adjacency[node][u2])
        backward = min(adjacency[u2][node], adjacency[node][u1])
        del adjacency[u1][node]
        del adjacency[u2][node]
        del adjacency[node]
        adjacency[u1][u2] = forward
        adjacency[u2][u1] = backward

    edges = {
        (u, v): w for u, nbrs in adjacency.items() for v, w in nbrs.items()
    }
    return TreeTopology(edges, computes, name=tree.name)


def normalize(
    tree: TreeTopology,
    *,
    virtual_bandwidth: VirtualBandwidth | float = "infinite",
) -> NormalizedTopology:
    """Apply both Section 2.1 transforms; see the module docstring."""
    leafed = ensure_compute_leaves(tree, virtual_bandwidth=virtual_bandwidth)
    return NormalizedTopology(
        suppress_degree_two(leafed.tree), leafed.node_map
    )

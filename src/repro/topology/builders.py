"""Constructors for the network topologies discussed in the paper.

Section 2.1 motivates star topologies (small clusters, multi-core CPUs),
two-level router trees (Figure 1b), and fat trees [35]; Section 2.2 shows
the MPC model is an *asymmetric* star.  These builders produce
:class:`~repro.topology.tree.TreeTopology` instances with systematic node
names: compute nodes ``v1, v2, ...`` and routers ``w1, w2, ...`` (matching
the paper's figures), so examples and tests read like the paper.
"""

from __future__ import annotations

import math
import random
from typing import Iterable, Mapping, Sequence

from repro.errors import TopologyError
from repro.topology.tree import NodeId, TreeTopology


def _bandwidth_list(
    bandwidth: float | Sequence[float] | Mapping[int, float],
    count: int,
    what: str,
) -> list[float]:
    """Expand a scalar / sequence / index-map bandwidth spec to a list."""
    if isinstance(bandwidth, Mapping):
        missing = [i for i in range(count) if i not in bandwidth]
        if missing:
            raise TopologyError(f"missing {what} bandwidths for indices {missing}")
        return [float(bandwidth[i]) for i in range(count)]
    if isinstance(bandwidth, (int, float)):
        return [float(bandwidth)] * count
    values = [float(b) for b in bandwidth]
    if len(values) != count:
        raise TopologyError(
            f"expected {count} {what} bandwidths, got {len(values)}"
        )
    return values


def star(
    num_compute: int,
    bandwidth: float | Sequence[float] | Mapping[int, float] = 1.0,
    *,
    center: NodeId = "w",
    prefix: str = "v",
    name: str | None = None,
) -> TreeTopology:
    """A symmetric star: compute nodes ``v1..vp`` around router ``center``.

    This is Figure 1a.  ``bandwidth`` may be a scalar (uniform links), a
    sequence of per-node values, or a map from zero-based node index to
    value (heterogeneous links).
    """
    if num_compute < 1:
        raise TopologyError("a star needs at least one compute node")
    bandwidths = _bandwidth_list(bandwidth, num_compute, "leaf")
    computes = [f"{prefix}{i + 1}" for i in range(num_compute)]
    edges = {(v, center): w for v, w in zip(computes, bandwidths)}
    return TreeTopology.from_undirected(
        edges, computes, name=name or f"star({num_compute})"
    )


def mpc_star(
    num_compute: int,
    *,
    receive_bandwidth: float = 1.0,
    prefix: str = "v",
    center: NodeId = "o",
) -> TreeTopology:
    """The asymmetric star that captures the MPC model (Section 2.2).

    Every compute-to-center direction has infinite bandwidth and every
    center-to-compute direction has bandwidth ``receive_bandwidth``, so a
    round's cost equals the maximum data *received* by any machine — the
    MPC cost measure.
    """
    if num_compute < 1:
        raise TopologyError("the MPC star needs at least one compute node")
    computes = [f"{prefix}{i + 1}" for i in range(num_compute)]
    edges: dict = {}
    for v in computes:
        edges[(v, center)] = math.inf
        edges[(center, v)] = float(receive_bandwidth)
    return TreeTopology(edges, computes, name=f"mpc-star({num_compute})")


def two_level(
    rack_sizes: Sequence[int],
    *,
    leaf_bandwidth: float | Sequence[float] = 1.0,
    uplink_bandwidth: float | Sequence[float] = 1.0,
    core: NodeId = "core",
    name: str | None = None,
) -> TreeTopology:
    """A two-level tree: racks of compute nodes under routers, as Figure 1b.

    ``rack_sizes[i]`` compute nodes hang off router ``w{i+1}``; all routers
    connect to ``core``.  ``leaf_bandwidth`` applies to every leaf link (or
    one value per rack); ``uplink_bandwidth`` to each router-core link.
    """
    if not rack_sizes or any(s < 1 for s in rack_sizes):
        raise TopologyError("every rack must contain at least one compute node")
    num_racks = len(rack_sizes)
    leaf_bws = _bandwidth_list(leaf_bandwidth, num_racks, "leaf")
    uplink_bws = _bandwidth_list(uplink_bandwidth, num_racks, "uplink")
    edges: dict = {}
    computes: list = []
    index = 1
    for rack, size in enumerate(rack_sizes):
        router = f"w{rack + 1}"
        edges[(router, core)] = uplink_bws[rack]
        for _ in range(size):
            leaf = f"v{index}"
            index += 1
            computes.append(leaf)
            edges[(leaf, router)] = leaf_bws[rack]
    return TreeTopology.from_undirected(
        edges, computes, name=name or f"two-level{tuple(rack_sizes)}"
    )


def fat_tree(
    depth: int,
    fanout: int,
    *,
    leaf_bandwidth: float = 1.0,
    level_scale: float = 2.0,
    name: str | None = None,
) -> TreeTopology:
    """A complete fat tree [35]: bandwidth grows by ``level_scale`` per level.

    ``depth`` counts router levels; the compute nodes are the
    ``fanout**depth`` leaves.  ``leaf_bandwidth`` is the access-link
    bandwidth, and a link ``k`` levels above the leaves has bandwidth
    ``leaf_bandwidth * level_scale**k`` — the defining property of fat
    trees (aggregate bandwidth preserved up the tree when
    ``level_scale == fanout``... the default 2.0 models partial
    oversubscription, common in real datacenters).
    """
    if depth < 1:
        raise TopologyError("fat tree depth must be >= 1")
    if fanout < 2:
        raise TopologyError("fat tree fanout must be >= 2")
    edges: dict = {}
    computes: list = []
    # Level 0 is the single core router; level `depth` holds the leaves.
    previous = ["w1"]
    router_count = 1
    leaf_count = 0
    for level in range(1, depth + 1):
        bandwidth = leaf_bandwidth * (level_scale ** (depth - level))
        current = []
        for parent in previous:
            for _ in range(fanout):
                if level == depth:
                    leaf_count += 1
                    child = f"v{leaf_count}"
                    computes.append(child)
                else:
                    router_count += 1
                    child = f"w{router_count}"
                current.append(child)
                edges[(child, parent)] = bandwidth
        previous = current
    return TreeTopology.from_undirected(
        edges, computes, name=name or f"fat-tree(d={depth},f={fanout})"
    )


def caterpillar(
    spine_length: int,
    leaves_per_spine: int,
    *,
    leaf_bandwidth: float = 1.0,
    spine_bandwidth: float = 1.0,
    name: str | None = None,
) -> TreeTopology:
    """A caterpillar: a router chain with compute leaves along the spine.

    Useful as a high-diameter stress topology: every lower bound in the
    paper maximizes over links, and the middle spine links of a
    caterpillar see roughly half the data on each side.
    """
    if spine_length < 1 or leaves_per_spine < 1:
        raise TopologyError("need at least one spine router and one leaf each")
    edges: dict = {}
    computes: list = []
    leaf_index = 1
    for i in range(spine_length):
        router = f"w{i + 1}"
        if i > 0:
            edges[(f"w{i}", router)] = spine_bandwidth
        for _ in range(leaves_per_spine):
            leaf = f"v{leaf_index}"
            leaf_index += 1
            computes.append(leaf)
            edges[(leaf, router)] = leaf_bandwidth
    return TreeTopology.from_undirected(
        edges,
        computes,
        name=name or f"caterpillar({spine_length}x{leaves_per_spine})",
    )


def from_parent_map(
    parents: Mapping[NodeId, tuple[NodeId, float]],
    compute_nodes: Iterable[NodeId],
    *,
    name: str | None = None,
) -> TreeTopology:
    """Build a symmetric tree from ``child -> (parent, bandwidth)`` entries."""
    edges = {(child, parent): bw for child, (parent, bw) in parents.items()}
    return TreeTopology.from_undirected(edges, compute_nodes, name=name)


def random_tree(
    num_nodes: int,
    *,
    seed: int = 0,
    bandwidth_choices: Sequence[float] = (1.0, 2.0, 4.0, 8.0),
    name: str | None = None,
) -> TreeTopology:
    """A uniformly random labelled tree with leaf compute nodes.

    Generated from a random Pruefer sequence so all labelled trees on
    ``num_nodes`` vertices are equally likely.  Leaves become compute
    nodes (the w.l.o.g. form of Section 2.1); link bandwidths are drawn
    uniformly from ``bandwidth_choices``.  Deterministic in ``seed``.
    """
    if num_nodes < 2:
        raise TopologyError("a random tree needs at least two nodes")
    rng = random.Random(seed)
    labels = list(range(num_nodes))
    if num_nodes == 2:
        pairs = [(0, 1)]
    else:
        import heapq

        pruefer = [rng.randrange(num_nodes) for _ in range(num_nodes - 2)]
        degree = [1] * num_nodes
        for x in pruefer:
            degree[x] += 1
        pairs = []
        leaves_heap = [i for i in labels if degree[i] == 1]
        heapq.heapify(leaves_heap)
        for x in pruefer:
            leaf = heapq.heappop(leaves_heap)
            pairs.append((leaf, x))
            degree[leaf] -= 1
            degree[x] -= 1
            if degree[x] == 1:
                heapq.heappush(leaves_heap, x)
        first = heapq.heappop(leaves_heap)
        second = heapq.heappop(leaves_heap)
        pairs.append((first, second))

    adjacency: dict[int, set[int]] = {i: set() for i in labels}
    for a, b in pairs:
        adjacency[a].add(b)
        adjacency[b].add(a)
    leaves = [i for i in labels if len(adjacency[i]) == 1]

    def node_name(i: int) -> str:
        return f"n{i}"

    edges = {
        (node_name(a), node_name(b)): rng.choice(list(bandwidth_choices))
        for a, b in pairs
    }
    computes = [node_name(i) for i in leaves]
    return TreeTopology.from_undirected(
        edges, computes, name=name or f"random-tree({num_nodes},seed={seed})"
    )

"""Network topology substrate (Section 2 of the paper).

The model represents the network as a directed graph with per-edge
bandwidths; a distinguished subset of nodes are *compute* nodes that can
store data and compute, while the remaining nodes only route.  This
package implements the tree-structured topologies the paper's results are
about, together with the w.l.o.g. normalizations of Section 2.1, the
oriented graph G-dagger of Section 4.1, and the routing oracles used by
the simulator.
"""

from repro.topology.tree import TreeTopology, NodeId, UndirectedEdge, DirectedEdge
from repro.topology.builders import (
    caterpillar,
    fat_tree,
    from_parent_map,
    mpc_star,
    random_tree,
    star,
    two_level,
)
from repro.topology.normalize import (
    NormalizedTopology,
    ensure_compute_leaves,
    normalize,
    suppress_degree_two,
)
from repro.topology.dagger import Dagger, build_dagger, minimal_covers, optimal_cover
from repro.topology.steiner import PathOracle
from repro.topology.render import ascii_tree

__all__ = [
    "TreeTopology",
    "NodeId",
    "UndirectedEdge",
    "DirectedEdge",
    "star",
    "mpc_star",
    "two_level",
    "fat_tree",
    "caterpillar",
    "random_tree",
    "from_parent_map",
    "NormalizedTopology",
    "normalize",
    "ensure_compute_leaves",
    "suppress_degree_two",
    "Dagger",
    "build_dagger",
    "optimal_cover",
    "minimal_covers",
    "PathOracle",
    "ascii_tree",
]

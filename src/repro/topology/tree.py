"""Tree network topologies with per-direction bandwidths.

This module implements the network model of Section 2 restricted to trees
(Section 2.1): a connected acyclic network whose links are full-duplex
channels, each direction with its own bandwidth.  A *symmetric* tree — the
setting of every theorem in the paper — has equal bandwidth in both
directions of every link; the asymmetric case is kept around because the
MPC model is captured by an asymmetric star (Section 2.2).

Terminology used throughout the package:

* **directed edge** ``(u, v)`` — the channel from ``u`` to ``v``;
* **undirected edge** — the canonical representative ``(a, b)`` of the
  pair ``{(a, b), (b, a)}``, used wherever the paper treats a link as a
  single object (edge partitions, lower bounds);
* **edge sides** — removing an undirected edge ``(a, b)`` from the tree
  splits the nodes into the side containing ``a`` and the side containing
  ``b``; the paper writes these as ``V-e`` and ``V+e``.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Hashable, Iterable, Iterator, Mapping

from repro.errors import TopologyError

NodeId = Hashable
DirectedEdge = tuple  # (u, v)
UndirectedEdge = tuple  # canonical (a, b)


def node_sort_key(node: NodeId) -> tuple:
    """A total order over arbitrary hashable node ids.

    Nodes of different types (e.g. ``1`` and ``"1"``) compare by type name
    first so the order is deterministic without requiring the ids
    themselves to be mutually comparable.
    """
    return (type(node).__name__, str(node), repr(node))


class TreeTopology:
    """A tree-shaped network with bandwidths and designated compute nodes.

    Parameters
    ----------
    directed_edges:
        Mapping from directed edge ``(u, v)`` to its bandwidth ``w > 0``
        (``math.inf`` allowed).  Both directions of every link must be
        present: tree links are full-duplex channels even when the two
        directions have different bandwidths.
    compute_nodes:
        The nodes allowed to store data and compute (``V_C``).  All other
        nodes are routers.
    name:
        Optional human-readable label used in reports.

    The constructor validates that the underlying undirected graph is a
    connected tree, that bandwidths are positive, and that compute nodes
    exist.  Instances are immutable; use :meth:`with_bandwidths` or
    :meth:`with_compute_nodes` to derive variants.
    """

    def __init__(
        self,
        directed_edges: Mapping[DirectedEdge, float],
        compute_nodes: Iterable[NodeId],
        *,
        name: str | None = None,
    ) -> None:
        self._bandwidth: dict[DirectedEdge, float] = {}
        adjacency: dict[NodeId, dict[NodeId, float]] = {}
        for (u, v), w in directed_edges.items():
            if u == v:
                raise TopologyError(f"self-loop at node {u!r}")
            if not isinstance(w, (int, float)) or math.isnan(w) or w <= 0:
                raise TopologyError(
                    f"bandwidth of edge ({u!r}, {v!r}) must be positive, got {w!r}"
                )
            if (u, v) in self._bandwidth:
                raise TopologyError(f"duplicate directed edge ({u!r}, {v!r})")
            self._bandwidth[(u, v)] = float(w)
            adjacency.setdefault(u, {})[v] = float(w)
            adjacency.setdefault(v, {})
        for (u, v) in self._bandwidth:
            if (v, u) not in self._bandwidth:
                raise TopologyError(
                    f"missing reverse direction for edge ({u!r}, {v!r}); "
                    "links are full-duplex channels"
                )

        self._compute_nodes = frozenset(compute_nodes)
        if not self._compute_nodes:
            raise TopologyError("at least one compute node is required")

        self._nodes = frozenset(adjacency) | self._compute_nodes
        unknown = self._compute_nodes - frozenset(adjacency) if adjacency else frozenset()
        if adjacency and unknown:
            raise TopologyError(
                f"compute nodes {sorted(map(str, unknown))} do not appear in any edge"
            )
        if not adjacency and len(self._nodes) > 1:
            raise TopologyError("multiple nodes but no edges: network is disconnected")

        self._adjacency = {u: dict(nbrs) for u, nbrs in adjacency.items()}
        for node in self._nodes:
            self._adjacency.setdefault(node, {})
        self.name = name or f"tree[{len(self._nodes)}n/{len(self._compute_nodes)}c]"

        self._validate_tree()
        self._root = min(self._nodes, key=node_sort_key)
        self._parent: dict[NodeId, NodeId | None] = {}
        self._depth: dict[NodeId, int] = {}
        self._build_rooting()
        self._subtree_nodes: dict[NodeId, frozenset] = {}
        self._build_subtrees()
        self._sides_cache: dict[UndirectedEdge, tuple[frozenset, frozenset]] = {}
        self._compute_sides_cache: dict[UndirectedEdge, tuple[frozenset, frozenset]] = {}

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def from_undirected(
        cls,
        undirected_edges: Mapping[tuple, float],
        compute_nodes: Iterable[NodeId],
        *,
        name: str | None = None,
    ) -> "TreeTopology":
        """Build a *symmetric* tree from undirected edge bandwidths."""
        directed: dict[DirectedEdge, float] = {}
        for (u, v), w in undirected_edges.items():
            directed[(u, v)] = w
            directed[(v, u)] = w
        return cls(directed, compute_nodes, name=name)

    def with_bandwidths(
        self, overrides: Mapping[DirectedEdge, float]
    ) -> "TreeTopology":
        """Derive a topology with some directed-edge bandwidths replaced.

        Keys may be given in either direction of a link; ``(u, v)``
        overrides only the ``u -> v`` direction.
        """
        edges = dict(self._bandwidth)
        for (u, v), w in overrides.items():
            if (u, v) not in edges:
                raise TopologyError(f"unknown edge ({u!r}, {v!r})")
            edges[(u, v)] = w
        return TreeTopology(edges, self._compute_nodes, name=self.name)

    def with_compute_nodes(self, compute_nodes: Iterable[NodeId]) -> "TreeTopology":
        """Derive a topology with a different compute-node set."""
        return TreeTopology(dict(self._bandwidth), compute_nodes, name=self.name)

    # ------------------------------------------------------------------ #
    # validation
    # ------------------------------------------------------------------ #

    def _validate_tree(self) -> None:
        n_nodes = len(self._nodes)
        n_links = len(self._bandwidth) // 2
        if n_links != n_nodes - 1:
            raise TopologyError(
                f"{n_nodes} nodes need exactly {n_nodes - 1} links to form a "
                f"tree, got {n_links}"
            )
        if n_nodes == 0:
            raise TopologyError("empty topology")
        seen = {next(iter(self._nodes))}
        frontier = deque(seen)
        while frontier:
            node = frontier.popleft()
            for neighbor in self._adjacency[node]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        if len(seen) != n_nodes:
            raise TopologyError("network is disconnected")

    def _build_rooting(self) -> None:
        self._parent[self._root] = None
        self._depth[self._root] = 0
        frontier = deque([self._root])
        while frontier:
            node = frontier.popleft()
            for neighbor in sorted(self._adjacency[node], key=node_sort_key):
                if neighbor not in self._parent:
                    self._parent[neighbor] = node
                    self._depth[neighbor] = self._depth[node] + 1
                    frontier.append(neighbor)

    def _build_subtrees(self) -> None:
        order = sorted(self._nodes, key=lambda n: -self._depth[n])
        collected: dict[NodeId, set] = {n: {n} for n in self._nodes}
        for node in order:
            parent = self._parent[node]
            if parent is not None:
                collected[parent] |= collected[node]
        self._subtree_nodes = {n: frozenset(s) for n, s in collected.items()}

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #

    @property
    def nodes(self) -> frozenset:
        """All network nodes (compute nodes and routers)."""
        return self._nodes

    @property
    def compute_nodes(self) -> frozenset:
        """The compute-node set ``V_C``."""
        return self._compute_nodes

    @property
    def routers(self) -> frozenset:
        """Nodes that can only route data."""
        return self._nodes - self._compute_nodes

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_compute_nodes(self) -> int:
        return len(self._compute_nodes)

    def neighbors(self, node: NodeId) -> list:
        """Neighbors of ``node`` in deterministic order."""
        if node not in self._adjacency:
            raise TopologyError(f"unknown node {node!r}")
        return sorted(self._adjacency[node], key=node_sort_key)

    def degree(self, node: NodeId) -> int:
        if node not in self._adjacency:
            raise TopologyError(f"unknown node {node!r}")
        return len(self._adjacency[node])

    def leaves(self) -> frozenset:
        """Nodes of degree one (or the sole node of a single-node tree)."""
        if len(self._nodes) == 1:
            return self._nodes
        return frozenset(n for n in self._nodes if self.degree(n) == 1)

    def bandwidth(self, u: NodeId, v: NodeId) -> float:
        """Bandwidth of the directed channel ``u -> v``."""
        try:
            return self._bandwidth[(u, v)]
        except KeyError:
            raise TopologyError(f"no edge ({u!r}, {v!r})") from None

    @property
    def directed_edges(self) -> dict[DirectedEdge, float]:
        """Copy of the directed edge -> bandwidth mapping."""
        return dict(self._bandwidth)

    def canonical_edge(self, u: NodeId, v: NodeId) -> UndirectedEdge:
        """Canonical undirected representative of the link between u, v."""
        if (u, v) not in self._bandwidth:
            raise TopologyError(f"no edge ({u!r}, {v!r})")
        return (u, v) if node_sort_key(u) <= node_sort_key(v) else (v, u)

    def undirected_edges(self) -> list:
        """All links as canonical undirected edges, deterministic order."""
        seen = set()
        result = []
        for (u, v) in self._bandwidth:
            edge = (u, v) if node_sort_key(u) <= node_sort_key(v) else (v, u)
            if edge not in seen:
                seen.add(edge)
                result.append(edge)
        result.sort(key=lambda e: (node_sort_key(e[0]), node_sort_key(e[1])))
        return result

    def undirected_bandwidth(self, edge: UndirectedEdge) -> float:
        """Bandwidth of a link in a symmetric tree (both directions equal)."""
        u, v = edge
        forward = self.bandwidth(u, v)
        backward = self.bandwidth(v, u)
        if forward != backward:
            raise TopologyError(
                f"link ({u!r}, {v!r}) is asymmetric "
                f"({forward} vs {backward}); no single undirected bandwidth"
            )
        return forward

    # ------------------------------------------------------------------ #
    # symmetry
    # ------------------------------------------------------------------ #

    @property
    def is_symmetric(self) -> bool:
        """True iff every link has equal bandwidth in both directions."""
        return all(
            self._bandwidth[(u, v)] == self._bandwidth[(v, u)]
            for (u, v) in self._bandwidth
        )

    def require_symmetric(self, context: str = "this operation") -> None:
        """Raise :class:`TopologyError` unless the tree is symmetric."""
        if not self.is_symmetric:
            raise TopologyError(
                f"{context} requires a symmetric tree topology "
                f"(every link with equal bandwidth in both directions)"
            )

    def is_star(self) -> bool:
        """True iff some single node is an endpoint of every link."""
        if len(self._nodes) <= 2:
            return True
        candidates = None
        for (u, v) in self.undirected_edges():
            pair = {u, v}
            candidates = pair if candidates is None else candidates & pair
            if not candidates:
                return False
        return True

    def star_center(self) -> NodeId:
        """The hub of a star topology (raises if the tree is not a star)."""
        if not self.is_star():
            raise TopologyError(f"{self.name} is not a star topology")
        if len(self._nodes) == 1:
            return next(iter(self._nodes))
        if len(self._nodes) == 2:
            # Either node serves as center; prefer a router if present.
            routers = self.routers
            pool = routers if routers else self._nodes
            return min(pool, key=node_sort_key)
        candidates = set(self._nodes)
        for (u, v) in self.undirected_edges():
            candidates &= {u, v}
        return min(candidates, key=node_sort_key)

    # ------------------------------------------------------------------ #
    # paths
    # ------------------------------------------------------------------ #

    def parent(self, node: NodeId) -> NodeId | None:
        """Parent of ``node`` under the canonical internal rooting."""
        if node not in self._parent:
            raise TopologyError(f"unknown node {node!r}")
        return self._parent[node]

    def path_nodes(self, u: NodeId, v: NodeId) -> list:
        """The unique path from ``u`` to ``v`` as a node list (inclusive)."""
        if u not in self._nodes or v not in self._nodes:
            missing = u if u not in self._nodes else v
            raise TopologyError(f"unknown node {missing!r}")
        up_from_u: list = [u]
        up_from_v: list = [v]
        a, b = u, v
        while self._depth[a] > self._depth[b]:
            a = self._parent[a]
            up_from_u.append(a)
        while self._depth[b] > self._depth[a]:
            b = self._parent[b]
            up_from_v.append(b)
        while a != b:
            a = self._parent[a]
            b = self._parent[b]
            up_from_u.append(a)
            up_from_v.append(b)
        # up_from_u ends at the LCA; up_from_v also ends at the LCA.
        return up_from_u + list(reversed(up_from_v[:-1]))

    def path_edges(self, u: NodeId, v: NodeId) -> tuple:
        """Directed edges traversed when sending from ``u`` to ``v``."""
        nodes = self.path_nodes(u, v)
        return tuple(zip(nodes[:-1], nodes[1:]))

    # ------------------------------------------------------------------ #
    # edge partitions (the V-e / V+e of the paper)
    # ------------------------------------------------------------------ #

    def edge_sides(self, edge: UndirectedEdge) -> tuple[frozenset, frozenset]:
        """All nodes on each side of a link, ``(side of edge[0], side of edge[1])``."""
        edge = self.canonical_edge(*edge)
        cached = self._sides_cache.get(edge)
        if cached is not None:
            return cached
        a, b = edge
        if self._parent[b] == a:
            b_side = self._subtree_nodes[b]
        elif self._parent[a] == b:
            a_side = self._subtree_nodes[a]
            result = (a_side, self._nodes - a_side)
            self._sides_cache[edge] = result
            return result
        else:  # pragma: no cover - impossible in a tree
            raise TopologyError(f"edge {edge!r} not parent-child under rooting")
        result = (self._nodes - b_side, b_side)
        self._sides_cache[edge] = result
        return result

    def compute_sides(self, edge: UndirectedEdge) -> tuple[frozenset, frozenset]:
        """Compute nodes on each side of a link."""
        edge = self.canonical_edge(*edge)
        cached = self._compute_sides_cache.get(edge)
        if cached is not None:
            return cached
        a_side, b_side = self.edge_sides(edge)
        result = (a_side & self._compute_nodes, b_side & self._compute_nodes)
        self._compute_sides_cache[edge] = result
        return result

    def side_weights(
        self, weights: Mapping[NodeId, float]
    ) -> dict[UndirectedEdge, tuple[float, float]]:
        """Per-link sums of ``weights`` over compute nodes on each side.

        This is the quantity ``(sum_{v in V-e} N_v, sum_{v in V+e} N_v)``
        that every lower bound in the paper is expressed through.
        """
        result = {}
        for edge in self.undirected_edges():
            a_side, b_side = self.compute_sides(edge)
            result[edge] = (
                sum(weights.get(v, 0) for v in a_side),
                sum(weights.get(v, 0) for v in b_side),
            )
        return result

    # ------------------------------------------------------------------ #
    # traversal orders (Section 5)
    # ------------------------------------------------------------------ #

    def left_to_right_compute_order(self, root: NodeId | None = None) -> list:
        """A valid left-to-right traversal order of the compute nodes.

        Section 5 defines a *valid ordering* as any left-to-right traversal
        of the tree after rooting it anywhere.  This method roots at
        ``root`` (default: the canonical internal root) and visits children
        in deterministic id order; the compute nodes are reported in the
        order first encountered, which makes every subtree's compute nodes
        a contiguous block of the result.
        """
        if root is None:
            root = self._root
        if root not in self._nodes:
            raise TopologyError(f"unknown root {root!r}")
        order: list = []
        stack: list = [root]
        seen = {root}
        while stack:
            node = stack.pop()
            if node in self._compute_nodes:
                order.append(node)
            for neighbor in sorted(
                self._adjacency[node], key=node_sort_key, reverse=True
            ):
                if neighbor not in seen:
                    seen.add(neighbor)
                    stack.append(neighbor)
        return order

    # ------------------------------------------------------------------ #
    # misc
    # ------------------------------------------------------------------ #

    def __contains__(self, node: NodeId) -> bool:
        return node in self._nodes

    def __repr__(self) -> str:
        sym = "symmetric" if self.is_symmetric else "asymmetric"
        return (
            f"TreeTopology({self.name!r}, nodes={len(self._nodes)}, "
            f"compute={len(self._compute_nodes)}, {sym})"
        )

    def iter_links(self) -> Iterator[tuple[UndirectedEdge, float, float]]:
        """Yield ``(canonical_edge, forward_bw, backward_bw)`` per link."""
        for (a, b) in self.undirected_edges():
            yield (a, b), self._bandwidth[(a, b)], self._bandwidth[(b, a)]

"""Path and Steiner-edge oracle for routing on trees.

The cost model charges a link once for every element routed through it.
When a protocol multicasts the same element from a source to several
destinations (R-tuples replicated across partition blocks in Algorithm 2;
grid squares sharing a row range in Theorem 5), a sensible router forwards
*one* copy along the shared prefix and fans out later — which is exactly
what the paper's upper-bound analyses assume.  The set of links such a
multicast touches is the Steiner tree of {source} ∪ destinations, directed
away from the source; this oracle computes those edge sets and memoises
them, because hashing-based protocols query the same (source,
destination-set) pair for many elements.
"""

from __future__ import annotations

import threading
from typing import Hashable, Iterable

import numpy as np

from repro.topology.tree import DirectedEdge, TreeTopology, node_sort_key


class RoutingIndex:
    """Integer-indexed tree structure for vectorized bulk accounting.

    A round of a hashed shuffle produces tens of thousands of distinct
    ``(src, dst)`` unicast pairs; walking the tree path of each pair in
    Python is what used to dominate round finalization.  This index
    computes the per-edge loads of *all* pairs together:

    * LCAs by lifting both endpoint arrays up the canonical rooting,
      one vectorized step per tree level;
    * per-edge loads by the classic tree-difference trick — charge
      ``+count`` at the endpoint, ``-count`` at the LCA, and push
      partial sums up the tree level by level; the accumulated value at
      node ``x`` is then exactly the load on the directed edge between
      ``x`` and its parent (upward loads from sources, downward loads
      to destinations).

    The resulting per-edge totals are sums of the same integers the
    per-pair walk adds up, so they are exactly equal.
    """

    def __init__(self, tree: TreeTopology) -> None:
        self._tree = tree
        self.nodes: list = sorted(tree.nodes, key=node_sort_key)
        self.index_of: dict = {n: i for i, n in enumerate(self.nodes)}
        size = len(self.nodes)
        parent = np.full(size, -1, dtype=np.intp)
        for i, node in enumerate(self.nodes):
            p = tree.parent(node)
            if p is not None:
                parent[i] = self.index_of[p]
        depth = np.zeros(size, dtype=np.int64)
        pending = parent.copy()
        while True:
            alive = pending >= 0
            if not alive.any():
                break
            depth[alive] += 1
            pending[alive] = parent[pending[alive]]
        self.parent = parent
        self.depth = depth
        self.max_depth = int(depth.max()) if size else 0
        # node indices per depth level, deepest first, root level excluded
        self.levels_desc: list[np.ndarray] = [
            np.flatnonzero(depth == d)
            for d in range(self.max_depth, 0, -1)
        ]
        # DFS preorder entry times: terminals of a multicast sorted by
        # ``tin`` admit the edge-disjoint Steiner decomposition that
        # :meth:`multicast_loads` charges (the virtual-tree ordering).
        children: list[list[int]] = [[] for _ in range(size)]
        for i in range(size):
            if parent[i] >= 0:
                children[parent[i]].append(i)
        tin = np.zeros(size, dtype=np.int64)
        stack = [i for i in range(size) if parent[i] < 0][::-1]
        timer = 0
        while stack:
            x = stack.pop()
            tin[x] = timer
            timer += 1
            stack.extend(reversed(children[x]))
        self.tin = tin

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def lca(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Vectorized lowest common ancestors of index arrays ``a``, ``b``."""
        a = np.array(a, dtype=np.intp)
        b = np.array(b, dtype=np.intp)
        parent, depth = self.parent, self.depth
        deeper = depth[a] > depth[b]
        while deeper.any():
            a[deeper] = parent[a[deeper]]
            deeper = depth[a] > depth[b]
        deeper = depth[b] > depth[a]
        while deeper.any():
            b[deeper] = parent[b[deeper]]
            deeper = depth[b] > depth[a]
        differ = a != b
        while differ.any():
            a[differ] = parent[a[differ]]
            b[differ] = parent[b[differ]]
            differ = a != b
        return a

    def unicast_loads(
        self, src: np.ndarray, dst: np.ndarray, counts: np.ndarray
    ) -> dict:
        """Per-directed-edge element loads of a batch of unicasts.

        ``src``/``dst`` are node indices (per :attr:`index_of`) and
        ``counts`` the element count per pair; self-pairs contribute
        nothing, exactly like an empty path.  Returns a dict mapping
        :data:`DirectedEdge` to its total load.
        """
        src = np.asarray(src, dtype=np.intp)
        dst = np.asarray(dst, dtype=np.intp)
        counts = np.asarray(counts, dtype=np.int64)
        meet = self.lca(src, dst)
        up = np.zeros(self.num_nodes, dtype=np.int64)
        down = np.zeros(self.num_nodes, dtype=np.int64)
        np.add.at(up, src, counts)
        np.subtract.at(up, meet, counts)
        np.add.at(down, dst, counts)
        np.subtract.at(down, meet, counts)
        return self._push_loads(up, down)

    def _push_loads(self, up: np.ndarray, down: np.ndarray) -> dict:
        """Prefix-sum tree-difference arrays into a per-edge load dict.

        ``up[x]`` / ``down[x]`` hold path-difference charges; after
        pushing partial sums up the levels, the value at ``x`` is the
        load on the edge between ``x`` and its parent — upward
        (``x -> parent``) for ``up``, downward for ``down``.
        """
        parent = self.parent
        for level in self.levels_desc:
            np.add.at(up, parent[level], up[level])
            np.add.at(down, parent[level], down[level])
        loads: dict = {}
        nodes = self.nodes
        for x in np.flatnonzero(up).tolist():
            if parent[x] >= 0:
                loads[(nodes[x], nodes[parent[x]])] = int(up[x])
        for x in np.flatnonzero(down).tolist():
            if parent[x] >= 0:
                edge = (nodes[parent[x]], nodes[x])
                loads[edge] = loads.get(edge, 0) + int(down[x])
        return loads

    def multicast_loads(
        self,
        src: np.ndarray,
        terminals: np.ndarray,
        starts: np.ndarray,
        ends: np.ndarray,
        counts: np.ndarray,
    ) -> dict:
        """Per-directed-edge loads of a batch of Steiner multicasts.

        Group ``g`` multicasts ``counts[g]`` elements from node index
        ``src[g]`` to the destination indices
        ``terminals[starts[g]:ends[g]]``; each directed edge of the
        Steiner tree of ``{src} | destinations`` (directed away from
        the source) is charged ``counts[g]`` once, exactly like
        :meth:`PathOracle.steiner_edges` accounting.

        The vectorization rests on the virtual-tree decomposition: with
        a group's terminals ``t_1 <= ... <= t_k`` sorted by DFS
        preorder (:attr:`tin`), the upward paths
        ``t_i -> lca(t_i, t_{i-1 cyclic})`` are edge-disjoint and cover
        every Steiner edge exactly once (the cyclic first pair yields
        the Steiner root ``lca(t_1, t_k)``).  Those paths feed the same
        tree-difference accumulators as :meth:`unicast_loads`; edges on
        the source's path to the Steiner root carry the payload upward,
        every other Steiner edge carries it downward.  Duplicate
        terminals contribute empty paths, so destination sets need no
        deduplication against the source.
        """
        src = np.asarray(src, dtype=np.intp)
        terminals = np.asarray(terminals, dtype=np.intp)
        starts = np.asarray(starts, dtype=np.intp)
        ends = np.asarray(ends, dtype=np.intp)
        counts = np.asarray(counts, dtype=np.int64)
        num_groups = len(src)
        if num_groups == 0:
            return {}
        lens = ends - starts
        k = lens + 1  # terminals per group, the source included
        out_end = np.cumsum(k)
        out_start = out_end - k
        total = int(out_end[-1])
        group_of = np.repeat(np.arange(num_groups, dtype=np.intp), k)
        # flat terminal array: each group's source followed by its
        # destination slice, gathered without a per-group Python loop
        flat = np.empty(total, dtype=np.intp)
        flat[out_start] = src
        pos = np.arange(total, dtype=np.intp)
        dst_slots = pos != out_start[group_of]
        gather = pos - out_start[group_of] - 1 + starts[group_of]
        flat[dst_slots] = terminals[gather[dst_slots]]
        order = np.lexsort((self.tin[flat], group_of))
        t_sorted = flat[order]
        prev = np.empty_like(t_sorted)
        prev[1:] = t_sorted[:-1]
        prev[out_start] = t_sorted[out_end - 1]
        meet = self.lca(t_sorted, prev)
        roots = meet[out_start]  # lca(t_1, t_k) = the group's Steiner root
        per_terminal = counts[group_of]
        up = np.zeros(self.num_nodes, dtype=np.int64)
        down = np.zeros(self.num_nodes, dtype=np.int64)
        # upward: the source's path to the Steiner root
        np.add.at(up, src, counts)
        np.subtract.at(up, roots, counts)
        # downward: the full disjoint decomposition minus that path
        np.add.at(down, t_sorted, per_terminal)
        np.subtract.at(down, meet, per_terminal)
        np.subtract.at(down, src, counts)
        np.add.at(down, roots, counts)
        return self._push_loads(up, down)


class PathOracle:
    """Memoised path / Steiner-edge queries against one topology.

    Instances are shared across clusters — and across ``run_many``
    threads — through the artifact layer
    (:mod:`repro.topology.artifacts`), so the memo dicts rely on the
    GIL's atomic inserts (a racing duplicate computation yields an
    equal tuple) and the routing index builds under a lock: one build
    per topology, ever.
    """

    def __init__(self, tree: TreeTopology) -> None:
        self._tree = tree
        self._path_cache: dict[tuple, tuple[DirectedEdge, ...]] = {}
        self._steiner_cache: dict[tuple, tuple[DirectedEdge, ...]] = {}
        self._routing: RoutingIndex | None = None
        self._routing_lock = threading.Lock()

    @property
    def routing_index(self) -> RoutingIndex:
        """The integer-indexed routing structure (built lazily, once)."""
        if self._routing is None:
            with self._routing_lock:
                if self._routing is None:
                    self._routing = RoutingIndex(self._tree)
        return self._routing

    @property
    def tree(self) -> TreeTopology:
        return self._tree

    def path_edges(self, src: Hashable, dst: Hashable) -> tuple[DirectedEdge, ...]:
        """Directed edges on the unique path ``src -> dst`` (may be empty)."""
        key = (src, dst)
        cached = self._path_cache.get(key)
        if cached is None:
            cached = self._tree.path_edges(src, dst)
            self._path_cache[key] = cached
        return cached

    def steiner_edges(
        self, src: Hashable, dsts: Iterable[Hashable]
    ) -> tuple[DirectedEdge, ...]:
        """Directed edges a deduplicated multicast from ``src`` traverses.

        This is the union of the directed paths from ``src`` to each
        destination; because all paths share the source, the union is the
        Steiner tree of the terminal set directed away from ``src``, and
        each link appears at most once.
        """
        dst_key = frozenset(dsts)
        key = (src, dst_key)
        cached = self._steiner_cache.get(key)
        if cached is None:
            edges: dict[DirectedEdge, None] = {}
            for dst in sorted(dst_key, key=lambda n: str(n)):
                for edge in self.path_edges(src, dst):
                    edges.setdefault(edge, None)
            cached = tuple(edges)
            self._steiner_cache[key] = cached
        return cached

    def cache_info(self) -> dict[str, int]:
        """Cache sizes, for diagnostics."""
        return {
            "paths": len(self._path_cache),
            "steiner": len(self._steiner_cache),
        }

"""Path and Steiner-edge oracle for routing on trees.

The cost model charges a link once for every element routed through it.
When a protocol multicasts the same element from a source to several
destinations (R-tuples replicated across partition blocks in Algorithm 2;
grid squares sharing a row range in Theorem 5), a sensible router forwards
*one* copy along the shared prefix and fans out later — which is exactly
what the paper's upper-bound analyses assume.  The set of links such a
multicast touches is the Steiner tree of {source} ∪ destinations, directed
away from the source; this oracle computes those edge sets and memoises
them, because hashing-based protocols query the same (source,
destination-set) pair for many elements.
"""

from __future__ import annotations

from typing import Hashable, Iterable

from repro.topology.tree import DirectedEdge, TreeTopology


class PathOracle:
    """Memoised path / Steiner-edge queries against one topology."""

    def __init__(self, tree: TreeTopology) -> None:
        self._tree = tree
        self._path_cache: dict[tuple, tuple[DirectedEdge, ...]] = {}
        self._steiner_cache: dict[tuple, tuple[DirectedEdge, ...]] = {}

    @property
    def tree(self) -> TreeTopology:
        return self._tree

    def path_edges(self, src: Hashable, dst: Hashable) -> tuple[DirectedEdge, ...]:
        """Directed edges on the unique path ``src -> dst`` (may be empty)."""
        key = (src, dst)
        cached = self._path_cache.get(key)
        if cached is None:
            cached = self._tree.path_edges(src, dst)
            self._path_cache[key] = cached
        return cached

    def steiner_edges(
        self, src: Hashable, dsts: Iterable[Hashable]
    ) -> tuple[DirectedEdge, ...]:
        """Directed edges a deduplicated multicast from ``src`` traverses.

        This is the union of the directed paths from ``src`` to each
        destination; because all paths share the source, the union is the
        Steiner tree of the terminal set directed away from ``src``, and
        each link appears at most once.
        """
        dst_key = frozenset(dsts)
        key = (src, dst_key)
        cached = self._steiner_cache.get(key)
        if cached is None:
            edges: dict[DirectedEdge, None] = {}
            for dst in sorted(dst_key, key=lambda n: str(n)):
                for edge in self.path_edges(src, dst):
                    edges.setdefault(edge, None)
            cached = tuple(edges)
            self._steiner_cache[key] = cached
        return cached

    def cache_info(self) -> dict[str, int]:
        """Cache sizes, for diagnostics."""
        return {
            "paths": len(self._path_cache),
            "steiner": len(self._steiner_cache),
        }

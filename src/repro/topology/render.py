"""Plain-text rendering of tree topologies (Figure 1 / Figure 3 style).

Produces an indented ASCII tree annotated with bandwidths, compute-node
markers, and optional per-node data sizes — used by examples and by
benchmark reports so experiment output is self-describing.
"""

from __future__ import annotations

import math
from typing import Hashable, Mapping

from repro.topology.tree import NodeId, TreeTopology, node_sort_key


def _format_bandwidth(value: float) -> str:
    if math.isinf(value):
        return "inf"
    if value == int(value):
        return str(int(value))
    return f"{value:g}"


def ascii_tree(
    tree: TreeTopology,
    *,
    root: NodeId | None = None,
    node_weights: Mapping[NodeId, float] | None = None,
) -> str:
    """Render ``tree`` rooted at ``root`` as indented ASCII art.

    Compute nodes are marked ``[v]``; routers ``(w)``.  Each child line
    shows the bandwidth of its uplink; asymmetric links show both
    directions as ``down/up``.  ``node_weights`` (e.g. data sizes ``N_v``)
    are appended as ``N=...`` when provided.
    """
    if root is None:
        root = min(
            tree.routers if tree.routers else tree.nodes, key=node_sort_key
        )
    if root not in tree.nodes:
        raise ValueError(f"unknown root {root!r}")

    lines: list[str] = []

    def label(node: NodeId) -> str:
        mark = f"[{node}]" if node in tree.compute_nodes else f"({node})"
        if node_weights is not None and node in node_weights:
            mark += f" N={node_weights[node]:g}"
        return mark

    def visit(node: NodeId, parent: NodeId | None, prefix: str, tail: bool) -> None:
        if parent is None:
            lines.append(label(node))
            connector_prefix = ""
        else:
            down = tree.bandwidth(parent, node)
            up = tree.bandwidth(node, parent)
            bandwidth = (
                _format_bandwidth(down)
                if down == up
                else f"{_format_bandwidth(down)}/{_format_bandwidth(up)}"
            )
            branch = "`-" if tail else "|-"
            lines.append(f"{prefix}{branch}[w={bandwidth}]-- {label(node)}")
            connector_prefix = prefix + ("  " if tail else "| ")
        children = [n for n in tree.neighbors(node) if n != parent]
        for index, child in enumerate(children):
            visit(child, node, connector_prefix, index == len(children) - 1)

    visit(root, None, "", True)
    return "\n".join(lines)

"""The oriented tree G-dagger of Section 4.1 (Lemma 4) and its covers.

Given a symmetric tree ``G`` and per-compute-node data sizes ``N_v``, the
paper orients every link toward its *heavier* side: edge ``(u, v)`` points
``u -> v`` when the total data on ``u``'s side is at most the total on
``v``'s side.  Lemma 4 shows the result has out-degree at most one
everywhere and a unique sink, the *root* ``r``; data "flows downhill"
toward the root in the cartesian-product algorithms.

A *cover* of G-dagger is a node set such that every leaf has an ancestor
in it (a node counts as its own ancestor); Theorem 4 turns every minimal
cover ``U != {r}`` into a lower bound ``N / sqrt(sum_{u in U} w_u^2)``.
:func:`optimal_cover` computes the strongest such bound with the same
bottom-up recursion the paper uses for ``w~`` in Algorithm 5 / Lemma 8(3).

Tie-breaking: when both sides of a link hold exactly half the data, both
orientations satisfy the paper's rule, and a careless per-edge choice can
give some node two out-edges.  We orient every tied link toward the side
containing a fixed *pivot* node (the maximum node id).  Since the far
sides of two out-edges of a node are disjoint, two strict orientations
would need more than ``N`` data, a strict+tied pair exactly more than
``N``, and two tied orientations would put the pivot on two disjoint
sides — all impossible, so Lemma 4's properties hold unconditionally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterator, Mapping

from repro.errors import TopologyError
from repro.topology.tree import NodeId, TreeTopology, node_sort_key


@dataclass(frozen=True)
class Dagger:
    """The oriented tree: parent pointers toward the root.

    Attributes
    ----------
    tree:
        The underlying symmetric tree.
    root:
        The unique node with out-degree zero.
    parent:
        ``parent[v]`` is the head of ``v``'s unique out-edge (absent for
        the root).
    out_bandwidth:
        ``out_bandwidth[v]`` is the bandwidth ``w_v`` of ``v``'s out-edge
        (the paper's ``w(v, p_v)``).
    """

    tree: TreeTopology
    root: NodeId
    parent: dict
    out_bandwidth: dict

    def children(self, node: NodeId) -> list:
        """Nodes whose out-edge points at ``node``, in deterministic order."""
        return sorted(
            (v for v, p in self.parent.items() if p == node),
            key=node_sort_key,
        )

    def dagger_leaves(self) -> list:
        """Nodes with in-degree zero in the orientation."""
        parents = set(self.parent.values())
        return sorted(
            (v for v in self.tree.nodes if v not in parents),
            key=node_sort_key,
        )

    @property
    def root_is_compute(self) -> bool:
        """True iff the sink of the orientation is a compute node.

        When the root is a compute node, simply routing all data to the
        root is already optimal for the cartesian product (Section 4.1),
        so the packing machinery is bypassed.
        """
        return self.root in self.tree.compute_nodes

    def subtree_nodes(self, node: NodeId) -> frozenset:
        """All nodes in the subtree of ``node`` (nodes oriented toward it)."""
        members = {node}
        frontier = [node]
        while frontier:
            current = frontier.pop()
            for child in self.children(current):
                members.add(child)
                frontier.append(child)
        return frozenset(members)


def build_dagger(
    tree: TreeTopology, node_weights: Mapping[NodeId, float]
) -> Dagger:
    """Orient ``tree`` toward heavier sides per Section 4.1.

    ``node_weights`` are the per-compute-node data sizes ``N_v``; missing
    compute nodes count as zero, non-compute keys are rejected.
    """
    tree.require_symmetric("building G-dagger")
    for node in node_weights:
        if node not in tree.compute_nodes:
            raise TopologyError(
                f"weight given for {node!r}, which is not a compute node"
            )
    if len(tree.nodes) == 1:
        only = next(iter(tree.nodes))
        return Dagger(tree=tree, root=only, parent={}, out_bandwidth={})

    pivot = max(tree.nodes, key=node_sort_key)
    parent: dict = {}
    out_bandwidth: dict = {}
    for edge in tree.undirected_edges():
        a, b = edge
        a_side, b_side = tree.compute_sides(edge)
        weight_a = sum(node_weights.get(v, 0) for v in a_side)
        weight_b = sum(node_weights.get(v, 0) for v in b_side)
        if weight_a < weight_b:
            tail, head = a, b
        elif weight_b < weight_a:
            tail, head = b, a
        else:
            # Tie: orient toward the side holding the pivot node.
            a_nodes, _ = tree.edge_sides(edge)
            tail, head = (b, a) if pivot in a_nodes else (a, b)
        if tail in parent:  # pragma: no cover - excluded by the tie rule
            raise TopologyError(
                f"node {tail!r} received two out-edges; orientation bug"
            )
        parent[tail] = head
        out_bandwidth[tail] = tree.undirected_bandwidth(edge)

    roots = [v for v in tree.nodes if v not in parent]
    if len(roots) != 1:  # pragma: no cover - guaranteed by Lemma 4
        raise TopologyError(f"expected a unique G-dagger root, got {roots!r}")
    return Dagger(
        tree=tree, root=roots[0], parent=parent, out_bandwidth=out_bandwidth
    )


def optimal_cover(dagger: Dagger) -> tuple[frozenset, float]:
    """The minimal cover minimizing ``sum w_u^2`` and that minimum's sqrt.

    Runs the bottom-up recursion of Algorithm 5's first phase: for each
    node, either its own out-edge bandwidth squared, or the best covers of
    its children summed — whichever is smaller.  At the root only the
    children sum is allowed (the root has no out-edge, and the trivial
    cover ``{r}`` is excluded by Theorem 4).

    Returns ``(cover, sqrt(sum of squared bandwidths))``; this value is
    exactly ``w~_r`` of Lemma 8(3).
    """
    if not dagger.parent:
        raise TopologyError("single-node topology has no non-trivial cover")

    best_value: dict = {}
    best_cover: dict = {}

    def visit(node: NodeId) -> None:
        children = dagger.children(node)
        for child in children:
            visit(child)
        child_sum = sum(best_value[c] for c in children)
        child_cover = frozenset().union(*(best_cover[c] for c in children)) if children else frozenset()
        if node == dagger.root:
            best_value[node] = child_sum
            best_cover[node] = child_cover
            return
        own = dagger.out_bandwidth[node] ** 2
        if children and child_sum < own:
            best_value[node] = child_sum
            best_cover[node] = child_cover
        else:
            best_value[node] = own
            best_cover[node] = frozenset({node})

    import sys

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 4 * len(dagger.tree.nodes) + 100))
    try:
        visit(dagger.root)
    finally:
        sys.setrecursionlimit(old_limit)
    return best_cover[dagger.root], best_value[dagger.root] ** 0.5


def minimal_covers(dagger: Dagger) -> Iterator[frozenset]:
    """Enumerate all minimal covers ``U != {root}`` (for small trees/tests).

    A minimal cover picks, independently for each subtree hanging off the
    root, either the child itself or recursively a minimal cover of that
    child's subtree; minimality holds because the chosen nodes' subtrees
    are disjoint and each contains at least one leaf.
    """

    def covers_of(node: NodeId) -> Iterator[frozenset]:
        yield frozenset({node})
        children = dagger.children(node)
        if not children:
            return
        child_options = [list(covers_of(c)) for c in children]

        def combine(index: int) -> Iterator[frozenset]:
            if index == len(child_options):
                yield frozenset()
                return
            for choice in child_options[index]:
                for rest in combine(index + 1):
                    yield choice | rest

        yield from combine(0)

    children = dagger.children(dagger.root)
    if not children:
        return
    child_options = [list(covers_of(c)) for c in children]

    def combine(index: int) -> Iterator[frozenset]:
        if index == len(child_options):
            yield frozenset()
            return
        for choice in child_options[index]:
            for rest in combine(index + 1):
                yield choice | rest

    yield from combine(0)


def cover_value(dagger: Dagger, cover: frozenset) -> float:
    """``sqrt(sum of squared out-edge bandwidths)`` for a cover."""
    return sum(dagger.out_bandwidth[u] ** 2 for u in cover) ** 0.5

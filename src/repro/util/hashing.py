"""Deterministic vectorised hashing for randomized routing.

The set-intersection algorithms route each element ``a`` to the node
``h(a)`` drawn from a *non-uniform* distribution over compute nodes
(Algorithms 1 and 2: probability proportional to the data size ``N_v`` the
node holds).  Two properties matter:

* **Consistency** — every node must evaluate the same ``h(a)`` for the
  same element without communication, so ``h`` must be a pure function of
  ``(seed, a)``;
* **Speed** — benchmarks hash 10^5-10^6 elements, so the implementation is
  vectorised over NumPy ``uint64`` arrays.

We use the splitmix64 finalizer (Steele, Lea & Flood 2014), a well-mixed
64-bit permutation, to map ``seed XOR element`` to a uniform 64-bit value,
then interpret it as a point in [0, 1) and invert the cumulative node
distribution with ``searchsorted``.
"""

from __future__ import annotations

import hashlib
from typing import Hashable, Sequence

import numpy as np

from repro.util.grouping import ContentCache, group_slices

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)
_U64_SPAN = float(2**64)

#: Memo behind :meth:`WeightedNodeHasher.assign_indices` /
#: :meth:`~WeightedNodeHasher.assign_slices` (per thread/worker); keys
#: combine the hasher's identity token with the values' content digest.
ASSIGN_CACHE = ContentCache()


def splitmix64(values: np.ndarray, seed: int) -> np.ndarray:
    """Apply the splitmix64 finalizer to ``values`` keyed by ``seed``.

    ``values`` may be any integer array; it is reinterpreted as ``uint64``.
    Returns a ``uint64`` array of the same shape.
    """
    x = np.asarray(values).astype(np.uint64, copy=True)
    x += np.uint64(seed & 0xFFFFFFFFFFFFFFFF)
    with np.errstate(over="ignore"):
        x += _GOLDEN
        x ^= x >> np.uint64(30)
        x *= _MIX1
        x ^= x >> np.uint64(27)
        x *= _MIX2
        x ^= x >> np.uint64(31)
    return x


def hash_to_unit(values: np.ndarray, seed: int) -> np.ndarray:
    """Hash integer ``values`` to floats uniform in [0, 1)."""
    return splitmix64(values, seed).astype(np.float64) / _U64_SPAN


class WeightedNodeHasher:
    """The random hash function ``h`` of Algorithms 1 and 2.

    Maps each domain element independently to one of ``nodes`` with
    probability proportional to ``weights``; the map is a pure function of
    ``(seed, element)`` so every compute node can evaluate it locally.

    Parameters
    ----------
    nodes:
        The candidate target nodes (e.g. the compute nodes of one
        partition block).
    weights:
        Non-negative weights, one per node; at least one must be positive.
        Algorithm 2 uses ``weights[v] = N_v``.
    seed:
        Stream seed; derive per-block seeds with
        :func:`repro.util.seeding.derive_seed`.
    """

    def __init__(
        self,
        nodes: Sequence[Hashable],
        weights: Sequence[float],
        seed: int,
    ) -> None:
        if len(nodes) != len(weights):
            raise ValueError(
                f"{len(nodes)} nodes but {len(weights)} weights"
            )
        if len(nodes) == 0:
            raise ValueError("need at least one candidate node")
        weight_array = np.asarray(weights, dtype=np.float64)
        if np.any(weight_array < 0):
            raise ValueError("weights must be non-negative")
        total = float(weight_array.sum())
        if total <= 0:
            raise ValueError("at least one weight must be positive")
        self._nodes = list(nodes)
        self._seed = int(seed)
        self._cumulative = np.cumsum(weight_array / total)
        # Guard against floating error: the last boundary must be exactly 1
        # so searchsorted never returns an out-of-range index.
        self._cumulative[-1] = 1.0
        # Identity of this hash *function* for the assignment cache: two
        # hashers agree on every input iff seed and boundaries agree.
        self._token = hashlib.blake2b(
            self._cumulative.tobytes() + str(self._seed).encode(),
            digest_size=16,
        ).digest()

    @property
    def nodes(self) -> list:
        """The candidate nodes, in the order used for probabilities."""
        return list(self._nodes)

    def _compute_indices(self, values: np.ndarray) -> np.ndarray:
        points = hash_to_unit(values, self._seed)
        return np.searchsorted(self._cumulative, points, side="right")

    def assign_indices(self, values: np.ndarray) -> np.ndarray:
        """Return the index (into ``nodes``) chosen for each value.

        Memoized on the values array's content: iterative protocols
        (hash-to-min supersteps, A/B benchmark repeats) route the same
        key set round after round, and a repeated assignment costs one
        digest pass instead of splitmix + ``searchsorted``.  Cached
        results are read-only; a hit returns bit-identical indices by
        construction.
        """
        values = np.asarray(values)
        fingerprint = ASSIGN_CACHE.fingerprint(values)
        if fingerprint is None:
            return self._compute_indices(values)
        key = b"assign:" + self._token + fingerprint
        hit = ASSIGN_CACHE.get(key)
        if hit is not None:
            return hit
        targets = self._compute_indices(values)
        targets.setflags(write=False)
        ASSIGN_CACHE.put(key, targets, targets.nbytes)
        return targets

    def assign_slices(
        self, values: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Fused hash + group kernel: one cache entry, zero re-sorting.

        Returns ``(targets, order, owners, starts, ends)`` — the
        assignment of :meth:`assign_indices` together with its
        :func:`~repro.util.grouping.group_slices` grouping: permuting a
        parallel array by ``order`` makes the elements owned by node
        index ``owners[k]`` the contiguous slice ``[starts[k],
        ends[k])``.  Protocols that both scatter by the assignment and
        iterate its per-owner groups (the hash-to-min return leg) get
        hash, searchsorted, and argsort from one memo lookup on
        repeated inputs.
        """
        values = np.asarray(values)
        fingerprint = ASSIGN_CACHE.fingerprint(values)
        if fingerprint is None:
            targets = self._compute_indices(values)
            return (targets, *group_slices(targets))
        key = b"fused:" + self._token + fingerprint
        hit = ASSIGN_CACHE.get(key)
        if hit is not None:
            return hit
        targets = self.assign_indices(values)
        grouped = group_slices(targets)
        result = (targets, *grouped)
        for part in result:
            part.setflags(write=False)
        ASSIGN_CACHE.put(
            key, result, sum(part.nbytes for part in result)
        )
        return result

    def assign(self, values: np.ndarray) -> list:
        """Return the node chosen for each value."""
        return [self._nodes[i] for i in self.assign_indices(values)]

    def probability(self, node: Hashable) -> float:
        """The marginal probability that an element is routed to ``node``."""
        index = self._nodes.index(node)
        previous = self._cumulative[index - 1] if index > 0 else 0.0
        return float(self._cumulative[index] - previous)

"""Integer helpers used by the power-of-two packing machinery (Section 4).

The cartesian-product algorithms size every square as a power of two so
that four equal squares always merge into the next size up (Lemma 5).
These helpers keep that arithmetic exact: floats are only accepted where
the paper itself produces a real number (``w_v * L``), and the round-up to
a power of two is performed with integer comparisons so no precision is
lost near binade boundaries.
"""

from __future__ import annotations

import math


def ceil_div(numerator: int, denominator: int) -> int:
    """Integer ceiling division for non-negative operands."""
    if denominator <= 0:
        raise ValueError(f"denominator must be positive, got {denominator}")
    if numerator < 0:
        raise ValueError(f"numerator must be non-negative, got {numerator}")
    return -(-numerator // denominator)


def is_power_of_two(value: int) -> bool:
    """Return True iff ``value`` is a positive integral power of two."""
    return value > 0 and (value & (value - 1)) == 0


def ilog2(value: int) -> int:
    """Exact base-2 logarithm of a power of two."""
    if not is_power_of_two(value):
        raise ValueError(f"{value} is not a positive power of two")
    return value.bit_length() - 1


def next_power_of_two(value: int) -> int:
    """Smallest power of two that is >= ``value`` (``value`` >= 1)."""
    if value < 1:
        raise ValueError(f"value must be >= 1, got {value}")
    return 1 << (value - 1).bit_length()


def next_power_of_two_at_least(value: float) -> int:
    """Smallest power of two >= a non-negative real ``value``.

    This implements the paper's ``arg min_k {2^k >= x}`` (equation (1) and
    Algorithm 5 line 11) for real-valued ``x``.  Values <= 1 map to 1: the
    paper's squares have positive integral dimensions, and a square of
    dimension 1 already holds a single grid cell.

    Floating-point values immediately below a power of two are handled by
    verifying the candidate with a direct comparison instead of trusting
    ``math.log2`` rounding.
    """
    if math.isnan(value):
        raise ValueError("value must not be NaN")
    if math.isinf(value):
        raise ValueError("value must be finite")
    if value <= 1.0:
        return 1
    candidate = 1 << max(0, math.ceil(math.log2(value)) - 1)
    while candidate < value:
        candidate <<= 1
    return candidate

"""Single-pass grouping of parallel arrays by an integer index array.

Every shuffle in the package ends with the same structure: a values
array and a parallel array of small integer group ids (destination
indices, splitter intervals, multicast row ids).  The naive per-group
``values[ids == g]`` loop rescans the full array once per group —
``O(n * p)`` work for ``p`` groups — which is what used to dominate the
simulator's wall-clock.  Grouping with one stable ``argsort`` is
``O(n log n)`` total, after which each group is a contiguous slice
(original element order preserved within each group, because the sort
is stable).

Iterative workloads re-group the *same* index array round after round:
a hash-to-min superstep scatters a static candidate key set every
iteration, and an A/B benchmark replays one prepared round per repeat.
:func:`cached_group_slices` memoizes :func:`group_slices` behind a
:class:`ContentCache` — a thread-local, bounded, content-addressed
memo (blake2b over the array bytes), so a repeated grouping costs one
hash pass instead of an argsort, and a cache hit is exact: equal bytes
in, the identical (read-only) grouping out.
"""

from __future__ import annotations

import hashlib
import struct
import threading
import weakref
from collections import OrderedDict
from typing import Iterator, Sequence

import numpy as np


def _readonly(array: np.ndarray) -> np.ndarray:
    array.setflags(write=False)
    return array


class ContentCache(threading.local):
    """A bounded, thread-local memo keyed by array *content*.

    Keys are built from a blake2b digest over the array's bytes plus
    its dtype and shape (:meth:`fingerprint`), so a hit can only occur
    for byte-identical input — memoization never changes results, only
    skips recomputing them.  Entries are LRU-evicted by count and by
    total payload bytes; arrays below ``min_size`` skip the cache
    entirely (the digest would cost more than the kernel).  Being a
    ``threading.local`` subclass, each thread (and each forked worker)
    sees its own private store — no locks on the hot path.
    """

    def __init__(
        self,
        *,
        capacity: int = 32,
        min_size: int = 1024,
        max_bytes: int = 128 << 20,
    ) -> None:
        self.capacity = capacity
        self.min_size = min_size
        self.max_bytes = max_bytes
        self._entries: OrderedDict[bytes, tuple] = OrderedDict()
        self._nbytes: dict[bytes, int] = {}
        self._total_bytes = 0
        # identity fast path: fingerprints of *immutable* arrays, keyed
        # by object id and guarded by a weakref (a recycled id cannot
        # resolve to the original array)
        self._id_memo: dict[int, tuple] = {}
        self.hits = 0
        self.misses = 0

    @staticmethod
    def _is_immutable(array: np.ndarray) -> bool:
        """Whether ``array``'s bytes provably cannot change.

        True for non-writeable arrays that own their data or view
        another non-writeable ndarray; a read-only view of a writeable
        base (or of a foreign buffer) can still be mutated through the
        base, so it never takes the identity fast path.
        """
        if array.flags.writeable:
            return False
        base = array.base
        if base is None:
            return True
        base_flags = getattr(base, "flags", None)
        return base_flags is not None and not base_flags.writeable

    def fingerprint(self, array: np.ndarray) -> bytes | None:
        """Content digest of ``array``, or ``None`` when below the gate.

        Immutable arrays (the memoized kernels hand these out) are
        digested once per object: repeated fingerprints of the same
        object are an O(1) identity lookup, not a hash pass.
        """
        if array.size < self.min_size:
            return None
        immutable = self._is_immutable(array)
        if immutable:
            memo = self._id_memo.get(id(array))
            if memo is not None and memo[0]() is array:
                return memo[1]
        data = array if array.flags["C_CONTIGUOUS"] else (
            np.ascontiguousarray(array)
        )
        digest = hashlib.blake2b(data.data, digest_size=16)
        digest.update(f"{array.dtype.str}{array.shape}".encode())
        result = digest.digest()
        if immutable:
            if len(self._id_memo) >= 4 * self.capacity:
                self._id_memo.clear()
            self._id_memo[id(array)] = (weakref.ref(array), result)
        return result

    def get(self, key: bytes):
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: bytes, value, nbytes: int) -> None:
        if key in self._entries:
            return
        self._entries[key] = value
        self._nbytes[key] = nbytes
        self._total_bytes += nbytes
        while self._entries and (
            len(self._entries) > self.capacity
            or self._total_bytes > self.max_bytes
        ):
            evicted, _ = self._entries.popitem(last=False)
            self._total_bytes -= self._nbytes.pop(evicted)

    def clear(self) -> None:
        self._entries.clear()
        self._nbytes.clear()
        self._id_memo.clear()
        self._total_bytes = 0


def group_slices(
    indices: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Compute the grouping of ``indices`` with one stable argsort.

    Returns ``(order, unique_values, starts, ends)``: permuting any
    parallel array by ``order`` makes group ``k`` (the elements whose
    index equals ``unique_values[k]``) the contiguous slice
    ``[starts[k], ends[k])``, with original relative order preserved.
    """
    indices = np.asarray(indices)
    if indices.dtype.kind in "iu" and indices.itemsize > 2 and indices.size:
        # NumPy's stable sort is a radix sort for narrow integer types,
        # ~7x faster than the 64-bit merge sort; group ids here are node
        # or block counts, far below the int16 range.
        lo, hi = int(indices.min()), int(indices.max())
        if 0 <= lo and hi < 2**15:
            indices = indices.astype(np.int16)
    order = np.argsort(indices, kind="stable")
    sorted_indices = indices[order]
    if len(sorted_indices) == 0:
        empty = np.empty(0, dtype=np.intp)
        return order, sorted_indices, empty, empty
    boundaries = np.flatnonzero(np.diff(sorted_indices)) + 1
    starts = np.concatenate(([0], boundaries))
    ends = np.concatenate((boundaries, [len(sorted_indices)]))
    return order, sorted_indices[starts], starts, ends


#: Module cache behind :func:`cached_group_slices` (per thread/worker).
GROUP_CACHE = ContentCache()


def cached_group_slices(
    indices: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """:func:`group_slices`, memoized on the index array's content.

    Small arrays fall through to the plain kernel; larger ones are
    looked up by content digest, so re-grouping an identical index
    array (an iterative superstep, an A/B repeat) skips the argsort.
    Cached arrays are read-only — callers may fancy-index and iterate
    them, never write into them.
    """
    indices = np.asarray(indices)
    fingerprint = GROUP_CACHE.fingerprint(indices)
    if fingerprint is None:
        return group_slices(indices)
    key = b"group:" + fingerprint
    hit = GROUP_CACHE.get(key)
    if hit is not None:
        return hit
    result = tuple(_readonly(part) for part in group_slices(indices))
    GROUP_CACHE.put(key, result, sum(part.nbytes for part in result))
    return result


def _concat_parts(
    parts: Sequence[tuple[np.ndarray | None, int, int]]
) -> np.ndarray:
    """Materialize ``concat(ids + base, ...)`` in one output pass."""
    out = np.empty(sum(part[1] for part in parts), dtype=np.int64)
    position = 0
    for ids, length, base in parts:
        segment = out[position : position + length]
        if ids is None:
            segment[:] = base
        else:
            np.add(ids, base, out=segment, casting="unsafe")
        position += length
    return out


def concat_group_slices(
    parts: Sequence[tuple[np.ndarray | None, int, int]]
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Group a concatenated, base-shifted index stream, memoized by parts.

    ``parts`` is a sequence of ``(ids, length, base)`` triples: each
    contributes ``ids + base`` to the stream (``ids is None`` means a
    constant run of ``base``, ``length`` elements long — a single-group
    record).  The result equals ``group_slices`` of the materialized
    stream, but the memo key folds the *parts'* content fingerprints
    and bases rather than digesting the concatenation — so a repeated
    round (an iterative superstep, an A/B benchmark repeat) hits
    without materializing the stream at all, and the identity fast
    path makes the per-part fingerprints O(1) for the immutable arrays
    the memoized assignment kernels hand out.  Any part below the
    digest gate falls back to grouping the materialized stream.
    """
    if len(parts) == 1 and parts[0][0] is not None and parts[0][2] == 0:
        return cached_group_slices(parts[0][0])
    hasher = hashlib.blake2b(digest_size=16)
    for ids, length, base in parts:
        if ids is None:
            hasher.update(b"F" + struct.pack("<qq", base, length))
        else:
            fingerprint = GROUP_CACHE.fingerprint(ids)
            if fingerprint is None:
                return cached_group_slices(_concat_parts(parts))
            hasher.update(b"P" + fingerprint + struct.pack("<q", base))
    key = b"parts:" + hasher.digest()
    hit = GROUP_CACHE.get(key)
    if hit is not None:
        return hit
    result = tuple(
        _readonly(part) for part in group_slices(_concat_parts(parts))
    )
    GROUP_CACHE.put(key, result, sum(part.nbytes for part in result))
    return result


def iter_groups(
    indices: np.ndarray, values: np.ndarray
) -> Iterator[tuple[int, np.ndarray]]:
    """Yield ``(index_value, chunk)`` per distinct value of ``indices``.

    ``chunk`` is the subsequence of ``values`` whose parallel index
    equals ``index_value``, in original order — exactly what the
    per-group boolean mask ``values[indices == index_value]`` returns,
    but computed with one argsort for all groups together.
    """
    values = np.asarray(values)
    order, uniques, starts, ends = group_slices(indices)
    if not len(uniques):
        return
    sorted_values = values[order]
    for value, start, end in zip(
        uniques.tolist(), starts.tolist(), ends.tolist()
    ):
        yield value, sorted_values[start:end]

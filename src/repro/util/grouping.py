"""Single-pass grouping of parallel arrays by an integer index array.

Every shuffle in the package ends with the same structure: a values
array and a parallel array of small integer group ids (destination
indices, splitter intervals, multicast row ids).  The naive per-group
``values[ids == g]`` loop rescans the full array once per group —
``O(n * p)`` work for ``p`` groups — which is what used to dominate the
simulator's wall-clock.  Grouping with one stable ``argsort`` is
``O(n log n)`` total, after which each group is a contiguous slice
(original element order preserved within each group, because the sort
is stable).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np


def group_slices(
    indices: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Compute the grouping of ``indices`` with one stable argsort.

    Returns ``(order, unique_values, starts, ends)``: permuting any
    parallel array by ``order`` makes group ``k`` (the elements whose
    index equals ``unique_values[k]``) the contiguous slice
    ``[starts[k], ends[k])``, with original relative order preserved.
    """
    indices = np.asarray(indices)
    if indices.dtype.kind in "iu" and indices.itemsize > 2 and indices.size:
        # NumPy's stable sort is a radix sort for narrow integer types,
        # ~7x faster than the 64-bit merge sort; group ids here are node
        # or block counts, far below the int16 range.
        lo, hi = int(indices.min()), int(indices.max())
        if 0 <= lo and hi < 2**15:
            indices = indices.astype(np.int16)
    order = np.argsort(indices, kind="stable")
    sorted_indices = indices[order]
    if len(sorted_indices) == 0:
        empty = np.empty(0, dtype=np.intp)
        return order, sorted_indices, empty, empty
    boundaries = np.flatnonzero(np.diff(sorted_indices)) + 1
    starts = np.concatenate(([0], boundaries))
    ends = np.concatenate((boundaries, [len(sorted_indices)]))
    return order, sorted_indices[starts], starts, ends


def iter_groups(
    indices: np.ndarray, values: np.ndarray
) -> Iterator[tuple[int, np.ndarray]]:
    """Yield ``(index_value, chunk)`` per distinct value of ``indices``.

    ``chunk`` is the subsequence of ``values`` whose parallel index
    equals ``index_value``, in original order — exactly what the
    per-group boolean mask ``values[indices == index_value]`` returns,
    but computed with one argsort for all groups together.
    """
    values = np.asarray(values)
    order, uniques, starts, ends = group_slices(indices)
    if not len(uniques):
        return
    sorted_values = values[order]
    for value, start, end in zip(
        uniques.tolist(), starts.tolist(), ends.tolist()
    ):
        yield value, sorted_values[start:end]

"""Minimal plain-text table rendering for reports and benchmark output."""

from __future__ import annotations

from typing import Iterable, Sequence


def format_value(value) -> str:
    """Human-friendly scalar formatting (floats trimmed, None blank)."""
    if value is None:
        return ""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == float("inf"):
            return "inf"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.3g}"
    return str(value)


def render_table(
    headers: Sequence[str], rows: Iterable[Sequence], *, title: str | None = None
) -> str:
    """Render rows as a fixed-width text table with a rule under headers."""
    materialized = [[format_value(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths)).rstrip()

    parts = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append("  ".join("-" * width for width in widths))
    parts.extend(line(row) for row in materialized)
    return "\n".join(parts)

"""Small shared utilities: integer math, deterministic hashing, seeding."""

from repro.util.intmath import (
    ceil_div,
    ilog2,
    is_power_of_two,
    next_power_of_two,
    next_power_of_two_at_least,
)
from repro.util.hashing import (
    hash_to_unit,
    splitmix64,
    WeightedNodeHasher,
)
from repro.util.seeding import derive_seed

__all__ = [
    "ceil_div",
    "ilog2",
    "is_power_of_two",
    "next_power_of_two",
    "next_power_of_two_at_least",
    "hash_to_unit",
    "splitmix64",
    "WeightedNodeHasher",
    "derive_seed",
]

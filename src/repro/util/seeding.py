"""Hierarchical seed derivation.

Randomized protocols (Algorithms 1, 2 and weighted TeraSort) need several
independent random streams — one hash function per partition block, one
sampling stream per node — that are reproducible from a single user seed.
``derive_seed`` derives a 64-bit child seed from a parent seed and an
arbitrary tuple of tokens using BLAKE2b, which is stable across processes
and Python versions (unlike the builtin ``hash``).
"""

from __future__ import annotations

import hashlib
from typing import Hashable

import numpy as np


def derive_seed(seed: int, *tokens: Hashable) -> int:
    """Derive a reproducible 64-bit seed from ``seed`` and ``tokens``."""
    hasher = hashlib.blake2b(digest_size=8)
    hasher.update(str(int(seed)).encode("utf-8"))
    for token in tokens:
        hasher.update(b"\x1f")  # unit separator: ("ab","c") != ("a","bc")
        hasher.update(repr(token).encode("utf-8"))
    return int.from_bytes(hasher.digest(), "little")


def rank_seed(seed: int, rank: int) -> int:
    """The 64-bit seed of worker ``rank``'s independent stream.

    Derivation is pure BLAKE2b over the run seed and the rank, so the
    value is identical no matter which process computes it or which
    ``multiprocessing`` start method (``fork``/``spawn``) created that
    process — spawned workers re-derive it from ``(seed, rank)`` alone
    rather than inheriting interpreter state.
    """
    if rank < 0:
        raise ValueError(f"worker rank must be >= 0, got {rank}")
    return derive_seed(seed, "worker-rank", int(rank))


def rank_generator(seed: int, rank: int) -> np.random.Generator:
    """An independent, reproducible numpy Generator for worker ``rank``.

    Each rank gets its own PCG64 stream keyed by :func:`rank_seed`;
    distinct ranks land on cryptographically separated keys, so streams
    are disjoint for all practical purposes, and the same ``(seed,
    rank)`` pair always reproduces the same stream.
    """
    return np.random.Generator(
        np.random.PCG64(np.random.SeedSequence(rank_seed(seed, rank)))
    )

"""Hierarchical seed derivation.

Randomized protocols (Algorithms 1, 2 and weighted TeraSort) need several
independent random streams — one hash function per partition block, one
sampling stream per node — that are reproducible from a single user seed.
``derive_seed`` derives a 64-bit child seed from a parent seed and an
arbitrary tuple of tokens using BLAKE2b, which is stable across processes
and Python versions (unlike the builtin ``hash``).
"""

from __future__ import annotations

import hashlib
from typing import Hashable


def derive_seed(seed: int, *tokens: Hashable) -> int:
    """Derive a reproducible 64-bit seed from ``seed`` and ``tokens``."""
    hasher = hashlib.blake2b(digest_size=8)
    hasher.update(str(int(seed)).encode("utf-8"))
    for token in tokens:
        hasher.update(b"\x1f")  # unit separator: ("ab","c") != ("a","bc")
        hasher.update(repr(token).encode("utf-8"))
    return int.from_bytes(hasher.digest(), "little")

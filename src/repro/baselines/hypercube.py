"""Classic (unweighted) HyperCube cartesian product [1].

The output grid is cut into a ``p1 x p2`` lattice of equal rectangles,
one per participating node, with ``p1 * p2`` the largest such product
not exceeding ``|V_C|`` — every node receives ``|R|/p1 + |S|/p2``
elements regardless of its link bandwidth.  This is the algorithm the
weighted HyperCube (Section 4.2) generalizes; the Figure 4 benchmark
shows the weighted variant winning exactly when bandwidths diverge.
"""

from __future__ import annotations

import math

from repro.core.cartesian.grid import GridLabeling
from repro.core.cartesian.packing import RectTile, coverage_report
from repro.core.cartesian.routing import (
    R_RECV,
    S_RECV,
    collect_outputs,
    route_axis,
)
from repro.data.distribution import Distribution
from repro.errors import ProtocolError
from repro.registry import register_protocol
from repro.sim.cluster import make_cluster
from repro.sim.protocol import ProtocolResult
from repro.topology.tree import TreeTopology
from repro.util.intmath import ceil_div


def _lattice_shape(num_nodes: int, r_total: int, s_total: int) -> tuple[int, int]:
    """Pick ``p1 x p2 <= num_nodes`` minimizing ``|R|/p1 + |S|/p2``."""
    best: tuple[float, int, int] | None = None
    for p1 in range(1, num_nodes + 1):
        p2 = num_nodes // p1
        if p2 < 1:
            break
        cost = r_total / p1 + s_total / p2
        if best is None or cost < best[0]:
            best = (cost, p1, p2)
    assert best is not None
    return best[1], best[2]


@register_protocol(
    task="cartesian-product",
    name="classic-hypercube",
    kind="baseline",
    description="Equal-rectangles HyperCube, topology-agnostic",
)
def classic_hypercube_cartesian_product(
    tree: TreeTopology,
    distribution: Distribution,
    *,
    r_tag: str = "R",
    s_tag: str = "S",
    materialize: bool = False,
    bits_per_element: int = 64,
) -> ProtocolResult:
    """Run the equal-rectangles HyperCube on any tree."""
    distribution.validate_for(tree)
    r_total = distribution.total(r_tag)
    s_total = distribution.total(s_tag)
    cluster = make_cluster(tree, distribution, bits_per_element=bits_per_element)
    computes = cluster.compute_order
    if r_total == 0 or s_total == 0:
        outputs = {v: {"num_pairs": 0} for v in computes}
        return ProtocolResult.from_ledger(
            "classic-hypercube", cluster.ledger, outputs=outputs
        )

    p1, p2 = _lattice_shape(len(computes), r_total, s_total)
    col_width = ceil_div(r_total, p1)
    row_height = ceil_div(s_total, p2)
    tiles: dict = {v: None for v in computes}
    for index in range(p1 * p2):
        column, row = index % p1, index // p1
        tiles[computes[index]] = RectTile(
            x0=column * col_width,
            y0=row * row_height,
            width=col_width,
            height=row_height,
        )
    coverage = coverage_report(tiles, r_total, s_total)

    labeling = GridLabeling.from_distribution(
        tree, distribution, r_tag=r_tag, s_tag=s_tag
    )
    with cluster.round() as ctx:
        route_axis(
            ctx, cluster, labeling, tiles,
            axis="r", source_tag=r_tag, recv_tag=R_RECV,
        )
        route_axis(
            ctx, cluster, labeling, tiles,
            axis="s", source_tag=s_tag, recv_tag=S_RECV,
        )
    outputs = collect_outputs(cluster, labeling, tiles, materialize=materialize)
    return ProtocolResult.from_ledger(
        "classic-hypercube",
        cluster.ledger,
        outputs=outputs,
        meta={"lattice": (p1, p2), "coverage": coverage},
    )

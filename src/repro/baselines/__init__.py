"""Topology-agnostic baselines the paper's algorithms are compared against.

These are the strategies a classic MPC system would use — uniform hash
partitioning for joins [7], the unweighted HyperCube for cartesian
products [1], TeraSort with one splitter interval per node [41], and the
trivial gather-everything strategy.  On the uniform MPC star they match
the topology-aware algorithms; on heterogeneous trees and skewed
placements the benchmarks show where and by how much they lose.
"""

from repro.baselines.uniform_hash import (
    uniform_hash_equijoin,
    uniform_hash_groupby,
    uniform_hash_intersect,
)
from repro.baselines.hypercube import classic_hypercube_cartesian_product
from repro.baselines.gather import (
    gather_cartesian_product,
    gather_equijoin,
    gather_groupby,
    gather_intersect,
    gather_sort,
)
from repro.core.sorting.terasort import terasort as classic_terasort

__all__ = [
    "uniform_hash_intersect",
    "uniform_hash_equijoin",
    "uniform_hash_groupby",
    "gather_equijoin",
    "gather_groupby",
    "classic_hypercube_cartesian_product",
    "classic_terasort",
    "gather_intersect",
    "gather_sort",
    "gather_cartesian_product",
]

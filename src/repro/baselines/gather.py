"""Gather-everything-to-one-node, for all three tasks.

The simplest correct strategy: one round, one target.  It is provably
optimal whenever some node holds more than half the data (Lemma 7 and
the wTS shortcut) and serves as the sanity baseline everywhere else.
The default target maximizes the data already in place, which minimizes
the gathered volume.
"""

from __future__ import annotations

import numpy as np

from repro.core.cartesian.routing import gather_all_pairs
from repro.data.columns import KeyValueArrays
from repro.data.distribution import Distribution
from repro.queries.aggregate import combine_per_key
from repro.queries.join import local_join
from repro.queries.tuples import DEFAULT_PAYLOAD_BITS, decode_tuples
from repro.registry import register_protocol
from repro.sim.cluster import make_cluster
from repro.sim.protocol import ProtocolResult
from repro.topology.tree import NodeId, TreeTopology, node_sort_key

_RECV = "gather.recv"


def _pick_target(
    tree: TreeTopology, distribution: Distribution, tags: tuple[str, ...]
) -> NodeId:
    computes = sorted(tree.compute_nodes, key=node_sort_key)
    return max(
        computes, key=lambda v: sum(distribution.size(v, t) for t in tags)
    )


@register_protocol(
    task="set-intersection",
    name="gather",
    kind="baseline",
    description="Ship both relations to one node; intersect there",
)
def gather_intersect(
    tree: TreeTopology,
    distribution: Distribution,
    *,
    target: NodeId | None = None,
    r_tag: str = "R",
    s_tag: str = "S",
    bits_per_element: int = 64,
) -> ProtocolResult:
    """Ship both relations to one node; intersect there."""
    distribution.validate_for(tree)
    if target is None:
        target = _pick_target(tree, distribution, (r_tag, s_tag))
    cluster = make_cluster(tree, distribution, bits_per_element=bits_per_element)
    with cluster.round() as ctx:
        for node in cluster.compute_order:
            if node == target:
                continue
            for tag in (r_tag, s_tag):
                local = cluster.local(node, tag)
                if len(local):
                    ctx.send(node, target, local, tag=f"{_RECV}.{tag}")
    r_all = np.concatenate(
        [cluster.local(target, r_tag), cluster.local(target, f"{_RECV}.{r_tag}")]
    )
    s_all = np.concatenate(
        [cluster.local(target, s_tag), cluster.local(target, f"{_RECV}.{s_tag}")]
    )
    outputs = {
        v: np.empty(0, np.int64) for v in tree.compute_nodes
    }
    outputs[target] = np.intersect1d(r_all, s_all)
    return ProtocolResult.from_ledger(
        "gather-intersect", cluster.ledger, outputs=outputs,
        meta={"target": target},
    )


@register_protocol(
    task="sorting",
    name="gather",
    kind="baseline",
    description="Ship everything to one node; sort there",
)
def gather_sort(
    tree: TreeTopology,
    distribution: Distribution,
    *,
    target: NodeId | None = None,
    tag: str = "R",
    bits_per_element: int = 64,
) -> ProtocolResult:
    """Ship everything to one node; sort there.

    The target alone holding all data is a valid ordering for any
    traversal, so ``meta["order"]`` reports the tree's canonical order.
    """
    distribution.validate_for(tree)
    if target is None:
        target = _pick_target(tree, distribution, (tag,))
    cluster = make_cluster(tree, distribution, bits_per_element=bits_per_element)
    with cluster.round() as ctx:
        for node in cluster.compute_order:
            if node == target:
                continue
            local = cluster.local(node, tag)
            if len(local):
                ctx.send(node, target, local, tag=_RECV)
    merged = np.sort(
        np.concatenate([cluster.local(target, tag), cluster.local(target, _RECV)])
    )
    outputs = {v: np.empty(0, np.int64) for v in tree.compute_nodes}
    outputs[target] = merged
    return ProtocolResult.from_ledger(
        "gather-sort",
        cluster.ledger,
        outputs=outputs,
        meta={"target": target, "order": tree.left_to_right_compute_order()},
    )


@register_protocol(
    task="cartesian-product",
    name="gather",
    kind="baseline",
    description="Ship both relations to one node; enumerate pairs there",
)
def gather_cartesian_product(
    tree: TreeTopology,
    distribution: Distribution,
    *,
    target: NodeId | None = None,
    r_tag: str = "R",
    s_tag: str = "S",
    materialize: bool = False,
    bits_per_element: int = 64,
) -> ProtocolResult:
    """Ship both relations to one node; enumerate all pairs there."""
    distribution.validate_for(tree)
    if target is None:
        target = _pick_target(tree, distribution, (r_tag, s_tag))
    cluster = make_cluster(tree, distribution, bits_per_element=bits_per_element)
    outputs = gather_all_pairs(
        cluster, target, r_tag=r_tag, s_tag=s_tag, materialize=materialize
    )
    return ProtocolResult.from_ledger(
        "gather-cartesian", cluster.ledger, outputs=outputs,
        meta={"target": target},
    )


@register_protocol(
    task="equijoin",
    name="gather",
    kind="baseline",
    description="Ship both relations to one node; join there",
)
def gather_equijoin(
    tree: TreeTopology,
    distribution: Distribution,
    *,
    target: NodeId | None = None,
    r_tag: str = "R",
    s_tag: str = "S",
    payload_bits: int = DEFAULT_PAYLOAD_BITS,
    materialize: bool = False,
    bits_per_element: int = 64,
) -> ProtocolResult:
    """Ship both encoded relations to one node; join there."""
    distribution.validate_for(tree)
    if target is None:
        target = _pick_target(tree, distribution, (r_tag, s_tag))
    cluster = make_cluster(tree, distribution, bits_per_element=bits_per_element)
    with cluster.round() as ctx:
        for node in cluster.compute_order:
            if node == target:
                continue
            for tag in (r_tag, s_tag):
                local = cluster.local(node, tag)
                if len(local):
                    ctx.send(node, target, local, tag=f"{_RECV}.{tag}")
    r_all = np.concatenate(
        [cluster.local(target, r_tag), cluster.local(target, f"{_RECV}.{r_tag}")]
    )
    s_all = np.concatenate(
        [cluster.local(target, s_tag), cluster.local(target, f"{_RECV}.{s_tag}")]
    )
    empty = {"num_pairs": 0, "num_keys": 0}
    if materialize:
        empty["pairs"] = np.empty((0, 3), np.int64)
    outputs = {v: dict(empty) for v in tree.compute_nodes}
    outputs[target] = local_join(
        r_all, s_all, payload_bits=payload_bits, materialize=materialize
    )
    return ProtocolResult.from_ledger(
        "gather-equijoin",
        cluster.ledger,
        outputs=outputs,
        meta={"target": target, "payload_bits": payload_bits},
    )


@register_protocol(
    task="groupby-aggregate",
    name="gather",
    kind="baseline",
    description="Ship all tuples to one node; aggregate there",
)
def gather_groupby(
    tree: TreeTopology,
    distribution: Distribution,
    *,
    op: str = "sum",
    target: NodeId | None = None,
    tag: str = "R",
    payload_bits: int = DEFAULT_PAYLOAD_BITS,
    bits_per_element: int = 64,
) -> ProtocolResult:
    """Ship every tuple to one node; aggregate per key there.

    No combiner: the point of the baseline is the cost of centralizing
    raw data, which the pre-aggregated tree protocol avoids.
    """
    distribution.validate_for(tree)
    if target is None:
        target = _pick_target(tree, distribution, (tag,))
    cluster = make_cluster(tree, distribution, bits_per_element=bits_per_element)
    with cluster.round() as ctx:
        for node in cluster.compute_order:
            if node == target:
                continue
            local = cluster.local(node, tag)
            if len(local):
                ctx.send(node, target, local, tag=_RECV)
    gathered = np.concatenate(
        [cluster.local(target, tag), cluster.local(target, _RECV)]
    )
    keys, values = decode_tuples(gathered, payload_bits=payload_bits)
    final_keys, final_values = combine_per_key(keys, values, op)
    outputs = {v: KeyValueArrays.empty() for v in tree.compute_nodes}
    outputs[target] = KeyValueArrays(final_keys, final_values)
    return ProtocolResult.from_ledger(
        "gather-groupby",
        cluster.ledger,
        outputs=outputs,
        meta={"target": target, "op": op, "payload_bits": payload_bits},
    )

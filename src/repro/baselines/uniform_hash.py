"""Uniform-hash intersection: the classic MPC distributed hash join.

Every element of both relations is hashed uniformly at random across all
compute nodes, ignoring topology, bandwidth, and placement — the strategy
every MPC-model algorithm builds on [7, 29].  Single round; on a uniform
star it matches TreeIntersect, but a slow or data-light node receives
``N / |V_C|`` elements regardless of its link, which the benchmarks show
losing by the bandwidth/skew spread.
"""

from __future__ import annotations

import numpy as np

from repro.data.distribution import Distribution
from repro.registry import register_protocol
from repro.sim.cluster import Cluster
from repro.sim.protocol import ProtocolResult
from repro.topology.tree import TreeTopology, node_sort_key
from repro.util.hashing import WeightedNodeHasher
from repro.util.seeding import derive_seed

_R_RECV = "intersect.R.recv"
_S_RECV = "intersect.S.recv"


@register_protocol(
    task="set-intersection",
    name="uniform-hash",
    kind="baseline",
    accepts_seed=True,
    description="Classic MPC uniform-hash join, topology-agnostic",
)
def uniform_hash_intersect(
    tree: TreeTopology,
    distribution: Distribution,
    *,
    seed: int = 0,
    r_tag: str = "R",
    s_tag: str = "S",
    bits_per_element: int = 64,
) -> ProtocolResult:
    """Hash-join both relations uniformly over all compute nodes."""
    distribution.validate_for(tree)
    computes = sorted(tree.compute_nodes, key=node_sort_key)
    hasher = WeightedNodeHasher(
        computes, [1.0] * len(computes), derive_seed(seed, "uniform-hash")
    )
    cluster = Cluster(tree, distribution, bits_per_element=bits_per_element)
    with cluster.round() as ctx:
        for node in computes:
            for tag, recv in ((r_tag, _R_RECV), (s_tag, _S_RECV)):
                local = cluster.local(node, tag)
                if not len(local):
                    continue
                targets = hasher.assign_indices(local)
                for index in np.unique(targets):
                    ctx.send(
                        node, computes[index], local[targets == index], tag=recv
                    )
    outputs = {
        v: np.intersect1d(cluster.local(v, _R_RECV), cluster.local(v, _S_RECV))
        for v in computes
    }
    return ProtocolResult.from_ledger(
        "uniform-hash-intersect", cluster.ledger, outputs=outputs
    )

"""Uniform-hash intersection: the classic MPC distributed hash join.

Every element of both relations is hashed uniformly at random across all
compute nodes, ignoring topology, bandwidth, and placement — the strategy
every MPC-model algorithm builds on [7, 29].  Single round; on a uniform
star it matches TreeIntersect, but a slow or data-light node receives
``N / |V_C|`` elements regardless of its link, which the benchmarks show
losing by the bandwidth/skew spread.
"""

from __future__ import annotations

import numpy as np

from repro.data.columns import KeyValueArrays
from repro.data.distribution import Distribution
from repro.queries.aggregate import combine_per_key
from repro.queries.join import local_join
from repro.queries.tuples import DEFAULT_PAYLOAD_BITS, decode_tuples, encode_tuples
from repro.registry import register_protocol
from repro.sim.cluster import make_cluster
from repro.sim.protocol import ProtocolResult
from repro.topology.tree import TreeTopology, node_sort_key
from repro.util.hashing import WeightedNodeHasher
from repro.util.seeding import derive_seed

_R_RECV = "intersect.R.recv"
_S_RECV = "intersect.S.recv"
_JOIN_R_RECV = "join.R.recv"
_JOIN_S_RECV = "join.S.recv"
_AGG_RECV = "aggregate.recv"


@register_protocol(
    task="set-intersection",
    name="uniform-hash",
    kind="baseline",
    accepts_seed=True,
    description="Classic MPC uniform-hash join, topology-agnostic",
)
def uniform_hash_intersect(
    tree: TreeTopology,
    distribution: Distribution,
    *,
    seed: int = 0,
    r_tag: str = "R",
    s_tag: str = "S",
    bits_per_element: int = 64,
) -> ProtocolResult:
    """Hash-join both relations uniformly over all compute nodes."""
    distribution.validate_for(tree)
    computes = sorted(tree.compute_nodes, key=node_sort_key)
    hasher = WeightedNodeHasher(
        computes, [1.0] * len(computes), derive_seed(seed, "uniform-hash")
    )
    cluster = make_cluster(tree, distribution, bits_per_element=bits_per_element)
    with cluster.round() as ctx:
        for node in computes:
            for tag, recv in ((r_tag, _R_RECV), (s_tag, _S_RECV)):
                local = cluster.local(node, tag)
                if not len(local):
                    continue
                ctx.exchange(
                    node, hasher.assign_indices(local), local, tag=recv
                )
    outputs = {
        v: np.intersect1d(cluster.local(v, _R_RECV), cluster.local(v, _S_RECV))
        for v in computes
    }
    return ProtocolResult.from_ledger(
        "uniform-hash-intersect", cluster.ledger, outputs=outputs
    )


@register_protocol(
    task="equijoin",
    name="uniform-hash",
    kind="baseline",
    accepts_seed=True,
    description="Classic MPC hash join on keys, topology-agnostic",
)
def uniform_hash_equijoin(
    tree: TreeTopology,
    distribution: Distribution,
    *,
    seed: int = 0,
    r_tag: str = "R",
    s_tag: str = "S",
    payload_bits: int = DEFAULT_PAYLOAD_BITS,
    materialize: bool = False,
    bits_per_element: int = 64,
) -> ProtocolResult:
    """Hash both relations uniformly by key; join co-located fragments.

    The MPC-model strategy: every compute node receives ``1/|V_C|`` of
    each relation regardless of its bandwidth or how much data it
    already holds, so on skewed topologies it loses to the
    distribution-aware tree protocol by the bandwidth spread.
    """
    distribution.validate_for(tree)
    computes = sorted(tree.compute_nodes, key=node_sort_key)
    hasher = WeightedNodeHasher(
        computes, [1.0] * len(computes), derive_seed(seed, "uniform-join")
    )
    cluster = make_cluster(tree, distribution, bits_per_element=bits_per_element)
    with cluster.round() as ctx:
        for node in computes:
            for tag, recv in ((r_tag, _JOIN_R_RECV), (s_tag, _JOIN_S_RECV)):
                local = cluster.local(node, tag)
                if not len(local):
                    continue
                keys = np.asarray(local, dtype=np.int64) >> payload_bits
                ctx.exchange(
                    node, hasher.assign_indices(keys), local, tag=recv
                )
    outputs = {
        v: local_join(
            cluster.local(v, _JOIN_R_RECV),
            cluster.local(v, _JOIN_S_RECV),
            payload_bits=payload_bits,
            materialize=materialize,
        )
        for v in computes
    }
    return ProtocolResult.from_ledger(
        "uniform-hash-equijoin",
        cluster.ledger,
        outputs=outputs,
        meta={"payload_bits": payload_bits},
    )


@register_protocol(
    task="groupby-aggregate",
    name="uniform-hash",
    kind="baseline",
    accepts_seed=True,
    description="Pre-aggregate locally, then hash partials uniformly",
)
def uniform_hash_groupby(
    tree: TreeTopology,
    distribution: Distribution,
    *,
    op: str = "sum",
    seed: int = 0,
    tag: str = "R",
    payload_bits: int = DEFAULT_PAYLOAD_BITS,
    pre_aggregate: bool = True,
    bits_per_element: int = 64,
) -> ProtocolResult:
    """Group-by with a uniform (topology-agnostic) partial shuffle.

    Same combiner as the tree protocol, but partials are hashed to a
    uniformly random owner instead of a placement-weighted one, so
    data-light nodes behind slow links own as many groups as anyone.
    """
    distribution.validate_for(tree)
    computes = sorted(tree.compute_nodes, key=node_sort_key)
    hasher = WeightedNodeHasher(
        computes, [1.0] * len(computes), derive_seed(seed, "uniform-groupby")
    )
    combine_op = op
    final_op = "sum" if op == "count" else op
    cluster = make_cluster(tree, distribution, bits_per_element=bits_per_element)
    with cluster.round() as ctx:
        for v in computes:
            local = cluster.local(v, tag)
            if not len(local):
                continue
            keys, values = decode_tuples(local, payload_bits=payload_bits)
            if pre_aggregate:
                keys, values = combine_per_key(keys, values, combine_op)
                payload = encode_tuples(keys, values, payload_bits=payload_bits)
            else:
                payload = local
            ctx.exchange(
                v, hasher.assign_indices(keys), payload, tag=_AGG_RECV
            )
    outputs: dict = {}
    for v in computes:
        keys, values = decode_tuples(
            cluster.local(v, _AGG_RECV), payload_bits=payload_bits
        )
        # Pre-aggregated `count` partials are counts, combined by `sum`;
        # raw tuples finalize under the original op.
        final_keys, final_values = combine_per_key(
            keys, values, final_op if pre_aggregate else op
        )
        outputs[v] = KeyValueArrays(final_keys, final_values)
    return ProtocolResult.from_ledger(
        "uniform-hash-groupby",
        cluster.ledger,
        outputs=outputs,
        meta={
            "op": op,
            "pre_aggregate": pre_aggregate,
            "payload_bits": payload_bits,
        },
    )

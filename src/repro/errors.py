"""Exception hierarchy for the topoMPC reproduction library.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the failing subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class TopologyError(ReproError):
    """The network topology is malformed for the requested operation.

    Examples: the edge set does not form a tree, a bandwidth is
    non-positive, a referenced node does not exist, or an algorithm that
    requires a symmetric topology was handed an asymmetric one.
    """


class DistributionError(ReproError):
    """The initial data placement is invalid.

    Examples: data placed on a non-compute node, duplicated elements in a
    relation that must be a set, or statistics that do not match the
    actual fragments.
    """


class ProtocolError(ReproError):
    """A protocol was invoked outside of its preconditions.

    Examples: running a star-only algorithm on a deep tree, sending from a
    node that does not hold the data it claims to send, or opening a round
    while another round is still in flight.
    """


class PackingError(ReproError):
    """Square/rectangle packing could not cover the output grid.

    Raised when the power-of-two packing machinery of Section 4 cannot
    produce a full cover of the ``|R| x |S|`` grid; under the paper's
    preconditions this indicates a bug, so it is an error rather than a
    silent fallback.
    """


class AnalysisError(ReproError):
    """An experiment/report aggregation was asked for inconsistent data."""


class PlanError(ReproError):
    """A logical query plan is malformed or cannot be compiled.

    Examples: a join condition referencing an unknown column, duplicate
    output column names, a schema too wide for the 64-bit element
    encoding, or a group-by whose key column exceeds the width the
    shuffle encoding supports.
    """


class AuditError(ReproError):
    """A cost-model invariant failed under strict auditing.

    Raised by :class:`repro.obs.audit.CostAuditor` when a finalized
    round's deliveries, charges, or reported cost contradict the
    Section 2 model (or a run's cost beats its own lower bound) and the
    auditor was installed with ``strict=True``.
    """

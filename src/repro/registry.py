"""Central protocol catalog: the single source of truth for dispatch.

The paper defines one cost model over which many protocols compete —
topology-aware algorithms, topology-agnostic baselines, and relational
operators all answer the same question ("what does this computation cost
on this tree?").  This module gives that competition a single seam:

* every protocol self-registers at import time via
  :func:`register_protocol`, declaring its task, name, kind and
  capabilities (does it take a seed?  does it require a star?), and
* every task self-registers via :func:`register_task`, declaring its
  default protocol, verifier and lower bound.

The engine (:mod:`repro.engine`) consults this catalog instead of
hard-coded per-task dispatch tables, so adding a protocol anywhere in
the package is one decorator — no runner edits, no CLI edits.

Example::

    from repro.registry import register_protocol

    @register_protocol(task="sorting", name="my-sort", accepts_seed=True)
    def my_sort(tree, distribution, *, seed=0, **kwargs):
        ...
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import AnalysisError


class RegistryError(AnalysisError):
    """The protocol/task catalog was queried or mutated inconsistently."""


@dataclass(frozen=True)
class ProtocolSpec:
    """One registered protocol: callable plus dispatch metadata.

    Attributes
    ----------
    task:
        Canonical task name the protocol solves (``"set-intersection"``,
        ``"cartesian-product"``, ``"sorting"``, ``"equijoin"``, ...).
    name:
        Short protocol name used for dispatch (``"tree"``, ``"wts"``,
        ``"classic-hypercube"``, ...), unique per task.
    func:
        The protocol callable ``func(tree, distribution, **kwargs)``
        returning a :class:`repro.sim.protocol.ProtocolResult`.
    kind:
        ``"algorithm"`` for the paper's topology-aware protocols,
        ``"baseline"`` for topology-agnostic comparisons.
    accepts_seed:
        Whether ``func`` takes a ``seed`` keyword; the engine routes the
        seed only to protocols that declare it.
    topology:
        ``None`` if the protocol runs on any symmetric tree, otherwise
        the topology family it requires (e.g. ``"star"``).
    backends:
        Execution backends the protocol is known to run on.  Protocols
        build their cluster through
        :func:`repro.sim.cluster.make_cluster`, so by default they run
        on every registered substrate; a protocol that hard-requires
        the simulator (e.g. it forces the legacy per-send exchange
        path) declares ``backends=("sim",)`` and the engine refuses to
        dispatch it elsewhere.
    description:
        One-line summary shown by ``python -m repro protocols``.
    """

    task: str
    name: str
    func: Callable
    kind: str = "algorithm"
    accepts_seed: bool = False
    topology: str | None = None
    backends: tuple = ("sim", "process")
    description: str = ""

    def call(self, tree, distribution, *, seed: int = 0, **kwargs):
        """Invoke the protocol, routing ``seed`` only if it is accepted."""
        if self.accepts_seed:
            kwargs["seed"] = seed
        return self.func(tree, distribution, **kwargs)


@dataclass(frozen=True)
class TaskSpec:
    """One registered task: verification + bound shared by its protocols.

    Attributes
    ----------
    name:
        Canonical task name.
    default_protocol:
        Protocol name used when the caller does not pick one.
    verifier:
        ``verifier(tree, distribution, result)`` raising
        :class:`repro.errors.ProtocolError` on a wrong answer, or ``None``
        if the task has no cheap independent check.
    lower_bound:
        ``lower_bound(tree, distribution)`` returning a
        :class:`repro.core.common.LowerBound`, or ``None`` when the task
        has no implemented bound (the report then records ``0.0``).
    lower_bound_opts:
        Names of protocol keyword arguments the bound also understands
        (e.g. ``payload_bits`` for keyed tasks).  The engine forwards
        these from the caller's ``**opts`` so the bound is evaluated on
        the same instance parameters the protocol ran with.
    bound_holds_per_instance:
        True when the registered bound is valid for *every* input
        instance (the graph bounds count concrete data that must
        move), so a run reporting less cost is an accounting bug the
        auditor must flag.  False (default) for the paper's worst-case
        communication bounds (Theorems 1–3), which instance-adaptive
        protocols legitimately beat on easy inputs — beating those is
        recorded as a metric, never as a violation.
    aliases:
        Alternative spellings accepted by :func:`get_task`
        (``"intersection"`` for ``"set-intersection"``, ...).
    """

    name: str
    default_protocol: str
    verifier: Callable | None = None
    lower_bound: Callable | None = None
    lower_bound_opts: tuple = field(default_factory=tuple)
    bound_holds_per_instance: bool = False
    aliases: tuple = field(default_factory=tuple)


_PROTOCOL_SPECS: dict[tuple[str, str], ProtocolSpec] = {}
_TASK_SPECS: dict[str, TaskSpec] = {}
_TASK_ALIASES: dict[str, str] = {}


def register_protocol(
    *,
    task: str,
    name: str,
    kind: str = "algorithm",
    accepts_seed: bool = False,
    topology: str | None = None,
    backends: tuple = ("sim", "process"),
    description: str | None = None,
) -> Callable:
    """Class the decorated callable into the catalog; returns it unchanged.

    Re-registering the same callable is a no-op that keeps the original
    spec (so a stray second decoration cannot silently rewrite
    metadata), and a module reload — a *new* function object with the
    same module and qualified name — replaces the spec.  Registering an
    unrelated callable under a taken name raises :class:`RegistryError`
    — name squatting is a bug, not a feature.
    """
    if kind not in ("algorithm", "baseline"):
        raise RegistryError(
            f"protocol kind must be 'algorithm' or 'baseline', got {kind!r}"
        )

    def decorate(func: Callable) -> Callable:
        key = (task, name)
        existing = _PROTOCOL_SPECS.get(key)
        if existing is not None:
            if existing.func is func:
                return func
            same_definition = (
                getattr(existing.func, "__module__", None)
                == getattr(func, "__module__", object())
                and getattr(existing.func, "__qualname__", None)
                == getattr(func, "__qualname__", object())
            )
            if not same_definition:
                raise RegistryError(
                    f"protocol {name!r} already registered for task {task!r}"
                )
        summary = description
        if summary is None:
            doc = (func.__doc__ or "").strip()
            summary = doc.splitlines()[0] if doc else ""
        _PROTOCOL_SPECS[key] = ProtocolSpec(
            task=task,
            name=name,
            func=func,
            kind=kind,
            accepts_seed=accepts_seed,
            topology=topology,
            backends=tuple(backends),
            description=summary,
        )
        return func

    return decorate


def register_task(
    name: str,
    *,
    default_protocol: str,
    verifier: Callable | None = None,
    lower_bound: Callable | None = None,
    lower_bound_opts: tuple = (),
    bound_holds_per_instance: bool = False,
    aliases: tuple = (),
) -> TaskSpec:
    """Register a task (idempotent: re-registration overwrites)."""
    spec = TaskSpec(
        name=name,
        default_protocol=default_protocol,
        verifier=verifier,
        lower_bound=lower_bound,
        lower_bound_opts=tuple(lower_bound_opts),
        bound_holds_per_instance=bound_holds_per_instance,
        aliases=tuple(aliases),
    )
    _TASK_SPECS[name] = spec
    for alias in spec.aliases:
        _TASK_ALIASES[alias] = name
    return spec


def get_task(task: str) -> TaskSpec:
    """Resolve a task name or alias to its :class:`TaskSpec`."""
    canonical = _TASK_ALIASES.get(task, task)
    try:
        return _TASK_SPECS[canonical]
    except KeyError:
        raise AnalysisError(
            f"unknown task {task!r}; choose from {sorted(_TASK_SPECS)}"
        ) from None


def tasks() -> list[str]:
    """Canonical names of all registered tasks, sorted."""
    return sorted(_TASK_SPECS)


def get_protocol(task: str, name: str) -> ProtocolSpec:
    """Look up one protocol; raises :class:`AnalysisError` if absent."""
    canonical = _TASK_ALIASES.get(task, task)
    try:
        return _PROTOCOL_SPECS[(canonical, name)]
    except KeyError:
        known = sorted(
            spec_name
            for (spec_task, spec_name) in _PROTOCOL_SPECS
            if spec_task == canonical
        )
        raise AnalysisError(
            f"unknown protocol {name!r} for task {canonical!r}; "
            f"choose from {known}"
        ) from None


def protocols_for(task: str) -> dict[str, ProtocolSpec]:
    """All specs registered for one task, keyed by protocol name."""
    canonical = _TASK_ALIASES.get(task, task)
    return {
        spec_name: spec
        for (spec_task, spec_name), spec in sorted(_PROTOCOL_SPECS.items())
        if spec_task == canonical
    }


def protocol_table(task: str) -> dict[str, Callable]:
    """Legacy view: ``{name: callable}`` for one task.

    Kept so code written against the pre-registry per-task dispatch
    dicts (``INTERSECTION_PROTOCOLS`` and friends) keeps working; new
    code should query :func:`protocols_for` for full metadata.
    """
    return {name: spec.func for name, spec in protocols_for(task).items()}


def list_protocols(task: str | None = None) -> list[ProtocolSpec]:
    """The catalog — every spec, or one task's specs, sorted by key."""
    if task is not None:
        return list(protocols_for(task).values())
    return [spec for _, spec in sorted(_PROTOCOL_SPECS.items())]

"""Session-scoped engine: pin a topology, serve many queries warm.

The module-level engine (:mod:`repro.engine`) is deliberately
stateless: each ``run()`` builds its topology artifacts, optimizes its
plan, and tears everything down.  That is the right contract for
experiments and exactly the wrong one for a serving deployment, where
thousands of queries arrive against *one* network (Hu, Koutris &
Blanas parameterize every cost and every algorithm by the topology, so
the topology is the natural unit of session state).

:class:`EngineSession` pins a topology — and optionally a default
distribution, catalog, and execution backend — and keeps three kinds of
state warm across queries:

* **topology artifacts** (:mod:`repro.topology.artifacts`): routing
  index, Steiner memos, compute orders, rank tables — built once at
  session construction, shared by every cluster any query builds;
* **compiled plans** (:class:`repro.plan.optimizer.PlanCache`): repeated
  query shapes skip the join-order and protocol search entirely;
* **the worker pool** (:func:`repro.parallel.pool.get_pool`): sessions
  on the process backend prestart their ranks, so the first query does
  not pay the fork-and-handshake cost.

Warm serving is *byte-identical* to cold one-shot runs: artifacts and
cached plans are pure functions of (topology, placement statistics),
so ``session.run(...)`` produces the same ledgers, the same storage
samples, and the same reports as ``repro.run(...)`` — the property the
serve benchmark (:mod:`repro.analysis.serve`) asserts on every entry.

Quick start::

    import repro

    tree = repro.fat_tree(4)
    with repro.EngineSession(tree) as session:
        for dist in workload:
            report = session.run("set-intersection", dist)
    print(session.summary())

``session.run_many`` adds the serve-layer traffic controls the
one-shot engine has no state for: a lower-bound admission gate
(``max_bound`` — reject queries whose *certified minimum* cost already
exceeds the budget, before spending anything on them) and
cheapest-bound-first scheduling (``schedule="cost"``) for concurrent
batches.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterable

from repro.engine import RunPlan, run_many as _engine_run_many
from repro.engine import run_plan as _engine_run_plan
from repro.engine import run_with_result as _engine_run_with_result
from repro.errors import AnalysisError
from repro.plan.optimizer import PlanCache
from repro.registry import get_task
from repro.topology.artifacts import ArtifactCache, use_artifacts
from repro.topology.tree import TreeTopology

SCHEDULES = ("cost", "fifo")


class EngineSession:
    """A warm, multi-tenant serving engine pinned to one topology.

    Parameters
    ----------
    tree:
        The session's network.  Artifacts for it are prebuilt eagerly
        (including the routing index, the heaviest piece), so the first
        query runs as warm as the thousandth.
    distribution:
        Optional default data placement; ``session.run(task)`` without
        an explicit distribution uses it.
    catalog:
        Optional default relation catalog for :meth:`run_plan`.
    backend, num_workers:
        Pinned execution substrate, forwarded to every run unless a
        call overrides it.  ``backend="process"`` prestarts the shared
        worker pool at construction.
    artifact_cache, plan_cache:
        Bring-your-own caches — several sessions on one box may share
        one :class:`~repro.topology.artifacts.ArtifactCache` (it is
        keyed by topology fingerprint, so tenants on different networks
        never collide).  Defaults to fresh private instances.

    Sessions are context managers for symmetry with the rest of the
    API; exiting is cheap (caches are garbage-collected, the worker
    pool is process-wide and stays warm for other sessions).
    """

    def __init__(
        self,
        tree: TreeTopology,
        *,
        distribution=None,
        catalog: dict | None = None,
        backend: str | None = None,
        num_workers: int | None = None,
        artifact_cache: ArtifactCache | None = None,
        plan_cache: PlanCache | None = None,
    ) -> None:
        if num_workers is not None and backend != "process":
            raise AnalysisError(
                "num_workers only applies to backend='process', "
                f"not {backend!r}"
            )
        self.tree = tree
        self._distribution = distribution
        self._catalog = catalog
        self._backend = backend
        self._num_workers = num_workers
        self.artifact_cache = (
            artifact_cache if artifact_cache is not None else ArtifactCache()
        )
        self.plan_cache = plan_cache if plan_cache is not None else PlanCache()
        self._closed = False
        self._runs = 0
        self._plan_runs = 0
        self._batches = 0
        self._rejected = 0
        # Prebuild the pinned topology's artifacts, routing index
        # included: session construction is the warm-up, queries are not.
        self._artifacts = self.artifact_cache.get(tree)
        self._artifacts.oracle.routing_index
        if backend == "process":
            from repro.parallel.pool import get_pool

            get_pool(num_workers if num_workers is not None else 2)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def __enter__(self) -> "EngineSession":
        self._check_open()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Mark the session closed; further runs raise.

        Deliberately does *not* shut down the worker pool: pools are
        process-wide and shared across sessions (and with
        ``run_many(executor="process")``), so a tenant leaving must not
        cold-start its neighbours.
        """
        self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise AnalysisError("session is closed")

    # ------------------------------------------------------------------ #
    # single runs (the engine API, with pinned defaults)
    # ------------------------------------------------------------------ #

    def _resolve_substrate(
        self, backend: str | None, num_workers: int | None
    ) -> tuple[str | None, int | None]:
        if backend is None:
            backend = self._backend
            if num_workers is None:
                num_workers = self._num_workers
        return backend, num_workers

    def run(self, task: str, distribution=None, **kwargs):
        """:func:`repro.run` against the session's warm state."""
        report, _ = self.run_with_result(task, distribution, **kwargs)
        return report

    def run_with_result(self, task: str, distribution=None, **kwargs):
        """:func:`repro.engine.run_with_result`, warm."""
        self._check_open()
        if distribution is None:
            distribution = self._distribution
        if distribution is None:
            raise AnalysisError(
                "no distribution: pass one to the call or pin one "
                "on the session"
            )
        backend, num_workers = self._resolve_substrate(
            kwargs.pop("backend", None), kwargs.pop("num_workers", None)
        )
        with use_artifacts(self.artifact_cache):
            out = _engine_run_with_result(
                task,
                self.tree,
                distribution,
                backend=backend,
                num_workers=num_workers,
                **kwargs,
            )
        self._runs += 1
        return out

    def run_plan(self, query, catalog: dict | None = None, **kwargs):
        """:func:`repro.run_plan` with the session's plan cache."""
        self._check_open()
        if catalog is None:
            catalog = self._catalog
        if catalog is None:
            raise AnalysisError(
                "no catalog: pass one to the call or pin one on the session"
            )
        kwargs.setdefault("plan_cache", self.plan_cache)
        with use_artifacts(self.artifact_cache):
            out = _engine_run_plan(query, self.tree, catalog, **kwargs)
        self._plan_runs += 1
        return out

    # ------------------------------------------------------------------ #
    # batched serving
    # ------------------------------------------------------------------ #

    def _normalize(self, plan) -> RunPlan:
        if isinstance(plan, dict):
            plan = dict(plan)
            plan.setdefault("tree", self.tree)
            if plan.get("distribution") is None:
                plan["distribution"] = self._distribution
            plan = RunPlan(**plan)
        if plan.distribution is None:
            raise AnalysisError(
                "no distribution: set one on the plan or pin one "
                "on the session"
            )
        if plan.backend is None:
            backend, num_workers = self._resolve_substrate(
                None, plan.num_workers
            )
            if backend is not None:
                # Never mutate a caller's plan object.
                plan = replace(
                    plan, backend=backend, num_workers=num_workers
                )
        return plan

    def _lower_bound(self, plan: RunPlan) -> float | None:
        task_spec = get_task(plan.task)
        if task_spec.lower_bound is None:
            return None
        bound_opts = {
            name: plan.opts[name]
            for name in task_spec.lower_bound_opts
            if name in plan.opts
        }
        return task_spec.lower_bound(
            plan.tree, plan.distribution, **bound_opts
        ).value

    def lower_bound(self, plan: RunPlan | dict) -> float | None:
        """The certified lower bound :meth:`run_many` admits against.

        ``None`` when the plan's task registers no bound (such plans
        are always admitted and scheduled last under ``"cost"``).
        Exposed so callers can pick an admission budget from the
        workload itself.
        """
        self._check_open()
        return self._lower_bound(self._normalize(plan))

    def run_many(
        self,
        plans: Iterable[RunPlan | dict],
        *,
        workers: int | None = None,
        executor: str = "thread",
        max_bound: float | None = None,
        schedule: str = "cost",
    ) -> list:
        """Serve a batch of plans against the session's warm state.

        Beyond :func:`repro.run_many` (whose ``workers`` / ``executor``
        semantics this inherits), the serve layer adds two traffic
        controls built on the paper's lower bounds:

        * ``max_bound`` — *admission control*.  Each plan's certified
          lower bound is computed up front (cheap: a closed-form
          formula over placement statistics); plans whose bound already
          exceeds the budget are rejected without running, and their
          result slot is ``None``.  The bound is a promise, not an
          estimate: an admitted query can cost more than its bound, but
          a rejected one could never have cost less.
        * ``schedule`` — ``"cost"`` (default) executes admitted plans
          cheapest-bound-first, the classic shortest-job-first
          approximation for batch latency; ``"fifo"`` preserves
          submission order.  Results always come back in submission
          order regardless.
        """
        self._check_open()
        if schedule not in SCHEDULES:
            raise AnalysisError(
                f"schedule must be one of {SCHEDULES}, got {schedule!r}"
            )
        normalized = [self._normalize(plan) for plan in plans]
        self._batches += 1
        admitted: list[int] = []
        bounds: dict[int, float] = {}
        results: list = [None] * len(normalized)
        for index, plan in enumerate(normalized):
            bound = (
                self._lower_bound(plan)
                if (max_bound is not None or schedule == "cost")
                else None
            )
            if bound is not None:
                bounds[index] = bound
            if max_bound is not None and bound is not None and bound > max_bound:
                self._rejected += 1
                continue
            admitted.append(index)
        if schedule == "cost":
            # Cheapest certified bound first; unbounded tasks last,
            # submission order breaking ties (sort is stable).
            admitted.sort(key=lambda i: bounds.get(i, float("inf")))
        with use_artifacts(self.artifact_cache):
            reports = _engine_run_many(
                [normalized[i] for i in admitted],
                workers=workers,
                executor=executor,
            )
        for position, report in zip(admitted, reports):
            results[position] = report
        self._runs += len(admitted)
        return results

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    def summary(self) -> dict:
        """Session state in one dict — for logs and the serve CLI."""
        return {
            "topology": self.tree.name,
            "fingerprint": self._artifacts.fingerprint,
            "backend": self._backend or "ambient",
            "num_workers": self._num_workers,
            "runs": self._runs,
            "plan_runs": self._plan_runs,
            "batches": self._batches,
            "rejected": self._rejected,
            "artifact_cache": self.artifact_cache.stats(),
            "plan_cache": self.plan_cache.stats(),
        }

"""Round-based cluster simulator implementing the Section 2 cost model.

The simulator *is* the measurement instrument of this reproduction: a
protocol executes synchronous rounds on a :class:`~repro.sim.cluster.Cluster`,
every transfer is routed along the tree (with Steiner deduplication for
multicasts), and the :class:`~repro.sim.ledger.CostLedger` accumulates per
directed edge the number of elements routed through it in each round.
The model cost of the run is then exactly the paper's

    cost(A) = sum_i max_e |Y_i(e)| / w_e.
"""

from repro.sim.ledger import CostLedger
from repro.sim.cluster import Cluster, RoundContext
from repro.sim.protocol import ProtocolResult

__all__ = ["CostLedger", "Cluster", "RoundContext", "ProtocolResult"]

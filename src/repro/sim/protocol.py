"""Common result type returned by every protocol in the library."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.sim.ledger import CostLedger


@dataclass
class ProtocolResult:
    """Outcome of one protocol execution on one instance.

    Attributes
    ----------
    protocol:
        Human-readable protocol name (e.g. ``"tree-intersect"``).
    rounds:
        Number of communication rounds executed.
    cost:
        Model cost in element units: ``sum_i max_e |Y_i(e)| / w_e``.
    cost_bits:
        The same cost in bits (elements x bits per element).
    ledger:
        The full per-round, per-edge accounting, for deeper analysis.
    outputs:
        Task-specific per-node outputs (e.g. the intersection elements a
        node emitted, the sorted run it holds, or its output-pair count).
    meta:
        Protocol-specific diagnostics (partition used, squares assigned,
        splitters chosen, strategy selected, ...).
    """

    protocol: str
    rounds: int
    cost: float
    cost_bits: float
    ledger: CostLedger
    outputs: dict = field(default_factory=dict)
    meta: dict = field(default_factory=dict)

    @classmethod
    def from_ledger(
        cls,
        protocol: str,
        ledger: CostLedger,
        *,
        outputs: dict | None = None,
        meta: dict | None = None,
    ) -> "ProtocolResult":
        return cls(
            protocol=protocol,
            rounds=ledger.num_rounds,
            cost=ledger.total_cost(),
            cost_bits=ledger.total_cost_bits(),
            ledger=ledger,
            outputs=outputs or {},
            meta=meta or {},
        )

    def describe(self) -> str:
        return (
            f"{self.protocol}: rounds={self.rounds}, "
            f"cost={self.cost:.3f} elements ({self.cost_bits:.0f} bits)"
        )

"""Columnar per-node storage with lazy compaction and read-only views.

Before this module, :class:`~repro.sim.cluster.Cluster` held storage as
``dict[node][tag] -> list[ndarray]`` chunk lists and every
``local()`` call paid a fresh ``np.concatenate`` — O(total) per *read*,
on a path protocols read far more often than they write (uniform-hash
reads each tag once per round; hash-to-min reads its candidates every
superstep).  :class:`ColumnarStore` inverts that cost:

* **appends are O(1)** — a delivered chunk is referenced, never copied;
* **compaction is lazy and cached** — the first read of a multi-chunk
  column concatenates once, replaces the chunk list with the compacted
  array, and every subsequent read returns the same cached array until
  the next append invalidates it;
* **reads are zero-copy and read-only** — ``view()`` returns a
  ``writeable=False`` view, so a single-chunk column can be served as a
  direct alias of the delivered chunk without the historical
  silent-corruption hazard (a protocol mutating the return value now
  raises instead of rewriting storage);
* **sizes are O(1)** — column lengths are maintained incrementally, so
  the auditor's per-round conservation snapshot costs a dict walk, not
  a chunk walk.

Each multi-chunk concatenation is counted on the installed metrics
registry as ``repro_storage_compactions_total{tag=...}``.  The count is
backend-agnostic by the same argument as the other round families:
unicast delivery lands exactly one chunk per ``(dst, tag)`` per round,
multicast delivery one shared slice view per ``(group, member)`` — and
both shapes are identical across substrates, because the process
backend finalizes its streams through the same master-side delivery
code — while protocols issue the same reads on either substrate, so sim
and process snapshots of the same protocol agree (the cross-process
metrics tests pin this down).
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.obs.metrics import get_registry

#: Shared zero-length read-only column served for absent (node, tag)s.
_EMPTY = np.empty(0, np.int64)
_EMPTY.setflags(write=False)


def _readonly(array: np.ndarray) -> np.ndarray:
    """A ``writeable=False`` view of ``array`` (the array is untouched)."""
    view = array.view()
    view.setflags(write=False)
    return view


class _Column:
    """One (node, tag) column: pending chunks + cached compacted array."""

    __slots__ = ("chunks", "length", "compacted")

    def __init__(self) -> None:
        self.chunks: list[np.ndarray] = []
        self.length = 0
        self.compacted: np.ndarray | None = None

    def append(self, chunk: np.ndarray) -> None:
        self.chunks.append(chunk)
        self.length += len(chunk)
        self.compacted = None

    def view(self, tag: str) -> np.ndarray:
        if self.compacted is None:
            if not self.chunks:
                return _EMPTY
            if len(self.chunks) == 1:
                self.compacted = _readonly(self.chunks[0])
            else:
                compacted = np.concatenate(self.chunks)
                compacted.setflags(write=False)
                self.compacted = compacted
                self.chunks = [compacted]
                registry = get_registry()
                if registry.enabled:
                    registry.counter(
                        "repro_storage_compactions_total", tag=tag
                    ).inc()
        return self.compacted


class ColumnarStore:
    """``(node, tag) -> column`` storage behind the cluster surface.

    All arrays handed to :meth:`append` / :meth:`extend` must already be
    one-dimensional ``int64`` — the cluster validates payloads before
    they reach storage.  Chunks are referenced, not copied; everything
    handed back out is read-only.
    """

    __slots__ = ("_data",)

    def __init__(self) -> None:
        self._data: dict[object, dict[str, _Column]] = {}

    # ------------------------------------------------------------------ #
    # writes
    # ------------------------------------------------------------------ #

    def _column(self, node, tag: str) -> _Column:
        tagged = self._data.get(node)
        if tagged is None:
            tagged = self._data[node] = {}
        column = tagged.get(tag)
        if column is None:
            column = tagged[tag] = _Column()
        return column

    def append(self, node, tag: str, chunk: np.ndarray) -> None:
        """Reference one delivered chunk at the end of a column."""
        self._column(node, tag).append(chunk)

    def extend(self, node, tag: str, chunks: Iterable[np.ndarray]) -> None:
        """Reference several chunks, preserving their order."""
        if not isinstance(chunks, list):
            chunks = list(chunks)
        column = self._column(node, tag)
        column.chunks.extend(chunks)
        column.length += sum(map(len, chunks))
        column.compacted = None

    def discard(self, node, tag: str) -> None:
        """Drop a column (no-op when absent)."""
        tagged = self._data.get(node)
        if tagged is not None:
            tagged.pop(tag, None)

    def pop(self, node, tag: str) -> np.ndarray:
        """Remove a column and return its (read-only) contents."""
        values = self.view(node, tag)
        self.discard(node, tag)
        return values

    def clear(self) -> None:
        """Drop every column (the process backend's ``close``)."""
        self._data.clear()

    # ------------------------------------------------------------------ #
    # reads
    # ------------------------------------------------------------------ #

    def view(self, node, tag: str) -> np.ndarray:
        """The column's elements as a read-only array (cached).

        Compacts the chunk list on first read after an append; repeated
        reads return the same array object until the next write.
        """
        tagged = self._data.get(node)
        if tagged is None:
            return _EMPTY
        column = tagged.get(tag)
        if column is None:
            return _EMPTY
        return column.view(tag)

    def size(self, node, tag: str | None = None) -> int:
        """Element count for one column, or across a node's columns."""
        tagged = self._data.get(node, {})
        if tag is not None:
            column = tagged.get(tag)
            return column.length if column is not None else 0
        return sum(column.length for column in tagged.values())

    def tags(self, node) -> frozenset:
        """The tags a node currently holds (possibly with empty columns)."""
        return frozenset(self._data.get(node, ()))

    def nodes(self) -> Iterator:
        """Nodes with at least one column."""
        return iter(self._data)

    def sizes(self) -> dict:
        """``{node: {tag: length}}`` snapshot (the auditor's baseline)."""
        return {
            node: {tag: column.length for tag, column in tagged.items()}
            for node, tagged in self._data.items()
        }

    def chunk_count(self, node, tag: str) -> int:
        """Pending chunks in a column (1 after a read compacted it)."""
        tagged = self._data.get(node)
        if tagged is None:
            return 0
        column = tagged.get(tag)
        return len(column.chunks) if column is not None else 0

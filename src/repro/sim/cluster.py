"""The executable cluster: storage, rounds, message routing, accounting.

A :class:`Cluster` binds a tree topology to per-node storage and executes
protocols round by round, following Section 2's computation model:

* only compute nodes hold data between rounds;
* within a round, nodes first compute locally, then exchange data; a
  transfer follows the unique tree path between its endpoints, and a
  multicast of the same payload to several destinations follows the
  Steiner tree, each link charged once per element;
* all transfers of a round are accounted together, and the round's cost
  is that of the most bottlenecked link.

Protocols interact with storage under string *tags* (relation names, or
scratch tags like ``"R.recv"``), which is how a receiver distinguishes
arrivals from pre-existing local data.

The hot paths are :meth:`RoundContext.exchange` and
:meth:`RoundContext.exchange_multicast`: a hashed shuffle (or a
replicating protocol) hands over its full values array plus a parallel
per-element index array — target node indices for unicasts, destination
-set indices for multicasts — the context groups the whole round with
one stable argsort per tag (no per-destination boolean masks, no
per-group Python loops), and round finalization delivers and charges
all grouped transfers in bulk.  ``send``/``multicast``/``scatter``
remain as thin wrappers over the same machinery, so protocols written
against the per-transfer API keep working and keep producing identical
ledgers.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from time import perf_counter
from typing import Callable, Hashable, Iterable, Iterator, Sequence

import numpy as np

from repro.data.distribution import Distribution
from repro.errors import ProtocolError
from repro.obs.audit import get_auditor
from repro.obs.metrics import get_registry
from repro.obs.tracer import get_tracer
from repro.sim.ledger import CostLedger
from repro.sim.storage import ColumnarStore
from repro.topology.artifacts import (
    TopologyArtifacts,
    resolve_artifacts,
    topology_fingerprint,
)
from repro.topology.tree import NodeId, TreeTopology
from repro.util.grouping import (
    cached_group_slices,
    concat_group_slices,
    group_slices,
    iter_groups,
)

#: Exchange implementation used by clusters that don't choose explicitly.
#: ``"bulk"`` is the vectorized argsort path; ``"per-send"`` degrades
#: :meth:`RoundContext.exchange` to the legacy per-destination
#: boolean-mask loop and per-transfer accounting.  The legacy mode exists
#: so benchmarks and property tests can check, end to end, that the bulk
#: path produces byte-identical storage and ledgers — and measure the
#: speedup against it.
DEFAULT_EXCHANGE_MODE = "bulk"

_EXCHANGE_MODES = ("bulk", "per-send")


class _ExchangeState(threading.local):
    def __init__(self) -> None:
        self.mode = DEFAULT_EXCHANGE_MODE


_EXCHANGE_STATE = _ExchangeState()


def default_exchange_mode() -> str:
    """The exchange mode clusters built in this thread default to."""
    return _EXCHANGE_STATE.mode


@contextmanager
def use_exchange_mode(mode: str) -> Iterator[None]:
    """Temporarily change the default exchange mode (for benchmarks).

    Thread-local, like every installer in this codebase: an A/B
    benchmark flipping modes on one thread cannot change what a
    concurrent session's runs build on another, and the ``finally``
    restores the previous mode even when the block raises.
    """
    if mode not in _EXCHANGE_MODES:
        raise ProtocolError(f"unknown exchange mode {mode!r}")
    previous = _EXCHANGE_STATE.mode
    _EXCHANGE_STATE.mode = mode
    try:
        yield
    finally:
        _EXCHANGE_STATE.mode = previous


# ---------------------------------------------------------------------- #
# execution backends
# ---------------------------------------------------------------------- #
#
# Protocols construct their cluster through :func:`make_cluster`, which
# dispatches to the *active backend*: ``"sim"`` (this module's
# single-process :class:`Cluster`) or any substrate registered via
# :func:`register_backend` — ``"process"`` is the shared-memory
# multiprocessing substrate in :mod:`repro.parallel.backend`.  The
# active backend is thread-local so concurrent ``run_many`` plans can
# run under different backends without racing.

_BACKEND_FACTORIES: dict[str, Callable] = {}


class _BackendState(threading.local):
    def __init__(self) -> None:
        self.name = "sim"
        self.opts: dict = {}


_BACKEND_STATE = _BackendState()


def register_backend(name: str, factory: Callable) -> None:
    """Register a cluster factory ``factory(tree, distribution, **opts)``."""
    _BACKEND_FACTORIES[name] = factory


def reset_backend() -> None:
    """Restore this thread's backend to the default simulator.

    Forked worker processes call this on startup: a worker forked while
    the master sat inside ``use_backend("process")`` would otherwise
    inherit that state and recursively ask for a pool of its own.
    """
    _BACKEND_STATE.name = "sim"
    _BACKEND_STATE.opts = {}


def backend_names() -> tuple:
    """Names of the registered execution backends."""
    return tuple(sorted(_BACKEND_FACTORIES))


def current_backend() -> str:
    """The backend :func:`make_cluster` dispatches to in this thread."""
    return _BACKEND_STATE.name


def _resolve_backend(name: str) -> Callable:
    if name not in _BACKEND_FACTORIES and name == "process":
        # The process substrate registers itself on import; pull it in
        # lazily so the simulator has no hard dependency on it.
        import repro.parallel.backend  # noqa: F401
    try:
        return _BACKEND_FACTORIES[name]
    except KeyError:
        raise ProtocolError(
            f"unknown execution backend {name!r}; "
            f"registered: {backend_names()}"
        ) from None


@contextmanager
def use_backend(name: str, **opts) -> Iterator[None]:
    """Route :func:`make_cluster` to backend ``name`` within the block.

    ``opts`` are merged into every cluster construction (e.g.
    ``num_workers=4, oracle=True`` for the process backend).  The
    engine wraps protocol invocations in this context when the caller
    selects ``backend="process"``, so protocols themselves stay
    backend-agnostic.
    """
    _resolve_backend(name)
    previous_name, previous_opts = _BACKEND_STATE.name, _BACKEND_STATE.opts
    _BACKEND_STATE.name = name
    _BACKEND_STATE.opts = dict(opts)
    try:
        yield
    finally:
        _BACKEND_STATE.name = previous_name
        _BACKEND_STATE.opts = previous_opts


def make_cluster(
    tree: TreeTopology, distribution: Distribution | None = None, **kwargs
) -> "Cluster":
    """Build a cluster on the active execution backend.

    This is the constructor every protocol uses; keyword arguments the
    protocol passes (``bits_per_element``) override same-named backend
    options installed by :func:`use_backend`.
    """
    factory = _resolve_backend(_BACKEND_STATE.name)
    merged = {**_BACKEND_STATE.opts, **kwargs}
    return factory(tree, distribution, **merged)


class RoundContext:
    """Collects the transfers of one round; created by :meth:`Cluster.round`."""

    def __init__(self, cluster: "Cluster") -> None:
        self._cluster = cluster
        # the multicast stream, in registration order: (src, tuple of
        # destination frozensets, per-element group indices into that
        # tuple or None for "one group, everything to sets[0]",
        # payload, tag).  multicast() appends single-set records,
        # exchange_multicast() batched ones; like the unicast stream,
        # grouping is deferred to finalization so the whole round's
        # replicated traffic is grouped with one pass per tag and
        # charged with one vectorized Steiner-flow call.
        self._multicasts: list[
            tuple[
                NodeId,
                tuple[frozenset, ...],
                np.ndarray | None,
                np.ndarray,
                str,
            ]
        ] = []
        # the unicast stream, in registration order: (src, node list or
        # None for the canonical compute order, per-element target
        # indices or None for "everything to node_list[0]", payload,
        # tag).  send() appends constant-target records, exchange()
        # scatter records; grouping is deferred to finalization so the
        # whole round is grouped with one pass, and registration order
        # is what makes bulk and per-send storage byte-identical even
        # when sends and exchanges mix on one (dst, tag).
        self._unicast_stream: list[
            tuple[
                NodeId,
                Sequence[NodeId] | None,
                np.ndarray | None,
                np.ndarray,
                str,
            ]
        ] = []
        self._closed = False

    # ------------------------------------------------------------------ #
    # validation
    # ------------------------------------------------------------------ #

    def _check_open(self) -> None:
        if self._closed:
            raise ProtocolError("round already finalized")

    def _check_source(self, src: NodeId) -> None:
        tree = self._cluster.tree
        if src not in tree.nodes:
            raise ProtocolError(f"unknown node {src!r}")
        if src not in tree.compute_nodes:
            raise ProtocolError(
                f"source {src!r} is a router; data can only reside at "
                "compute nodes, so no transfer can originate there"
            )

    def _check_destination(self, dst: NodeId) -> None:
        tree = self._cluster.tree
        if dst not in tree.nodes:
            raise ProtocolError(f"unknown node {dst!r}")
        if dst not in tree.compute_nodes:
            raise ProtocolError(
                f"destination {dst!r} is a router; only compute nodes "
                "can store data"
            )

    @staticmethod
    def _as_payload(values) -> np.ndarray:
        payload = np.asarray(values, dtype=np.int64)
        if payload.ndim != 1:
            raise ProtocolError("payloads must be one-dimensional arrays")
        return payload

    @staticmethod
    def _as_indices(indices, what: str) -> np.ndarray:
        """Validate a parallel index array (``targets`` / ``group_ids``).

        Dtype is checked even for zero-length arrays — an explicit
        float array is a bug whether or not it holds elements — but an
        empty plain sequence carries no dtype intent (``np.asarray([])``
        defaults to float64) and coerces to int64.
        """
        array = np.asarray(indices)
        if array.ndim != 1:
            raise ProtocolError(f"{what} must be a one-dimensional array")
        if array.dtype.kind not in "iu":
            if array.size or isinstance(indices, np.ndarray):
                raise ProtocolError(f"{what} must be an integer array")
            array = array.astype(np.int64)
        return array

    @staticmethod
    def _check_index_span(
        indices: np.ndarray, bound: int, what: str, candidates: str
    ) -> None:
        """Range-check a parallel index array against its candidate list.

        Runs before the empty-payload early returns (a zero-length
        array passes vacuously), so malformed indices are rejected
        whether or not elements flow this round.
        """
        if not indices.size:
            return
        lo = int(indices.min())
        hi = int(indices.max())
        if lo < 0 or hi >= bound:
            raise ProtocolError(
                f"{what} span [{lo}, {hi}] but only "
                f"{bound} {candidates} were given"
            )

    # ------------------------------------------------------------------ #
    # the transfer API
    # ------------------------------------------------------------------ #

    def send(self, src: NodeId, dst: NodeId, values, *, tag: str) -> None:
        """Unicast ``values`` from ``src`` to ``dst`` under ``tag``."""
        self._check_open()
        payload = self._as_payload(values)
        self._check_source(src)
        self._check_destination(dst)
        if len(payload) == 0:
            return
        self._unicast_stream.append((src, (dst,), None, payload, str(tag)))

    def multicast(
        self, src: NodeId, dsts: Iterable[NodeId], values, *, tag: str
    ) -> None:
        """Send one copy of ``values`` toward every node in ``dsts``.

        Routing is deduplicated: each link on the Steiner tree of
        ``{src} | dsts`` carries the payload once, which is the routing
        the paper's upper-bound analyses assume for replicated tuples.
        """
        self._check_open()
        payload = self._as_payload(values)
        destination_set = frozenset(dsts)
        if not destination_set:
            raise ProtocolError("multicast needs at least one destination")
        self._check_source(src)
        for node in destination_set:
            self._check_destination(node)
        if len(payload) == 0:
            return
        self._multicasts.append(
            (src, (destination_set,), None, payload, str(tag))
        )

    def scatter(
        self,
        src: NodeId,
        assignments: Iterable[tuple[NodeId, Sequence[int] | np.ndarray]],
        *,
        tag: str,
    ) -> None:
        """Unicast a different payload to each destination (convenience)."""
        for dst, values in assignments:
            self.send(src, dst, values, tag=tag)

    def exchange(
        self,
        src: NodeId,
        targets,
        values,
        *,
        tag: str,
        nodes: Sequence[NodeId] | None = None,
    ) -> None:
        """Scatter ``values`` from ``src``, element ``i`` to node
        ``nodes[targets[i]]``.

        The batched equivalent of one :meth:`send` per distinct target:
        ``targets`` is a parallel integer array indexing into ``nodes``
        (default: the cluster's canonical compute order, the
        ``sorted(tree.compute_nodes, key=node_sort_key)`` list every
        hash-based protocol already uses).  Grouping happens with one
        stable argsort over the whole round instead of one boolean-mask
        scan per destination, and delivery/accounting are byte-identical
        to the per-send path — within each destination group the
        original element order is preserved.
        """
        self._check_open()
        payload = self._as_payload(values)
        target_indices = self._as_indices(targets, "targets")
        if len(target_indices) != len(payload):
            raise ProtocolError(
                f"{len(payload)} values but {len(target_indices)} targets; "
                "exchange needs one target index per element"
            )
        cluster = self._cluster
        node_list: Sequence[NodeId] = (
            cluster.compute_order if nodes is None else list(nodes)
        )
        self._check_source(src)
        self._check_index_span(
            target_indices, len(node_list), "target indices", "candidate nodes"
        )
        if len(payload) == 0:
            return
        if cluster.exchange_mode == "per-send":
            # Legacy path: one send per destination *node* — kept for
            # A/B benchmarking and equivalence tests, not for
            # production use.  Target indices that alias one node under
            # two positions must collapse into a single delivery in
            # original element order, exactly like the bulk path's
            # (dst, tag) grouping (duplicate-alias regression), so an
            # explicit node list is canonicalized before grouping.
            if nodes is None:
                # the canonical compute order is alias-free; keep the
                # historical boolean-mask scan as the timing baseline
                for index in np.unique(target_indices):
                    self.send(
                        src,
                        node_list[index],
                        payload[target_indices == index],
                        tag=tag,
                    )
                return
            canonical: dict[NodeId, int] = {}
            lookup = np.arange(len(node_list))
            for index in np.unique(target_indices).tolist():
                lookup[index] = canonical.setdefault(node_list[index], index)
            for index, chunk in iter_groups(lookup[target_indices], payload):
                self.send(src, node_list[index], chunk, tag=tag)
            return
        if nodes is not None:
            # The canonical compute order needs no checking; an explicit
            # node list is validated on the destinations actually used.
            used = np.flatnonzero(
                np.bincount(target_indices, minlength=len(node_list))
            )
            for index in used.tolist():
                self._check_destination(node_list[index])
            node_list = list(node_list)
        else:
            node_list = None
        self._unicast_stream.append(
            (src, node_list, target_indices, payload, str(tag))
        )

    def exchange_multicast(
        self,
        src: NodeId,
        group_ids,
        destination_sets: Sequence[Iterable[NodeId]],
        values,
        *,
        tag: str,
    ) -> None:
        """Replicate ``values`` from ``src``, element ``i`` to every
        node in ``destination_sets[group_ids[i]]``.

        The batched equivalent of one :meth:`multicast` per distinct
        group id: ``group_ids`` is a parallel integer array indexing
        into ``destination_sets``, the per-round Steiner destination
        sets a replicating protocol computed (one per hashed owner in
        StarIntersect, one per distinct block-target row in
        TreeIntersect, one per subscriber subset in the components
        return leg).  Grouping is deferred to round finalization — one
        stable argsort per tag over the round's whole multicast stream
        — and the Steiner-tree edges of all groups are charged with a
        single vectorized :meth:`RoutingIndex.multicast_loads
        <repro.topology.steiner.RoutingIndex.multicast_loads>` call.
        Delivery and accounting are byte-identical to the equivalent
        per-group multicast loop; only destination sets actually
        referenced by a group id are validated.
        """
        self._check_open()
        payload = self._as_payload(values)
        ids = self._as_indices(group_ids, "group ids")
        if len(ids) != len(payload):
            raise ProtocolError(
                f"{len(payload)} values but {len(ids)} group ids; "
                "exchange_multicast needs one group id per element"
            )
        sets = tuple(
            dsts if isinstance(dsts, frozenset) else frozenset(dsts)
            for dsts in destination_sets
        )
        self._check_source(src)
        self._check_index_span(ids, len(sets), "group ids", "destination sets")
        if len(payload) == 0:
            return
        if self._cluster.exchange_mode == "per-send":
            # Legacy path: one multicast per group with per-transfer
            # accounting — the A/B oracle the property tests compare
            # against.
            for index, chunk in iter_groups(ids, payload):
                self.multicast(src, sets[index], chunk, tag=tag)
            return
        used = np.flatnonzero(np.bincount(ids, minlength=len(sets)))
        checked = self._cluster._checked_destination_sets
        for index in used.tolist():
            dsts = sets[index]
            if dsts in checked:
                continue
            if not dsts:
                raise ProtocolError("multicast needs at least one destination")
            for node in dsts:
                self._check_destination(node)
            checked.add(dsts)
        self._multicasts.append((src, sets, ids, payload, str(tag)))

    # ------------------------------------------------------------------ #
    # finalization
    # ------------------------------------------------------------------ #

    def _finalize(self) -> None:
        self._check_open()
        self._closed = True
        if self._cluster.exchange_mode == "per-send":
            self._finalize_per_transfer()
        else:
            self._finalize_bulk()

    def _finalize_bulk(self) -> None:
        """Deliver and charge the whole round with grouped bookkeeping.

        All transfers are grouped by ``(dst, tag)`` for delivery — one
        stable argsort per tag across every scatter of the round — and
        by routing unit for accounting: unicast ``(src, dst)`` pair
        counts feed the vectorized tree-flow charger
        (:meth:`~repro.topology.steiner.RoutingIndex.unicast_loads`),
        multicasts their Steiner sets; the ledger is charged once via
        :meth:`CostLedger.add_loads` rather than once per transfer.
        Addition over element counts is commutative, so the per-edge
        loads equal the per-transfer path's exactly.

        When a recording tracer is installed, the finalizer splits its
        wall time into *group* (collection + argsort), *deliver*
        (storage appends), and *charge* (tree-flow accounting) phases
        and annotates the enclosing round span with them alongside the
        ledger-derived round attrs; with the default no-op tracer no
        clock is read.
        """
        cluster = self._cluster
        storage = cluster._storage
        tracer = get_tracer()
        registry = get_registry()
        phases = (
            {"group": 0.0, "deliver": 0.0, "charge": 0.0}
            if tracer.enabled
            else None
        )
        cluster.ledger.open_round()
        loads: dict = {}

        if self._unicast_stream:
            t0 = perf_counter() if phases is not None else 0.0
            routing, by_tag, pair_matrix = self._collect_unicasts()
            node_names = routing.nodes
            # group: one pass per tag over the whole round; the argsort
            # is stable and parts are concatenated in registration
            # order, so per-(dst, tag) contents match the per-transfer
            # path exactly
            grouped = []
            for tag, parts in by_tag.items():
                if len(parts) == 1:
                    all_dst, all_payload = parts[0]
                else:
                    all_dst = np.concatenate([p[0] for p in parts])
                    all_payload = np.concatenate([p[1] for p in parts])
                order, uniques, starts, ends = cached_group_slices(all_dst)
                grouped.append((tag, all_payload[order], uniques, starts, ends))
            if phases is not None:
                t1 = perf_counter()
                phases["group"] += t1 - t0
            # deliver: install the grouped slices into node storage
            for tag, sorted_payload, uniques, starts, ends in grouped:
                if registry.enabled:
                    # The process backend records this same total from
                    # its worker ranks; keeping the label set identical
                    # is what makes sim and process snapshots match.
                    registry.counter(
                        "repro_delivered_elements_total", tag=tag
                    ).inc(len(sorted_payload))
                for dst_id, start, end in zip(
                    uniques.tolist(), starts.tolist(), ends.tolist()
                ):
                    storage.append(
                        node_names[dst_id], tag, sorted_payload[start:end]
                    )
            if phases is not None:
                t2 = perf_counter()
                phases["deliver"] += t2 - t1
            loads = self._apply_pair_loads(routing, pair_matrix)
            if phases is not None:
                phases["charge"] += perf_counter() - t2

        if self._multicasts:
            self._deliver_multicasts(loads, phases)
        if loads:
            t3 = perf_counter() if phases is not None else 0.0
            cluster.ledger.add_loads(loads.keys(), loads.values())
            if phases is not None:
                phases["charge"] += perf_counter() - t3
        cluster.ledger.close_round()
        if registry.enabled:
            self._record_round_metrics(registry)
        if phases is not None:
            self._annotate_round(tracer, phases)

    def _collect_unicasts(
        self,
    ) -> tuple[object, dict[str, list[tuple[np.ndarray, np.ndarray]]], np.ndarray]:
        """Resolve the unicast stream into columnar per-tag parts.

        Returns ``(routing_index, by_tag, pair_matrix)``: per tag, the
        registration-ordered ``(dst_ids, payload)`` parts whose
        concatenation is the round's full scatter for that tag, plus
        the dense ``(src, dst) -> element count`` matrix that feeds the
        vectorized tree-flow charger.  Shared by the in-process bulk
        finalizer and the process-backend finalizer, which ships the
        same columns to its workers — byte-identity between the two
        substrates starts with collecting identical columns.
        """
        cluster = self._cluster
        routing = cluster.oracle.routing_index
        index_of = routing.index_of
        size = routing.num_nodes
        # (src, dst) -> element count, accumulated as a dense matrix
        # (node counts are small; 1024 nodes is an 8 MB matrix)
        pair_matrix = np.zeros((size, size), dtype=np.int64)
        lookup_dtype = np.int16 if size < 2**15 else np.int64
        by_tag: dict[str, list[tuple[np.ndarray, np.ndarray]]] = {}
        for src, node_list, target_indices, payload, tag in (
            self._unicast_stream
        ):
            if target_indices is None:  # send(): one constant target
                dst_id = index_of[node_list[0]]
                dst_ids = np.full(len(payload), dst_id, lookup_dtype)
                pair_matrix[index_of[src], dst_id] += len(payload)
            else:
                if node_list is None:
                    lookup = cluster._compute_lookup(routing, lookup_dtype)
                else:
                    lookup = np.fromiter(
                        (index_of[n] for n in node_list),
                        lookup_dtype,
                        len(node_list),
                    )
                dst_ids = lookup[target_indices]
                pair_matrix[index_of[src]] += np.bincount(
                    dst_ids, minlength=size
                )
            by_tag.setdefault(tag, []).append((dst_ids, payload))
        return routing, by_tag, pair_matrix

    def _apply_pair_loads(self, routing, pair_matrix: np.ndarray) -> dict:
        """Charge the pair matrix and record arrivals; returns edge loads."""
        cluster = self._cluster
        node_names = routing.nodes
        src_ids, dst_ids = np.nonzero(pair_matrix)
        counts = pair_matrix[src_ids, dst_ids]
        loads = routing.unicast_loads(src_ids, dst_ids, counts)
        remote = src_ids != dst_ids
        arrivals = np.zeros(routing.num_nodes, dtype=np.int64)
        np.add.at(arrivals, dst_ids[remote], counts[remote])
        for index in np.flatnonzero(arrivals).tolist():
            cluster._add_received(node_names[index], int(arrivals[index]))
        return loads

    def _deliver_multicasts(self, loads: dict, phases: dict | None = None) -> None:
        """Deliver and charge the round's multicast stream in bulk.

        Group ids are lifted into a per-tag global id space (each
        record's local ids shifted by a running base), so one
        :func:`group_slices` pass per tag groups every replicated
        element of the round; global ids ascend in registration x
        local-id order, which keeps per-``(dst, tag)`` append order —
        and therefore storage bytes — identical to the per-group
        multicast loop.  Delivery is *zero-copy slice sharing*: the
        grouped payload is sliced once per group, each ``(group,
        member)`` pair becomes a row, rows are grouped by destination
        with the same stable primitive as the unicast path, and every
        destination's column references its groups' slice views in
        ascending-gid order — replication moves no bytes at delivery
        time (the columnar store references chunks), so a replication
        factor of *f* costs one compaction at first read instead of an
        *f*-fold gather here.  Every present group's Steiner tree is
        then charged through one vectorized
        :meth:`~repro.topology.steiner.RoutingIndex.multicast_loads`
        call, merged into ``loads`` alongside the unicast charges.
        """
        cluster = self._cluster
        routing = cluster.oracle.routing_index
        index_of = routing.index_of
        node_names = routing.nodes
        storage = cluster._storage
        registry = get_registry()
        # tag -> (local group ids, payload, base) parts and the
        # (base, src, sets) record table that resolves a global id back
        # to its source and destination set; the base shift into the
        # global id space is deferred to concat_group_slices, whose
        # parts-keyed memo skips materializing the shifted stream on a
        # repeated round
        t0 = perf_counter() if phases is not None else 0.0
        parts_by_tag: dict[
            str, list[tuple[np.ndarray | None, np.ndarray, int]]
        ] = {}
        records_by_tag: dict[str, list[tuple[int, NodeId, tuple]]] = {}
        next_base: dict[str, int] = {}
        for src, sets, group_ids, payload, tag in self._multicasts:
            base = next_base.get(tag, 0)
            parts_by_tag.setdefault(tag, []).append(
                (group_ids, payload, base)
            )
            records_by_tag.setdefault(tag, []).append((base, src, sets))
            next_base[tag] = base + len(sets)
        if phases is not None:
            phases["group"] += perf_counter() - t0
        set_ids: dict[frozenset, np.ndarray] = {}
        batch_src: list[int] = []
        batch_sets: list[np.ndarray] = []
        batch_counts: list[int] = []
        for tag, parts in parts_by_tag.items():
            t1 = perf_counter() if phases is not None else 0.0
            all_payload = (
                parts[0][1]
                if len(parts) == 1
                else np.concatenate([p[1] for p in parts])
            )
            order, uniques, starts, ends = concat_group_slices(
                [(ids, len(payload), base) for ids, payload, base in parts]
            )
            sorted_payload = all_payload[order]
            if phases is not None:
                t2 = perf_counter()
                phases["group"] += t2 - t1
            records = records_by_tag[tag]
            position = 0
            group_counts = ends - starts
            group_src = np.empty(len(uniques), dtype=np.intp)
            member_ids: list[np.ndarray] = []
            for slot, gid in enumerate(uniques.tolist()):
                while (
                    position + 1 < len(records)
                    and records[position + 1][0] <= gid
                ):
                    position += 1
                base, src, sets = records[position]
                dsts = sets[gid - base]
                ids = set_ids.get(dsts)
                if ids is None:
                    ids = np.fromiter(
                        (index_of[n] for n in dsts), np.intp, len(dsts)
                    )
                    set_ids[dsts] = ids
                member_ids.append(ids)
                group_src[slot] = index_of[src]
                batch_src.append(index_of[src])
                batch_sets.append(ids)
                batch_counts.append(int(group_counts[slot]))
            # one row per (group, member); group rows by destination —
            # stable, so rows stay in ascending-gid order within a dst,
            # exactly the per-group loop's append order
            fanout = np.fromiter(
                (len(ids) for ids in member_ids), np.intp, len(member_ids)
            )
            row_dst = np.concatenate(member_ids)
            row_group = np.repeat(np.arange(len(member_ids)), fanout)
            r_order, r_uniques, r_starts, r_ends = group_slices(row_dst)
            sorted_dst = row_dst[r_order]
            sorted_group = row_group[r_order]
            lengths = group_counts[sorted_group]
            # one slice view of the grouped payload per group; every
            # member's column references the same view, so delivery
            # moves no bytes regardless of the replication factor
            group_views = [
                sorted_payload[lo:hi]
                for lo, hi in zip(starts.tolist(), ends.tolist())
            ]
            rows = sorted_group.tolist()
            for slot, dst_id in enumerate(r_uniques.tolist()):
                storage.extend(
                    node_names[dst_id],
                    tag,
                    [
                        group_views[g]
                        for g in rows[r_starts[slot] : r_ends[slot]]
                    ],
                )
            remote = group_src[sorted_group] != sorted_dst
            arrivals = np.zeros(routing.num_nodes, dtype=np.int64)
            np.add.at(arrivals, sorted_dst[remote], lengths[remote])
            for index in np.flatnonzero(arrivals).tolist():
                cluster._add_received(node_names[index], int(arrivals[index]))
            if registry.enabled:
                registry.counter(
                    "repro_delivered_elements_total", tag=tag
                ).inc(int(lengths.sum()))
            if phases is not None:
                phases["deliver"] += perf_counter() - t2
        t3 = perf_counter() if phases is not None else 0.0
        lens = np.fromiter(
            (len(ids) for ids in batch_sets), np.intp, len(batch_sets)
        )
        ends = np.cumsum(lens)
        multicast_loads = routing.multicast_loads(
            np.asarray(batch_src, dtype=np.intp),
            np.concatenate(batch_sets) if batch_sets else np.empty(0, np.intp),
            ends - lens,
            ends,
            np.asarray(batch_counts, dtype=np.int64),
        )
        for edge, count in multicast_loads.items():
            loads[edge] = loads.get(edge, 0) + count
        if phases is not None:
            phases["charge"] += perf_counter() - t3

    def _annotate_round(self, tracer, phases: dict | None = None) -> None:
        """Attach ledger-derived attrs to the enclosing round span.

        Called after ``close_round`` by every finalizer (bulk, legacy
        per-send, and the process substrate's), so the round span
        carries the same model-cost facts regardless of the execution
        path: the round's cost, its most-loaded edge, and the
        registered payload volume per tag.  ``phases`` adds the
        finalize-time split when the finalizer measured one.
        """
        ledger = self._cluster.ledger
        index = ledger.num_rounds - 1
        round_loads = ledger.round_loads(index)
        elements = self._elements_by_tag()
        bits = ledger.bits_per_element
        attrs = {
            "round": index,
            "round_cost": ledger.round_cost(index),
            "max_edge_load": max(round_loads.values(), default=0),
            "elements_by_tag": elements,
            "bytes_by_tag": {
                tag: count * bits // 8 for tag, count in elements.items()
            },
        }
        if phases is not None:
            attrs["t_group_s"] = phases["group"]
            attrs["t_deliver_s"] = phases["deliver"]
            attrs["t_charge_s"] = phases["charge"]
        tracer.annotate(**attrs)

    def _elements_by_tag(self) -> dict[str, int]:
        """Registered (pre-replication) element counts per tag."""
        elements: dict[str, int] = {}
        for _src, _nodes, _targets, payload, tag in self._unicast_stream:
            elements[tag] = elements.get(tag, 0) + len(payload)
        for _src, _sets, _gids, payload, tag in self._multicasts:
            elements[tag] = elements.get(tag, 0) + len(payload)
        return elements

    def _record_round_metrics(self, registry) -> None:
        """Record the closed round on the installed metrics registry.

        Deliberately carries *no* backend label: every count here is
        derived from the registered streams and the ledger, which both
        substrates produce byte-identically, so a sim-run snapshot and
        a process-run snapshot of the same protocol are equal — the
        property the cross-process merge tests assert.
        """
        ledger = self._cluster.ledger
        index = ledger.num_rounds - 1
        registry.counter("repro_rounds_total").inc()
        round_loads = ledger.round_loads(index)
        registry.histogram("repro_round_cost").observe(
            ledger.round_cost(index)
        )
        registry.histogram("repro_max_edge_load").observe(
            max(round_loads.values(), default=0)
        )
        bits = ledger.bits_per_element
        for tag, count in self._elements_by_tag().items():
            registry.counter("repro_round_elements_total", tag=tag).inc(count)
            registry.counter("repro_round_bytes_total", tag=tag).inc(
                count * bits // 8
            )

    def _finalize_per_transfer(self) -> None:
        """The legacy finalizer: walk transfers one at a time.

        Only reachable in ``per-send`` mode, where ``exchange`` degrades
        to ``send`` calls and ``exchange_multicast`` to per-group
        ``multicast`` calls — so the unicast stream holds
        constant-target records and the multicast stream single-set
        records exclusively.
        """
        cluster = self._cluster
        cluster.ledger.open_round()
        arrivals: dict[NodeId, dict[str, list[np.ndarray]]] = {}
        transfers = [
            (src, frozenset((node_list[0],)), tag, payload)
            for src, node_list, _targets, payload, tag in self._unicast_stream
        ] + [
            (src, sets[0], tag, payload)
            for src, sets, _group_ids, payload, tag in self._multicasts
        ]
        registry = get_registry()
        delivered: dict[str, int] = {}
        for src, dsts, tag, payload in transfers:
            for edge in cluster.oracle.steiner_edges(src, dsts):
                cluster.ledger.add_load(edge, len(payload))
            delivered[tag] = delivered.get(tag, 0) + len(payload) * len(dsts)
            for dst in dsts:
                arrivals.setdefault(dst, {}).setdefault(tag, []).append(payload)
                if dst != src:
                    cluster._add_received(dst, len(payload))
        for dst, tagged in arrivals.items():
            for tag, payloads in tagged.items():
                cluster._storage.extend(dst, tag, payloads)
        cluster.ledger.close_round()
        if registry.enabled:
            for tag, count in delivered.items():
                registry.counter(
                    "repro_delivered_elements_total", tag=tag
                ).inc(count)
            self._record_round_metrics(registry)
        tracer = get_tracer()
        if tracer.enabled:
            self._annotate_round(tracer)


class Cluster:
    """Tree topology + per-node storage + cost accounting."""

    def __init__(
        self,
        tree: TreeTopology,
        distribution: Distribution | None = None,
        *,
        bits_per_element: int = 64,
        exchange_mode: str | None = None,
        artifacts: TopologyArtifacts | None = None,
    ) -> None:
        self._tree = tree
        # The expensive per-topology structures (routing index, Steiner
        # memos, compute order, destination-set validation memo) come
        # from the artifact layer: prebuilt and shared when a session or
        # one-shot run scope installed an ArtifactCache, private and
        # fresh otherwise — the historical per-cluster behavior.
        if artifacts is None:
            artifacts = resolve_artifacts(tree)
        elif artifacts.tree is not tree and artifacts.fingerprint != (
            topology_fingerprint(tree)
        ):
            # Prebuilt artifacts may come from a structurally identical
            # tree object (fingerprint keying); a structurally
            # *different* one would silently misroute every transfer.
            raise ProtocolError(
                f"artifacts were built for {artifacts.tree.name!r}, whose "
                f"structure differs from {tree.name!r}"
            )
        self._artifacts = artifacts
        self.oracle = artifacts.oracle
        self.ledger = CostLedger(tree, bits_per_element=bits_per_element)
        if exchange_mode is None:
            exchange_mode = default_exchange_mode()
        if exchange_mode not in _EXCHANGE_MODES:
            raise ProtocolError(f"unknown exchange mode {exchange_mode!r}")
        self._exchange_mode = exchange_mode
        self._storage = ColumnarStore()
        self._received_elements: dict[NodeId, int] = {}
        self._checked_destination_sets = artifacts.checked_destination_sets
        self._round_open = False
        if distribution is not None:
            self.load(distribution)

    @property
    def tree(self) -> TreeTopology:
        return self._tree

    @property
    def exchange_mode(self) -> str:
        """``"bulk"`` (vectorized) or ``"per-send"`` (legacy A/B path)."""
        return self._exchange_mode

    @property
    def artifacts(self) -> TopologyArtifacts:
        """The per-topology structures this cluster runs on."""
        return self._artifacts

    @property
    def compute_order(self) -> tuple:
        """The compute nodes in canonical order (artifact-shared).

        This is the node list hash-based protocols index into, so
        :meth:`RoundContext.exchange` uses it as the default target
        universe.
        """
        return self._artifacts.compute_order

    def _compute_lookup(self, routing, dtype) -> np.ndarray:
        """Routing-index ids of the canonical compute order (artifact-shared)."""
        return self._artifacts.compute_lookup(routing, dtype)

    # ------------------------------------------------------------------ #
    # storage
    # ------------------------------------------------------------------ #

    def load(self, distribution: Distribution) -> None:
        """Install an initial placement (``X_0``) into node storage."""
        distribution.validate_for(self._tree)
        for node in distribution.nodes:
            for tag in distribution.tags:
                fragment = distribution.fragment(node, tag)
                if len(fragment):
                    self.put(node, tag, fragment)

    def put(self, node: NodeId, tag: str, values) -> None:
        """Append ``values`` to ``node``'s storage under ``tag``.

        Zero-copy when ``values`` is already a 1-D ``int64`` array: the
        array is referenced, not copied (the storage layer serves
        read-only views, so the historical defensive copies are gone).
        """
        if node not in self._tree.compute_nodes:
            raise ProtocolError(
                f"{node!r} is not a compute node and cannot store data"
            )
        payload = np.asarray(values, dtype=np.int64)
        if len(payload) == 0:
            return
        self._storage.append(node, str(tag), payload)

    def local(self, node: NodeId, tag: str) -> np.ndarray:
        """All elements ``node`` currently holds under ``tag``.

        Returns a **read-only** array (``writeable=False``): the store
        compacts its chunk list lazily and serves the cached compacted
        column as a zero-copy view, so mutating the return value would
        silently rewrite storage — attempting it raises instead.
        """
        return self._storage.view(node, str(tag))

    def take(self, node: NodeId, tag: str) -> np.ndarray:
        """Remove and return ``node``'s data under ``tag`` (read-only)."""
        return self._storage.pop(node, str(tag))

    def local_size(self, node: NodeId, tag: str | None = None) -> int:
        """Element count at ``node`` for one tag or across all tags."""
        return self._storage.size(node, None if tag is None else str(tag))

    def tags_at(self, node: NodeId) -> frozenset:
        return self._storage.tags(node)

    def received_elements(self, node: NodeId) -> int:
        """Elements delivered to ``node`` from other nodes (MPC measure)."""
        return self._received_elements.get(node, 0)

    def _add_received(self, node: NodeId, count: int) -> None:
        """Record ``count`` remote arrivals at ``node``.

        The single bookkeeping point shared by the bulk unicast,
        bulk multicast, and legacy per-send delivery paths — the audit
        conservation check and the process-backend oracle both compare
        against this one counter.
        """
        if count:
            received = self._received_elements
            received[node] = received.get(node, 0) + count

    # ------------------------------------------------------------------ #
    # rounds
    # ------------------------------------------------------------------ #

    def _make_round_context(self) -> RoundContext:
        """Factory hook: substrates override to supply their finalizer."""
        return RoundContext(self)

    @contextmanager
    def round(self) -> Iterator[RoundContext]:
        """Open a communication round.

        All sends registered inside the ``with`` block belong to the same
        round; deliveries and cost accounting happen when the block exits.
        """
        if self._round_open:
            raise ProtocolError("a round is already in progress")
        self._round_open = True
        context = self._make_round_context()
        auditor = get_auditor()
        before = auditor.before_round(self) if auditor.enabled else None
        # one span per round, covering both the protocol's local work
        # and finalization; finalize still runs only on clean exit
        with get_tracer().span(
            f"round {self.ledger.num_rounds}",
            category="round",
            backend=self.backend,
        ):
            try:
                yield context
            finally:
                self._round_open = False
            context._finalize()
            if auditor.enabled:
                auditor.check_round(self, context, before)

    @property
    def rounds_executed(self) -> int:
        return self.ledger.num_rounds

    # ------------------------------------------------------------------ #
    # substrate lifecycle
    # ------------------------------------------------------------------ #

    @property
    def backend(self) -> str:
        """Which execution substrate this cluster runs on."""
        return "sim"

    def close(self) -> None:
        """Release substrate resources (no-op for the simulator)."""


register_backend("sim", Cluster)

"""The executable cluster: storage, rounds, message routing, accounting.

A :class:`Cluster` binds a tree topology to per-node storage and executes
protocols round by round, following Section 2's computation model:

* only compute nodes hold data between rounds;
* within a round, nodes first compute locally, then exchange data; a
  transfer follows the unique tree path between its endpoints, and a
  multicast of the same payload to several destinations follows the
  Steiner tree, each link charged once per element;
* all transfers of a round are accounted together, and the round's cost
  is that of the most bottlenecked link.

Protocols interact with storage under string *tags* (relation names, or
scratch tags like ``"R.recv"``), which is how a receiver distinguishes
arrivals from pre-existing local data.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Hashable, Iterable, Iterator, Sequence

import numpy as np

from repro.data.distribution import Distribution
from repro.errors import ProtocolError
from repro.sim.ledger import CostLedger
from repro.topology.steiner import PathOracle
from repro.topology.tree import NodeId, TreeTopology


class RoundContext:
    """Collects the transfers of one round; created by :meth:`Cluster.round`."""

    def __init__(self, cluster: "Cluster") -> None:
        self._cluster = cluster
        self._transfers: list[tuple[NodeId, frozenset, str, np.ndarray]] = []
        self._closed = False

    def send(
        self, src: NodeId, dst: NodeId, values, *, tag: str
    ) -> None:
        """Unicast ``values`` from ``src`` to ``dst`` under ``tag``."""
        self.multicast(src, (dst,), values, tag=tag)

    def multicast(
        self, src: NodeId, dsts: Iterable[NodeId], values, *, tag: str
    ) -> None:
        """Send one copy of ``values`` toward every node in ``dsts``.

        Routing is deduplicated: each link on the Steiner tree of
        ``{src} | dsts`` carries the payload once, which is the routing
        the paper's upper-bound analyses assume for replicated tuples.
        """
        if self._closed:
            raise ProtocolError("round already finalized")
        payload = np.asarray(values, dtype=np.int64)
        if payload.ndim != 1:
            raise ProtocolError("payloads must be one-dimensional arrays")
        destination_set = frozenset(dsts)
        if not destination_set:
            raise ProtocolError("multicast needs at least one destination")
        cluster = self._cluster
        for node in destination_set | {src}:
            if node not in cluster.tree.nodes:
                raise ProtocolError(f"unknown node {node!r}")
        for node in destination_set:
            if node not in cluster.tree.compute_nodes:
                raise ProtocolError(
                    f"destination {node!r} is a router; only compute nodes "
                    "can store data"
                )
        if len(payload) == 0:
            return
        self._transfers.append((src, destination_set, str(tag), payload))

    def scatter(
        self,
        src: NodeId,
        assignments: Iterable[tuple[NodeId, Sequence[int] | np.ndarray]],
        *,
        tag: str,
    ) -> None:
        """Unicast a different payload to each destination (convenience)."""
        for dst, values in assignments:
            self.send(src, dst, values, tag=tag)

    def _finalize(self) -> None:
        if self._closed:
            raise ProtocolError("round already finalized")
        self._closed = True
        cluster = self._cluster
        cluster.ledger.open_round()
        arrivals: dict[NodeId, dict[str, list[np.ndarray]]] = {}
        for src, dsts, tag, payload in self._transfers:
            for edge in cluster.oracle.steiner_edges(src, dsts):
                cluster.ledger.add_load(edge, len(payload))
            for dst in dsts:
                arrivals.setdefault(dst, {}).setdefault(tag, []).append(payload)
                if dst != src:
                    cluster._received_elements[dst] = (
                        cluster._received_elements.get(dst, 0) + len(payload)
                    )
        for dst, tagged in arrivals.items():
            for tag, payloads in tagged.items():
                cluster._storage.setdefault(dst, {}).setdefault(tag, []).extend(
                    payloads
                )
        cluster.ledger.close_round()


class Cluster:
    """Tree topology + per-node storage + cost accounting."""

    def __init__(
        self,
        tree: TreeTopology,
        distribution: Distribution | None = None,
        *,
        bits_per_element: int = 64,
    ) -> None:
        self._tree = tree
        self.oracle = PathOracle(tree)
        self.ledger = CostLedger(tree, bits_per_element=bits_per_element)
        self._storage: dict[NodeId, dict[str, list[np.ndarray]]] = {}
        self._received_elements: dict[NodeId, int] = {}
        self._round_open = False
        if distribution is not None:
            self.load(distribution)

    @property
    def tree(self) -> TreeTopology:
        return self._tree

    # ------------------------------------------------------------------ #
    # storage
    # ------------------------------------------------------------------ #

    def load(self, distribution: Distribution) -> None:
        """Install an initial placement (``X_0``) into node storage."""
        distribution.validate_for(self._tree)
        for node in distribution.nodes:
            for tag in distribution.tags:
                fragment = distribution.fragment(node, tag)
                if len(fragment):
                    self.put(node, tag, fragment)

    def put(self, node: NodeId, tag: str, values) -> None:
        """Append ``values`` to ``node``'s storage under ``tag``."""
        if node not in self._tree.compute_nodes:
            raise ProtocolError(
                f"{node!r} is not a compute node and cannot store data"
            )
        payload = np.asarray(values, dtype=np.int64)
        if len(payload) == 0:
            return
        self._storage.setdefault(node, {}).setdefault(str(tag), []).append(payload)

    def local(self, node: NodeId, tag: str) -> np.ndarray:
        """All elements ``node`` currently holds under ``tag``."""
        chunks = self._storage.get(node, {}).get(str(tag), [])
        if not chunks:
            return np.empty(0, np.int64)
        if len(chunks) == 1:
            return chunks[0].copy()
        return np.concatenate(chunks)

    def take(self, node: NodeId, tag: str) -> np.ndarray:
        """Remove and return ``node``'s data under ``tag``."""
        values = self.local(node, tag)
        self._storage.get(node, {}).pop(str(tag), None)
        return values

    def local_size(self, node: NodeId, tag: str | None = None) -> int:
        """Element count at ``node`` for one tag or across all tags."""
        tagged = self._storage.get(node, {})
        if tag is not None:
            return sum(len(chunk) for chunk in tagged.get(str(tag), []))
        return sum(
            len(chunk) for chunks in tagged.values() for chunk in chunks
        )

    def tags_at(self, node: NodeId) -> frozenset:
        return frozenset(self._storage.get(node, {}))

    def received_elements(self, node: NodeId) -> int:
        """Elements delivered to ``node`` from other nodes (MPC measure)."""
        return self._received_elements.get(node, 0)

    # ------------------------------------------------------------------ #
    # rounds
    # ------------------------------------------------------------------ #

    @contextmanager
    def round(self) -> Iterator[RoundContext]:
        """Open a communication round.

        All sends registered inside the ``with`` block belong to the same
        round; deliveries and cost accounting happen when the block exits.
        """
        if self._round_open:
            raise ProtocolError("a round is already in progress")
        self._round_open = True
        context = RoundContext(self)
        try:
            yield context
        finally:
            self._round_open = False
        context._finalize()

    @property
    def rounds_executed(self) -> int:
        return self.ledger.num_rounds

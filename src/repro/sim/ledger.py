"""Per-round, per-edge communication accounting (the Section 2 cost model).

The ledger records ``|Y_i(e)|`` — the number of elements routed through
each directed edge ``e`` during round ``i`` — and derives the paper's
cost measures:

* ``round_cost(i) = max_e |Y_i(e)| / w_e``,
* ``total_cost = sum_i round_cost(i)`` (in element units),
* the same in bits, as elements x ``bits_per_element`` (the paper's
  "pay a log N factor to translate to bits").

Edges with infinite bandwidth contribute zero cost but their loads are
still recorded, so analyses can inspect raw traffic.
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import ProtocolError
from repro.topology.tree import DirectedEdge, TreeTopology


class CostLedger:
    """Accumulates per-round directed-edge loads for one topology."""

    def __init__(self, tree: TreeTopology, *, bits_per_element: int = 64) -> None:
        if bits_per_element <= 0:
            raise ProtocolError("bits_per_element must be positive")
        self._tree = tree
        self._bits_per_element = bits_per_element
        self._rounds: list[dict[DirectedEdge, int]] = []
        self._open = False

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #

    def open_round(self) -> None:
        if self._open:
            raise ProtocolError("previous round is still open")
        self._rounds.append({})
        self._open = True

    def add_load(self, edge: DirectedEdge, elements: int) -> None:
        """Charge ``elements`` routed through directed ``edge`` this round."""
        if not self._open:
            raise ProtocolError("no round is open")
        if elements < 0:
            raise ProtocolError(f"negative load {elements}")
        u, v = edge
        self._tree.bandwidth(u, v)  # validates the edge exists
        current = self._rounds[-1]
        current[edge] = current.get(edge, 0) + int(elements)

    def add_loads(self, edges, counts) -> None:
        """Charge a batch of per-edge loads into the open round.

        ``edges`` and ``counts`` are parallel iterables; equivalent to
        calling :meth:`add_load` once per pair, but the open-round check
        happens once and the hot loop stays tight — this is how the
        round finalizer charges a whole round's grouped transfers.
        """
        if not self._open:
            raise ProtocolError("no round is open")
        current = self._rounds[-1]
        bandwidth = self._tree.bandwidth
        for edge, elements in zip(edges, counts):
            if elements < 0:
                raise ProtocolError(f"negative load {elements}")
            bandwidth(*edge)  # validates the edge exists
            current[edge] = current.get(edge, 0) + int(elements)

    def close_round(self) -> None:
        if not self._open:
            raise ProtocolError("no round is open")
        self._open = False

    # ------------------------------------------------------------------ #
    # cost queries
    # ------------------------------------------------------------------ #

    @property
    def num_rounds(self) -> int:
        return len(self._rounds)

    @property
    def bits_per_element(self) -> int:
        return self._bits_per_element

    def round_loads(self, index: int) -> dict[DirectedEdge, int]:
        """Copy of the per-edge element loads of round ``index``."""
        return dict(self._rounds[index])

    def round_cost(self, index: int) -> float:
        """``max_e |Y_i(e)| / w_e`` for round ``index`` (element units)."""
        loads = self._rounds[index]
        if not loads:
            return 0.0
        return max(
            count / self._tree.bandwidth(*edge) for edge, count in loads.items()
        )

    def total_cost(self) -> float:
        """The paper's ``cost(A)`` in element units."""
        return sum(self.round_cost(i) for i in range(len(self._rounds)))

    def total_cost_bits(self) -> float:
        """``cost(A)`` in bits."""
        return self.total_cost() * self._bits_per_element

    def edge_total(self, edge: DirectedEdge) -> int:
        """Total elements routed through ``edge`` across all rounds."""
        return sum(loads.get(edge, 0) for loads in self._rounds)

    def total_elements(self) -> int:
        """Total element-hops (sum of loads over all edges and rounds)."""
        return sum(sum(loads.values()) for loads in self._rounds)

    def bottleneck(self, index: int | None = None) -> tuple[DirectedEdge, float] | None:
        """The most expensive directed edge (of one round or overall)."""
        indices = range(len(self._rounds)) if index is None else [index]
        best: tuple[DirectedEdge, float] | None = None
        for i in indices:
            for edge, count in self._rounds[i].items():
                cost = count / self._tree.bandwidth(*edge)
                if best is None or cost > best[1]:
                    best = (edge, cost)
        return best

    def summary(self) -> dict:
        """A compact dict for reports and benchmark ``extra_info``."""
        return {
            "rounds": self.num_rounds,
            "cost_elements": self.total_cost(),
            "cost_bits": self.total_cost_bits(),
            "total_element_hops": self.total_elements(),
            "per_round_cost": [
                self.round_cost(i) for i in range(self.num_rounds)
            ],
        }

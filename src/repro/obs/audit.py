"""A cost-model auditor: Section-2 invariants checked on live rounds.

The ledger *claims* every round obeys the paper's cost model; this
module re-derives the claims from independent evidence and compares.
Installed via :func:`auditing`, a :class:`CostAuditor` hooks into
:meth:`Cluster.round <repro.sim.cluster.Cluster.round>` and checks,
after every finalized round:

``conservation``
    Elements registered for each ``(destination, tag)`` — re-expanded
    from the round's raw transfer streams with a reference
    implementation, not the grouped fast path — equal the elements
    that actually landed in that node's storage (before/after size
    delta).
``round-cost``
    The ledger's ``round_cost`` equals ``max_e load(e) / w_e``
    recomputed from the round's raw per-edge loads and the topology's
    link widths.
``charge``
    Every per-edge charge is a non-negative integer on a real directed
    tree edge (canonical node identity — no aliased duplicates).
``lower-bound``
    (Engine-level, via :meth:`CostAuditor.check_bound`.)  The reported
    cost is at least the registered lower bound whenever the task
    declares its bound instance-valid
    (``TaskSpec.bound_holds_per_instance``); beating a worst-case
    bound is legitimate and is only counted as
    ``repro_bound_beats_total``.

Violations are recorded on the installed metrics registry as
``repro_audit_violations_total{invariant=...}`` and accumulated on the
auditor; in strict mode the first violation raises
:class:`~repro.errors.AuditError`.  Because the process backend's
:class:`~repro.parallel.oracle.LedgerOracle` replays every round
through a shadow simulator ``round()``, an installed auditor checks
process-backend rounds twice — once on the parallel substrate, once on
the replay — for free.

The default auditor is :class:`NullAuditor`: one thread-local attribute
lookup per round, no snapshots, no checks — the same disabled-path
contract as ``NullTracer`` and ``NullRegistry``.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator

import numpy as np

from repro.errors import AuditError
from repro.obs.metrics import get_registry

#: Tolerance for float comparisons (round costs are ratios of integer
#: loads over float widths; re-deriving them must match to rounding).
COST_EPSILON = 1e-9


class NullAuditor:
    """The default auditor: checks nothing, snapshots nothing."""

    enabled = False
    strict = False

    def before_round(self, cluster) -> None:
        return None

    def check_round(self, cluster, context, before) -> None:
        pass

    def check_bound(
        self, *, cost, bound, task, protocol, per_instance=False
    ) -> None:
        pass


class CostAuditor:
    """Re-derives and checks the cost-model invariants per round."""

    enabled = True

    def __init__(self, *, strict: bool = False) -> None:
        self.strict = strict
        self.violations: list[dict] = []
        self.rounds_checked = 0
        self.bounds_checked = 0

    # ------------------------------------------------------------------ #
    # round hooks (called by Cluster.round)
    # ------------------------------------------------------------------ #

    def before_round(self, cluster) -> dict:
        """Snapshot per-(node, tag) storage sizes before the round runs.

        Column lengths are maintained incrementally by the store, so
        this is a dict walk — no chunk traversal, no compaction.
        """
        return cluster._storage.sizes()

    def check_round(self, cluster, context, before: dict) -> None:
        """Audit one finalized round against its raw transfer streams."""
        self.rounds_checked += 1
        index = cluster.ledger.num_rounds - 1
        where = f"round {index} on {cluster.tree.name!r} ({cluster.backend})"
        self._check_conservation(cluster, context, before, where)
        self._check_charges(cluster, index, where)

    def check_bound(
        self, *, cost, bound, task, protocol, per_instance=False
    ) -> None:
        """Reported cost must not beat an instance-valid lower bound.

        ``per_instance`` is the task's
        ``bound_holds_per_instance`` declaration: only bounds that hold
        for every input can be violated by a cheaper run.  Beating a
        worst-case bound (the paper's Theorems 1–3) is legitimate
        instance-adaptivity — recorded as
        ``repro_bound_beats_total{task}``, never as a violation.
        """
        self.bounds_checked += 1
        if cost >= bound - COST_EPSILON:
            return
        if per_instance:
            self._violation(
                "lower-bound",
                f"{task}/{protocol}: reported cost {cost!r} is below "
                f"the instance-valid lower bound {bound!r}",
            )
        else:
            get_registry().counter(
                "repro_bound_beats_total", task=task
            ).inc()

    # ------------------------------------------------------------------ #
    # invariants
    # ------------------------------------------------------------------ #

    def _check_conservation(
        self, cluster, context, before: dict, where: str
    ) -> None:
        """Registered elements per (dst, tag) == storage arrivals."""
        expected = _expected_deliveries(cluster, context)
        for (node, tag), count in expected.items():
            held_before = before.get(node, {}).get(tag, 0)
            delta = cluster.local_size(node, tag) - held_before
            if delta != count:
                self._violation(
                    "conservation",
                    f"{where}: node {node!r} tag {tag!r} was sent "
                    f"{count} element(s) but storage grew by {delta}",
                )

    def _check_charges(self, cluster, index: int, where: str) -> None:
        """Charges are canonical non-negative loads; cost is their max."""
        tree = cluster.tree
        loads = cluster.ledger.round_loads(index)
        expected_cost = 0.0
        for edge, count in loads.items():
            u, v = edge
            if count < 0 or count != int(count):
                self._violation(
                    "charge",
                    f"{where}: edge {edge!r} carries a non-integral or "
                    f"negative load {count!r}",
                )
                continue
            if u == v or u not in tree.nodes or v not in tree.nodes:
                self._violation(
                    "charge",
                    f"{where}: charged edge {edge!r} is not a canonical "
                    "directed tree edge",
                )
                continue
            try:
                width = tree.bandwidth(u, v)
            except Exception:
                self._violation(
                    "charge",
                    f"{where}: charged edge {edge!r} does not exist in "
                    "the topology",
                )
                continue
            expected_cost = max(expected_cost, count / width)
        reported = cluster.ledger.round_cost(index)
        if abs(reported - expected_cost) > COST_EPSILON:
            self._violation(
                "round-cost",
                f"{where}: ledger reports round cost {reported!r} but "
                f"max_e load/width over the raw loads is "
                f"{expected_cost!r}",
            )

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #

    def _violation(self, invariant: str, detail: str) -> None:
        self.violations.append({"invariant": invariant, "detail": detail})
        get_registry().counter(
            "repro_audit_violations_total", invariant=invariant
        ).inc()
        if self.strict:
            raise AuditError(f"[{invariant}] {detail}")

    def summary(self) -> dict:
        """Compact audit outcome for reports and CLI output."""
        by_invariant: dict[str, int] = {}
        for violation in self.violations:
            name = violation["invariant"]
            by_invariant[name] = by_invariant.get(name, 0) + 1
        return {
            "rounds_checked": self.rounds_checked,
            "bounds_checked": self.bounds_checked,
            "violations": len(self.violations),
            "by_invariant": by_invariant,
        }


def _expected_deliveries(cluster, context) -> dict:
    """Reference expansion of a round's streams into per-(dst, tag) counts.

    Walks the raw unicast/multicast records one at a time — the shape
    the legacy per-send path would have processed — independently of
    the grouped finalizers whose deliveries it audits.  Alias handling
    matches delivery semantics: two target indices naming the same node
    accumulate on that node.
    """
    expected: dict[tuple, int] = {}

    def _add(node, tag: str, count: int) -> None:
        if count:
            key = (node, tag)
            expected[key] = expected.get(key, 0) + count

    for _src, node_list, targets, payload, tag in context._unicast_stream:
        if targets is None:
            _add(node_list[0], tag, len(payload))
            continue
        nodes = cluster.compute_order if node_list is None else node_list
        counts = np.bincount(targets, minlength=len(nodes))
        for position in np.flatnonzero(counts).tolist():
            _add(nodes[position], tag, int(counts[position]))
    for _src, sets, group_ids, payload, tag in context._multicasts:
        if group_ids is None:
            group_counts = {0: len(payload)}
        else:
            counts = np.bincount(group_ids, minlength=len(sets))
            group_counts = {
                position: int(counts[position])
                for position in np.flatnonzero(counts).tolist()
            }
        for position, count in group_counts.items():
            for dst in sets[position]:
                _add(dst, tag, count)
    return expected


# ---------------------------------------------------------------------- #
# installation (mirrors repro.obs.tracer)
# ---------------------------------------------------------------------- #


class _AuditState(threading.local):
    def __init__(self) -> None:
        self.auditor = NullAuditor()


_STATE = _AuditState()


def get_auditor():
    """The auditor installed in this thread (no-op by default)."""
    return _STATE.auditor


def set_auditor(auditor):
    """Install ``auditor`` in this thread; returns the previous one."""
    previous = _STATE.auditor
    _STATE.auditor = auditor
    return previous


@contextmanager
def use_auditor(auditor) -> Iterator:
    """Install ``auditor`` in this thread for the duration of the block."""
    previous = set_auditor(auditor)
    try:
        yield auditor
    finally:
        _STATE.auditor = previous


@contextmanager
def auditing(*, strict: bool = False) -> Iterator[CostAuditor]:
    """Audit every round within the block; yields the auditor."""
    auditor = CostAuditor(strict=strict)
    with use_auditor(auditor):
        yield auditor

"""Trace exports: Chrome-trace JSON and a flat span-summary dict.

:func:`chrome_trace` turns a :class:`~repro.obs.tracer.Tracer`'s event
buffer into the Chrome Trace Event Format (the JSON ``chrome://tracing``
and Perfetto load), one complete ``"X"`` event per finished span plus
``"M"`` metadata events naming the tracks.  :func:`span_metrics`
reduces the same buffer to a flat ``{category: {count, total_s, ...}}``
dict that ``RunReport``-family ``meta`` payloads can embed.  (Standing
labeled counters live in :mod:`repro.obs.metrics`, which owns the
``metrics`` name; the old ``metrics(tracer)`` spelling remains as an
alias.)
"""

from __future__ import annotations

import json
import re
import sys
from typing import Any

from repro.report import _jsonify

#: pid used for every event — the trace describes one logical run, and
#: worker-rank activity is distinguished by tid (track), not pid.
TRACE_PID = 0

#: Worker-rank track names as emitted by the parallel backend
#: (``"rank 0"``, ``"rank 12"``, ...).
_RANK_TRACK = re.compile(r"rank\s*(\d+)")


def _track_order(tracer) -> dict[str, int]:
    """Deterministic track → tid mapping for the trace viewer.

    ``"main"`` is always tid 0; worker-rank tracks follow in *numeric*
    order (``rank 10`` sorts after ``rank 2``, not lexically between
    ``rank 1`` and ``rank 2`` — with >10 ranks the viewer otherwise
    interleaves them); any other track keeps its first appearance in
    the buffer.
    """
    seen: list[str] = []
    for event in tracer.events:
        if event.track != "main" and event.track not in seen:
            seen.append(event.track)
    ranks = [t for t in seen if _RANK_TRACK.fullmatch(t)]
    ranks.sort(key=lambda t: int(_RANK_TRACK.fullmatch(t).group(1)))
    others = [t for t in seen if not _RANK_TRACK.fullmatch(t)]
    tids: dict[str, int] = {"main": 0}
    for track in (*ranks, *others):
        tids[track] = len(tids)
    return tids


def chrome_trace(tracer, **extra: Any) -> dict:
    """Render ``tracer``'s buffer as a Chrome-trace-format dict.

    Timestamps are microseconds relative to the earliest span start, so
    the viewer's timeline starts at zero regardless of the machine's
    ``perf_counter`` epoch.  ``extra`` keyword entries become additional
    top-level keys (the format allows them); the CLI uses this to embed
    the :func:`span_metrics` summary alongside ``traceEvents``.  The
    tracer's ``dropped`` count is always stamped top-level so a
    truncated trace is detectable from the file alone.
    """
    events = sorted(tracer.events, key=lambda e: (e.start, e.index))
    t0 = events[0].start if events else 0.0
    tids = _track_order(tracer)

    trace_events: list[dict] = []
    for track, tid in tids.items():
        trace_events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": TRACE_PID,
                "tid": tid,
                "args": {"name": track},
            }
        )
    for event in events:
        trace_events.append(
            {
                "name": event.name,
                "ph": "X",
                "ts": (event.start - t0) * 1e6,
                "dur": event.duration * 1e6,
                "pid": TRACE_PID,
                "tid": tids[event.track],
                "args": _jsonify(event.attrs),
            }
        )
    payload = {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "dropped": tracer.dropped,
    }
    for key, value in extra.items():
        payload[key] = _jsonify(value)
    return payload


def span_metrics(tracer) -> dict:
    """Flat per-category summary of a tracer's buffer.

    Spans aggregate under their ``category`` attribute (falling back to
    the span name, so uncategorized spans still appear); each bucket
    reports ``count`` and total/min/max/mean seconds.  The result is
    strictly JSON-serializable and survives
    ``json.dumps(..., allow_nan=False)``.
    """
    buckets: dict[str, dict] = {}
    for event in tracer.events:
        key = str(event.attrs.get("category", event.name))
        bucket = buckets.get(key)
        duration = event.duration
        if bucket is None:
            buckets[key] = {
                "count": 1,
                "total_s": duration,
                "min_s": duration,
                "max_s": duration,
            }
        else:
            bucket["count"] += 1
            bucket["total_s"] += duration
            bucket["min_s"] = min(bucket["min_s"], duration)
            bucket["max_s"] = max(bucket["max_s"], duration)
    for bucket in buckets.values():
        bucket["mean_s"] = bucket["total_s"] / bucket["count"]
    return _jsonify(
        {
            "spans": buckets,
            "num_events": len(tracer.events),
            "dropped": tracer.dropped,
        }
    )


#: Backward-compatible spelling from before the registry submodule took
#: the ``metrics`` name (``from repro.obs.export import metrics``).
metrics = span_metrics


def write_chrome_trace(path, tracer, **extra: Any) -> dict:
    """Write :func:`chrome_trace` JSON to ``path``; returns the payload.

    Warns on stderr when the tracer's ring buffer overflowed — the file
    is still written (with the ``dropped`` count stamped top-level),
    but span statistics computed from it undercount.
    """
    payload = chrome_trace(tracer, **extra)
    if tracer.dropped:
        print(
            f"warning: trace buffer overflowed, {tracer.dropped} "
            f"event(s) dropped from {path}",
            file=sys.stderr,
        )
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, allow_nan=False)
        handle.write("\n")
    return payload

"""Trace exports: Chrome-trace JSON and a flat metrics dict.

:func:`chrome_trace` turns a :class:`~repro.obs.tracer.Tracer`'s event
buffer into the Chrome Trace Event Format (the JSON ``chrome://tracing``
and Perfetto load), one complete ``"X"`` event per finished span plus
``"M"`` metadata events naming the tracks.  :func:`metrics` reduces the
same buffer to a flat ``{category: {count, total_s, ...}}`` dict that
``RunReport``-family ``meta`` payloads can embed.
"""

from __future__ import annotations

import json
from typing import Any

from repro.report import _jsonify

#: pid used for every event — the trace describes one logical run, and
#: worker-rank activity is distinguished by tid (track), not pid.
TRACE_PID = 0


def _track_order(tracer) -> dict[str, int]:
    """Stable track → tid mapping: first appearance in the buffer wins,
    except ``"main"`` which is always tid 0."""
    tids: dict[str, int] = {"main": 0}
    for event in tracer.events:
        if event.track not in tids:
            tids[event.track] = len(tids)
    return tids


def chrome_trace(tracer, **extra: Any) -> dict:
    """Render ``tracer``'s buffer as a Chrome-trace-format dict.

    Timestamps are microseconds relative to the earliest span start, so
    the viewer's timeline starts at zero regardless of the machine's
    ``perf_counter`` epoch.  ``extra`` keyword entries become additional
    top-level keys (the format allows them); the CLI uses this to embed
    the :func:`metrics` summary alongside ``traceEvents``.
    """
    events = sorted(tracer.events, key=lambda e: (e.start, e.index))
    t0 = events[0].start if events else 0.0
    tids = _track_order(tracer)

    trace_events: list[dict] = []
    for track, tid in tids.items():
        trace_events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": TRACE_PID,
                "tid": tid,
                "args": {"name": track},
            }
        )
    for event in events:
        trace_events.append(
            {
                "name": event.name,
                "ph": "X",
                "ts": (event.start - t0) * 1e6,
                "dur": event.duration * 1e6,
                "pid": TRACE_PID,
                "tid": tids[event.track],
                "args": _jsonify(event.attrs),
            }
        )
    payload = {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
    }
    for key, value in extra.items():
        payload[key] = _jsonify(value)
    return payload


def metrics(tracer) -> dict:
    """Flat per-category summary of a tracer's buffer.

    Spans aggregate under their ``category`` attribute (falling back to
    the span name, so uncategorized spans still appear); each bucket
    reports ``count`` and total/min/max/mean seconds.  The result is
    strictly JSON-serializable and survives
    ``json.dumps(..., allow_nan=False)``.
    """
    buckets: dict[str, dict] = {}
    for event in tracer.events:
        key = str(event.attrs.get("category", event.name))
        bucket = buckets.get(key)
        duration = event.duration
        if bucket is None:
            buckets[key] = {
                "count": 1,
                "total_s": duration,
                "min_s": duration,
                "max_s": duration,
            }
        else:
            bucket["count"] += 1
            bucket["total_s"] += duration
            bucket["min_s"] = min(bucket["min_s"], duration)
            bucket["max_s"] = max(bucket["max_s"], duration)
    for bucket in buckets.values():
        bucket["mean_s"] = bucket["total_s"] / bucket["count"]
    return _jsonify(
        {
            "spans": buckets,
            "num_events": len(tracer.events),
            "dropped": tracer.dropped,
        }
    )


def write_chrome_trace(path, tracer, **extra: Any) -> dict:
    """Write :func:`chrome_trace` JSON to ``path``; returns the payload."""
    payload = chrome_trace(tracer, **extra)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, allow_nan=False)
        handle.write("\n")
    return payload

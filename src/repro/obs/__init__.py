"""repro.obs — tracing, metrics, auditing, and regression sentinels.

The cost model says what a protocol *should* cost per round; this
package records where wall-clock time and bytes *actually* go as a run
flows engine → plan stages → supersteps → round finalization → worker
ranks, keeps standing counters a long-lived engine can expose, audits
the Section-2 invariants on every finalized round, and gates the
committed benchmark trajectories against regressions.  Zero
dependencies, zero configuration: no-op instances are installed per
thread by default, so instrumented code pays one attribute lookup when
observability is off.

* :mod:`repro.obs.tracer` — nested spans and Chrome-trace export
  (``tracing()`` / ``--trace``).
* :mod:`repro.obs.metrics` — labeled Counter/Gauge/Histogram registry
  with Prometheus text + JSON snapshot exposition (``collecting()`` /
  ``--metrics``), mergeable across worker ranks.
* :mod:`repro.obs.audit` — per-round cost-model invariant checks
  (``auditing()`` / ``--audit``), strict or recording.
* :mod:`repro.obs.regress` — trajectory-file regression verdicts
  (``repro bench check``).

Usage::

    from repro.obs import collecting, tracing, write_chrome_trace

    with tracing() as tracer, collecting() as registry:
        repro.run("connected-components", tree, dist)
    write_chrome_trace("cc.trace.json", tracer)   # chrome://tracing
    print(registry.snapshot()["counters"]["repro_rounds_total"])

See DESIGN.md ("Observability") for the span taxonomy, metric names,
and audit invariants.
"""

from repro.obs.tracer import (
    NullTracer,
    Span,
    SpanEvent,
    Tracer,
    get_tracer,
    set_tracer,
    tracing,
    use_tracer,
)
from repro.obs.export import (
    chrome_trace,
    span_metrics,
    write_chrome_trace,
)
from repro.obs.metrics import (
    MetricsRegistry,
    NullRegistry,
    collecting,
    get_registry,
    merge_snapshots,
    prometheus_text,
    set_registry,
    use_registry,
    write_snapshot,
)
from repro.obs.audit import (
    CostAuditor,
    NullAuditor,
    auditing,
    get_auditor,
    set_auditor,
    use_auditor,
)

__all__ = [
    "CostAuditor",
    "MetricsRegistry",
    "NullAuditor",
    "NullRegistry",
    "NullTracer",
    "Span",
    "SpanEvent",
    "Tracer",
    "auditing",
    "chrome_trace",
    "collecting",
    "get_auditor",
    "get_registry",
    "get_tracer",
    "merge_snapshots",
    "prometheus_text",
    "set_auditor",
    "set_registry",
    "set_tracer",
    "span_metrics",
    "tracing",
    "use_auditor",
    "use_registry",
    "use_tracer",
    "write_chrome_trace",
]

"""repro.obs — structured tracing and metrics for the whole stack.

The cost model says what a protocol *should* cost per round; this
package records where wall-clock time and bytes *actually* go as a run
flows engine → plan stages → supersteps → round finalization → worker
ranks.  Zero dependencies, zero configuration: a no-op tracer is
installed per thread by default, so instrumented code pays one
attribute lookup when tracing is off, and :func:`tracing` swaps in a
recording :class:`Tracer` for a ``with`` block.

Usage::

    from repro.obs import tracing, write_chrome_trace

    with tracing() as tracer:
        repro.run("connected-components", tree, dist)
    write_chrome_trace("cc.trace.json", tracer)   # chrome://tracing

See DESIGN.md ("Observability") for the span taxonomy and attribute
conventions.
"""

from repro.obs.tracer import (
    NullTracer,
    Span,
    SpanEvent,
    Tracer,
    get_tracer,
    set_tracer,
    tracing,
    use_tracer,
)
from repro.obs.export import (
    chrome_trace,
    metrics,
    write_chrome_trace,
)

__all__ = [
    "NullTracer",
    "Span",
    "SpanEvent",
    "Tracer",
    "chrome_trace",
    "get_tracer",
    "metrics",
    "set_tracer",
    "tracing",
    "use_tracer",
    "write_chrome_trace",
]

"""Thread-local span tracing with a bounded in-memory event buffer.

Two tracer implementations share one surface:

* :class:`Tracer` — the recording tracer :func:`tracing` installs.
  ``span(name, **attrs)`` opens a nested span (monotonic
  ``perf_counter`` timing), ``annotate(**attrs)`` adds attributes to
  the innermost open span (how round finalizers attach ledger-derived
  facts without threading span objects through call stacks), and
  finished spans land in a bounded event buffer (overflow increments
  ``dropped`` instead of growing without limit).  One tracer may be
  shared by several threads — ``run_many``'s thread executor installs
  the caller's tracer in every worker thread — so the *open-span
  stack* is kept per thread while the event buffer is shared under a
  lock.
* :class:`NullTracer` — the per-thread default.  It records nothing
  and times nothing; the only state it keeps is the stack of open span
  *names*, so failure paths (worker crash, round timeout) can always
  report *where* in the run they happened via :meth:`current_path`,
  tracing on or off.  Span entry is one list append, exit one pop.

Instrumented code never imports a concrete tracer; it asks
:func:`get_tracer` (one thread-local attribute lookup) and calls the
surface.  ``tracer.enabled`` gates any extra work — phase timers,
ledger queries — that only matters when events are recorded.
"""

from __future__ import annotations

import itertools
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

#: Default event-buffer bound; ~100 bytes/event keeps worst case ~10 MB.
DEFAULT_MAX_EVENTS = 100_000

#: Track label for events recorded on the installing (master) thread.
MAIN_TRACK = "main"


@dataclass
class SpanEvent:
    """One finished span: name, monotonic interval, attributes.

    ``track`` groups events into timeline rows (the master thread,
    worker ranks, run_many threads); ``depth`` is the nesting depth at
    open time and ``index`` a per-tracer sequence number, so exports
    can reconstruct ordering without trusting float ties.
    """

    name: str
    start: float
    end: float
    attrs: dict = field(default_factory=dict)
    track: str = MAIN_TRACK
    depth: int = 0
    index: int = 0

    @property
    def duration(self) -> float:
        return self.end - self.start


class Span:
    """An open span; use as a context manager (returned by ``span()``)."""

    __slots__ = ("_tracer", "name", "attrs", "category", "_start", "_depth")

    def __init__(
        self, tracer: "Tracer", name: str, category: str | None, attrs: dict
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.category = category
        self.attrs = attrs
        self._start = 0.0
        self._depth = 0

    def set(self, **attrs) -> None:
        """Attach attributes after the span opened (e.g. actual cost)."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        stack = self._tracer._stack()
        self._depth = len(stack)
        stack.append(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end = time.perf_counter()
        stack = self._tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        elif self in stack:  # pragma: no cover - unbalanced exit
            stack.remove(self)
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        attrs = self.attrs
        if self.category is not None:
            attrs = dict(attrs, category=self.category)
        self._tracer._record(
            SpanEvent(
                name=self.name,
                start=self._start,
                end=end,
                attrs=attrs,
                track=self._tracer._track(),
                depth=self._depth,
            )
        )
        return False


class Tracer:
    """The recording tracer: nested spans into a bounded event buffer."""

    enabled = True

    def __init__(self, *, max_events: int = DEFAULT_MAX_EVENTS) -> None:
        if max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events}")
        self.max_events = max_events
        self.events: list[SpanEvent] = []
        self.dropped = 0
        self._lock = threading.Lock()
        self._local = threading.local()
        self._counter = itertools.count()

    # ------------------------------------------------------------------ #
    # per-thread state
    # ------------------------------------------------------------------ #

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _track(self) -> str:
        thread = threading.current_thread()
        if thread is threading.main_thread():
            return MAIN_TRACK
        return thread.name

    # ------------------------------------------------------------------ #
    # the tracing surface
    # ------------------------------------------------------------------ #

    def span(self, name: str, *, category: str | None = None, **attrs) -> Span:
        """Open a nested span; use as ``with tracer.span(...) as sp:``.

        ``category`` is the low-cardinality aggregation key for
        :func:`repro.obs.export.metrics` (span *names* carry instance
        labels like ``"round 7"``; categories group them as
        ``"round"``).
        """
        return Span(self, name, category, attrs)

    def annotate(self, **attrs) -> None:
        """Add attributes to this thread's innermost open span (if any)."""
        stack = self._stack()
        if stack:
            stack[-1].attrs.update(attrs)

    def current_path(self) -> tuple:
        """Names of this thread's open spans, outermost first."""
        return tuple(span.name for span in self._stack())

    def add_event(
        self,
        name: str,
        start: float,
        end: float,
        *,
        attrs: dict | None = None,
        track: str | None = None,
        category: str | None = None,
    ) -> None:
        """Inject an externally timed span (e.g. one shipped back by a
        worker rank over the round barrier) into the buffer.

        ``start``/``end`` must be ``time.perf_counter()`` readings; on
        the platforms the process backend supports they share the
        master's clock domain (CLOCK_MONOTONIC is machine-wide), so
        merged worker spans land at their true position on the
        timeline.
        """
        merged = dict(attrs) if attrs else {}
        if category is not None:
            merged["category"] = category
        depth = len(self._stack())
        self._record(
            SpanEvent(
                name=name,
                start=start,
                end=end,
                attrs=merged,
                track=track if track is not None else self._track(),
                depth=depth,
            )
        )

    def _record(self, event: SpanEvent) -> None:
        with self._lock:
            if len(self.events) >= self.max_events:
                self.dropped += 1
                return
            event.index = next(self._counter)
            self.events.append(event)


class _NullSpan:
    """A span that keeps only its name on the tracer's path stack."""

    __slots__ = ("_stack", "_name")

    def __init__(self, stack: list, name: str) -> None:
        self._stack = stack
        self._name = name

    def set(self, **attrs) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        self._stack.append(self._name)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._stack:
            self._stack.pop()
        return False


class NullTracer:
    """The default tracer: no events, no timing, just the name path.

    Keeping the open-span *names* costs one append/pop per span — spans
    open at round granularity, never per element — and is what lets
    :class:`~repro.parallel.pool.WorkerPool` failures name the
    enclosing superstep/stage even when nobody asked for a trace.
    """

    enabled = False
    events: tuple = ()
    dropped = 0

    def __init__(self) -> None:
        self._path: list[str] = []

    def span(self, name: str, *, category: str | None = None, **attrs):
        return _NullSpan(self._path, name)

    def annotate(self, **attrs) -> None:
        pass

    def current_path(self) -> tuple:
        return tuple(self._path)

    def add_event(self, *args, **kwargs) -> None:
        pass


# ---------------------------------------------------------------------- #
# installation
# ---------------------------------------------------------------------- #


class _ObsState(threading.local):
    def __init__(self) -> None:
        self.tracer = NullTracer()


_STATE = _ObsState()


def get_tracer():
    """The tracer installed in this thread (a :class:`NullTracer` by
    default)."""
    return _STATE.tracer


def set_tracer(tracer):
    """Install ``tracer`` in this thread; returns the previous one."""
    previous = _STATE.tracer
    _STATE.tracer = tracer
    return previous


@contextmanager
def use_tracer(tracer) -> Iterator:
    """Install ``tracer`` in this thread for the duration of the block.

    This is how a shared :class:`Tracer` follows work onto other
    threads: ``run_many`` captures the caller's tracer and wraps each
    plan execution in ``use_tracer`` on the executor thread.
    """
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        _STATE.tracer = previous


@contextmanager
def tracing(*, max_events: int = DEFAULT_MAX_EVENTS) -> Iterator[Tracer]:
    """Record spans within the block; yields the :class:`Tracer`.

    The previous tracer (normally the no-op default) is restored on
    exit, so nesting and exceptions are safe.
    """
    tracer = Tracer(max_events=max_events)
    with use_tracer(tracer):
        yield tracer

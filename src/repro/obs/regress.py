"""Bench-trajectory regression sentinel: is the latest run still fast?

The bench harnesses (:mod:`repro.analysis.speed`,
:mod:`repro.analysis.scale`) append one run per invocation to the
committed trajectory files ``BENCH_SPEED.json`` / ``BENCH_SCALE.json``.
This module turns those trajectories into a pass/warn/fail verdict:

* the **latest** run is compared case-by-case against a **baseline**
  built as the median of all *prior* runs on the same grid (a small CI
  run never baselines a full local run, and vice versa);
* each metric carries a tolerance band (:class:`Band`): a normalized
  ratio below ``fail_below`` fails the check, below ``warn_below``
  warns.  Ratios are normalized so 1.0 means "identical to baseline"
  and smaller is worse, whether the metric is higher-is-better
  (``speedup``) or lower-is-better (raw seconds);
* cost determinism is gated separately: ``cost_elements`` must equal
  every prior observation bit-for-bit, and the per-case
  ``identical`` / ``ledger_identical`` oracle flags must be true —
  either breaking is a **fail** regardless of timing noise.

Wall-clock metrics are deliberately warn-only (CI machines vary);
the merge gate is the ``bench_speed`` speedup band, whose 0.85 floor
catches a 20% regression while tolerating observed run-to-run noise.
A trajectory with no prior runs on the latest grid passes with a
``no baseline`` note — the sentinel needs history before it can bite.

Used by ``python -m repro bench check [FILE ...]`` and the CI
bench-smoke job.  The file schema is documented in ``DESIGN.md``.
"""

from __future__ import annotations

import json
import statistics
from dataclasses import dataclass

from repro.errors import AnalysisError

#: Verdict severity, worst wins when aggregating.
SEVERITY = {"pass": 0, "warn": 1, "fail": 2}

#: Normalized-ratio floor for warn-only wall-clock metrics: 2/3 means
#: "1.5x slower than the baseline median" before the sentinel speaks up.
_TIMING_WARN = 2.0 / 3.0


@dataclass(frozen=True)
class Band:
    """Tolerance band for one metric of one benchmark family.

    ``fail_below`` / ``warn_below`` are thresholds on the *normalized*
    ratio (1.0 = baseline, lower = worse); ``None`` disables that
    severity for the metric.
    """

    metric: str
    higher_is_better: bool = True
    fail_below: float | None = None
    warn_below: float | None = None

    def normalized(self, latest: float, baseline: float) -> float | None:
        """Latest-vs-baseline ratio, oriented so < 1.0 is a regression."""
        if self.higher_is_better:
            return latest / baseline if baseline else None
        return baseline / latest if latest else None

    def verdict(self, ratio: float | None) -> str:
        if ratio is None:
            return "pass"
        if self.fail_below is not None and ratio < self.fail_below:
            return "fail"
        if self.warn_below is not None and ratio < self.warn_below:
            return "warn"
        return "pass"


#: Per-benchmark tolerance bands.  ``bench_speed`` speedups gate merges
#: (deterministic element counts, same-process A/B timing); the
#: ``bench_scale`` speedup is real parallel wall-clock and observed to
#: swing ~25% run-to-run, so it only warns.
BANDS: dict[str, tuple[Band, ...]] = {
    "bench_speed": (
        Band("speedup", fail_below=0.85, warn_below=0.95),
        Band("per_send_s", higher_is_better=False, warn_below=_TIMING_WARN),
        Band("bulk_s", higher_is_better=False, warn_below=_TIMING_WARN),
    ),
    "bench_scale": (
        Band("speedup", warn_below=0.75),
        Band("seconds", higher_is_better=False, warn_below=_TIMING_WARN),
    ),
    # Serve throughput is end-to-end wall clock (cold and warm replays
    # in one process), noisier than the A/B rounds — the cold/warm
    # ratio warns; the byte-identity flag failing is handled by the
    # identity gate below, never by timing bands.
    "bench_serve": (
        Band("speedup", warn_below=0.75),
        Band("warm_s", higher_is_better=False, warn_below=_TIMING_WARN),
        Band("cold_s", higher_is_better=False, warn_below=_TIMING_WARN),
    ),
}

#: Fallback for unknown benchmark names: gate on speedup if present.
DEFAULT_BANDS: tuple[Band, ...] = (
    Band("speedup", fail_below=0.85, warn_below=0.95),
    Band("seconds", higher_is_better=False, warn_below=_TIMING_WARN),
)

#: Oracle byte-identity flags: false in the latest run is always a fail.
_IDENTITY_FLAGS = ("identical", "ledger_identical")


@dataclass
class Check:
    """One (case, metric) comparison in the verdict table."""

    case: str
    metric: str
    verdict: str
    latest: float | None = None
    baseline: float | None = None
    ratio: float | None = None
    note: str = ""

    def to_dict(self) -> dict:
        return {
            "case": self.case,
            "metric": self.metric,
            "verdict": self.verdict,
            "latest": self.latest,
            "baseline": self.baseline,
            "ratio": self.ratio,
            "note": self.note,
        }


def load_trajectory(path) -> dict:
    """Read and schema-check one ``BENCH_*.json`` trajectory file."""
    try:
        with open(path) as handle:
            data = json.load(handle)
    except OSError as error:
        raise AnalysisError(f"cannot read trajectory {path!r}: {error}")
    except ValueError as error:
        raise AnalysisError(f"trajectory {path!r} is not JSON: {error}")
    if not isinstance(data, dict) or "runs" not in data:
        raise AnalysisError(
            f"trajectory {path!r} lacks the top-level 'runs' list"
        )
    runs = data["runs"]
    if not isinstance(runs, list) or not runs:
        raise AnalysisError(f"trajectory {path!r} records no runs")
    for index, run in enumerate(runs):
        if not isinstance(run, dict) or not isinstance(
            run.get("cases"), list
        ):
            raise AnalysisError(
                f"trajectory {path!r} run {index} lacks a 'cases' list"
            )
    return data


def _case_key(case: dict) -> tuple:
    """Identity of a case across runs (workers only set for scale)."""
    return (
        case.get("name"),
        case.get("topology"),
        case.get("workers"),
    )


def _case_label(case: dict) -> str:
    label = f"{case.get('name', '?')} @ {case.get('topology', '?')}"
    if case.get("workers") is not None:
        label += f" w={case['workers']}"
    return label


def check_trajectory(data: dict, *, bands=None) -> list[Check]:
    """Compare a trajectory's latest run against its own history."""
    if bands is None:
        bands = BANDS.get(data.get("benchmark"), DEFAULT_BANDS)
    runs = data["runs"]
    latest = runs[-1]
    prior = [
        run
        for run in runs[:-1]
        if run.get("grid") == latest.get("grid")
    ]
    history: dict[tuple, list[dict]] = {}
    for run in prior:
        for case in run["cases"]:
            history.setdefault(_case_key(case), []).append(case)
    checks: list[Check] = []
    for case in latest["cases"]:
        label = _case_label(case)
        seen = history.get(_case_key(case), [])
        checks.extend(_check_identity(case, seen, label))
        if not seen:
            checks.append(
                Check(label, "-", "pass", note="no baseline")
            )
            continue
        for band in bands:
            if band.metric not in case:
                continue
            values = [
                c[band.metric] for c in seen if band.metric in c
            ]
            if not values:
                checks.append(
                    Check(
                        label,
                        band.metric,
                        "pass",
                        latest=case[band.metric],
                        note="no baseline",
                    )
                )
                continue
            baseline = statistics.median(values)
            ratio = band.normalized(case[band.metric], baseline)
            checks.append(
                Check(
                    label,
                    band.metric,
                    band.verdict(ratio),
                    latest=case[band.metric],
                    baseline=baseline,
                    ratio=ratio,
                )
            )
    return checks


def _check_identity(case, seen, label) -> list[Check]:
    """Determinism gates: oracle flags true, cost bit-stable."""
    checks = []
    for flag in _IDENTITY_FLAGS:
        if flag in case and not case[flag]:
            checks.append(
                Check(
                    label,
                    flag,
                    "fail",
                    note="oracle byte-identity flag is false",
                )
            )
    cost = case.get("cost_elements")
    if cost is not None:
        previous = {
            c["cost_elements"] for c in seen if "cost_elements" in c
        }
        if previous and previous != {cost}:
            checks.append(
                Check(
                    label,
                    "cost_elements",
                    "fail",
                    latest=cost,
                    note=(
                        "ledger cost drifted from prior runs "
                        f"{sorted(previous)}"
                    ),
                )
            )
    return checks


def overall_verdict(checks: list[Check]) -> str:
    """Worst verdict across the table (``pass`` for an empty table)."""
    worst = "pass"
    for check in checks:
        if SEVERITY[check.verdict] > SEVERITY[worst]:
            worst = check.verdict
    return worst


def check_trajectory_file(path, *, bands=None):
    """Load, check, and summarize one file: ``(verdict, checks)``."""
    checks = check_trajectory(load_trajectory(path), bands=bands)
    return overall_verdict(checks), checks


def regression_table(checks: list[Check]):
    """Render the verdict table: ``(headers, rows)`` for ``render_table``."""
    headers = ["case", "metric", "latest", "baseline", "ratio", "verdict"]
    fmt = lambda value: "-" if value is None else f"{value:.4g}"
    rows = [
        [
            check.case,
            check.metric,
            fmt(check.latest),
            fmt(check.baseline),
            fmt(check.ratio),
            check.verdict + (f" ({check.note})" if check.note else ""),
        ]
        for check in checks
    ]
    return headers, rows

"""A labeled Counter/Gauge/Histogram registry for long-lived engines.

Tracing (:mod:`repro.obs.tracer`) answers "where did *this run's* time
go"; the registry answers the standing question a serving engine must
keep answering: how many runs, rounds, elements, bytes, verify failures
— by task, protocol, backend, tag — since the process started, and how
are per-round costs distributed?  The design mirrors the tracer's
exactly:

* :class:`MetricsRegistry` — the recording registry
  :func:`collecting` installs.  ``counter(name, **labels)`` /
  ``gauge(...)`` / ``histogram(...)`` return live instruments
  (created on first touch, cached per label set, updated under one
  registry lock so ``run_many`` threads can share a registry);
  :meth:`~MetricsRegistry.snapshot` emits a strictly
  JSON-serializable state dict, :func:`merge_snapshot` folds one
  snapshot into another (how worker ranks ship their deltas home over
  the round barrier), and :func:`prometheus_text` renders the
  Prometheus text exposition format.
* :class:`NullRegistry` — the per-thread default.  Every instrument
  call returns one shared no-op instrument; instrumented code gates
  any label-dict construction on ``registry.enabled``, so the
  disabled path costs one thread-local attribute lookup per round,
  exactly like the :class:`~repro.obs.tracer.NullTracer` hook.

Histograms come in two bucket schemes:

* ``"log2"`` — power-of-two buckets created on demand (element counts,
  round costs, edge loads: sizes spanning many orders of magnitude);
* an explicit tuple of upper bounds (latencies: a fixed ladder keeps
  cross-run bucket layouts comparable).

Merging is exact: bucket counts and observation counts are integers,
so folding rank snapshots in any grouping produces identical totals —
the associativity property the cross-process tests pin down.
"""

from __future__ import annotations

import json
import math
import threading
from contextlib import contextmanager
from typing import Iterator

from repro.errors import AnalysisError

#: Fixed latency ladder (seconds) for wall-time histograms: 100us to
#: ~2 minutes, roughly x4 per step.  A fixed ladder (not log2-on-demand)
#: keeps latency bucket layouts identical across runs and machines.
LATENCY_BUCKETS = (
    0.0001,
    0.0005,
    0.002,
    0.01,
    0.05,
    0.25,
    1.0,
    5.0,
    25.0,
    120.0,
)

#: Fixed ratio ladder for estimated-vs-actual cost ratios (a ratio of
#: 1.0 means the planner's estimate was exact).
RATIO_BUCKETS = (0.1, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 4.0, 10.0)

#: Counter families recorded by the session/serving caches (created on
#: first touch like every instrument; listed here as the documented
#: contract the serve CLI and dashboards key on).  The artifact pair is
#: incremented by :meth:`repro.topology.artifacts.ArtifactCache.get`;
#: the plan triple by :class:`repro.plan.optimizer.PlanCache` (hits and
#: misses labeled by ``strategy``; ``rejected`` counts plans the
#: lower-bound admission gate kept out of the cache).
ARTIFACT_CACHE_COUNTERS = (
    "repro_artifact_cache_hits_total",
    "repro_artifact_cache_misses_total",
)
PLAN_CACHE_COUNTERS = (
    "repro_plan_cache_hits_total",
    "repro_plan_cache_misses_total",
    "repro_plan_cache_rejected_total",
)


def _label_key(labels: dict) -> str:
    """Deterministic flat encoding of a label set (sorted ``k=v`` pairs).

    Label values in this codebase are task/protocol/tag/backend names;
    the encoding is documented as not supporting ``|`` or ``=`` inside
    values (they would split ambiguously on parse).
    """
    return "|".join(f"{k}={labels[k]}" for k in sorted(labels))


def parse_label_key(key: str) -> dict:
    """Invert :func:`_label_key` (empty string -> no labels)."""
    if not key:
        return {}
    labels = {}
    for part in key.split("|"):
        name, _, value = part.partition("=")
        labels[name] = value
    return labels


class Counter:
    """A monotonically increasing count (runs, rounds, elements...)."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise AnalysisError(f"counters only go up, got {amount}")
        with self._lock:
            self.value += amount


class Gauge:
    """A point-in-time value (pool size, last cost ratio...)."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1) -> None:
        with self._lock:
            self.value -= amount


class Histogram:
    """Bucketed observations: log2-on-demand or a fixed bound ladder.

    ``buckets="log2"`` stores one integer count per power-of-two upper
    bound, created lazily — ``observe(v)`` lands in the smallest bucket
    ``2**k >= v`` (``v <= 0`` lands in bucket ``0``).  A tuple of
    ascending bounds gives fixed buckets with a ``+Inf`` overflow
    bucket, Prometheus-style.
    """

    __slots__ = ("_lock", "scheme", "counts", "total", "count")

    def __init__(self, lock: threading.Lock, buckets) -> None:
        self._lock = lock
        self.scheme = self.normalize_scheme(buckets)
        self.counts: dict[float, int] = {}
        self.total = 0.0
        self.count = 0

    @staticmethod
    def normalize_scheme(buckets):
        """Validate a bucket spec: ``"log2"`` or ascending bound tuple."""
        if buckets == "log2":
            return "log2"
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise AnalysisError(
                "histogram buckets must be strictly ascending bounds"
            )
        return bounds

    def _bucket_of(self, value: float) -> float:
        if self.scheme == "log2":
            if value <= 0:
                return 0.0
            return float(2 ** math.ceil(math.log2(value))) if value > 1 else 1.0
        for bound in self.scheme:
            if value <= bound:
                return bound
        return math.inf

    def observe(self, value: float) -> None:
        bucket = self._bucket_of(value)
        with self._lock:
            self.counts[bucket] = self.counts.get(bucket, 0) + 1
            self.total += value
            self.count += 1


class _NullInstrument:
    """The shared do-nothing counter/gauge/histogram."""

    __slots__ = ()

    def inc(self, amount=1) -> None:
        pass

    def dec(self, amount=1) -> None:
        pass

    def set(self, value) -> None:
        pass

    def observe(self, value) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """The default registry: records nothing, allocates nothing."""

    enabled = False

    def counter(self, name: str, **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, buckets="log2", **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def summary(self) -> dict:
        return {}

    def merge_snapshot(self, payload: dict) -> None:
        pass


class MetricsRegistry:
    """Thread-safe labeled instruments plus snapshot/merge plumbing."""

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, dict[str, Counter]] = {}
        self._gauges: dict[str, dict[str, Gauge]] = {}
        self._histograms: dict[str, dict[str, Histogram]] = {}

    # ------------------------------------------------------------------ #
    # instruments
    # ------------------------------------------------------------------ #

    def counter(self, name: str, **labels) -> Counter:
        key = _label_key(labels)
        family = self._counters.setdefault(name, {})
        instrument = family.get(key)
        if instrument is None:
            with self._lock:
                instrument = family.setdefault(key, Counter(self._lock))
        return instrument

    def gauge(self, name: str, **labels) -> Gauge:
        key = _label_key(labels)
        family = self._gauges.setdefault(name, {})
        instrument = family.get(key)
        if instrument is None:
            with self._lock:
                instrument = family.setdefault(key, Gauge(self._lock))
        return instrument

    def histogram(self, name: str, buckets="log2", **labels) -> Histogram:
        key = _label_key(labels)
        family = self._histograms.setdefault(name, {})
        instrument = family.get(key)
        if instrument is None:
            with self._lock:
                instrument = family.setdefault(
                    key, Histogram(self._lock, buckets)
                )
        elif instrument.scheme != Histogram.normalize_scheme(buckets):
            # silently mixing schemes would make merged bucket tables
            # meaningless; two callers must agree on a family's ladder
            raise AnalysisError(
                f"histogram {name!r} already registered with bucket "
                f"scheme {instrument.scheme!r}"
            )
        return instrument

    # ------------------------------------------------------------------ #
    # export
    # ------------------------------------------------------------------ #

    def snapshot(self) -> dict:
        """The registry's full state as JSON-serializable builtins.

        This is the wire format: worker ranks ship it over the round
        barrier, :func:`merge_snapshot` folds it into another registry,
        ``repro metrics --output`` writes it to disk, and
        :func:`prometheus_text` renders it.  Histogram bucket bounds
        are stringified floats (``"inf"`` for the overflow bucket) so
        the payload survives ``json.dumps(..., allow_nan=False)``.
        """
        with self._lock:
            counters = {
                name: {key: c.value for key, c in family.items()}
                for name, family in self._counters.items()
            }
            gauges = {
                name: {key: g.value for key, g in family.items()}
                for name, family in self._gauges.items()
            }
            histograms = {
                name: {
                    key: {
                        "scheme": (
                            "log2"
                            if h.scheme == "log2"
                            else list(h.scheme)
                        ),
                        "buckets": {
                            str(bound): count
                            for bound, count in sorted(h.counts.items())
                        },
                        "sum": h.total,
                        "count": h.count,
                    }
                    for key, h in family.items()
                }
                for name, family in self._histograms.items()
            }
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def summary(self) -> dict:
        """A compact per-family digest for ``RunReport.meta`` embedding.

        Counters and gauges keep their per-label values; histograms
        collapse to ``{count, sum}`` — enough for report consumers
        without dragging full bucket tables into every report row.
        """
        snap = self.snapshot()
        return {
            "counters": snap["counters"],
            "gauges": snap["gauges"],
            "histograms": {
                name: {
                    key: {"count": h["count"], "sum": h["sum"]}
                    for key, h in family.items()
                }
                for name, family in snap["histograms"].items()
            },
        }

    def merge_snapshot(self, payload: dict) -> None:
        """Fold a :meth:`snapshot` payload into this registry.

        Counters and histogram buckets add; gauges take the incoming
        value (last-writer-wins, the conventional gauge merge).  This
        is how the master folds worker-rank deltas after a round
        barrier — addition over integers, so any merge order produces
        identical totals.
        """
        for name, family in payload.get("counters", {}).items():
            for key, value in family.items():
                self.counter(name, **parse_label_key(key)).inc(value)
        for name, family in payload.get("gauges", {}).items():
            for key, value in family.items():
                self.gauge(name, **parse_label_key(key)).set(value)
        for name, family in payload.get("histograms", {}).items():
            for key, state in family.items():
                scheme = state.get("scheme", "log2")
                histogram = self.histogram(
                    name,
                    buckets="log2" if scheme == "log2" else tuple(scheme),
                    **parse_label_key(key),
                )
                with self._lock:
                    for bound, count in state.get("buckets", {}).items():
                        numeric = float(bound)
                        histogram.counts[numeric] = (
                            histogram.counts.get(numeric, 0) + int(count)
                        )
                    histogram.total += state.get("sum", 0.0)
                    histogram.count += int(state.get("count", 0))


def merge_snapshots(*payloads: dict) -> dict:
    """Pure-function fold of snapshot payloads (left to right)."""
    merged = MetricsRegistry()
    for payload in payloads:
        merged.merge_snapshot(payload)
    return merged.snapshot()


# ---------------------------------------------------------------------- #
# exposition
# ---------------------------------------------------------------------- #


def _format_value(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _prom_labels(key: str, extra: dict | None = None) -> str:
    labels = parse_label_key(key)
    if extra:
        labels = {**labels, **extra}
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in labels.items())
    return "{" + inner + "}"


def prometheus_text(source) -> str:
    """Render a registry (or a snapshot dict) as Prometheus text format.

    Histograms emit cumulative ``_bucket`` series with ``le`` labels
    plus ``_sum``/``_count``, per the exposition-format spec; an
    explicit ``+Inf`` bucket always closes the ladder.
    """
    snap = source if isinstance(source, dict) else source.snapshot()
    lines: list[str] = []
    for name in sorted(snap.get("counters", {})):
        lines.append(f"# TYPE {name} counter")
        for key, value in sorted(snap["counters"][name].items()):
            lines.append(f"{name}{_prom_labels(key)} {_format_value(value)}")
    for name in sorted(snap.get("gauges", {})):
        lines.append(f"# TYPE {name} gauge")
        for key, value in sorted(snap["gauges"][name].items()):
            lines.append(f"{name}{_prom_labels(key)} {_format_value(value)}")
    for name in sorted(snap.get("histograms", {})):
        lines.append(f"# TYPE {name} histogram")
        for key, state in sorted(snap["histograms"][name].items()):
            cumulative = 0
            bounds = sorted(
                (float(b), count) for b, count in state["buckets"].items()
            )
            for bound, count in bounds:
                if math.isinf(bound):
                    continue
                cumulative += count
                le = _prom_labels(key, {"le": _format_value(bound)})
                lines.append(f"{name}_bucket{le} {cumulative}")
            le = _prom_labels(key, {"le": "+Inf"})
            lines.append(f"{name}_bucket{le} {state['count']}")
            lines.append(
                f"{name}_sum{_prom_labels(key)} "
                f"{_format_value(float(state['sum']))}"
            )
            lines.append(f"{name}_count{_prom_labels(key)} {state['count']}")
    return "\n".join(lines) + "\n"


def write_snapshot(path, source) -> dict:
    """Write a registry's JSON snapshot to ``path``; returns the payload."""
    payload = source if isinstance(source, dict) else source.snapshot()
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, allow_nan=False)
        handle.write("\n")
    return payload


# ---------------------------------------------------------------------- #
# installation (mirrors repro.obs.tracer)
# ---------------------------------------------------------------------- #


class _MetricsState(threading.local):
    def __init__(self) -> None:
        self.registry = NullRegistry()


_STATE = _MetricsState()


def get_registry():
    """The metrics registry installed in this thread (no-op by default)."""
    return _STATE.registry


def set_registry(registry):
    """Install ``registry`` in this thread; returns the previous one."""
    previous = _STATE.registry
    _STATE.registry = registry
    return previous


@contextmanager
def use_registry(registry) -> Iterator:
    """Install ``registry`` in this thread for the duration of the block.

    Like ``use_tracer``: how a shared :class:`MetricsRegistry` follows
    ``run_many`` work onto executor threads (the registry is locked, so
    sharing is safe).
    """
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        _STATE.registry = previous


@contextmanager
def collecting() -> Iterator[MetricsRegistry]:
    """Collect metrics within the block; yields the registry."""
    registry = MetricsRegistry()
    with use_registry(registry):
        yield registry

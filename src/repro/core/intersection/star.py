"""StarIntersect (Algorithm 1): single-round intersection on a star.

The compute nodes split into ``Vα`` (nodes whose lighter link side is
below ``|R|``) and ``Vβ`` (data-rich nodes).  Every ``Vβ`` node receives
a full copy of the smaller relation ``R`` and joins it against its local
``S`` fragment; everything else is a *weighted* distributed hash join —
each value lands on node ``v`` with probability proportional to the data
``v`` already holds (``N_v`` for ``Vα`` nodes, ``|R_v|`` for ``Vβ``
nodes), which is what keeps each link within its Theorem 1 budget
(Lemma 1: within ``O(log N log |V|)`` of optimal w.h.p.).
"""

from __future__ import annotations

import numpy as np

from repro.data.distribution import Distribution
from repro.errors import ProtocolError
from repro.registry import register_protocol
from repro.sim.cluster import make_cluster
from repro.sim.protocol import ProtocolResult
from repro.topology.tree import TreeTopology, node_sort_key
from repro.util.hashing import WeightedNodeHasher
from repro.util.seeding import derive_seed

_R_RECV = "intersect.R.recv"
_S_RECV = "intersect.S.recv"


@register_protocol(
    task="set-intersection",
    name="star",
    accepts_seed=True,
    topology="star",
    description="StarIntersect (Algorithm 1) on a symmetric star",
)
def star_intersect(
    tree: TreeTopology,
    distribution: Distribution,
    *,
    seed: int = 0,
    r_tag: str = "R",
    s_tag: str = "S",
    bits_per_element: int = 64,
) -> ProtocolResult:
    """Run Algorithm 1 and return outputs plus the model cost.

    ``outputs[v]`` is the sorted array of common elements node ``v``
    emitted; their union over nodes is exactly ``R ∩ S``.
    """
    tree.require_symmetric("StarIntersect")
    if not tree.is_star():
        raise ProtocolError(
            f"StarIntersect needs a star topology, got {tree.name!r}; "
            "use tree_intersect for general trees"
        )
    distribution.validate_for(tree)

    # The analysis assumes |R| <= |S|; swap roles internally if needed.
    swapped = distribution.total(r_tag) > distribution.total(s_tag)
    small_tag, large_tag = (s_tag, r_tag) if swapped else (r_tag, s_tag)

    computes = sorted(tree.compute_nodes, key=node_sort_key)
    sizes = {
        v: distribution.size(v, small_tag) + distribution.size(v, large_tag)
        for v in computes
    }
    total = sum(sizes.values())
    r_size = distribution.total(small_tag)

    v_alpha = [v for v in computes if min(sizes[v], total - sizes[v]) < r_size]
    v_beta = [v for v in computes if min(sizes[v], total - sizes[v]) >= r_size]
    beta_set = frozenset(v_beta)

    # Pr[h(a) = v] = N_v / N' on Vα and |R_v| / N' on Vβ, where
    # N' = |R| + sum_{v in Vα} |S_v|.
    weights = [
        sizes[v] if v in set(v_alpha) else distribution.size(v, small_tag)
        for v in computes
    ]
    hasher = (
        WeightedNodeHasher(computes, weights, derive_seed(seed, "star-intersect"))
        if sum(weights) > 0
        else None
    )

    cluster = make_cluster(tree, distribution, bits_per_element=bits_per_element)
    # One Steiner destination set per candidate owner: the hashed node
    # plus every data-rich Vβ node (which all receive a full R copy).
    destination_sets = [beta_set | {v} for v in computes]
    with cluster.round() as ctx:
        for v in computes:
            r_local = cluster.local(v, small_tag)
            if len(r_local) and hasher is not None:
                ctx.exchange_multicast(
                    v,
                    hasher.assign_indices(r_local),
                    destination_sets,
                    r_local,
                    tag=_R_RECV,
                )
            elif len(r_local) and beta_set:
                ctx.multicast(v, beta_set, r_local, tag=_R_RECV)
            if v not in beta_set and hasher is not None:
                s_local = cluster.local(v, large_tag)
                if len(s_local):
                    ctx.exchange(
                        v,
                        hasher.assign_indices(s_local),
                        s_local,
                        tag=_S_RECV,
                    )

    outputs: dict = {}
    for v in computes:
        r_received = cluster.local(v, _R_RECV)
        s_final = cluster.local(v, _S_RECV)
        if v in beta_set:
            s_final = np.concatenate([s_final, cluster.local(v, large_tag)])
        outputs[v] = np.intersect1d(r_received, s_final)

    return ProtocolResult.from_ledger(
        "star-intersect",
        cluster.ledger,
        outputs=outputs,
        meta={
            "v_alpha": list(v_alpha),
            "v_beta": list(v_beta),
            "swapped_relations": swapped,
            "small_relation_size": r_size,
        },
    )

"""TreeIntersect (Algorithm 2): single-round intersection on any tree.

Given a balanced partition ``{V¹_C, ..., V^k_C}`` (Algorithm 3), block
``i`` gets its own weighted hash function ``h_i`` over its members
(probability ``N_v / sum_u N_u``).  Every ``R``-tuple is hashed into
*every* block — replication that multicast routing carries across each
link at most once — while every ``S``-tuple is hashed only within the
block of the node holding it.  Each node then intersects what it
received; block ``i`` jointly computes ``R ∩ (S restricted to block i)``
and the union over blocks is ``R ∩ S`` (Theorem 2: within
``O(log N log |V|)`` of the Theorem 1 bound w.h.p.).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.intersection.partition import balanced_partition, classify_edges
from repro.data.distribution import Distribution
from repro.registry import register_protocol
from repro.sim.cluster import make_cluster
from repro.sim.protocol import ProtocolResult
from repro.topology.tree import TreeTopology, node_sort_key
from repro.util.hashing import WeightedNodeHasher
from repro.util.seeding import derive_seed

_R_RECV = "intersect.R.recv"
_S_RECV = "intersect.S.recv"


@register_protocol(
    task="set-intersection",
    name="tree",
    accepts_seed=True,
    description="TreeIntersect (Algorithm 2) on any symmetric tree",
)
def tree_intersect(
    tree: TreeTopology,
    distribution: Distribution,
    *,
    seed: int = 0,
    r_tag: str = "R",
    s_tag: str = "S",
    blocks: Sequence[frozenset] | None = None,
    bits_per_element: int = 64,
) -> ProtocolResult:
    """Run Algorithm 2 and return outputs plus the model cost.

    ``blocks`` overrides the balanced partition (used by ablations: pass
    ``[tree.compute_nodes]`` to disable partitioning).  ``outputs[v]`` is
    the sorted array of common elements node ``v`` emitted; the union
    over nodes is exactly ``R ∩ S``.
    """
    tree.require_symmetric("TreeIntersect")
    distribution.validate_for(tree)

    swapped = distribution.total(r_tag) > distribution.total(s_tag)
    small_tag, large_tag = (s_tag, r_tag) if swapped else (r_tag, s_tag)

    computes = sorted(tree.compute_nodes, key=node_sort_key)
    node_index = {v: i for i, v in enumerate(computes)}
    sizes = {
        v: distribution.size(v, small_tag) + distribution.size(v, large_tag)
        for v in computes
    }
    r_size = distribution.total(small_tag)

    if blocks is None:
        blocks = balanced_partition(tree, sizes, r_size)
    blocks = [frozenset(b) for b in blocks]
    block_of = {v: i for i, block in enumerate(blocks) for v in block}

    hashers: list[WeightedNodeHasher | None] = []
    block_members: list[list] = []
    for i, block in enumerate(blocks):
        members = sorted(block, key=node_sort_key)
        block_members.append(members)
        weights = [sizes[v] for v in members]
        if sum(weights) > 0:
            hashers.append(
                WeightedNodeHasher(
                    members, weights, derive_seed(seed, "tree-intersect", i)
                )
            )
        else:
            hashers.append(None)

    active = [i for i, h in enumerate(hashers) if h is not None]
    cluster = make_cluster(tree, distribution, bits_per_element=bits_per_element)

    with cluster.round() as ctx:
        for v in computes:
            r_local = cluster.local(v, small_tag)
            if len(r_local) and active:
                # One destination per block; elements sharing the same
                # destination tuple form one multicast group, batched
                # through the round's multicast stream.
                member_ids = {
                    i: np.asarray(
                        [node_index[m] for m in block_members[i]], dtype=np.int64
                    )
                    for i in active
                }
                target_matrix = np.stack(
                    [
                        member_ids[i][hashers[i].assign_indices(r_local)]
                        for i in active
                    ],
                    axis=1,
                )
                unique_rows, inverse = np.unique(
                    target_matrix, axis=0, return_inverse=True
                )
                destination_sets = [
                    frozenset(computes[j] for j in row)
                    for row in unique_rows.tolist()
                ]
                ctx.exchange_multicast(
                    v,
                    np.ravel(inverse),
                    destination_sets,
                    r_local,
                    tag=_R_RECV,
                )
            s_local = cluster.local(v, large_tag)
            if len(s_local):
                hasher = hashers[block_of[v]]
                if hasher is None:  # pragma: no cover - weight>0 since S_v>0
                    continue
                ctx.exchange(
                    v,
                    hasher.assign_indices(s_local),
                    s_local,
                    tag=_S_RECV,
                    nodes=block_members[block_of[v]],
                )

    outputs: dict = {}
    for v in computes:
        outputs[v] = np.intersect1d(
            cluster.local(v, _R_RECV), cluster.local(v, _S_RECV)
        )

    classification = classify_edges(tree, sizes, r_size)
    return ProtocolResult.from_ledger(
        "tree-intersect",
        cluster.ledger,
        outputs=outputs,
        meta={
            "blocks": [sorted(map(str, b)) for b in blocks],
            "num_blocks": len(blocks),
            "num_alpha_edges": classification.num_alpha,
            "num_beta_edges": classification.num_beta,
            "swapped_relations": swapped,
            "small_relation_size": r_size,
        },
    )

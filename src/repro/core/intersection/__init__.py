"""Set intersection on symmetric trees (Section 3).

The task: given sets ``R`` and ``S`` partitioned across the compute
nodes, emit every common element at some node.  The section proves a
per-link lower bound via lopsided set disjointness (Theorem 1) and gives
single-round randomized hashing algorithms matching it up to an
``O(log N log |V|)`` factor: Algorithm 1 for stars and Algorithm 2 for
general trees, the latter built on the *balanced partition* of the
compute nodes (Definition 1, Algorithm 3).
"""

from repro.core.intersection.lower_bound import intersection_lower_bound
from repro.core.intersection.partition import (
    EdgeClassification,
    balanced_partition,
    block_spanning_edges,
    classify_edges,
    verify_balanced_partition,
)
from repro.core.intersection.star import star_intersect
from repro.core.intersection.tree import tree_intersect

__all__ = [
    "intersection_lower_bound",
    "EdgeClassification",
    "classify_edges",
    "balanced_partition",
    "verify_balanced_partition",
    "block_spanning_edges",
    "star_intersect",
    "tree_intersect",
]

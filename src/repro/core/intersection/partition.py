"""α/β edge classification and the balanced partition (Section 3.3).

With ``|R| <= |S|``, a link of the tree is an **α-edge** when the lighter
of its two sides holds less than ``|R|`` data (the link's disjointness
budget is the data itself), and a **β-edge** otherwise (the budget is
``|R|``).  Lemma 2 shows the β-edges induce a connected subtree ``Gβ``.

Algorithm 3 peels ``Gβ`` leaf by leaf, always the lightest first, merging
α-connected groups of compute nodes until each group holds at least
``|R|`` data; the resulting *balanced partition* (Definition 1) is what
lets Algorithm 2 hash ``S`` only within a block while replicating ``R``
across blocks, keeping every link within its budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping, Sequence

from repro.errors import ProtocolError, TopologyError
from repro.topology.tree import NodeId, TreeTopology, UndirectedEdge, node_sort_key


@dataclass(frozen=True)
class EdgeClassification:
    """The α/β split of the links for one instance (Section 3.3)."""

    alpha: frozenset
    beta: frozenset

    @property
    def num_alpha(self) -> int:
        return len(self.alpha)

    @property
    def num_beta(self) -> int:
        return len(self.beta)


def classify_edges(
    tree: TreeTopology,
    sizes: Mapping[NodeId, int],
    r_size: int,
) -> EdgeClassification:
    """Split links into α-edges and β-edges.

    ``sizes`` are the per-compute-node totals ``N_v``; ``r_size`` is the
    cardinality of the smaller relation ``|R|``.
    """
    alpha: set = set()
    beta: set = set()
    for edge, (minus, plus) in tree.side_weights(sizes).items():
        if min(minus, plus) >= r_size:
            beta.add(edge)
        else:
            alpha.add(edge)
    return EdgeClassification(frozenset(alpha), frozenset(beta))


def _alpha_components(
    tree: TreeTopology, alpha_edges: frozenset
) -> dict[NodeId, int]:
    """Union-find over α-edges: node -> α-component id."""
    parent: dict[NodeId, NodeId] = {n: n for n in tree.nodes}

    def find(x: NodeId) -> NodeId:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for (a, b) in alpha_edges:
        root_a, root_b = find(a), find(b)
        if root_a != root_b:
            parent[root_a] = root_b

    roots = sorted({find(n) for n in tree.nodes}, key=node_sort_key)
    index = {root: i for i, root in enumerate(roots)}
    return {n: index[find(n)] for n in tree.nodes}


def balanced_partition(
    tree: TreeTopology,
    sizes: Mapping[NodeId, int],
    r_size: int,
) -> list[frozenset]:
    """Compute a balanced partition of the compute nodes (Algorithm 3).

    Returns the blocks as frozensets of compute nodes.  When there are no
    β-edges the whole compute set is α-connected and forms one block.

    The peeling keeps Lemma 3's guarantees under the paper's assumption
    ``r_size <= |S|`` (i.e. ``sum_v N_v >= 2 * r_size``); called outside
    that regime, a final under-weight group is merged into the block
    created last, preserving the partition property (noted for
    completeness — the intersection protocol always passes the smaller
    relation).
    """
    classification = classify_edges(tree, sizes, r_size)
    computes = tree.compute_nodes
    if not classification.beta:
        return [frozenset(computes)]

    component_of = _alpha_components(tree, classification.alpha)
    gamma: dict[NodeId, set] = {}
    adjacency: dict[NodeId, set] = {}
    for (a, b) in classification.beta:
        adjacency.setdefault(a, set()).add(b)
        adjacency.setdefault(b, set()).add(a)
    seen_components: dict[int, NodeId] = {}
    for vertex in adjacency:
        component = component_of[vertex]
        if component in seen_components:  # pragma: no cover - Lemma 2
            raise TopologyError(
                f"Gβ vertices {seen_components[component]!r} and {vertex!r} "
                "are α-connected; contradicts Lemma 2"
            )
        seen_components[component] = vertex
        gamma[vertex] = {
            v for v in computes if component_of[v] == component
        }
    weight = {
        x: sum(sizes.get(v, 0) for v in members)
        for x, members in gamma.items()
    }

    blocks: list[frozenset] = []
    remaining = set(adjacency)
    while remaining:
        if len(remaining) == 1:
            x = next(iter(remaining))
            if weight[x] >= r_size or not blocks:
                blocks.append(frozenset(gamma[x]))
            else:
                blocks[-1] = blocks[-1] | frozenset(gamma[x])
            remaining.clear()
            break
        leaves = [v for v in remaining if len(adjacency[v]) == 1]
        x = min(leaves, key=lambda v: (weight[v], node_sort_key(v)))
        if weight[x] >= r_size:
            if gamma[x]:
                blocks.append(frozenset(gamma[x]))
        else:
            (y,) = adjacency[x]
            gamma[y] |= gamma[x]
            weight[y] += weight[x]
        (y,) = adjacency[x]
        adjacency[y].discard(x)
        del adjacency[x]
        remaining.discard(x)

    blocks = [b for b in blocks if b]
    covered = frozenset().union(*blocks) if blocks else frozenset()
    if covered != computes:  # pragma: no cover - safety net
        raise ProtocolError(
            "balanced partition does not cover all compute nodes; "
            f"missing {sorted(map(str, computes - covered))}"
        )
    return blocks


def block_spanning_edges(
    tree: TreeTopology, block: frozenset
) -> frozenset:
    """Links of the minimal subtree connecting a block's compute nodes.

    A link belongs to the spanning (Steiner) tree of ``block`` iff both of
    its sides contain at least one member of the block.
    """
    edges = set()
    for edge in tree.undirected_edges():
        minus, plus = tree.compute_sides(edge)
        if (minus & block) and (plus & block):
            edges.add(edge)
    return frozenset(edges)


def verify_balanced_partition(
    tree: TreeTopology,
    sizes: Mapping[NodeId, int],
    r_size: int,
    blocks: Sequence[frozenset],
) -> list[str]:
    """Check all four properties of Definition 1; return violations.

    An empty list means the partition is balanced.  Used by tests and by
    the Figure 2 benchmark to certify Algorithm 3's output.
    """
    violations: list[str] = []
    computes = tree.compute_nodes

    union: set = set()
    for block in blocks:
        if union & block:
            violations.append("blocks overlap")
        union |= set(block)
    if union != set(computes):
        violations.append("blocks do not cover the compute nodes")

    classification = classify_edges(tree, sizes, r_size)
    component_of = _alpha_components(tree, classification.alpha)
    block_of = {v: i for i, block in enumerate(blocks) for v in block}

    # (1) α-connected compute nodes share a block.
    by_component: dict[int, set] = {}
    for v in computes:
        by_component.setdefault(component_of[v], set()).add(block_of.get(v, -1))
    for component, block_ids in by_component.items():
        if len(block_ids) > 1:
            violations.append(
                f"α-component {component} is split across blocks {sorted(block_ids)}"
            )

    # (2) every link in at most one block's spanning tree.
    edge_multiplicity: dict[UndirectedEdge, int] = {}
    spanning = [block_spanning_edges(tree, block) for block in blocks]
    for edges in spanning:
        for edge in edges:
            edge_multiplicity[edge] = edge_multiplicity.get(edge, 0) + 1
    for edge, count in edge_multiplicity.items():
        if count > 1:
            violations.append(f"link {edge} appears in {count} spanning trees")

    # (3) every block holds at least |R| data.
    for i, block in enumerate(blocks):
        total = sum(sizes.get(v, 0) for v in block)
        if total < r_size:
            violations.append(
                f"block {i} holds {total} < |R|={r_size} elements"
            )

    # (4) every β-edge inside a block's spanning tree has a light side.
    for i, (block, edges) in enumerate(zip(blocks, spanning)):
        for edge in edges:
            if edge not in classification.beta:
                continue
            minus, plus = tree.compute_sides(edge)
            inside_minus = sum(sizes.get(v, 0) for v in minus & block)
            inside_plus = sum(sizes.get(v, 0) for v in plus & block)
            if min(inside_minus, inside_plus) > r_size:
                violations.append(
                    f"β-edge {edge} in block {i} has both sides above |R|: "
                    f"{inside_minus} / {inside_plus} vs {r_size}"
                )
    return violations

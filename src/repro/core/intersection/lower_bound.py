"""The set-intersection lower bound (Theorem 1).

For every link ``e`` of a symmetric tree, any algorithm computing
``R ∩ S`` must pay at least

    (1 / w_e) * min(|R|, |S|, sum_{v in V-e} N_v, sum_{v in V+e} N_v)

because the data on the two sides of ``e`` forms a two-party lopsided
set-disjointness instance whose only channel is ``e``.  The bound is the
maximum over links, holds for any number of rounds, and is expressed here
in element units (the paper states it in bits; both sides of every ratio
we report scale by the same bits-per-element factor).
"""

from __future__ import annotations

from typing import Mapping

from repro.core.common import LowerBound
from repro.data.distribution import Distribution
from repro.topology.tree import TreeTopology


def intersection_lower_bound(
    tree: TreeTopology,
    distribution: Distribution,
    *,
    r_tag: str = "R",
    s_tag: str = "S",
) -> LowerBound:
    """Instantiate Theorem 1 for one topology and placement."""
    tree.require_symmetric("the Theorem 1 lower bound")
    r_total = distribution.total(r_tag)
    s_total = distribution.total(s_tag)
    sizes = {
        v: distribution.size(v, r_tag) + distribution.size(v, s_tag)
        for v in tree.compute_nodes
    }
    per_edge: dict = {}
    for edge, (minus, plus) in tree.side_weights(sizes).items():
        bandwidth = tree.undirected_bandwidth(edge)
        per_edge[edge] = min(r_total, s_total, minus, plus) / bandwidth
    return LowerBound.from_per_edge(per_edge, "Theorem 1 (set intersection)")

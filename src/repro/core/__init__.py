"""The paper's primary contribution: algorithms and lower bounds for
set intersection (Section 3), cartesian product (Section 4) and sorting
(Section 5) on symmetric tree topologies, all parameterised by the
initial data placement.
"""

from repro.core.common import LowerBound

__all__ = ["LowerBound"]

"""Shared result type for the closed-form lower bounds.

Every lower bound in the paper has the shape "maximize some per-link
expression over the links of the tree" (Theorems 1, 3, 6) or a global
expression (Theorem 4).  :class:`LowerBound` keeps the per-link values
alongside the maximum so reports can show *which* link is the bottleneck.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable


@dataclass(frozen=True)
class LowerBound:
    """A lower bound on the cost of any correct algorithm for one instance.

    Attributes
    ----------
    value:
        The bound, in element units (the same units as
        :attr:`repro.sim.protocol.ProtocolResult.cost`).
    bottleneck_edge:
        The canonical undirected link achieving the maximum, or ``None``
        for bounds that are not per-link maxima (Theorem 4) or when the
        bound is zero.
    per_edge:
        Per-link bound values (empty for non-per-link bounds).
    description:
        Which theorem the bound instantiates.
    """

    value: float
    bottleneck_edge: tuple | None = None
    per_edge: dict = field(default_factory=dict)
    description: str = ""

    @staticmethod
    def from_per_edge(per_edge: dict, description: str) -> "LowerBound":
        """Build the max-over-links bound from per-link values."""
        if not per_edge:
            return LowerBound(0.0, None, {}, description)
        bottleneck = max(per_edge, key=lambda e: per_edge[e])
        return LowerBound(
            value=float(per_edge[bottleneck]),
            bottleneck_edge=bottleneck,
            per_edge=dict(per_edge),
            description=description,
        )

    def ratio_of(self, cost: float) -> float:
        """``cost / value``; infinity when the bound is zero but cost is not."""
        if self.value > 0:
            return cost / self.value
        return 0.0 if cost == 0 else float("inf")

"""StarCartesianProduct (Algorithm 4).

If some node already holds more than half the data, every other node
ships its data there — Lemma 7 shows the Theorem 3 bound is then within a
factor two of this strategy.  Otherwise the G-dagger of the star points
every compute node at the hub and the weighted HyperCube is optimal.
"""

from __future__ import annotations

from repro.core.cartesian.routing import gather_all_pairs
from repro.core.cartesian.whc import whc_cartesian_product
from repro.data.distribution import Distribution
from repro.errors import ProtocolError
from repro.registry import register_protocol
from repro.sim.cluster import make_cluster
from repro.sim.protocol import ProtocolResult
from repro.topology.tree import TreeTopology, node_sort_key


@register_protocol(
    task="cartesian-product",
    name="star",
    topology="star",
    description="StarCartesianProduct (Algorithm 4) on a symmetric star",
)
def star_cartesian_product(
    tree: TreeTopology,
    distribution: Distribution,
    *,
    r_tag: str = "R",
    s_tag: str = "S",
    materialize: bool = False,
    bits_per_element: int = 64,
) -> ProtocolResult:
    """Run Algorithm 4 on a symmetric star; requires ``|R| == |S|``."""
    tree.require_symmetric("StarCartesianProduct")
    if not tree.is_star():
        raise ProtocolError(
            "StarCartesianProduct needs a star; use tree_cartesian_product"
        )
    distribution.validate_for(tree)
    r_total = distribution.total(r_tag)
    s_total = distribution.total(s_tag)
    if r_total != s_total:
        raise ProtocolError(
            f"Algorithm 4 handles |R| == |S| (got {r_total} vs {s_total}); "
            "use generalized_star_cartesian_product for the unequal case"
        )
    sizes = {
        v: distribution.size(v, r_tag) + distribution.size(v, s_tag)
        for v in tree.compute_nodes
    }
    total = sum(sizes.values())
    if total == 0:
        cluster = make_cluster(tree, distribution, bits_per_element=bits_per_element)
        outputs = {v: {"num_pairs": 0} for v in tree.compute_nodes}
        return ProtocolResult.from_ledger(
            "star-cartesian", cluster.ledger, outputs=outputs,
            meta={"strategy": "empty"},
        )

    heaviest = max(sorted(sizes, key=node_sort_key), key=lambda v: sizes[v])
    if sizes[heaviest] > total / 2:
        cluster = make_cluster(tree, distribution, bits_per_element=bits_per_element)
        outputs = gather_all_pairs(
            cluster, heaviest, r_tag=r_tag, s_tag=s_tag, materialize=materialize
        )
        return ProtocolResult.from_ledger(
            "star-cartesian",
            cluster.ledger,
            outputs=outputs,
            meta={"strategy": "gather", "target": heaviest},
        )

    result = whc_cartesian_product(
        tree,
        distribution,
        r_tag=r_tag,
        s_tag=s_tag,
        materialize=materialize,
        bits_per_element=bits_per_element,
    )
    result.protocol = "star-cartesian"
    result.meta["strategy"] = "weighted-hypercube"
    return result

"""Cartesian product on symmetric trees (Section 4).

The task: enumerate all of ``R x S`` across the compute nodes.  Each
output pair is a cell of the ``|R| x |S|`` grid; the algorithms assign
every compute node a power-of-two *square* of the grid sized in
proportion to its link bandwidth (the weighted HyperCube of Section 4.2,
generalized to trees by Algorithm 5), so that each node receives data
proportional to what its links can carry.  Two lower bounds certify
optimality: a flow bound per link (Theorem 3) and a counting bound over
minimal covers of the oriented tree G-dagger (Theorem 4).
"""

from repro.core.cartesian.lower_bounds import (
    cartesian_lower_bound,
    cartesian_lower_bound_cover,
    cartesian_lower_bound_flow,
)
from repro.core.cartesian.grid import GridLabeling
from repro.core.cartesian.packing import Tile, merge_pool, pack_by_dagger, pack_flat
from repro.core.cartesian.tree_packing import TreePackingPlan, balanced_packing_tree
from repro.core.cartesian.whc import whc_cartesian_product, whc_dimensions
from repro.core.cartesian.star import star_cartesian_product
from repro.core.cartesian.unequal import (
    balanced_packing_unequal,
    generalized_star_cartesian_product,
    l_star,
    unequal_cartesian_lower_bound,
    unequal_lower_bound_counting,
    unequal_lower_bound_flow,
)
from repro.core.cartesian.tree import tree_cartesian_product

__all__ = [
    "cartesian_lower_bound",
    "cartesian_lower_bound_flow",
    "cartesian_lower_bound_cover",
    "GridLabeling",
    "Tile",
    "merge_pool",
    "pack_by_dagger",
    "pack_flat",
    "TreePackingPlan",
    "balanced_packing_tree",
    "whc_dimensions",
    "whc_cartesian_product",
    "star_cartesian_product",
    "l_star",
    "balanced_packing_unequal",
    "generalized_star_cartesian_product",
    "unequal_cartesian_lower_bound",
    "unequal_lower_bound_flow",
    "unequal_lower_bound_counting",
    "tree_cartesian_product",
]

"""Cartesian product on general symmetric trees (Section 4.4, Theorem 5).

The oriented tree G-dagger decides the strategy:

* **compute root** — all data flows downhill to the root, which
  enumerates everything; this matches the Theorem 3 bound;
* **router root** — Algorithm 5 sizes a square per compute node, the
  locality-preserving packing places them (at most three squares of each
  size cross any link), and a single round of Steiner multicasts routes
  every element to the tiles that need it.

The paper routes in two steps through the root; we multicast directly
along Steiner trees, which is edge-wise dominated by the two-step route
(``path(u, v) ⊆ path(u, r) ∪ path(r, v)`` in a tree), so the Theorem 5
guarantee carries over and the protocol stays one round (see DESIGN.md).
"""

from __future__ import annotations

from repro.core.cartesian.grid import GridLabeling
from repro.core.cartesian.packing import coverage_report, pack_by_dagger
from repro.core.cartesian.routing import (
    R_RECV,
    S_RECV,
    collect_outputs,
    gather_all_pairs,
    route_axis,
)
from repro.core.cartesian.tree_packing import balanced_packing_tree
from repro.data.distribution import Distribution
from repro.errors import ProtocolError
from repro.registry import register_protocol
from repro.sim.cluster import make_cluster
from repro.sim.protocol import ProtocolResult
from repro.topology.dagger import build_dagger
from repro.topology.tree import TreeTopology


@register_protocol(
    task="cartesian-product",
    name="tree",
    description="Theorem 5 dagger-packing product on any symmetric tree",
)
def tree_cartesian_product(
    tree: TreeTopology,
    distribution: Distribution,
    *,
    r_tag: str = "R",
    s_tag: str = "S",
    materialize: bool = False,
    bits_per_element: int = 64,
) -> ProtocolResult:
    """Run the Theorem 5 protocol; requires ``|R| == |S|``."""
    tree.require_symmetric("tree cartesian product")
    distribution.validate_for(tree)
    r_total = distribution.total(r_tag)
    s_total = distribution.total(s_tag)
    if r_total != s_total:
        raise ProtocolError(
            f"Theorem 5 handles |R| == |S| (got {r_total} vs {s_total}); "
            "use generalized_star_cartesian_product for the unequal case"
        )
    sizes = {
        v: distribution.size(v, r_tag) + distribution.size(v, s_tag)
        for v in tree.compute_nodes
    }
    n_total = sum(sizes.values())
    cluster = make_cluster(tree, distribution, bits_per_element=bits_per_element)
    if n_total == 0:
        outputs = {v: {"num_pairs": 0} for v in tree.compute_nodes}
        return ProtocolResult.from_ledger(
            "tree-cartesian", cluster.ledger, outputs=outputs,
            meta={"strategy": "empty"},
        )

    dagger = build_dagger(tree, sizes)
    if dagger.root_is_compute:
        outputs = gather_all_pairs(
            cluster, dagger.root, r_tag=r_tag, s_tag=s_tag,
            materialize=materialize,
        )
        return ProtocolResult.from_ledger(
            "tree-cartesian",
            cluster.ledger,
            outputs=outputs,
            meta={"strategy": "gather-to-root", "target": dagger.root},
        )

    plan = balanced_packing_tree(dagger, n_total)
    tiles = pack_by_dagger(dagger, plan.dims, r_total, s_total)
    coverage = coverage_report(tiles, r_total, s_total)
    labeling = GridLabeling.from_distribution(
        tree, distribution, r_tag=r_tag, s_tag=s_tag
    )
    with cluster.round() as ctx:
        route_axis(
            ctx, cluster, labeling, tiles,
            axis="r", source_tag=r_tag, recv_tag=R_RECV,
        )
        route_axis(
            ctx, cluster, labeling, tiles,
            axis="s", source_tag=s_tag, recv_tag=S_RECV,
        )
    outputs = collect_outputs(cluster, labeling, tiles, materialize=materialize)
    return ProtocolResult.from_ledger(
        "tree-cartesian",
        cluster.ledger,
        outputs=outputs,
        meta={
            "strategy": "balanced-packing",
            "dagger_root": dagger.root,
            "dims": dict(plan.dims),
            "coverage": coverage,
        },
    )

"""Global labelling of R and S — the ``|R| x |S|`` output grid.

Section 4.2: fix a strict ordering of the compute nodes; each node labels
its local ``R`` elements with consecutive global indices (and likewise
for ``S``), so each output pair corresponds to a unique cell of the
``{0..|R|-1} x {0..|S|-1}`` grid.  The labelling is pure bookkeeping —
it is derived from the known fragment cardinalities, so every node can
compute it without communication.

We use zero-based, half-open ranges throughout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterator

from repro.data.distribution import Distribution
from repro.errors import ProtocolError
from repro.topology.tree import NodeId, TreeTopology


@dataclass(frozen=True)
class GridLabeling:
    """Label ranges per node for both relations.

    ``r_ranges[v] = (lo, hi)`` means node ``v`` initially holds the ``R``
    elements with global labels ``lo..hi-1``, in local storage order.
    """

    node_order: tuple
    r_ranges: dict
    s_ranges: dict
    r_total: int
    s_total: int

    @classmethod
    def from_distribution(
        cls,
        tree: TreeTopology,
        distribution: Distribution,
        *,
        r_tag: str = "R",
        s_tag: str = "S",
    ) -> "GridLabeling":
        """Label fragments following the tree's left-to-right node order."""
        order = tuple(tree.left_to_right_compute_order())
        r_ranges: dict = {}
        s_ranges: dict = {}
        r_offset = 0
        s_offset = 0
        for node in order:
            r_count = distribution.size(node, r_tag)
            s_count = distribution.size(node, s_tag)
            r_ranges[node] = (r_offset, r_offset + r_count)
            s_ranges[node] = (s_offset, s_offset + s_count)
            r_offset += r_count
            s_offset += s_count
        return cls(
            node_order=order,
            r_ranges=r_ranges,
            s_ranges=s_ranges,
            r_total=r_offset,
            s_total=s_offset,
        )

    def ranges(self, axis: str) -> dict:
        """Label ranges for one axis: ``"r"`` or ``"s"``."""
        if axis == "r":
            return dict(self.r_ranges)
        if axis == "s":
            return dict(self.s_ranges)
        raise ProtocolError(f"axis must be 'r' or 's', got {axis!r}")

    def total(self, axis: str) -> int:
        if axis == "r":
            return self.r_total
        if axis == "s":
            return self.s_total
        raise ProtocolError(f"axis must be 'r' or 's', got {axis!r}")

    def owners_overlapping(
        self, axis: str, lo: int, hi: int
    ) -> Iterator[tuple[NodeId, int, int]]:
        """Yield ``(node, local_lo, local_hi)`` for labels in ``[lo, hi)``.

        ``local_lo:local_hi`` indexes into the node's local fragment (in
        storage order), covering exactly the part of its label range that
        intersects ``[lo, hi)``.
        """
        ranges = self.r_ranges if axis == "r" else self.s_ranges
        for node in self.node_order:
            a, b = ranges[node]
            start = max(a, lo)
            stop = min(b, hi)
            if start < stop:
                yield node, start - a, stop - a

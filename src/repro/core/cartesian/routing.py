"""Shared single-round routing of grid tiles (Sections 4.2-4.4).

Given the tile assignment, node ``v`` must receive the ``R`` elements
whose labels fall in its tile's column range and the ``S`` elements in
its row range.  Tiles stacked above each other share column ranges, so an
``R`` element usually has several destinations; the sender issues one
multicast per maximal label segment with a constant destination set, and
the simulator's Steiner routing carries each element across each link
once — the deduplication the Theorem 5 analysis counts.
"""

from __future__ import annotations

from typing import Hashable, Mapping

import numpy as np

from repro.core.cartesian.grid import GridLabeling
from repro.core.cartesian.packing import Tile
from repro.errors import PackingError
from repro.sim.cluster import Cluster, RoundContext
from repro.topology.tree import NodeId

R_RECV = "cartesian.R.recv"
S_RECV = "cartesian.S.recv"


def axis_segments(
    tiles: Mapping[NodeId, Tile | None], axis: str, total: int
) -> list[tuple[int, int, frozenset]]:
    """Maximal label segments of one axis with a constant destination set.

    Returns ``(lo, hi, destinations)`` triples covering ``[0, total)``;
    raises :class:`PackingError` if any label has no destination, since
    the packing is then not a cover.
    """
    events: dict[int, int] = {0: 0, total: 0}
    ranges = []
    for node, tile in tiles.items():
        if tile is None:
            continue
        lo, hi = tile.r_range(total) if axis == "r" else tile.s_range(total)
        if lo < hi:
            ranges.append((lo, hi, node))
            events[lo] = 0
            events[hi] = 0
    boundaries = sorted(events)
    segments: list[tuple[int, int, frozenset]] = []
    for lo, hi in zip(boundaries[:-1], boundaries[1:]):
        active = frozenset(
            node for (a, b, node) in ranges if a <= lo and hi <= b
        )
        if not active:
            raise PackingError(
                f"{axis.upper()}-labels [{lo}, {hi}) have no destination tile; "
                "the packing does not cover the grid"
            )
        segments.append((lo, hi, active))
    return segments


def route_axis(
    ctx: RoundContext,
    cluster: Cluster,
    labeling: GridLabeling,
    tiles: Mapping[NodeId, Tile | None],
    *,
    axis: str,
    source_tag: str,
    recv_tag: str,
) -> None:
    """Multicast every element of one relation to the tiles needing it."""
    total = labeling.total(axis)
    if total == 0:
        return
    for lo, hi, destinations in axis_segments(tiles, axis, total):
        for owner, local_lo, local_hi in labeling.owners_overlapping(
            axis, lo, hi
        ):
            local = cluster.local(owner, source_tag)
            ctx.multicast(
                owner,
                destinations,
                local[local_lo:local_hi],
                tag=recv_tag,
            )


def collect_outputs(
    cluster: Cluster,
    labeling: GridLabeling,
    tiles: Mapping[NodeId, Tile | None],
    *,
    materialize: bool,
) -> dict:
    """Per-node output description; verifies each tile got its exact slices."""
    outputs: dict = {}
    total_pairs = 0
    for node, tile in tiles.items():
        if tile is None:
            outputs[node] = {"num_pairs": 0}
            continue
        r_values = cluster.local(node, R_RECV)
        s_values = cluster.local(node, S_RECV)
        r_lo, r_hi = tile.r_range(labeling.r_total)
        s_lo, s_hi = tile.s_range(labeling.s_total)
        if len(r_values) != r_hi - r_lo or len(s_values) != s_hi - s_lo:
            raise PackingError(
                f"node {node!r} received {len(r_values)} R / {len(s_values)} S "
                f"elements but its tile spans {r_hi - r_lo} x {s_hi - s_lo}"
            )
        num_pairs = len(r_values) * len(s_values)
        total_pairs += num_pairs
        entry: dict = {
            "num_pairs": num_pairs,
            "r_range": (r_lo, r_hi),
            "s_range": (s_lo, s_hi),
        }
        if materialize and num_pairs:
            entry["pairs"] = np.stack(
                [
                    np.repeat(r_values, len(s_values)),
                    np.tile(s_values, len(r_values)),
                ],
                axis=1,
            )
        outputs[node] = entry
    expected = labeling.r_total * labeling.s_total
    if total_pairs != expected:
        raise PackingError(
            f"tiles enumerate {total_pairs} pairs, expected {expected}"
        )
    return outputs


def gather_all_pairs(
    cluster: Cluster,
    target: NodeId,
    *,
    r_tag: str,
    s_tag: str,
    materialize: bool,
) -> dict:
    """One round: every node ships both fragments to ``target``.

    Optimal whenever a single node already holds more than half the data
    (Lemma 7's first case) or is the G-dagger root (Section 4.1).
    """
    computes = cluster.compute_order
    with cluster.round() as ctx:
        for node in computes:
            if node == target:
                continue
            for tag, recv in ((r_tag, R_RECV), (s_tag, S_RECV)):
                local = cluster.local(node, tag)
                if len(local):
                    ctx.send(node, target, local, tag=recv)
    r_all = np.concatenate(
        [cluster.local(target, r_tag), cluster.local(target, R_RECV)]
    )
    s_all = np.concatenate(
        [cluster.local(target, s_tag), cluster.local(target, S_RECV)]
    )
    outputs = {node: {"num_pairs": 0} for node in computes}
    entry: dict = {"num_pairs": len(r_all) * len(s_all)}
    if materialize and entry["num_pairs"]:
        entry["pairs"] = np.stack(
            [np.repeat(r_all, len(s_all)), np.tile(s_all, len(r_all))],
            axis=1,
        )
    outputs[target] = entry
    return outputs

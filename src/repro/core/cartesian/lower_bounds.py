"""Cartesian-product lower bounds (Theorems 3 and 4).

Theorem 3 is a per-link *flow* bound: if a link cannot carry the lighter
side's data, that side must instead receive everything, so every link
costs at least ``min(sum_{V-e} N_v, sum_{V+e} N_v) / w_e``.

Theorem 4 is a *counting* bound: pick any minimal cover ``U`` of the
oriented tree G-dagger (other than the root alone); the subtrees rooted
at cover members are disjoint and must jointly enumerate all
``|R| x |S|`` pairs, yet the pairs producible inside a subtree are
quadratic in what its single out-link can carry — giving
``N / sqrt(sum_{u in U} w_u^2)``.  The strongest such bound uses the
cover minimizing ``sum w_u^2``, which
:func:`repro.topology.dagger.optimal_cover` computes in linear time.
Both bounds are in element (tuple) units, as in the paper.
"""

from __future__ import annotations

from repro.core.common import LowerBound
from repro.data.distribution import Distribution
from repro.topology.dagger import build_dagger, optimal_cover
from repro.topology.tree import TreeTopology


def _sizes(
    tree: TreeTopology, distribution: Distribution, r_tag: str, s_tag: str
) -> dict:
    return {
        v: distribution.size(v, r_tag) + distribution.size(v, s_tag)
        for v in tree.compute_nodes
    }


def cartesian_lower_bound_flow(
    tree: TreeTopology,
    distribution: Distribution,
    *,
    r_tag: str = "R",
    s_tag: str = "S",
) -> LowerBound:
    """Instantiate Theorem 3 for one topology and placement."""
    tree.require_symmetric("the Theorem 3 lower bound")
    sizes = _sizes(tree, distribution, r_tag, s_tag)
    per_edge: dict = {}
    for edge, (minus, plus) in tree.side_weights(sizes).items():
        bandwidth = tree.undirected_bandwidth(edge)
        per_edge[edge] = min(minus, plus) / bandwidth
    return LowerBound.from_per_edge(per_edge, "Theorem 3 (cartesian, flow)")


def cartesian_lower_bound_cover(
    tree: TreeTopology,
    distribution: Distribution,
    *,
    r_tag: str = "R",
    s_tag: str = "S",
) -> LowerBound:
    """Instantiate Theorem 4 for one topology and placement.

    The theorem applies when the G-dagger root is *not* a compute node
    (when it is, gathering everything at the root already matches
    Theorem 3 and no counting bound is needed); in that case this
    returns a zero bound, which :func:`cartesian_lower_bound` then
    ignores in the maximum.
    """
    tree.require_symmetric("the Theorem 4 lower bound")
    sizes = _sizes(tree, distribution, r_tag, s_tag)
    total = sum(sizes.values())
    if total == 0 or len(tree.nodes) == 1:
        return LowerBound(0.0, description="Theorem 4 (trivial instance)")
    dagger = build_dagger(tree, sizes)
    if dagger.root_is_compute:
        return LowerBound(
            0.0, description="Theorem 4 (inapplicable: G-dagger root is a compute node)"
        )
    cover, denominator = optimal_cover(dagger)
    if denominator == 0 or denominator != denominator:  # 0 or NaN
        return LowerBound(0.0, description="Theorem 4 (degenerate cover)")
    return LowerBound(
        value=total / denominator,
        description=(
            f"Theorem 4 (cartesian, counting; cover of {len(cover)} nodes)"
        ),
    )


def cartesian_lower_bound(
    tree: TreeTopology,
    distribution: Distribution,
    *,
    r_tag: str = "R",
    s_tag: str = "S",
) -> LowerBound:
    """The stronger of Theorems 3 and 4 for one instance."""
    flow = cartesian_lower_bound_flow(
        tree, distribution, r_tag=r_tag, s_tag=s_tag
    )
    cover = cartesian_lower_bound_cover(
        tree, distribution, r_tag=r_tag, s_tag=s_tag
    )
    if cover.value > flow.value:
        return cover
    return flow

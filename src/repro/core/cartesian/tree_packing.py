"""BalancedPackingTree (Algorithm 5) — sizing squares on a tree.

Two sweeps over the oriented tree G-dagger:

1. **bottom-up** (post-order): ``w~_v = w_v`` at leaves and
   ``min(w_v, sqrt(sum of children w~^2))`` internally — each subtree's
   effective capacity is capped by its own out-link;
2. **top-down** (pre-order): ``l_r = 1`` at the root and
   ``l_v = l_parent * w~_v / sqrt(sum over siblings w~^2)`` — the root's
   unit budget is divided among subtrees in proportion to capacity.

Each compute node then gets a square of dimension
``d_v = min{2^k >= N * l_v}``.  Lemma 8 gives the invariants tested in
``tests/core/cartesian``: ``w~_v <= w_v``; ``l_v <= w~_v / w~_r``;
``w~_r`` equals ``sqrt(sum w_u^2)`` over some minimal cover; and
``l_u^2`` sums over a subtree's compute leaves to the subtree's own
``l_u^2`` — so ``sum_{v in V_C} l_v^2 = 1`` and the squares always cover
the grid.

Subtrees holding no compute node are pruned before the sweeps: they can
receive no square, and their (possibly huge) link bandwidths must not
dilute the budget shares of real compute subtrees.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable, Mapping

from repro.core.cartesian.packing import shrink_dimensions
from repro.errors import ProtocolError
from repro.topology.dagger import Dagger
from repro.topology.tree import NodeId
from repro.util.intmath import next_power_of_two_at_least


@dataclass(frozen=True)
class TreePackingPlan:
    """Output of Algorithm 5: the per-node quantities and square sizes."""

    wtilde: dict
    share: dict  # the paper's l_v
    dims: dict  # compute node -> square dimension d_v (power of two)

    def dimension(self, node: NodeId) -> int:
        return self.dims[node]


def _compute_bearing(dagger: Dagger) -> dict:
    """``node -> True`` iff the node's G-dagger subtree has a compute node."""
    bearing: dict = {}

    def visit(node: NodeId) -> bool:
        result = node in dagger.tree.compute_nodes
        for child in dagger.children(node):
            result = visit(child) or result
        bearing[node] = result
        return result

    visit(dagger.root)
    return bearing


def balanced_packing_tree(dagger: Dagger, n_total: int) -> TreePackingPlan:
    """Run Algorithm 5 on the oriented tree for input size ``N = n_total``.

    Requires the G-dagger root to be a router (the compute-root case is
    served by gathering, see Section 4.1) and finite bandwidths on every
    compute-bearing link (normalize with ``virtual_bandwidth="sum"`` if
    the leaf transform introduced infinite links).
    """
    if dagger.root_is_compute:
        raise ProtocolError(
            "Algorithm 5 assumes the G-dagger root is a router; route all "
            "data to the compute root instead (Section 4.1)"
        )
    if n_total <= 0:
        raise ProtocolError("Algorithm 5 needs a non-empty input")
    bearing = _compute_bearing(dagger)
    if not bearing[dagger.root]:
        raise ProtocolError("topology has no compute nodes under the root")

    def children_of(node: NodeId) -> list:
        return [c for c in dagger.children(node) if bearing[c]]

    wtilde: dict = {}
    order: list = []
    stack = [dagger.root]
    while stack:
        node = stack.pop()
        order.append(node)
        stack.extend(children_of(node))
    for node in reversed(order):  # post-order: children before parents
        children = children_of(node)
        if node != dagger.root:
            out_bw = dagger.out_bandwidth[node]
            if math.isinf(out_bw) and not children:
                raise ProtocolError(
                    f"compute leaf {node!r} has an infinite-bandwidth link; "
                    "normalize with virtual_bandwidth='sum' before packing"
                )
        if not children:
            wtilde[node] = dagger.out_bandwidth[node]
        else:
            children_value = math.sqrt(
                sum(wtilde[c] ** 2 for c in children)
            )
            if node == dagger.root:
                wtilde[node] = children_value
            else:
                wtilde[node] = min(dagger.out_bandwidth[node], children_value)

    share: dict = {dagger.root: 1.0}
    for node in order:  # pre-order: parents before children
        children = children_of(node)
        if not children:
            continue
        denominator = math.sqrt(sum(wtilde[c] ** 2 for c in children))
        for child in children:
            share[child] = share[node] * wtilde[child] / denominator

    dims = {
        node: next_power_of_two_at_least(n_total * share[node])
        for node in order
        if node in dagger.tree.compute_nodes
    }
    # Trim the power-of-two overshoot while the area still covers the
    # grid; every bound in the Theorem 5 analysis is monotone in the
    # dimensions, so this only lowers cost (see shrink_dimensions).
    dims = shrink_dimensions(dims, n_total * n_total)
    return TreePackingPlan(wtilde=wtilde, share=share, dims=dims)

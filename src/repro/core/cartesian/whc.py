"""The weighted HyperCube protocol on a star (Section 4.2).

Each compute node ``v`` of the star gets a square of dimension
``min{2^k >= w_v * L}`` with ``L = N / sqrt(sum_u w_u^2)`` (equation (1))
— capacity-proportional, unlike the classic HyperCube's equal squares —
packed by Lemma 5 and routed in a single deterministic round.  Lemma 6
bounds the cost by ``O(max(max_v N_v / w_v, N / sqrt(sum_v w_v^2)))``,
matching Theorems 3 and 4 on the star.
"""

from __future__ import annotations

import math
from typing import Hashable, Mapping

from repro.core.cartesian.grid import GridLabeling
from repro.core.cartesian.packing import (
    coverage_report,
    pack_flat,
    shrink_dimensions,
)
from repro.core.cartesian.routing import (
    R_RECV,
    S_RECV,
    collect_outputs,
    route_axis,
)
from repro.data.distribution import Distribution
from repro.errors import ProtocolError
from repro.registry import register_protocol
from repro.sim.cluster import make_cluster
from repro.sim.protocol import ProtocolResult
from repro.topology.tree import NodeId, TreeTopology, node_sort_key
from repro.util.intmath import next_power_of_two_at_least


def whc_dimensions(
    bandwidths: Mapping[NodeId, float], n_total: int, *, shrink: bool = True
) -> dict:
    """Equation (1): capacity-proportional power-of-two square dimensions.

    With ``shrink`` (default), dimensions are then greedily halved while
    the total area still covers the grid
    (:func:`repro.core.cartesian.packing.shrink_dimensions`), trimming
    the up-to-4x overshoot of the power-of-two rounding.
    """
    if n_total <= 0:
        raise ProtocolError("weighted HyperCube needs a non-empty input")
    for node, bandwidth in bandwidths.items():
        if math.isinf(bandwidth):
            raise ProtocolError(
                f"node {node!r} has an infinite-bandwidth link; square "
                "dimensions need finite bandwidths"
            )
    scale = n_total / math.sqrt(sum(w * w for w in bandwidths.values()))
    dims = {
        node: next_power_of_two_at_least(bandwidth * scale)
        for node, bandwidth in bandwidths.items()
    }
    if shrink:
        dims = shrink_dimensions(dims, n_total * n_total)
    return dims


@register_protocol(
    task="cartesian-product",
    name="whc",
    topology="star",
    description="Weighted HyperCube (Algorithm 5) on a symmetric star",
)
def whc_cartesian_product(
    tree: TreeTopology,
    distribution: Distribution,
    *,
    r_tag: str = "R",
    s_tag: str = "S",
    materialize: bool = False,
    bits_per_element: int = 64,
    dims: Mapping[NodeId, int] | None = None,
) -> ProtocolResult:
    """Run wHC on a symmetric star; requires ``|R| == |S|``.

    ``dims`` overrides the square dimensions (used by the classic-
    HyperCube baseline and by ablations); by default they follow
    equation (1).  ``outputs[v]["num_pairs"]`` counts the pairs node
    ``v`` enumerates; with ``materialize=True`` the actual pairs are
    included (tests only — the output is quadratic).
    """
    tree.require_symmetric("the weighted HyperCube")
    if not tree.is_star():
        raise ProtocolError(
            "the weighted HyperCube runs on stars; use "
            "tree_cartesian_product for general trees"
        )
    distribution.validate_for(tree)
    r_total = distribution.total(r_tag)
    s_total = distribution.total(s_tag)
    if r_total != s_total:
        raise ProtocolError(
            f"wHC handles |R| == |S| (got {r_total} vs {s_total}); use "
            "generalized_star_cartesian_product for the unequal case"
        )
    n_total = r_total + s_total

    center = tree.star_center()
    computes = sorted(tree.compute_nodes, key=node_sort_key)
    if dims is None:
        bandwidths = {v: tree.bandwidth(v, center) for v in computes if v != center}
        if center in tree.compute_nodes:
            raise ProtocolError("the star center must be a router for wHC")
        dims = whc_dimensions(bandwidths, n_total)

    labeling = GridLabeling.from_distribution(
        tree, distribution, r_tag=r_tag, s_tag=s_tag
    )
    tiles = pack_flat(dims, r_total, s_total)
    coverage = coverage_report(tiles, r_total, s_total)

    cluster = make_cluster(tree, distribution, bits_per_element=bits_per_element)
    with cluster.round() as ctx:
        route_axis(
            ctx, cluster, labeling, tiles,
            axis="r", source_tag=r_tag, recv_tag=R_RECV,
        )
        route_axis(
            ctx, cluster, labeling, tiles,
            axis="s", source_tag=s_tag, recv_tag=S_RECV,
        )
    outputs = collect_outputs(cluster, labeling, tiles, materialize=materialize)
    return ProtocolResult.from_ledger(
        "weighted-hypercube",
        cluster.ledger,
        outputs=outputs,
        meta={"dims": dict(dims), "coverage": coverage},
    )

"""Power-of-two square packing (Lemma 5 / Figure 4).

Every compute node is assigned a square whose dimension is a power of
two.  The packing algorithm repeatedly combines four equal squares into
one of twice the side — after which at most three squares of each size
remain — and the largest combined square is therefore perfectly *tiled*
by the original squares.  Because the dimension rule guarantees
``sum d_v^2 >= N^2``, the largest combined square has side at least
``N/2`` and covers the whole ``(N/2) x (N/2)`` output grid.

For the tree algorithm the combining must respect locality: squares of
compute nodes in the same G-dagger subtree are merged together first
(:func:`pack_by_dagger`), so the tiles of a subtree occupy a small number
of contiguous grid regions and the data crossing the subtree's single
out-link stays within the Theorem 4 budget.  The star algorithm uses the
flat variant (:func:`pack_flat`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Mapping, Sequence

from repro.errors import PackingError
from repro.topology.dagger import Dagger
from repro.topology.tree import NodeId, node_sort_key
from repro.util.intmath import is_power_of_two


@dataclass(frozen=True)
class Tile:
    """A node's assigned square, placed at grid position ``(x0, y0)``."""

    x0: int
    y0: int
    size: int

    @property
    def width(self) -> int:
        return self.size

    @property
    def height(self) -> int:
        return self.size

    def r_range(self, r_total: int) -> tuple[int, int]:
        """R-label range the tile needs, clipped to the grid width."""
        return (min(self.x0, r_total), min(self.x0 + self.size, r_total))

    def s_range(self, s_total: int) -> tuple[int, int]:
        """S-label range the tile needs, clipped to the grid height."""
        return (min(self.y0, s_total), min(self.y0 + self.size, s_total))

    def clipped_area(self, r_total: int, s_total: int) -> int:
        r_lo, r_hi = self.r_range(r_total)
        s_lo, s_hi = self.s_range(s_total)
        return (r_hi - r_lo) * (s_hi - s_lo)


@dataclass(frozen=True)
class RectTile:
    """A rectangular grid region; same interface as :class:`Tile`.

    The paper's algorithms only use squares, but the classic HyperCube
    baseline and the unequal-size appendix algorithm assign rectangles;
    the routing layer accepts either shape.
    """

    x0: int
    y0: int
    width: int
    height: int

    def r_range(self, r_total: int) -> tuple[int, int]:
        return (min(self.x0, r_total), min(self.x0 + self.width, r_total))

    def s_range(self, s_total: int) -> tuple[int, int]:
        return (min(self.y0, s_total), min(self.y0 + self.height, s_total))

    def clipped_area(self, r_total: int, s_total: int) -> int:
        r_lo, r_hi = self.r_range(r_total)
        s_lo, s_hi = self.s_range(s_total)
        return (r_hi - r_lo) * (s_hi - s_lo)


class _SquareNode:
    """A square in the merge forest: a leaf tile or four half-size children."""

    __slots__ = ("size", "owner", "children")

    def __init__(self, size, owner=None, children=None):
        self.size = size
        self.owner = owner
        self.children = children


def merge_pool(
    squares: Iterable["_SquareNode"],
) -> list["_SquareNode"]:
    """Combine four-of-a-kind until at most three squares of each size remain.

    This is the procedure in Lemma 5 (and the per-node step of the tree
    packing in Section 4.4).  Combination is deterministic: squares are
    consumed in insertion order.
    """
    by_size: dict[int, list[_SquareNode]] = {}
    for square in squares:
        if not is_power_of_two(square.size):
            raise PackingError(f"square size {square.size} is not a power of two")
        by_size.setdefault(square.size, []).append(square)
    size = 1
    max_size = max(by_size, default=1)
    while size <= max_size:
        group = by_size.get(size, [])
        while len(group) >= 4:
            children = [group.pop(0) for _ in range(4)]
            merged = _SquareNode(size * 2, children=children)
            by_size.setdefault(size * 2, []).append(merged)
            max_size = max(max_size, size * 2)
        size *= 2
    result: list[_SquareNode] = []
    for size in sorted(by_size):
        result.extend(by_size[size])
    return result


def _place(square: "_SquareNode", x0: int, y0: int, tiles: dict) -> None:
    if square.owner is not None:
        tiles[square.owner] = Tile(x0, y0, square.size)
        return
    half = square.size // 2
    offsets = ((0, 0), (half, 0), (0, half), (half, half))
    for child, (dx, dy) in zip(square.children, offsets):
        _place(child, x0 + dx, y0 + dy, tiles)


def _leaf_squares(dims: Mapping[NodeId, int]) -> list["_SquareNode"]:
    return [
        _SquareNode(dims[owner], owner=owner)
        for owner in sorted(dims, key=node_sort_key)
    ]


def shrink_dimensions(
    dims: Mapping[NodeId, int], required_area: float
) -> dict:
    """Halve square dimensions while the total area still covers the grid.

    The coverage argument (Lemma 5 / Theorem 5) only needs
    ``sum d_v^2 >= required_area`` — the merge procedure then always
    produces a combined square larger than ``sqrt(required_area) / 2``.
    Rounding each ``d_v`` up to a power of two can overshoot that budget
    by up to 4x, so this pass greedily halves the largest squares while
    the budget allows.  Every upper-bound in the analyses is monotone in
    the dimensions, so shrinking preserves all guarantees while reducing
    the received volume (an engineering refinement; see DESIGN.md).
    """
    sizes = {node: int(d) for node, d in dims.items()}
    area = sum(d * d for d in sizes.values())
    # Only ever halve a square of the *current maximum* dimension, and
    # stop as soon as one such square cannot be halved: the received
    # volume is governed by the largest squares, and halving smaller
    # ones would concentrate the grid on the survivors instead.
    while True:
        max_dim = max(sizes.values(), default=0)
        if max_dim <= 1:
            break
        progressed = False
        for node in sorted(
            (v for v in sizes if sizes[v] == max_dim), key=node_sort_key
        ):
            dim = sizes[node]
            half = dim // 2
            if area - dim * dim + half * half >= required_area:
                sizes[node] = half
                area += half * half - dim * dim
                progressed = True
            else:
                return sizes
        if not progressed:  # pragma: no cover - loop always returns above
            break
    return sizes


def _finish(
    pool: Sequence["_SquareNode"],
    dims: Mapping[NodeId, int],
    grid_w: int,
    grid_h: int,
) -> dict:
    """Place the largest combined square at the origin and read off tiles.

    Among equally large squares, a *merged* square is preferred over a
    single node's leaf square: it spreads the grid across four subtrees
    instead of funnelling everything into one node.
    """
    if not pool:
        raise PackingError("no squares to pack")
    largest = max(
        pool, key=lambda s: (s.size, s.children is not None)
    )
    needed = max(grid_w, grid_h)
    if largest.size < needed:
        raise PackingError(
            f"largest combined square ({largest.size}) cannot cover the "
            f"{grid_w} x {grid_h} grid; sum of square areas too small"
        )
    tiles: dict = {owner: None for owner in dims}
    placed: dict = {}
    _place(largest, 0, 0, placed)
    tiles.update(placed)
    return tiles


def pack_flat(
    dims: Mapping[NodeId, int], grid_w: int, grid_h: int
) -> dict:
    """Lemma 5 packing: one global merge, largest square covers the grid.

    Returns ``{node: Tile | None}``; ``None`` marks nodes whose square
    ended up outside the covering square (their capacity is unused, which
    only lowers cost).
    """
    return _finish(merge_pool(_leaf_squares(dims)), dims, grid_w, grid_h)


def pack_by_dagger(
    dagger: Dagger,
    dims: Mapping[NodeId, int],
    grid_w: int,
    grid_h: int,
) -> dict:
    """Locality-preserving packing along G-dagger (Section 4.4).

    Merging proceeds bottom-up over the oriented tree: each node combines
    the square pools of its children (plus its own square, for compute
    leaves), so at most three squares of each size cross any link — the
    invariant behind the ``O(N * l_u)`` per-link bound of Theorem 5.
    """
    pools: dict[NodeId, list[_SquareNode]] = {}

    def visit(node: NodeId) -> list["_SquareNode"]:
        gathered: list[_SquareNode] = []
        if node in dims:
            gathered.append(_SquareNode(dims[node], owner=node))
        for child in dagger.children(node):
            gathered.extend(visit(child))
        pools[node] = merge_pool(gathered)
        return pools[node]

    import sys

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 4 * len(dagger.tree.nodes) + 100))
    try:
        root_pool = visit(dagger.root)
    finally:
        sys.setrecursionlimit(old_limit)
    return _finish(root_pool, dims, grid_w, grid_h)


def assert_tiles_cover_grid(
    tiles: Mapping[NodeId, "Tile | RectTile | None"],
    grid_w: int,
    grid_h: int,
) -> None:
    """Verify the (possibly overlapping) tiles cover every grid cell.

    The equal-size algorithms produce disjoint tiles, where an area
    argument suffices; the unequal-size packing (Appendix A.1) may
    overlap, so coverage is checked geometrically: sweep the distinct
    x-boundaries and verify the union of y-ranges of the tiles spanning
    each x-segment covers ``[0, grid_h)``.
    """
    if grid_w == 0 or grid_h == 0:
        return
    placed = [t for t in tiles.values() if t is not None]
    boundaries = sorted(
        {0, grid_w}
        | {min(t.x0, grid_w) for t in placed}
        | {min(t.x0 + t.width, grid_w) for t in placed}
    )
    for x_lo, x_hi in zip(boundaries[:-1], boundaries[1:]):
        if x_lo >= x_hi:
            continue
        intervals = sorted(
            t.s_range(grid_h)
            for t in placed
            if t.x0 <= x_lo and t.x0 + t.width >= x_hi
        )
        covered_until = 0
        for lo, hi in intervals:
            if lo > covered_until:
                break
            covered_until = max(covered_until, hi)
        if covered_until < grid_h:
            raise PackingError(
                f"columns [{x_lo}, {x_hi}) only covered up to row "
                f"{covered_until} of {grid_h}"
            )


def coverage_report(
    tiles: Mapping[NodeId, Tile | None], grid_w: int, grid_h: int
) -> dict:
    """Verify the tiles exactly tile the grid; summarize utilization.

    Quadtree placement guarantees the tiles are pairwise disjoint, so the
    grid is fully covered iff the clipped areas sum to ``grid_w * grid_h``.
    Raises :class:`PackingError` otherwise.
    """
    placed = {v: t for v, t in tiles.items() if t is not None}
    covered = sum(t.clipped_area(grid_w, grid_h) for t in placed.values())
    expected = grid_w * grid_h
    if covered != expected:
        raise PackingError(
            f"tiles cover {covered} cells of a {grid_w} x {grid_h} grid "
            f"({expected} expected)"
        )
    total_area = sum(t.width * t.height for t in placed.values())
    return {
        "grid_cells": expected,
        "placed_tiles": len(placed),
        "unused_nodes": sum(1 for t in tiles.values() if t is None),
        "overhang_cells": total_area - covered,
        "utilization": expected / total_area if total_area else 1.0,
    }

"""The unequal-size cartesian product on a star (Appendix A.1).

With ``|R| < |S|`` the clean Theorem 4 counting bound breaks down
(Section 4.5): a node can cap its useful square at width ``|R|``, so the
bound becomes the implicit minimiser ``L*`` of

    sum_v min(C * w_v, |R|) * C * w_v  >=  |R| * |S|          (2)

(:func:`l_star`; the appendix calls it ``V(R, S, V_C)`` and ``L``).
Theorems 8 and 9 are the resulting lower bounds, and Algorithms 7 and 8
the matching protocol: every data-rich (``Vβ``) node receives all of
``R`` and joins locally, while the generalized wHC tiles the remaining
grid with capacity-proportional *rectangles* — full-width slabs for
nodes whose capacity exceeds ``|R|``, squares for the rest.

Engineering notes (see DESIGN.md): the appendix's square sides
``2^-l * w * L*`` are quantized here to integer powers of two, placement
uses a greedy largest-first L-shaped recursion, and a doubling retry on
``L*`` guarantees coverage; tiles may overlap (pairs are then emitted
more than once, which the problem statement allows), so coverage is
verified geometrically rather than by area.
"""

from __future__ import annotations

import math
from typing import Hashable, Iterable, Mapping, Sequence

import numpy as np

from repro.core.cartesian.grid import GridLabeling
from repro.core.cartesian.packing import (
    RectTile,
    assert_tiles_cover_grid,
)
from repro.core.cartesian.routing import (
    R_RECV,
    S_RECV,
    gather_all_pairs,
    route_axis,
)
from repro.core.common import LowerBound
from repro.data.distribution import Distribution
from repro.errors import PackingError, ProtocolError
from repro.registry import register_protocol
from repro.sim.cluster import make_cluster
from repro.sim.protocol import ProtocolResult
from repro.topology.tree import NodeId, TreeTopology, node_sort_key
from repro.util.intmath import next_power_of_two_at_least

_R_BETA = "unequal.R.beta"
_S_CHUNK = "unequal.S.chunk"


# --------------------------------------------------------------------- #
# the L* minimiser and the lower bounds
# --------------------------------------------------------------------- #


def l_star(
    r_size: int, s_size: int, bandwidths: Iterable[float]
) -> float:
    """The minimiser of inequality (2) — the appendix's ``V(R, S, V_C)``.

    The left side is non-decreasing in ``C``, so binary search applies.
    Returns 0 when the output grid is empty.
    """
    widths = [float(w) for w in bandwidths]
    if any(math.isinf(w) for w in widths):
        raise ProtocolError("L* needs finite bandwidths")
    target = r_size * s_size
    if target == 0:
        return 0.0
    if not widths:
        raise ProtocolError("L* needs at least one node")

    def supply(c: float) -> float:
        return sum(min(c * w, r_size) * c * w for w in widths)

    high = 1.0
    while supply(high) < target:
        high *= 2.0
        if high > 2**80:  # pragma: no cover - unreachable for valid input
            raise ProtocolError("L* search diverged")
    low = 0.0
    for _ in range(80):
        mid = (low + high) / 2.0
        if supply(mid) >= target:
            high = mid
        else:
            low = mid
    return high


def _star_leaf_bandwidths(tree: TreeTopology) -> dict:
    center = tree.star_center()
    if center in tree.compute_nodes:
        raise ProtocolError("the star center must be a router")
    return {
        v: tree.bandwidth(v, center)
        for v in sorted(tree.compute_nodes, key=node_sort_key)
    }


def _split_alpha_beta(
    sizes: Mapping[NodeId, int], r_size: int
) -> tuple[list, list]:
    total = sum(sizes.values())
    alpha = [
        v for v in sorted(sizes, key=node_sort_key)
        if min(sizes[v], total - sizes[v]) < r_size
    ]
    beta = [v for v in sorted(sizes, key=node_sort_key) if v not in set(alpha)]
    return alpha, beta


def unequal_lower_bound_flow(
    tree: TreeTopology,
    distribution: Distribution,
    *,
    r_tag: str = "R",
    s_tag: str = "S",
) -> LowerBound:
    """Theorem 8: per-link flow bound ``min(N_v, N - N_v, |R|) / w_v``."""
    tree.require_symmetric("the Theorem 8 lower bound")
    r_size = min(distribution.total(r_tag), distribution.total(s_tag))
    sizes = {
        v: distribution.size(v, r_tag) + distribution.size(v, s_tag)
        for v in tree.compute_nodes
    }
    per_edge: dict = {}
    for edge, (minus, plus) in tree.side_weights(sizes).items():
        bandwidth = tree.undirected_bandwidth(edge)
        per_edge[edge] = min(minus, plus, r_size) / bandwidth
    return LowerBound.from_per_edge(per_edge, "Theorem 8 (unequal, flow)")


def unequal_lower_bound_counting(
    tree: TreeTopology,
    distribution: Distribution,
    *,
    r_tag: str = "R",
    s_tag: str = "S",
) -> LowerBound:
    """Theorem 9: the counting bound for ``max_v N_v <= N/2`` star instances.

    ``min(|S| / max_v w_v,  sum_{Vα} |S_v| / (2 sum_{Vβ} w_v),
    L*(R, S restricted to Vα, Vα))``; terms whose denominator set is
    empty are skipped.  Returns 0 when one node dominates (the gather
    strategy is then optimal and Theorem 8 already covers it).
    """
    tree.require_symmetric("the Theorem 9 lower bound")
    swapped = distribution.total(r_tag) > distribution.total(s_tag)
    small, large = (s_tag, r_tag) if swapped else (r_tag, s_tag)
    r_size = distribution.total(small)
    s_size = distribution.total(large)
    if r_size * s_size == 0:
        return LowerBound(0.0, description="Theorem 9 (empty instance)")
    sizes = {
        v: distribution.size(v, small) + distribution.size(v, large)
        for v in tree.compute_nodes
    }
    total = sum(sizes.values())
    if max(sizes.values()) > total / 2:
        return LowerBound(
            0.0, description="Theorem 9 (inapplicable: dominant node)"
        )
    bandwidths = _star_leaf_bandwidths(tree)
    alpha, beta = _split_alpha_beta(sizes, r_size)
    terms = [s_size / max(bandwidths.values())]
    alpha_s = sum(distribution.size(v, large) for v in alpha)
    if beta:
        terms.append(alpha_s / (2 * sum(bandwidths[v] for v in beta)))
    if alpha and alpha_s:
        terms.append(
            l_star(r_size, alpha_s, [bandwidths[v] for v in alpha])
        )
    return LowerBound(
        min(terms), description="Theorem 9 (unequal, counting)"
    )


def unequal_cartesian_lower_bound(
    tree: TreeTopology,
    distribution: Distribution,
    *,
    r_tag: str = "R",
    s_tag: str = "S",
) -> LowerBound:
    """The stronger of Theorems 8 and 9."""
    flow = unequal_lower_bound_flow(
        tree, distribution, r_tag=r_tag, s_tag=s_tag
    )
    counting = unequal_lower_bound_counting(
        tree, distribution, r_tag=r_tag, s_tag=s_tag
    )
    return counting if counting.value > flow.value else flow


# --------------------------------------------------------------------- #
# Algorithm 7: BalancedPackingUnEqual
# --------------------------------------------------------------------- #


def _cover_rect(
    x: int, y: int, w: int, h: int, pool: list, tiles: dict
) -> bool:
    """Greedy largest-first L-shaped cover of a rectangle with squares."""
    if w <= 0 or h <= 0:
        return True
    if not pool:
        return False
    side, node = pool.pop(0)
    tiles[node] = RectTile(x0=x, y0=y, width=side, height=side)
    if side >= w and side >= h:
        return True
    if side >= h:
        return _cover_rect(x + side, y, w - side, h, pool, tiles)
    if side >= w:
        return _cover_rect(x, y + side, w, h - side, pool, tiles)
    return _cover_rect(
        x + side, y, w - side, side, pool, tiles
    ) and _cover_rect(x, y + side, w, h - side, pool, tiles)


def balanced_packing_unequal(
    bandwidths: Mapping[NodeId, float],
    r_size: int,
    s_size: int,
) -> tuple[dict, float]:
    """Algorithm 7: assign rectangles/squares covering the |R| x |S| grid.

    Returns ``(tiles, scale)`` where ``tiles[node]`` is a
    :class:`RectTile` (or None for unused nodes) and ``scale`` is the
    ``L*`` actually used (doubled from :func:`l_star` as needed until
    the greedy placement covers; at most a constant-factor loss).
    """
    if r_size == 0 or s_size == 0:
        return {node: None for node in bandwidths}, 0.0
    if r_size > s_size:
        # The appendix assumes |R| <= |S|, but the sub-grids Algorithm 8
        # hands us (R x the Vα part of S) can be wider than tall; pack
        # the transposed grid and flip the tiles back.
        transposed, scale = balanced_packing_unequal(
            bandwidths, s_size, r_size
        )
        flipped = {
            node: (
                None
                if tile is None
                else RectTile(
                    x0=tile.y0, y0=tile.x0,
                    width=tile.height, height=tile.width,
                )
            )
            for node, tile in transposed.items()
        }
        return flipped, scale
    scale = l_star(r_size, s_size, bandwidths.values())
    ordered = sorted(
        bandwidths, key=lambda v: (-bandwidths[v], node_sort_key(v))
    )
    for _ in range(10):
        tiles: dict = {node: None for node in bandwidths}
        y = 0
        squares: list = []
        for node in ordered:
            capacity = bandwidths[node] * scale
            if capacity >= r_size:
                if y < s_size:
                    height = int(math.ceil(capacity))
                    tiles[node] = RectTile(
                        x0=0, y0=y, width=r_size, height=height
                    )
                    y += height
            else:
                squares.append(
                    (next_power_of_two_at_least(capacity), node)
                )
        covered = y >= s_size or _cover_rect(
            0, y, r_size, s_size - y, squares, tiles
        )
        if covered:
            assert_tiles_cover_grid(tiles, r_size, s_size)
            return tiles, scale
        scale *= 2.0
    raise PackingError(  # pragma: no cover - retries always suffice
        "generalized packing failed to cover the grid"
    )


# --------------------------------------------------------------------- #
# Algorithm 8: GeneralizedStarCartesianProduct
# --------------------------------------------------------------------- #


def _strategy_gather(tree, distribution, r_tag, s_tag, bits) -> ProtocolResult:
    bandwidths = _star_leaf_bandwidths(tree)
    target = max(
        sorted(bandwidths, key=node_sort_key), key=lambda v: bandwidths[v]
    )
    cluster = make_cluster(tree, distribution, bits_per_element=bits)
    outputs = gather_all_pairs(
        cluster, target, r_tag=r_tag, s_tag=s_tag, materialize=False
    )
    return ProtocolResult.from_ledger(
        "unequal-star-cartesian", cluster.ledger, outputs=outputs,
        meta={"strategy": "gather-max-bandwidth", "target": target},
    )


def _broadcast_r_to_beta(ctx, cluster, computes, beta, r_tag) -> None:
    beta_set = frozenset(beta)
    for node in computes:
        local = cluster.local(node, r_tag)
        destinations = beta_set - {node}
        if len(local) and destinations:
            ctx.multicast(node, destinations, local, tag=_R_BETA)


def _beta_pairs(cluster, node, r_size, s_tag) -> int:
    return r_size * cluster.local_size(node, s_tag)


def _strategy_proportional(
    tree, distribution, r_tag, s_tag, alpha, beta, bits
) -> ProtocolResult | None:
    if not beta:
        return None
    bandwidths = _star_leaf_bandwidths(tree)
    weights = np.array([bandwidths[v] for v in beta])
    cluster = make_cluster(tree, distribution, bits_per_element=bits)
    computes = sorted(tree.compute_nodes, key=node_sort_key)
    r_size = distribution.total(r_tag)
    with cluster.round() as ctx:
        _broadcast_r_to_beta(ctx, cluster, computes, beta, r_tag)
        for node in alpha:
            local = cluster.local(node, s_tag)
            if not len(local):
                continue
            shares = np.floor(
                np.cumsum(weights / weights.sum()) * len(local)
            ).astype(np.int64)
            shares[-1] = len(local)  # guard against float round-down
            start = 0
            for target, stop in zip(beta, shares):
                chunk = local[start:stop]
                start = int(stop)
                if len(chunk):
                    ctx.send(node, target, chunk, tag=_S_CHUNK)
    outputs: dict = {v: {"num_pairs": 0} for v in computes}
    for node in beta:
        outputs[node] = {
            "num_pairs": r_size
            * (
                cluster.local_size(node, s_tag)
                + cluster.local_size(node, _S_CHUNK)
            )
        }
    return ProtocolResult.from_ledger(
        "unequal-star-cartesian", cluster.ledger, outputs=outputs,
        meta={"strategy": "proportional-to-beta"},
    )


def _strategy_generalized_whc(
    tree, distribution, r_tag, s_tag, alpha, beta, bits
) -> ProtocolResult | None:
    bandwidths = _star_leaf_bandwidths(tree)
    computes = sorted(tree.compute_nodes, key=node_sort_key)
    r_size = distribution.total(r_tag)
    alpha_s = sum(distribution.size(v, s_tag) for v in alpha)

    tiles: dict = {v: None for v in computes}
    scale = 0.0
    if alpha and alpha_s:
        alpha_tiles, scale = balanced_packing_unequal(
            {v: bandwidths[v] for v in alpha}, r_size, alpha_s
        )
        tiles.update(alpha_tiles)

    # Label R over all nodes; label S only over the Vα fragments (the
    # Vβ fragments are joined locally against the broadcast copy of R).
    sub_placements: dict = {}
    for node in computes:
        entry: dict = {"R#": distribution.fragment(node, r_tag)}
        if node in set(alpha):
            entry["S#"] = distribution.fragment(node, s_tag)
        sub_placements[node] = entry
    labeling = GridLabeling.from_distribution(
        tree, Distribution(sub_placements), r_tag="R#", s_tag="S#"
    )

    cluster = make_cluster(tree, distribution, bits_per_element=bits)
    with cluster.round() as ctx:
        _broadcast_r_to_beta(ctx, cluster, computes, beta, r_tag)
        if alpha and alpha_s:
            # Route against the sub-labeling but read payloads from the
            # real storage tags.
            route_axis(
                ctx, cluster, labeling, tiles,
                axis="r", source_tag=r_tag, recv_tag=R_RECV,
            )
            route_axis(
                ctx, cluster, labeling, tiles,
                axis="s", source_tag=s_tag, recv_tag=S_RECV,
            )

    outputs: dict = {v: {"num_pairs": 0} for v in computes}
    for node in beta:
        outputs[node]["num_pairs"] += _beta_pairs(
            cluster, node, r_size, s_tag
        )
    for node, tile in tiles.items():
        if tile is None:
            continue
        r_lo, r_hi = tile.r_range(labeling.r_total)
        s_lo, s_hi = tile.s_range(labeling.s_total)
        outputs[node]["num_pairs"] += (r_hi - r_lo) * (s_hi - s_lo)
    return ProtocolResult.from_ledger(
        "unequal-star-cartesian", cluster.ledger, outputs=outputs,
        meta={"strategy": "generalized-whc", "scale": scale},
    )


@register_protocol(
    task="cartesian-product",
    name="unequal-star",
    topology="star",
    description="Algorithm 8: unequal-size cartesian product on a star",
)
def generalized_star_cartesian_product(
    tree: TreeTopology,
    distribution: Distribution,
    *,
    r_tag: str = "R",
    s_tag: str = "S",
    bits_per_element: int = 64,
) -> ProtocolResult:
    """Algorithm 8: the unequal-size cartesian product on a star.

    Gathers at the dominant node when one exists; otherwise runs the
    applicable candidate strategies (gather at the best-connected node,
    proportional S-scatter to the data-rich nodes, generalized wHC on
    the rest) and returns the cheapest — the appendix's "pick the best
    of".  ``meta["candidates"]`` records every candidate's cost.

    Every returned strategy enumerates at least ``|R| * |S|`` pairs
    (tiles may overlap, so some pairs can be produced twice — allowed
    by the problem statement).
    """
    tree.require_symmetric("GeneralizedStarCartesianProduct")
    if not tree.is_star():
        raise ProtocolError("Algorithm 8 runs on star topologies")
    distribution.validate_for(tree)

    swapped = distribution.total(r_tag) > distribution.total(s_tag)
    small, large = (s_tag, r_tag) if swapped else (r_tag, s_tag)
    r_size = distribution.total(small)
    s_size = distribution.total(large)
    computes = sorted(tree.compute_nodes, key=node_sort_key)
    sizes = {
        v: distribution.size(v, small) + distribution.size(v, large)
        for v in computes
    }
    total = sum(sizes.values())
    if total == 0 or r_size == 0:
        cluster = make_cluster(tree, distribution, bits_per_element=bits_per_element)
        outputs = {v: {"num_pairs": 0} for v in computes}
        return ProtocolResult.from_ledger(
            "unequal-star-cartesian", cluster.ledger, outputs=outputs,
            meta={"strategy": "empty"},
        )

    heaviest = max(computes, key=lambda v: sizes[v])
    if sizes[heaviest] > total / 2:
        cluster = make_cluster(tree, distribution, bits_per_element=bits_per_element)
        outputs = gather_all_pairs(
            cluster, heaviest, r_tag=small, s_tag=large, materialize=False
        )
        result = ProtocolResult.from_ledger(
            "unequal-star-cartesian", cluster.ledger, outputs=outputs,
            meta={"strategy": "gather-dominant", "target": heaviest},
        )
        result.meta["swapped_relations"] = swapped
        return result

    alpha, beta = _split_alpha_beta(sizes, r_size)
    candidates = [
        _strategy_gather(tree, distribution, small, large, bits_per_element),
        _strategy_proportional(
            tree, distribution, small, large, alpha, beta, bits_per_element
        ),
        _strategy_generalized_whc(
            tree, distribution, small, large, alpha, beta, bits_per_element
        ),
    ]
    viable = [c for c in candidates if c is not None]
    expected = r_size * s_size
    for candidate in viable:
        produced = sum(o["num_pairs"] for o in candidate.outputs.values())
        if produced < expected:
            raise ProtocolError(
                f"{candidate.meta['strategy']} enumerated {produced} "
                f"of {expected} pairs"
            )
    best = min(viable, key=lambda c: c.cost)
    best.meta["candidates"] = {
        c.meta["strategy"]: c.cost for c in viable
    }
    best.meta["swapped_relations"] = swapped
    best.meta["v_alpha"] = list(alpha)
    best.meta["v_beta"] = list(beta)
    return best

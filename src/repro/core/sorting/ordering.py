"""Valid compute-node orderings for sorting (Section 5).

A *valid ordering* is any left-to-right traversal of the tree after
rooting it arbitrarily.  The defining structural property — what the
validators here check — is that the compute nodes of each side of every
link occupy a contiguous stretch of the order (possibly wrapping, since
re-rooting rotates the traversal).
"""

from __future__ import annotations

from typing import Hashable, Mapping, Sequence

import numpy as np

from repro.errors import ProtocolError
from repro.topology.tree import NodeId, TreeTopology


def _is_contiguous(positions: list[int]) -> bool:
    if not positions:
        return True
    return max(positions) - min(positions) + 1 == len(positions)


def is_valid_compute_order(tree: TreeTopology, order: Sequence[NodeId]) -> bool:
    """True iff ``order`` is a left-to-right traversal of some rooting.

    For every link, one side's compute nodes must form a contiguous
    interval of the order (the other side is then a prefix plus a suffix,
    which a rotation — i.e. a different root — makes contiguous too).
    """
    if set(order) != set(tree.compute_nodes) or len(order) != len(
        set(order)
    ):
        return False
    position = {node: i for i, node in enumerate(order)}
    for edge in tree.undirected_edges():
        minus, plus = tree.compute_sides(edge)
        side_a = [position[v] for v in minus]
        side_b = [position[v] for v in plus]
        if not (_is_contiguous(side_a) or _is_contiguous(side_b)):
            return False
    return True


def verify_sorted_output(
    tree: TreeTopology,
    outputs: Mapping[NodeId, np.ndarray],
    order: Sequence[NodeId],
    expected: np.ndarray,
) -> None:
    """Assert the outputs are a correct sort of ``expected`` along ``order``.

    Checks: the order is a valid traversal; each node's run is sorted;
    runs are non-decreasing across consecutive nodes; and the
    concatenation is a permutation of ``expected``.  Raises
    :class:`ProtocolError` with a specific message otherwise.
    """
    if not is_valid_compute_order(tree, order):
        raise ProtocolError(f"{list(order)!r} is not a valid traversal order")
    previous_max: int | None = None
    collected: list[np.ndarray] = []
    for node in order:
        run = np.asarray(outputs.get(node, np.empty(0, np.int64)))
        if len(run) == 0:
            continue
        if np.any(np.diff(run) < 0):
            raise ProtocolError(f"node {node!r} holds an unsorted run")
        if previous_max is not None and run[0] < previous_max:
            raise ProtocolError(
                f"node {node!r} holds {run[0]} but an earlier node "
                f"holds {previous_max}"
            )
        previous_max = int(run[-1])
        collected.append(run)
    merged = (
        np.concatenate(collected) if collected else np.empty(0, np.int64)
    )
    expected_sorted = np.sort(np.asarray(expected, dtype=np.int64))
    if len(merged) != len(expected_sorted) or np.any(
        merged != expected_sorted
    ):
        raise ProtocolError(
            "sorted output is not a permutation of the input "
            f"({len(merged)} vs {len(expected_sorted)} elements)"
        )

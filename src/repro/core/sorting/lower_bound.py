"""The sorting lower bound (Theorem 6).

For every link ``e``, there is an initial placement with the given
per-node sizes — ranks interleaved odd/even across the traversal order,
built by :func:`repro.data.generators.adversarial_sorted_distribution` —
on which any correct sort must move ``Ω(min(sum_{V-e} N_v,
sum_{V+e} N_v))`` elements across ``e``.  The bound is therefore a
*distribution-size-aware worst case*: it is tight on the adversarial
placement (the Figure 5 benchmark demonstrates this), while friendly
placements (e.g. already sorted along the order) can of course be
cheaper.  Units are elements (tuples), as in the paper.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.common import LowerBound
from repro.data.distribution import Distribution
from repro.topology.tree import NodeId, TreeTopology


def sorting_lower_bound(
    tree: TreeTopology,
    distribution: Distribution,
    *,
    tag: str = "R",
) -> LowerBound:
    """Instantiate Theorem 6 for one topology and per-node sizes."""
    tree.require_symmetric("the Theorem 6 lower bound")
    sizes = {v: distribution.size(v, tag) for v in tree.compute_nodes}
    per_edge: dict = {}
    for edge, (minus, plus) in tree.side_weights(sizes).items():
        bandwidth = tree.undirected_bandwidth(edge)
        per_edge[edge] = min(minus, plus) / bandwidth
    return LowerBound.from_per_edge(per_edge, "Theorem 6 (sorting)")

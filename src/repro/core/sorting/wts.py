"""Weighted TeraSort — wTS (Section 5.2, Theorem 7).

Four rounds on a symmetric tree, generalizing TeraSort in three ways:

1. **tree topologies** — all routing follows the tree; the final runs
   live on the *heavy* nodes in left-to-right traversal order;
2. **heavy/light split** — only nodes holding at least ``N / (2|V_C|)``
   elements participate in splitting (the paper's prose says
   ``N_v >= |V_C|`` but its own analysis uses ``N/(2|V_C|)``; see
   DESIGN.md), and light nodes first scatter their data to heavy nodes
   proportionally (Algorithm 6);
3. **proportional splitting** — the coordinator assigns each heavy node
   ``c_j = ceil(|V_C| M_j / N)`` sample intervals, so each ends up with
   ``O(N_{v_j})`` elements rather than ``N/|V_C|``.

With probability ``1 - 1/N`` (for ``N >= 4|V_C|^2 ln(|V_C| N)``) the cost
is within a constant factor of the Theorem 6 bound.  The optional
improvement from the end of Section 5.2 — gather everything when one
node holds more than half the data — is on by default
(``gather_shortcut``); ablations can disable it or the proportional
splitting.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.sorting.proportional import proportional_quotas
from repro.core.sorting.terasort import sample_probability, select_splitters
from repro.data.distribution import Distribution
from repro.errors import ProtocolError
from repro.registry import register_protocol
from repro.sim.cluster import make_cluster
from repro.sim.protocol import ProtocolResult
from repro.topology.tree import NodeId, TreeTopology, node_sort_key
from repro.util.intmath import ceil_div
from repro.util.seeding import derive_seed

_MOVED = "sort.moved"
_SAMPLES = "sort.samples"
_SPLITTERS = "sort.splitters"
_FINAL = "sort.final"


def heavy_threshold(num_compute: int, total: int) -> float:
    """The heavy/light cut: ``N / (2 |V_C|)``."""
    return total / (2.0 * num_compute)


@register_protocol(
    task="sorting",
    name="wts",
    accepts_seed=True,
    description="Weighted TeraSort (Section 5) on any symmetric tree",
)
def weighted_terasort(
    tree: TreeTopology,
    distribution: Distribution,
    *,
    seed: int = 0,
    tag: str = "R",
    gather_shortcut: bool = True,
    proportional_split: bool = True,
    bits_per_element: int = 64,
) -> ProtocolResult:
    """Run wTS; ``outputs[v]`` is node ``v``'s final sorted run.

    ``meta["order"]`` is the traversal order the runs follow (light nodes
    end up empty).  ``proportional_split=False`` is the ablation that
    assigns every heavy node one sample interval, as classic TeraSort
    would.
    """
    tree.require_symmetric("weighted TeraSort")
    distribution.validate_for(tree)
    order = tree.left_to_right_compute_order()
    sizes = {v: distribution.size(v, tag) for v in order}
    total = sum(sizes.values())
    cluster = make_cluster(tree, distribution, bits_per_element=bits_per_element)
    if total == 0:
        outputs = {v: np.empty(0, np.int64) for v in order}
        return ProtocolResult.from_ledger(
            "weighted-terasort", cluster.ledger, outputs=outputs,
            meta={"order": order, "strategy": "empty"},
        )

    heaviest = max(order, key=lambda v: (sizes[v], node_sort_key(v)))
    if gather_shortcut and sizes[heaviest] > total / 2:
        with cluster.round() as ctx:
            for node in order:
                if node == heaviest:
                    continue
                local = cluster.take(node, tag)
                if len(local):
                    ctx.send(node, heaviest, local, tag=_FINAL)
        merged = np.sort(
            np.concatenate(
                [cluster.local(heaviest, tag), cluster.local(heaviest, _FINAL)]
            )
        )
        outputs = {v: np.empty(0, np.int64) for v in order}
        outputs[heaviest] = merged
        return ProtocolResult.from_ledger(
            "weighted-terasort",
            cluster.ledger,
            outputs=outputs,
            meta={"order": order, "strategy": "gather", "target": heaviest},
        )

    threshold = heavy_threshold(len(order), total)
    heavy = [v for v in order if sizes[v] >= threshold]
    light = [v for v in order if sizes[v] < threshold]
    if not heavy:  # pragma: no cover - max size always reaches N/|V_C|
        raise ProtocolError("no heavy nodes; threshold bug")
    heavy_sizes = [sizes[v] for v in heavy]

    # Round 1: light nodes scatter to heavy nodes proportionally (Alg. 6).
    with cluster.round() as ctx:
        for node in light:
            local = cluster.take(node, tag)
            if not len(local):
                continue
            quotas = proportional_quotas(heavy_sizes, len(local))
            offset = 0
            for target, quota in zip(heavy, quotas):
                if offset >= len(local):
                    break
                chunk = local[offset : offset + quota]
                offset += len(chunk)
                if len(chunk):
                    ctx.send(node, target, chunk, tag=_MOVED)
            if offset < len(local):  # pragma: no cover - Lemma 9(3)
                raise ProtocolError("proportional quotas fell short")

    current = {
        v: np.concatenate([cluster.local(v, tag), cluster.local(v, _MOVED)])
        for v in heavy
    }
    m_sizes = {v: len(current[v]) for v in heavy}

    # Round 2: heavy nodes sample and ship samples to the first heavy node.
    coordinator = heavy[0]
    rho = sample_probability(len(order), total)
    with cluster.round() as ctx:
        for node in heavy:
            local = current[node]
            if not len(local):
                continue
            rng = np.random.default_rng(derive_seed(seed, "wts", node))
            mask = rng.random(len(local)) < rho
            if mask.any():
                ctx.send(node, coordinator, local[mask], tag=_SAMPLES)

    samples = np.sort(cluster.take(coordinator, _SAMPLES))
    if proportional_split:
        counts = [
            ceil_div(len(order) * m_sizes[v], total) if m_sizes[v] else 1
            for v in heavy
        ]
    else:
        counts = [1] * len(heavy)
    splitters = select_splitters(samples, counts)

    # Round 3: broadcast the splitters to the other heavy nodes.
    with cluster.round() as ctx:
        if len(splitters) and len(heavy) > 1:
            ctx.multicast(
                coordinator,
                [v for v in heavy if v != coordinator],
                splitters,
                tag=_SPLITTERS,
            )

    # Round 4: scatter by splitter interval; heavy node j keeps
    # [b_{j-1}, b_j).
    with cluster.round() as ctx:
        for node in heavy:
            local = current[node]
            if not len(local):
                continue
            intervals = np.searchsorted(splitters, local, side="right")
            ctx.exchange(node, intervals, local, tag=_FINAL, nodes=heavy)

    outputs = {v: np.empty(0, np.int64) for v in order}
    for node in heavy:
        outputs[node] = np.sort(cluster.local(node, _FINAL))
    return ProtocolResult.from_ledger(
        "weighted-terasort",
        cluster.ledger,
        outputs=outputs,
        meta={
            "order": order,
            "strategy": "wts",
            "heavy": heavy,
            "light": light,
            "rho": rho,
            "num_samples": int(len(samples)),
            "splitters": splitters,
            "m_sizes": m_sizes,
            "interval_counts": counts,
        },
    )

"""Proportional integer split (Algorithm 6, Lemma 9).

A light node ``u`` must scatter its ``N_u`` elements across the heavy
nodes ``v_1..v_k`` in proportion to their sizes ``N_{v_i}`` — but in
integer amounts.  Algorithm 6 walks the heavy nodes once, carrying a
running credit ``Δ`` of over-allocation, and rounds each ideal share up
or down so that (Lemma 9) every *prefix* and every *contiguous range* of
quotas stays within one element of proportionality, and the quotas sum
to at least ``N_u``.  The range property is what bounds round-1 traffic
per link: the heavy nodes on one side of a link always form a contiguous
range of the traversal order.
"""

from __future__ import annotations

import math
from typing import Sequence


def proportional_quotas(
    heavy_sizes: Sequence[int], light_size: int
) -> list[int]:
    """Quotas ``N_u^i``: how many of ``light_size`` elements go to each heavy node.

    ``heavy_sizes`` are the ``N_{v_1}..N_{v_k}`` in traversal order; the
    result has the Lemma 9 prefix/range guarantees.  Quotas are upper
    bounds: callers send ``min(quota, elements remaining)`` so the total
    shipped is exactly ``light_size`` (property (3) guarantees the quotas
    suffice).
    """
    if light_size < 0:
        raise ValueError(f"light_size must be non-negative, got {light_size}")
    if any(size < 0 for size in heavy_sizes):
        raise ValueError("heavy sizes must be non-negative")
    total = sum(heavy_sizes)
    if total <= 0:
        raise ValueError("at least one heavy node must hold data")
    quotas: list[int] = []
    credit = 0.0
    for size in heavy_sizes:
        ideal = size / total * light_size
        fractional = ideal - math.floor(ideal)
        if credit >= fractional:
            quotas.append(math.floor(ideal))
            credit -= fractional
        else:
            quotas.append(math.floor(ideal) + 1)
            credit += 1.0 - fractional
    return quotas

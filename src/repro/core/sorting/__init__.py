"""Sorting on symmetric trees (Section 5).

The task: redistribute a totally ordered set ``R`` so that, along a valid
left-to-right traversal order of the compute nodes, every node holds a
sorted run and earlier nodes hold smaller elements.  Theorem 6 constructs
an adversarial rank-interleaved initial placement forcing every link to
carry a constant fraction of its lighter side; the weighted TeraSort
protocol (wTS, Theorem 7) matches that bound within a constant factor in
four rounds, by moving light nodes' data to heavy nodes proportionally
(Algorithm 6), sampling splitters only on heavy nodes, and splitting the
key space in proportion to the data each heavy node holds.
"""

from repro.core.sorting.ordering import (
    is_valid_compute_order,
    verify_sorted_output,
)
from repro.core.sorting.lower_bound import sorting_lower_bound
from repro.core.sorting.proportional import proportional_quotas
from repro.core.sorting.terasort import terasort
from repro.core.sorting.wts import weighted_terasort

__all__ = [
    "is_valid_compute_order",
    "verify_sorted_output",
    "sorting_lower_bound",
    "proportional_quotas",
    "terasort",
    "weighted_terasort",
]

"""Classic TeraSort (Section 5.2 recap) — also the topology-agnostic baseline.

Three rounds: every node samples its data with probability
``ρ = 4 (|V_C|/N) ln(|V_C| N)`` and ships samples to a coordinator; the
coordinator picks ``|V_C| - 1`` equally spaced splitters from the sorted
samples and broadcasts them; every node then scatters each element to the
node owning its splitter interval.  Data lands evenly across *all*
compute nodes regardless of bandwidth or initial placement — the design
point the weighted variant (:mod:`repro.core.sorting.wts`) improves on.
"""

from __future__ import annotations

import math

import numpy as np

from repro.data.distribution import Distribution
from repro.errors import ProtocolError
from repro.registry import register_protocol
from repro.sim.cluster import make_cluster
from repro.sim.protocol import ProtocolResult
from repro.topology.tree import NodeId, TreeTopology
from repro.util.seeding import derive_seed

_SAMPLES = "sort.samples"
_SPLITTERS = "sort.splitters"
_FINAL = "sort.final"


def sample_probability(num_compute: int, total: int) -> float:
    """``ρ = 4 (|V_C|/N) ln(|V_C| N)``, clamped into [0, 1]."""
    if total <= 0:
        return 0.0
    rho = 4.0 * num_compute / total * math.log(num_compute * total)
    return min(1.0, max(0.0, rho))


def select_splitters(
    sorted_samples: np.ndarray, counts: list[int]
) -> np.ndarray:
    """Splitters from sorted samples: one every ``ceil(s / |V_C|)`` samples.

    ``counts[j]`` is how many sample-intervals node ``j`` is responsible
    for (all ones for classic TeraSort; ``c_j = ceil(|V_C| M_j / N)`` for
    the weighted variant).  Returns the ``len(counts) - 1`` internal
    splitters; out-of-range sample indices clamp to the largest sample,
    making the trailing intervals empty rather than failing.
    """
    num_targets = sum(counts)
    if num_targets <= 0:
        raise ProtocolError("splitter selection needs at least one interval")
    s = len(sorted_samples)
    if s == 0:
        return np.empty(0, np.int64)
    step = math.ceil(s / max(1, num_targets))
    splitters = []
    cumulative = 0
    for count in counts[:-1]:
        cumulative += count
        index = min(cumulative * step, s) - 1
        splitters.append(sorted_samples[max(0, index)])
    return np.asarray(splitters, dtype=np.int64)


@register_protocol(
    task="sorting",
    name="terasort",
    kind="baseline",
    accepts_seed=True,
    description="Classic TeraSort, topology-agnostic splitters",
)
def terasort(
    tree: TreeTopology,
    distribution: Distribution,
    *,
    seed: int = 0,
    tag: str = "R",
    bits_per_element: int = 64,
) -> ProtocolResult:
    """Run classic TeraSort; ``outputs[v]`` is node ``v``'s sorted run.

    The runs follow the tree's left-to-right traversal order (stored in
    ``meta["order"]``), so the result is a valid sort in the Section 5
    sense — but the per-link cost ignores topology and placement.
    """
    tree.require_symmetric("TeraSort")
    distribution.validate_for(tree)
    order = tree.left_to_right_compute_order()
    total = distribution.total(tag)
    cluster = make_cluster(tree, distribution, bits_per_element=bits_per_element)
    if total == 0:
        outputs = {v: np.empty(0, np.int64) for v in order}
        return ProtocolResult.from_ledger(
            "terasort", cluster.ledger, outputs=outputs,
            meta={"order": order, "rho": 0.0},
        )

    coordinator = order[0]
    rho = sample_probability(len(order), total)

    with cluster.round() as ctx:  # round 1: sampling
        for node in order:
            local = cluster.local(node, tag)
            if not len(local):
                continue
            rng = np.random.default_rng(derive_seed(seed, "terasort", node))
            mask = rng.random(len(local)) < rho
            if mask.any():
                ctx.send(node, coordinator, local[mask], tag=_SAMPLES)

    samples = np.sort(cluster.take(coordinator, _SAMPLES))
    splitters = select_splitters(samples, [1] * len(order))

    with cluster.round() as ctx:  # round 2: broadcast splitters
        if len(splitters) and len(order) > 1:
            ctx.multicast(
                coordinator,
                [v for v in order if v != coordinator],
                splitters,
                tag=_SPLITTERS,
            )

    with cluster.round() as ctx:  # round 3: scatter by interval
        for node in order:
            local = cluster.take(node, tag)
            if not len(local):
                continue
            intervals = np.searchsorted(splitters, local, side="right")
            ctx.exchange(node, intervals, local, tag=_FINAL, nodes=order)

    outputs = {v: np.sort(cluster.local(v, _FINAL)) for v in order}
    return ProtocolResult.from_ledger(
        "terasort",
        cluster.ledger,
        outputs=outputs,
        meta={
            "order": order,
            "rho": rho,
            "num_samples": int(len(samples)),
            "splitters": splitters,
        },
    )

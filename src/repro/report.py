"""Run reports: one row per (task, protocol, topology, placement) cell."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

import numpy as np

from repro.errors import AnalysisError
from repro.util.text import render_table


def _jsonify(value: Any) -> Any:
    """Coerce a report payload to strictly JSON-serializable builtins.

    Protocol ``meta`` dicts carry numpy scalars/arrays and frozensets;
    anything else unserializable degrades to ``repr`` rather than
    failing the export.  Non-finite floats become ``None``: ``inf`` and
    ``nan`` are not valid RFC 8259 JSON, and ``json.dumps`` would emit
    the non-strict ``Infinity``/``NaN`` tokens many parsers reject —
    every ``to_dict`` payload must survive
    ``json.dumps(..., allow_nan=False)``.
    """
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, (bool, int, str)) or value is None:
        return value
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return _jsonify(float(value))
    if isinstance(value, np.ndarray):
        return _jsonify(value.tolist())
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if isinstance(value, (frozenset, set)):
        members = [_jsonify(v) for v in value]
        try:
            return sorted(members)
        except TypeError:
            # mixed-type or otherwise unorderable members: fall back to
            # a deterministic order instead of raising
            return sorted(members, key=lambda m: (type(m).__name__, repr(m)))
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    return repr(value)


@dataclass(frozen=True)
class RunReport:
    """Outcome of one protocol execution compared against its lower bound."""

    task: str
    protocol: str
    topology: str
    placement: str
    input_size: int
    rounds: int
    cost: float
    lower_bound: float
    meta: dict = field(default_factory=dict)
    #: Measured protocol execution seconds (``None`` when the producer
    #: did not time the run — e.g. reports rebuilt from pre-obs JSON).
    wall_time_s: float | None = None

    @property
    def ratio(self) -> float:
        """``cost / lower_bound`` (the optimality ratio of Table 1)."""
        if self.lower_bound > 0:
            return self.cost / self.lower_bound
        return 0.0 if self.cost == 0 else float("inf")

    def to_dict(self) -> dict:
        """JSON-serializable form; ``from_dict`` round-trips it.

        ``ratio`` is included for downstream consumers even though it is
        derived — as ``None`` when infinite (positive cost over a zero
        bound), since bare ``Infinity`` is not valid RFC 8259 JSON;
        ``meta`` is coerced to builtins (numpy arrays become lists), so
        a report that went through JSON compares equal on every scalar
        field but not necessarily on ``meta``.
        """
        ratio = self.ratio
        return {
            "task": self.task,
            "protocol": self.protocol,
            "topology": self.topology,
            "placement": self.placement,
            "input_size": self.input_size,
            "rounds": self.rounds,
            "cost": self.cost,
            "lower_bound": self.lower_bound,
            "ratio": ratio if math.isfinite(ratio) else None,
            "meta": _jsonify(self.meta),
            "wall_time_s": self.wall_time_s,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RunReport":
        """Rebuild a report from :meth:`to_dict` output (or parsed JSON).

        ``wall_time_s`` is optional: payloads written before the field
        existed rebuild with ``None``.
        """
        wall_time_s = payload.get("wall_time_s")
        try:
            return cls(
                task=payload["task"],
                protocol=payload["protocol"],
                topology=payload["topology"],
                placement=payload["placement"],
                input_size=int(payload["input_size"]),
                rounds=int(payload["rounds"]),
                cost=float(payload["cost"]),
                lower_bound=float(payload["lower_bound"]),
                meta=payload.get("meta", {}),
                wall_time_s=(
                    None if wall_time_s is None else float(wall_time_s)
                ),
            )
        except KeyError as missing:
            raise AnalysisError(
                f"report payload is missing field {missing}"
            ) from None

    def as_row(self) -> list:
        return [
            self.task,
            self.protocol,
            self.topology,
            self.placement,
            self.input_size,
            self.rounds,
            self.cost,
            self.lower_bound,
            self.ratio,
        ]


REPORT_HEADERS = [
    "task",
    "protocol",
    "topology",
    "placement",
    "N",
    "rounds",
    "cost",
    "lower bound",
    "ratio",
]


@dataclass(frozen=True)
class PlanReport:
    """Outcome of one multi-stage query plan: per-stage reports + totals.

    The planner executes a pipeline of protocol stages; each
    communication stage contributes one :class:`RunReport` (its
    ``placement`` field records the stage label, e.g. ``"stage 2"``)
    and the plan-level totals sum them.  ``estimated_cost`` is the
    optimizer's prediction, kept beside the measured total so
    ``--explain`` output and regression benchmarks can show how well
    the cost model tracks reality.
    """

    query: str
    strategy: str
    topology: str
    stages: tuple
    estimated_cost: float
    output_rows: int
    meta: dict = field(default_factory=dict)
    #: End-to-end plan execution seconds (per-stage times live on the
    #: stage reports); ``None`` for payloads predating the field.
    wall_time_s: float | None = None

    @property
    def cost(self) -> float:
        """Measured plan cost: the sum of stage costs (element units)."""
        return sum(stage.cost for stage in self.stages)

    @property
    def rounds(self) -> int:
        return sum(stage.rounds for stage in self.stages)

    @property
    def lower_bound(self) -> float:
        """Sum of per-stage bounds — a bound for *this* pipeline's
        shuffles, not for the query (another plan may do better)."""
        return sum(stage.lower_bound for stage in self.stages)

    @property
    def estimate_ratio(self) -> float:
        """``measured / estimated`` — how well the cost model tracked."""
        if self.estimated_cost > 0:
            return self.cost / self.estimated_cost
        return 0.0 if self.cost == 0 else float("inf")

    def summarize(self) -> str:
        """Per-stage text table plus the plan totals."""
        if not self.stages:
            raise AnalysisError("plan executed no communication stages")
        table = summarize_reports(
            list(self.stages),
            title=(
                f"{self.strategy} plan on {self.topology}: "
                f"cost {self.cost:.1f} (estimated {self.estimated_cost:.1f}, "
                f"{self.rounds} rounds, {self.output_rows} output rows)"
            ),
        )
        return table

    def to_dict(self) -> dict:
        return {
            "query": self.query,
            "strategy": self.strategy,
            "topology": self.topology,
            "stages": [stage.to_dict() for stage in self.stages],
            "estimated_cost": self.estimated_cost,
            "output_rows": self.output_rows,
            "cost": self.cost,
            "rounds": self.rounds,
            "lower_bound": self.lower_bound,
            "meta": _jsonify(self.meta),
            "wall_time_s": self.wall_time_s,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "PlanReport":
        wall_time_s = payload.get("wall_time_s")
        try:
            return cls(
                query=payload["query"],
                strategy=payload["strategy"],
                topology=payload["topology"],
                stages=tuple(
                    RunReport.from_dict(stage) for stage in payload["stages"]
                ),
                estimated_cost=float(payload["estimated_cost"]),
                output_rows=int(payload["output_rows"]),
                meta=payload.get("meta", {}),
                wall_time_s=(
                    None if wall_time_s is None else float(wall_time_s)
                ),
            )
        except KeyError as missing:
            raise AnalysisError(
                f"plan report payload is missing field {missing}"
            ) from None


@dataclass(frozen=True)
class GraphRunReport:
    """Outcome of one iterative graph workload: per-superstep rows + totals.

    The graph driver (:mod:`repro.graphs.iterate`) executes a workload
    as a sequence of supersteps — each a registered protocol run (a
    shuffle or aggregate dispatched through the engine) or a
    driver-level return round — and every communication step
    contributes one :class:`RunReport` (its ``placement`` field records
    the step label, e.g. ``"superstep 2 shuffle"``).  The report keeps
    the per-step rows beside the totals so convergence behaviour is
    inspectable round by round, mirroring :class:`PlanReport` for the
    planner.
    """

    task: str
    protocol: str
    topology: str
    placement: str
    num_vertices: int
    num_edges: int
    supersteps: tuple
    lower_bound: float
    converged: bool
    meta: dict = field(default_factory=dict)
    #: End-to-end workload seconds (per-superstep times live on the
    #: step reports); ``None`` for payloads predating the field.
    wall_time_s: float | None = None

    @property
    def cost(self) -> float:
        """Measured workload cost: the sum of step costs (element units)."""
        return sum(step.cost for step in self.supersteps)

    @property
    def rounds(self) -> int:
        return sum(step.rounds for step in self.supersteps)

    @property
    def num_supersteps(self) -> int:
        return len(self.supersteps)

    @property
    def ratio(self) -> float:
        """``cost / lower_bound`` against the task's per-link bound."""
        if self.lower_bound > 0:
            return self.cost / self.lower_bound
        return 0.0 if self.cost == 0 else float("inf")

    def summarize(self) -> str:
        """Per-step text table plus the workload totals."""
        if not self.supersteps:
            raise AnalysisError("graph run executed no communication steps")
        return summarize_reports(
            list(self.supersteps),
            title=(
                f"{self.task} [{self.protocol}] on {self.topology}: "
                f"cost {self.cost:.1f} over {self.num_supersteps} steps "
                f"({self.rounds} rounds, n={self.num_vertices}, "
                f"m={self.num_edges}, "
                f"{'converged' if self.converged else 'NOT converged'})"
            ),
        )

    def to_dict(self) -> dict:
        ratio = self.ratio
        return {
            "task": self.task,
            "protocol": self.protocol,
            "topology": self.topology,
            "placement": self.placement,
            "num_vertices": self.num_vertices,
            "num_edges": self.num_edges,
            "supersteps": [step.to_dict() for step in self.supersteps],
            "lower_bound": self.lower_bound,
            "converged": self.converged,
            "cost": self.cost,
            "rounds": self.rounds,
            # infinite ratios (cost over a zero bound) are not valid JSON
            "ratio": ratio if math.isfinite(ratio) else None,
            "meta": _jsonify(self.meta),
            "wall_time_s": self.wall_time_s,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "GraphRunReport":
        wall_time_s = payload.get("wall_time_s")
        try:
            return cls(
                task=payload["task"],
                protocol=payload["protocol"],
                topology=payload["topology"],
                placement=payload["placement"],
                num_vertices=int(payload["num_vertices"]),
                num_edges=int(payload["num_edges"]),
                supersteps=tuple(
                    RunReport.from_dict(step) for step in payload["supersteps"]
                ),
                lower_bound=float(payload["lower_bound"]),
                converged=bool(payload["converged"]),
                meta=payload.get("meta", {}),
                wall_time_s=(
                    None if wall_time_s is None else float(wall_time_s)
                ),
            )
        except KeyError as missing:
            raise AnalysisError(
                f"graph report payload is missing field {missing}"
            ) from None


def summarize_reports(
    reports: Sequence[RunReport], *, title: str | None = None
) -> str:
    """Render reports as a text table, one row per run."""
    if not reports:
        raise AnalysisError("no reports to summarize")
    return render_table(
        REPORT_HEADERS, [r.as_row() for r in reports], title=title
    )


def aggregate(reports: Iterable[RunReport]) -> dict:
    """Max rounds and max/mean ratio per task — the Table 1 claims.

    Ratio statistics cover the finite ratios only; when every ratio in
    a task is infinite (positive cost over zero bounds) the fields are
    ``None``, never ``float("inf")`` — the summary feeds JSON exports
    which must stay strict-RFC 8259 (``json.dumps`` would otherwise
    emit a bare ``Infinity`` token).

    ``wall_s`` sums the measured execution seconds across the task's
    runs; it is ``None`` when no run carried a wall time (reports
    rebuilt from pre-obs JSON payloads).
    """
    by_task: dict[str, list[RunReport]] = {}
    for report in reports:
        by_task.setdefault(report.task, []).append(report)
    summary: dict = {}
    for task, rows in sorted(by_task.items()):
        finite = [r.ratio for r in rows if math.isfinite(r.ratio)]
        walls = [
            r.wall_time_s for r in rows if r.wall_time_s is not None
        ]
        summary[task] = {
            "runs": len(rows),
            "max_rounds": max(r.rounds for r in rows),
            "max_ratio": max(finite) if finite else None,
            "mean_ratio": sum(finite) / len(finite) if finite else None,
            "wall_s": sum(walls) if walls else None,
        }
    return summary

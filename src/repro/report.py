"""Run reports: one row per (task, protocol, topology, placement) cell."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

import numpy as np

from repro.errors import AnalysisError
from repro.util.text import render_table


def _jsonify(value: Any) -> Any:
    """Coerce a report payload to JSON-serializable builtins.

    Protocol ``meta`` dicts carry numpy scalars/arrays and frozensets;
    anything else unserializable degrades to ``repr`` rather than
    failing the export.
    """
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if isinstance(value, (frozenset, set)):
        return sorted(_jsonify(v) for v in value)
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    return repr(value)


@dataclass(frozen=True)
class RunReport:
    """Outcome of one protocol execution compared against its lower bound."""

    task: str
    protocol: str
    topology: str
    placement: str
    input_size: int
    rounds: int
    cost: float
    lower_bound: float
    meta: dict = field(default_factory=dict)

    @property
    def ratio(self) -> float:
        """``cost / lower_bound`` (the optimality ratio of Table 1)."""
        if self.lower_bound > 0:
            return self.cost / self.lower_bound
        return 0.0 if self.cost == 0 else float("inf")

    def to_dict(self) -> dict:
        """JSON-serializable form; ``from_dict`` round-trips it.

        ``ratio`` is included for downstream consumers even though it is
        derived; ``meta`` is coerced to builtins (numpy arrays become
        lists), so a report that went through JSON compares equal on
        every scalar field but not necessarily on ``meta``.
        """
        return {
            "task": self.task,
            "protocol": self.protocol,
            "topology": self.topology,
            "placement": self.placement,
            "input_size": self.input_size,
            "rounds": self.rounds,
            "cost": self.cost,
            "lower_bound": self.lower_bound,
            "ratio": self.ratio,
            "meta": _jsonify(self.meta),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RunReport":
        """Rebuild a report from :meth:`to_dict` output (or parsed JSON)."""
        try:
            return cls(
                task=payload["task"],
                protocol=payload["protocol"],
                topology=payload["topology"],
                placement=payload["placement"],
                input_size=int(payload["input_size"]),
                rounds=int(payload["rounds"]),
                cost=float(payload["cost"]),
                lower_bound=float(payload["lower_bound"]),
                meta=payload.get("meta", {}),
            )
        except KeyError as missing:
            raise AnalysisError(
                f"report payload is missing field {missing}"
            ) from None

    def as_row(self) -> list:
        return [
            self.task,
            self.protocol,
            self.topology,
            self.placement,
            self.input_size,
            self.rounds,
            self.cost,
            self.lower_bound,
            self.ratio,
        ]


REPORT_HEADERS = [
    "task",
    "protocol",
    "topology",
    "placement",
    "N",
    "rounds",
    "cost",
    "lower bound",
    "ratio",
]


def summarize_reports(
    reports: Sequence[RunReport], *, title: str | None = None
) -> str:
    """Render reports as a text table, one row per run."""
    if not reports:
        raise AnalysisError("no reports to summarize")
    return render_table(
        REPORT_HEADERS, [r.as_row() for r in reports], title=title
    )


def aggregate(reports: Iterable[RunReport]) -> dict:
    """Max rounds and max/mean ratio per task — the Table 1 claims."""
    by_task: dict[str, list[RunReport]] = {}
    for report in reports:
        by_task.setdefault(report.task, []).append(report)
    summary: dict = {}
    for task, rows in sorted(by_task.items()):
        finite = [r.ratio for r in rows if r.ratio != float("inf")]
        summary[task] = {
            "runs": len(rows),
            "max_rounds": max(r.rounds for r in rows),
            "max_ratio": max(finite) if finite else float("inf"),
            "mean_ratio": sum(finite) / len(finite) if finite else float("inf"),
        }
    return summary

"""The execution engine: one ``run()`` for every task and protocol.

Replaces the per-task ``run_intersection``/``run_cartesian``/``run_sorting``
triplet with a single capability-driven entry point.  The engine looks
the task and protocol up in :mod:`repro.registry`, routes keyword
arguments by the protocol's declared capabilities (the seed only goes to
protocols that accept one), verifies the answer with the task's
verifier (the reproduction never reports cost for a wrong answer),
computes the task's lower bound, and packages everything into a
:class:`repro.report.RunReport`.

Batch execution goes through :func:`run_many`, which evaluates a list
of :class:`RunPlan` objects concurrently (the simulator is pure Python +
numpy, and distinct runs share no state, so a thread pool is safe) and
returns reports in plan order.  Both entry points select the execution
substrate: ``run(..., backend="process")`` executes every round of the
protocol across shared-memory worker processes
(:mod:`repro.parallel`), and ``run_many(..., executor="process")``
distributes whole plans over the same worker pool.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass, field
from time import perf_counter
from typing import Iterable, Sequence

import numpy as np

from repro.obs.audit import get_auditor, use_auditor
from repro.obs.metrics import LATENCY_BUCKETS, get_registry, use_registry
from repro.obs.tracer import get_tracer, use_tracer
from repro.report import RunReport
from repro.core.cartesian.lower_bounds import cartesian_lower_bound
from repro.core.intersection.lower_bound import intersection_lower_bound
from repro.core.sorting.lower_bound import sorting_lower_bound
from repro.core.sorting.ordering import verify_sorted_output
from repro.data.distribution import Distribution
from repro.errors import AnalysisError, ProtocolError
from repro.queries.aggregate import groupby_lower_bound
from repro.queries.join import equijoin_lower_bound
from repro.queries.tuples import DEFAULT_PAYLOAD_BITS, decode_tuples
from repro.registry import (
    get_protocol,
    get_task,
    register_task,
)
from repro.sim.cluster import current_backend, use_backend
from repro.sim.protocol import ProtocolResult
from repro.topology.artifacts import ensure_artifact_cache, get_artifact_cache, use_artifacts
from repro.topology.tree import TreeTopology

# Importing these modules is what populates the registry: every protocol
# self-registers at import time.  The engine pulls them in explicitly so
# ``from repro.engine import run`` alone sees the full catalog.
import repro.baselines.gather  # noqa: F401
import repro.baselines.hypercube  # noqa: F401
import repro.baselines.uniform_hash  # noqa: F401
import repro.core.cartesian.star  # noqa: F401
import repro.core.cartesian.tree  # noqa: F401
import repro.core.cartesian.unequal  # noqa: F401
import repro.core.cartesian.whc  # noqa: F401
import repro.core.intersection.star  # noqa: F401
import repro.core.intersection.tree  # noqa: F401
import repro.core.sorting.terasort  # noqa: F401
import repro.core.sorting.wts  # noqa: F401
import repro.graphs.components  # noqa: F401
import repro.graphs.triangles  # noqa: F401
import repro.queries.aggregate  # noqa: F401
import repro.queries.join  # noqa: F401


def _verify_intersection(
    tree: TreeTopology, distribution: Distribution, result: ProtocolResult
) -> None:
    """The emitted union must equal ``R ∩ S`` exactly."""
    expected = np.intersect1d(
        distribution.relation("R"), distribution.relation("S")
    )
    found = (
        np.unique(np.concatenate(list(result.outputs.values())))
        if result.outputs
        else np.empty(0, np.int64)
    )
    if len(found) != len(expected) or np.any(found != expected):
        raise ProtocolError(
            f"{result.protocol} produced a wrong intersection "
            f"({len(found)} vs {len(expected)} elements)"
        )


def _verify_cartesian(
    tree: TreeTopology, distribution: Distribution, result: ProtocolResult
) -> None:
    """Every ``(r, s)`` pair must be enumerated exactly once in total."""
    expected = distribution.total("R") * distribution.total("S")
    produced = sum(o["num_pairs"] for o in result.outputs.values())
    if produced != expected:
        raise ProtocolError(
            f"{result.protocol} enumerated {produced} of {expected} pairs"
        )


def _verify_sorting(
    tree: TreeTopology, distribution: Distribution, result: ProtocolResult
) -> None:
    verify_sorted_output(
        tree,
        result.outputs,
        result.meta["order"],
        distribution.relation("R"),
    )


def _verify_equijoin(
    tree: TreeTopology, distribution: Distribution, result: ProtocolResult
) -> None:
    """The join must produce ``sum_k cnt_R(k) * cnt_S(k)`` pairs."""
    payload_bits = result.meta.get("payload_bits", DEFAULT_PAYLOAD_BITS)
    r_keys, _ = decode_tuples(
        distribution.relation("R"), payload_bits=payload_bits
    )
    s_keys, _ = decode_tuples(
        distribution.relation("S"), payload_bits=payload_bits
    )
    r_unique, r_counts = np.unique(r_keys, return_counts=True)
    s_unique, s_counts = np.unique(s_keys, return_counts=True)
    common, r_index, s_index = np.intersect1d(
        r_unique, s_unique, return_indices=True
    )
    expected = int(np.sum(r_counts[r_index] * s_counts[s_index]))
    produced = sum(o["num_pairs"] for o in result.outputs.values())
    if produced != expected:
        raise ProtocolError(
            f"{result.protocol} joined {produced} of {expected} pairs"
        )


def _verify_aggregate(
    tree: TreeTopology, distribution: Distribution, result: ProtocolResult
) -> None:
    """Every distinct input key must appear at exactly one node."""
    payload_bits = result.meta.get("payload_bits", DEFAULT_PAYLOAD_BITS)
    keys, _ = decode_tuples(
        distribution.relation("R"), payload_bits=payload_bits
    )
    expected = len(np.unique(keys))
    produced = sum(len(groups) for groups in result.outputs.values())
    if produced != expected:
        raise ProtocolError(
            f"{result.protocol} emitted {produced} of {expected} groups"
        )


register_task(
    "set-intersection",
    default_protocol="tree",
    verifier=_verify_intersection,
    lower_bound=intersection_lower_bound,
    aliases=("intersection",),
)
register_task(
    "cartesian-product",
    default_protocol="tree",
    verifier=_verify_cartesian,
    lower_bound=cartesian_lower_bound,
    aliases=("cartesian",),
)
register_task(
    "sorting",
    default_protocol="wts",
    verifier=_verify_sorting,
    lower_bound=sorting_lower_bound,
    aliases=("sort",),
)
register_task(
    "equijoin",
    default_protocol="tree",
    verifier=_verify_equijoin,
    lower_bound=equijoin_lower_bound,
    lower_bound_opts=("r_tag", "s_tag"),
    aliases=("join",),
)
register_task(
    "groupby-aggregate",
    default_protocol="tree",
    verifier=_verify_aggregate,
    lower_bound=groupby_lower_bound,
    lower_bound_opts=("tag", "payload_bits"),
    aliases=("aggregate", "groupby"),
)


def run(
    task: str,
    tree: TreeTopology,
    distribution: Distribution,
    *,
    protocol: str | None = None,
    seed: int = 0,
    placement: str = "custom",
    verify: bool = True,
    backend: str | None = None,
    num_workers: int | None = None,
    **opts,
) -> RunReport:
    """Run one protocol on one instance and report cost versus bound.

    Parameters
    ----------
    task:
        Registered task name or alias (``"set-intersection"``,
        ``"cartesian"``, ``"sorting"``, ``"equijoin"``, ...).
    tree, distribution:
        The instance: a topology and an initial data placement on it.
    protocol:
        Protocol name from the catalog; defaults to the task's
        registered default (the paper's topology-aware algorithm).
    seed:
        Routed to the protocol only if its spec declares
        ``accepts_seed``; callers never need to know which ones do.
    placement:
        Label recorded in the report (the placement policy name).
    verify:
        Check the answer with the task's verifier before reporting.
    backend:
        Execution substrate: ``"sim"`` (the cost-model simulator) or
        ``"process"`` (shared-memory worker processes).  ``None``
        keeps the ambient backend (``use_backend`` context, default
        ``"sim"``).  The protocol's spec must list the backend in its
        ``backends`` capability tuple.
    num_workers:
        Worker-rank count for ``backend="process"``; ignored (and
        rejected) on the simulator.
    opts:
        Extra keyword arguments forwarded to the protocol unchanged
        (e.g. ``blocks=...`` for ablations, ``materialize=True``).
    """
    report, _ = run_with_result(
        task,
        tree,
        distribution,
        protocol=protocol,
        seed=seed,
        placement=placement,
        verify=verify,
        backend=backend,
        num_workers=num_workers,
        **opts,
    )
    return report


def run_with_result(
    task: str,
    tree: TreeTopology,
    distribution: Distribution,
    *,
    protocol: str | None = None,
    seed: int = 0,
    placement: str = "custom",
    verify: bool = True,
    backend: str | None = None,
    num_workers: int | None = None,
    **opts,
) -> tuple[RunReport, ProtocolResult]:
    """Like :func:`run`, but also return the raw :class:`ProtocolResult`.

    The report strips per-node outputs (it is a summary row); pipeline
    consumers — the query-plan executor above all — need the outputs to
    materialize the next stage's input, so this variant hands back both.
    """
    task_spec = get_task(task)
    spec = get_protocol(task_spec.name, protocol or task_spec.default_protocol)
    resolved_backend = backend if backend is not None else current_backend()
    if resolved_backend not in spec.backends:
        raise AnalysisError(
            f"protocol {spec.name!r} supports backends "
            f"{list(spec.backends)}, not {resolved_backend!r}"
        )
    if backend is not None:
        backend_opts = {}
        if num_workers is not None:
            if backend != "process":
                raise AnalysisError(
                    "num_workers only applies to backend='process', "
                    f"not {backend!r}"
                )
            backend_opts["num_workers"] = num_workers
        substrate = use_backend(backend, **backend_opts)
    elif num_workers is not None:
        raise AnalysisError("num_workers requires an explicit backend")
    else:
        substrate = nullcontext()
    tracer = get_tracer()
    registry = get_registry()
    run_labels = (
        {
            "task": task_spec.name,
            "protocol": spec.name,
            "backend": resolved_backend,
        }
        if registry.enabled
        else None
    )
    # The root span of a task execution: everything below — supersteps,
    # plan stages, rounds, worker barriers — nests under it, and pool
    # failures report their position relative to it.
    with tracer.span(
        f"engine.run {task_spec.name}",
        category="engine",
        task=task_spec.name,
        protocol=spec.name,
        topology=tree.name,
        backend=resolved_backend,
        placement=placement,
    ) as root:
        started = perf_counter()
        try:
            # A one-shot artifact scope: clusters the protocol builds
            # (one for most tasks, one per superstep for graph drivers)
            # share topology artifacts within this run; inside an
            # EngineSession the session's long-lived cache is reused
            # instead — run() is a thin one-shot session.
            with substrate, ensure_artifact_cache():
                result = spec.call(tree, distribution, seed=seed, **opts)
        except Exception:
            if run_labels is not None:
                registry.counter(
                    "repro_runs_total", status="error", **run_labels
                ).inc()
            raise
        wall_time_s = perf_counter() - started
        if run_labels is not None:
            registry.histogram(
                "repro_run_seconds",
                buckets=LATENCY_BUCKETS,
                task=task_spec.name,
                backend=resolved_backend,
            ).observe(wall_time_s)
        if verify and task_spec.verifier is not None:
            with tracer.span("engine.verify", category="verify"):
                try:
                    task_spec.verifier(tree, distribution, result)
                except Exception:
                    if run_labels is not None:
                        registry.counter(
                            "repro_verify_total",
                            outcome="fail",
                            task=task_spec.name,
                        ).inc()
                        registry.counter(
                            "repro_runs_total", status="error", **run_labels
                        ).inc()
                    raise
            if run_labels is not None:
                registry.counter(
                    "repro_verify_total", outcome="pass", task=task_spec.name
                ).inc()
        elif run_labels is not None:
            registry.counter(
                "repro_verify_total", outcome="skipped", task=task_spec.name
            ).inc()
        bound = None
        if task_spec.lower_bound is not None:
            bound_opts = {
                name: opts[name]
                for name in task_spec.lower_bound_opts
                if name in opts
            }
            with tracer.span("engine.bound", category="bound"):
                bound = task_spec.lower_bound(
                    tree, distribution, **bound_opts
                )
        if run_labels is not None:
            registry.counter(
                "repro_runs_total", status="ok", **run_labels
            ).inc()
        root.set(cost=result.cost, rounds=result.rounds)
    auditor = get_auditor()
    if auditor.enabled and bound is not None:
        auditor.check_bound(
            cost=result.cost,
            bound=bound.value,
            task=task_spec.name,
            protocol=result.protocol,
            per_instance=task_spec.bound_holds_per_instance,
        )
    meta = {
        "result": result.meta,
        "bound": bound.description if bound is not None else "",
    }
    if registry.enabled:
        meta["metrics"] = registry.summary()
    report = RunReport(
        task=task_spec.name,
        protocol=result.protocol,
        topology=tree.name,
        placement=placement,
        input_size=distribution.total(),
        rounds=result.rounds,
        cost=result.cost,
        lower_bound=bound.value if bound is not None else 0.0,
        meta=meta,
        wall_time_s=wall_time_s,
    )
    return report, result


@dataclass
class RunPlan:
    """One cell of a batch: everything :func:`run` needs for one call."""

    task: str
    tree: TreeTopology
    distribution: Distribution
    protocol: str | None = None
    seed: int = 0
    placement: str = "custom"
    verify: bool = True
    backend: str | None = None
    num_workers: int | None = None
    opts: dict = field(default_factory=dict)

    def execute(self) -> RunReport:
        return run(
            self.task,
            self.tree,
            self.distribution,
            protocol=self.protocol,
            seed=self.seed,
            placement=self.placement,
            verify=self.verify,
            backend=self.backend,
            num_workers=self.num_workers,
            **self.opts,
        )


def _execute_annotated(indexed: tuple[int, RunPlan]) -> RunReport:
    """Execute one plan; on failure, pin the plan's index and task.

    Pool workers strip the call site from tracebacks, so without this a
    grid of hundreds of plans fails with no hint of *which* cell broke.
    """
    index, plan = indexed
    try:
        return plan.execute()
    except Exception as error:
        note = f"run_many: plan {index} (task {plan.task!r}) failed"
        if hasattr(error, "add_note"):  # Python >= 3.11
            error.add_note(note)
        elif error.args:
            error.args = (f"{error.args[0]} [{note}]",) + error.args[1:]
        else:
            error.args = (note,)
        raise


#: Dispatch target for plans shipped to pool workers.
PLAN_JOB = "repro.engine:_execute_annotated"


def run_many(
    plans: Iterable[RunPlan | dict],
    *,
    workers: int | None = None,
    executor: str = "thread",
) -> list[RunReport]:
    """Execute plans concurrently; reports come back in plan order.

    ``plans`` may mix :class:`RunPlan` instances and plain dicts with the
    same field names.  ``workers=1`` (or a single plan) degrades to a
    sequential loop, so failures surface with clean tracebacks; any
    worker's exception propagates after the pool drains, annotated with
    the failing plan's index and task name.

    ``executor`` picks the batch substrate: ``"thread"`` (default) maps
    plans over a thread pool — fine for the simulator, which releases
    the GIL in its numpy kernels — while ``"process"`` scatters whole
    plans round-robin over the shared worker-process pool
    (:func:`repro.parallel.pool.get_pool`), escaping the GIL entirely.
    Plans and reports cross the process boundary by pickling, so
    ``"process"`` requires picklable plan fields (every in-repo
    topology/distribution is).
    """
    if workers is not None and workers < 1:
        raise AnalysisError(f"workers must be >= 1, got {workers}")
    if executor not in ("thread", "process"):
        raise AnalysisError(
            f"executor must be 'thread' or 'process', got {executor!r}"
        )
    normalized: list[RunPlan] = [
        plan if isinstance(plan, RunPlan) else RunPlan(**plan)
        for plan in plans
    ]
    if not normalized:
        return []
    if workers == 1 or len(normalized) == 1:
        return [
            _execute_annotated(indexed) for indexed in enumerate(normalized)
        ]
    if executor == "process":
        # Plans execute in worker processes: their spans stay worker-side
        # (only master-side work lands in the caller's trace).
        from repro.parallel.pool import get_pool

        pool = get_pool(workers if workers is not None else 2)
        return pool.scatter(PLAN_JOB, list(enumerate(normalized)))
    tracer = get_tracer()
    registry = get_registry()
    auditor = get_auditor()
    artifact_cache = get_artifact_cache()
    if (
        tracer.enabled
        or registry.enabled
        or auditor.enabled
        or artifact_cache is not None
    ):
        # Carry the caller's recording tracer, metrics registry,
        # auditor, and artifact cache onto the executor threads (tracer
        # buffer, registry instruments, and the artifact cache are
        # shared and locked; span stacks are per-thread).  The no-op
        # instances are *not* shared — the null tracer's path stack is
        # single-threaded state.
        def _mapper(indexed: tuple[int, RunPlan]) -> RunReport:
            with use_tracer(tracer) if tracer.enabled else nullcontext():
                with (
                    use_registry(registry)
                    if registry.enabled
                    else nullcontext()
                ):
                    with (
                        use_auditor(auditor)
                        if auditor.enabled
                        else nullcontext()
                    ):
                        with (
                            use_artifacts(artifact_cache)
                            if artifact_cache is not None
                            else nullcontext()
                        ):
                            return _execute_annotated(indexed)

    else:
        _mapper = _execute_annotated
    with ThreadPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(_mapper, enumerate(normalized)))


def run_plan(
    query,
    tree: TreeTopology,
    catalog: dict,
    *,
    strategy: str = "optimized",
    seed: int = 0,
    verify: bool = True,
    keep_output: bool = False,
    plan_cache=None,
):
    """Compile and execute a logical query plan; report per-stage costs.

    The multi-operator counterpart of :func:`run`: ``query`` is a
    :mod:`repro.plan.logical` tree, ``catalog`` maps base relation
    names to :class:`~repro.plan.relation.PlacedRelation` instances.
    The optimizer picks a join order and a registered protocol per
    stage (``strategy="optimized"``), or builds the gather-everything /
    worst-order baseline plans; the executor then runs the pipeline on
    one cluster, materializing every intermediate as a new
    :class:`~repro.data.distribution.Distribution`.

    ``plan_cache`` — a :class:`repro.plan.optimizer.PlanCache` — lets
    repeated shapes skip optimization entirely; sessions thread their
    cache through here.

    Returns a :class:`~repro.report.PlanReport`; with
    ``keep_output=True``, returns ``(report, output_relation)``.
    """
    # Imported lazily: the plan package builds on this module.
    from repro.plan.executor import execute_plan
    from repro.plan.optimizer import optimize

    # One-shot artifact scope, mirroring run(): the per-stage clusters
    # the executor builds all share one set of topology artifacts.
    with ensure_artifact_cache():
        physical = optimize(
            query, tree, catalog, strategy=strategy, cache=plan_cache
        )
        return execute_plan(
            physical,
            tree,
            catalog,
            seed=seed,
            verify=verify,
            keep_output=keep_output,
        )

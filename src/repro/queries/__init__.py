"""Relational operators over the topology-aware substrate.

The paper's conclusion names the natural next step: "more complex tasks
that have so far been analyzed only in the context of the MPC model,
starting from a simple join between two relations".  This package takes
that step with the same distribution-aware machinery the paper's tasks
use:

* :func:`~repro.queries.tuples.encode_tuples` — pack (key, payload)
  pairs into the simulator's 64-bit elements;
* :func:`~repro.queries.join.tree_equijoin` — a single-round equi-join
  generalizing TreeIntersect: the smaller relation is replicated across
  the balanced-partition blocks, the larger hashed within its own block,
  and matching keys join locally;
* :func:`~repro.queries.aggregate.tree_groupby_aggregate` — group-by
  aggregation with local pre-aggregation and a placement-weighted
  shuffle of the combined partials.
"""

from repro.queries.tuples import decode_tuples, encode_tuples
from repro.queries.join import equijoin_lower_bound, local_join, tree_equijoin
from repro.queries.aggregate import (
    combine_per_key,
    groupby_lower_bound,
    tree_groupby_aggregate,
)

__all__ = [
    "encode_tuples",
    "decode_tuples",
    "tree_equijoin",
    "local_join",
    "equijoin_lower_bound",
    "tree_groupby_aggregate",
    "combine_per_key",
    "groupby_lower_bound",
]

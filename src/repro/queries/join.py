"""Distribution-aware equi-join on symmetric trees.

The natural join ``R ⋈ S`` generalizes set intersection: instead of
emitting common *values*, every pair of tuples agreeing on the key must
be emitted.  The single-round strategy of Algorithm 2 carries over
unchanged — and so does its per-link budget analysis, because the
communication pattern only depends on tuple counts, not payloads:

* compute the balanced partition of the compute nodes (Definition 1);
* replicate every ``R``-tuple to one hashed owner per block (multicast,
  one copy per link);
* hash every ``S``-tuple within its own block;
* join locally; block ``i`` produces ``R ⋈ (S restricted to block i)``
  and the blocks partition ``S``.

Tuples are (key, payload) pairs packed by
:mod:`repro.queries.tuples`; hashing is by key, so duplicate keys are
fully supported on both sides.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.intersection.lower_bound import intersection_lower_bound
from repro.core.intersection.partition import balanced_partition
from repro.core.common import LowerBound
from repro.data.distribution import Distribution
from repro.queries.tuples import DEFAULT_PAYLOAD_BITS, decode_tuples
from repro.registry import register_protocol
from repro.sim.cluster import make_cluster
from repro.sim.protocol import ProtocolResult
from repro.topology.tree import TreeTopology, node_sort_key
from repro.util.hashing import WeightedNodeHasher
from repro.util.seeding import derive_seed

_R_RECV = "join.R.recv"
_S_RECV = "join.S.recv"


def equijoin_lower_bound(
    tree: TreeTopology,
    distribution: Distribution,
    *,
    r_tag: str = "R",
    s_tag: str = "S",
) -> LowerBound:
    """A valid equi-join lower bound via Theorem 1.

    Set intersection is the special case of the equi-join with distinct
    keys and empty payloads, so any join protocol solves the embedded
    lopsided set-disjointness instances and inherits the Theorem 1
    bound on the tuple counts.  (Output-size-sensitive bounds for skewed
    keys are future work, as in the paper.)
    """
    bound = intersection_lower_bound(
        tree, distribution, r_tag=r_tag, s_tag=s_tag
    )
    return LowerBound(
        value=bound.value,
        bottleneck_edge=bound.bottleneck_edge,
        per_edge=bound.per_edge,
        description="Theorem 1 applied to the equi-join",
    )


def local_join(
    r_tuples: np.ndarray,
    s_tuples: np.ndarray,
    *,
    payload_bits: int,
    materialize: bool,
) -> dict:
    """Join two encoded fragments on the key component.

    Returns ``{"num_pairs", "num_keys"}`` and, with ``materialize=True``,
    the joined ``(key, r_payload, s_payload)`` rows under ``"pairs"``.
    Shared by the tree protocol and the gather/uniform-hash baselines.
    """
    r_keys, r_payloads = decode_tuples(r_tuples, payload_bits=payload_bits)
    s_keys, s_payloads = decode_tuples(s_tuples, payload_bits=payload_bits)
    r_order = np.argsort(r_keys, kind="stable")
    s_order = np.argsort(s_keys, kind="stable")
    r_keys, r_payloads = r_keys[r_order], r_payloads[r_order]
    s_keys, s_payloads = s_keys[s_order], s_payloads[s_order]
    common = np.intersect1d(r_keys, s_keys)
    num_pairs = 0
    pairs: list = []
    for key in common:
        r_lo, r_hi = np.searchsorted(r_keys, [key, key + 1])
        s_lo, s_hi = np.searchsorted(s_keys, [key, key + 1])
        count = int(r_hi - r_lo) * int(s_hi - s_lo)
        num_pairs += count
        if materialize and count:
            left = np.repeat(r_payloads[r_lo:r_hi], s_hi - s_lo)
            right = np.tile(s_payloads[s_lo:s_hi], r_hi - r_lo)
            keys = np.full(count, key, dtype=np.int64)
            pairs.append(np.stack([keys, left, right], axis=1))
    result: dict = {"num_pairs": num_pairs, "num_keys": int(len(common))}
    if materialize:
        result["pairs"] = (
            np.concatenate(pairs) if pairs else np.empty((0, 3), np.int64)
        )
    return result


@register_protocol(
    task="equijoin",
    name="tree",
    accepts_seed=True,
    description="Single-round equi-join of encoded relations on any tree",
)
def tree_equijoin(
    tree: TreeTopology,
    distribution: Distribution,
    *,
    seed: int = 0,
    r_tag: str = "R",
    s_tag: str = "S",
    payload_bits: int = DEFAULT_PAYLOAD_BITS,
    blocks: Sequence[frozenset] | None = None,
    materialize: bool = False,
    bits_per_element: int = 64,
) -> ProtocolResult:
    """Single-round equi-join of encoded relations; see module docstring.

    ``outputs[v]`` holds ``num_pairs``/``num_keys`` and, with
    ``materialize=True``, the joined ``(key, r_payload, s_payload)``
    rows node ``v`` produced.
    """
    tree.require_symmetric("tree_equijoin")
    distribution.validate_for(tree)

    swapped = distribution.total(r_tag) > distribution.total(s_tag)
    small_tag, large_tag = (s_tag, r_tag) if swapped else (r_tag, s_tag)
    small_recv, large_recv = (
        (_S_RECV, _R_RECV) if swapped else (_R_RECV, _S_RECV)
    )

    computes = sorted(tree.compute_nodes, key=node_sort_key)
    node_index = {v: i for i, v in enumerate(computes)}
    sizes = {
        v: distribution.size(v, small_tag) + distribution.size(v, large_tag)
        for v in computes
    }
    r_size = distribution.total(small_tag)
    if blocks is None:
        blocks = balanced_partition(tree, sizes, r_size)
    blocks = [frozenset(b) for b in blocks]
    block_of = {v: i for i, block in enumerate(blocks) for v in block}

    hashers: list[WeightedNodeHasher | None] = []
    members_per_block: list[list] = []
    for i, block in enumerate(blocks):
        members = sorted(block, key=node_sort_key)
        members_per_block.append(members)
        weights = [sizes[v] for v in members]
        hashers.append(
            WeightedNodeHasher(
                members, weights, derive_seed(seed, "equijoin", i)
            )
            if sum(weights) > 0
            else None
        )
    active = [i for i, h in enumerate(hashers) if h is not None]

    cluster = make_cluster(tree, distribution, bits_per_element=bits_per_element)
    with cluster.round() as ctx:
        for v in computes:
            r_local = cluster.local(v, small_tag)
            if len(r_local) and active:
                keys = np.asarray(r_local, dtype=np.int64) >> payload_bits
                member_ids = {
                    i: np.asarray(
                        [node_index[m] for m in members_per_block[i]],
                        dtype=np.int64,
                    )
                    for i in active
                }
                target_matrix = np.stack(
                    [
                        member_ids[i][hashers[i].assign_indices(keys)]
                        for i in active
                    ],
                    axis=1,
                )
                unique_rows, inverse = np.unique(
                    target_matrix, axis=0, return_inverse=True
                )
                destination_sets = [
                    frozenset(computes[j] for j in row)
                    for row in unique_rows.tolist()
                ]
                ctx.exchange_multicast(
                    v,
                    np.ravel(inverse),
                    destination_sets,
                    r_local,
                    tag=small_recv,
                )
            s_local = cluster.local(v, large_tag)
            if len(s_local):
                hasher = hashers[block_of[v]]
                if hasher is None:  # pragma: no cover
                    continue
                keys = np.asarray(s_local, dtype=np.int64) >> payload_bits
                ctx.exchange(
                    v,
                    hasher.assign_indices(keys),
                    s_local,
                    tag=large_recv,
                    nodes=members_per_block[block_of[v]],
                )

    outputs: dict = {}
    for v in computes:
        outputs[v] = local_join(
            cluster.local(v, _R_RECV),
            cluster.local(v, _S_RECV),
            payload_bits=payload_bits,
            materialize=materialize,
        )

    return ProtocolResult.from_ledger(
        "tree-equijoin",
        cluster.ledger,
        outputs=outputs,
        meta={
            "num_blocks": len(blocks),
            "swapped_relations": swapped,
            "payload_bits": payload_bits,
        },
    )

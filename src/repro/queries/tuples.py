"""Packing (key, payload) tuples into the simulator's 64-bit elements.

The cluster simulator ships 1-D ``int64`` arrays; relational operators
need keyed tuples.  A tuple is encoded as ``key << payload_bits |
payload`` — both components non-negative — which keeps routing
vectorised (the key is one shift away) and makes one tuple cost exactly
one element in the ledger, matching the model's per-tuple accounting.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DistributionError

DEFAULT_PAYLOAD_BITS = 20


def encode_tuples(
    keys: np.ndarray,
    payloads: np.ndarray,
    *,
    payload_bits: int = DEFAULT_PAYLOAD_BITS,
) -> np.ndarray:
    """Pack aligned key/payload arrays into one ``int64`` array."""
    if not 1 <= payload_bits <= 40:
        raise DistributionError("payload_bits must be in [1, 40]")
    key_array = np.asarray(keys, dtype=np.int64)
    payload_array = np.asarray(payloads, dtype=np.int64)
    if key_array.shape != payload_array.shape:
        raise DistributionError(
            f"{len(key_array)} keys but {len(payload_array)} payloads"
        )
    payload_limit = np.int64(1) << payload_bits
    if len(payload_array) and (
        payload_array.min() < 0 or payload_array.max() >= payload_limit
    ):
        raise DistributionError(
            f"payloads must be in [0, 2^{payload_bits})"
        )
    key_limit = np.int64(1) << (62 - payload_bits)
    if len(key_array) and (key_array.min() < 0 or key_array.max() >= key_limit):
        raise DistributionError(
            f"keys must be in [0, 2^{62 - payload_bits})"
        )
    return (key_array << payload_bits) | payload_array


def decode_tuples(
    encoded: np.ndarray, *, payload_bits: int = DEFAULT_PAYLOAD_BITS
) -> tuple[np.ndarray, np.ndarray]:
    """Unpack an encoded array back into ``(keys, payloads)``."""
    values = np.asarray(encoded, dtype=np.int64)
    mask = (np.int64(1) << payload_bits) - np.int64(1)
    return values >> payload_bits, values & mask

"""Distribution-aware group-by aggregation on symmetric trees.

Aggregation is the task prior topology-aware work studied on stars
(Liu et al. [37], LOOM [16, 17]); here it runs on any symmetric tree
with the same placement-weighted machinery as the paper's tasks:

1. **local pre-aggregation** — each node combines its tuples per key,
   so at most one partial per (node, key) ever travels (the classic
   combiner optimization, free in the model's computation phase);
2. **weighted shuffle** — each key's partials are hashed to an owner
   chosen with probability proportional to the data each node holds, so
   data-rich, well-connected nodes own more groups;
3. **final combine** at the owner.

Supported operations: ``sum``, ``count``, ``min``, ``max``.  The
protocol is a single round; disabling pre-aggregation (the ablation)
shows the combiner's effect on the model cost.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.common import LowerBound
from repro.data.columns import KeyValueArrays
from repro.data.distribution import Distribution
from repro.errors import ProtocolError
from repro.queries.tuples import DEFAULT_PAYLOAD_BITS, decode_tuples, encode_tuples
from repro.registry import register_protocol
from repro.sim.cluster import make_cluster
from repro.sim.protocol import ProtocolResult
from repro.topology.tree import TreeTopology, node_sort_key
from repro.util.hashing import WeightedNodeHasher
from repro.util.seeding import derive_seed

_RECV = "aggregate.recv"

_REDUCERS: dict[str, Callable] = {
    "sum": np.add.reduceat,
    "count": None,  # handled specially
    "min": np.minimum.reduceat,
    "max": np.maximum.reduceat,
}


def combine_per_key(
    keys: np.ndarray, values: np.ndarray, op: str
) -> tuple[np.ndarray, np.ndarray]:
    """Aggregate ``values`` per distinct key; returns sorted unique keys."""
    if len(keys) == 0:
        return keys, values
    order = np.argsort(keys, kind="stable")
    keys, values = keys[order], values[order]
    boundaries = np.flatnonzero(np.diff(keys)) + 1
    starts = np.concatenate([[0], boundaries])
    unique_keys = keys[starts]
    if op == "count":
        counts = np.diff(np.concatenate([starts, [len(keys)]]))
        return unique_keys, counts.astype(np.int64)
    reducer = _REDUCERS[op]
    return unique_keys, reducer(values, starts)


def groupby_lower_bound(
    tree: TreeTopology,
    distribution: Distribution,
    *,
    tag: str = "R",
    payload_bits: int = DEFAULT_PAYLOAD_BITS,
) -> LowerBound:
    """A per-link lower bound for group-by aggregation.

    Any correct protocol assembles each key's aggregate at a single
    node.  Fix a link ``e`` and a key ``k`` with input tuples on both
    sides of ``e``: whichever side ends up owning ``k``, at least one
    element about ``k`` (a tuple, a partial, or the final aggregate)
    must cross ``e``, because the owning side's aggregate depends on
    data only the other side holds.  Distinct keys contribute
    independently — but the link is full-duplex, and the algorithm
    chooses per key *which* side owns it, splitting the forced
    crossings between the two directed channels; only the heavier
    direction shows up in the round cost, so

        cost(e) >= |keys(V-e) ∩ keys(V+e)| / (2 w_e)

    and the bound is the maximum over links.  This is the group-by
    analogue of Theorem 1's per-link counting argument, expressed in
    element units like every other bound in the package.  (The
    distribution-aware degree workload in :mod:`repro.graphs.degrees`
    actually achieves less than ``|shared| / w_e`` on skewed
    placements, which is what forces the factor 2.)
    """
    tree.require_symmetric("the group-by lower bound")
    computes = sorted(tree.compute_nodes, key=node_sort_key)
    node_keys = {}
    for v in computes:
        keys, _ = decode_tuples(
            distribution.fragment(v, tag), payload_bits=payload_bits
        )
        node_keys[v] = np.unique(keys)
    per_edge: dict = {}
    for edge in tree.undirected_edges():
        a_side, b_side = tree.compute_sides(edge)
        a_keys = [node_keys[v] for v in a_side if len(node_keys.get(v, ()))]
        b_keys = [node_keys[v] for v in b_side if len(node_keys.get(v, ()))]
        if not a_keys or not b_keys:
            per_edge[edge] = 0.0
            continue
        shared = np.intersect1d(
            np.concatenate(a_keys), np.concatenate(b_keys)
        )
        per_edge[edge] = len(shared) / (
            2.0 * tree.undirected_bandwidth(edge)
        )
    return LowerBound.from_per_edge(
        per_edge, "per-link shared-key counting (group-by)"
    )


@register_protocol(
    task="groupby-aggregate",
    name="tree",
    accepts_seed=True,
    description="Per-key aggregation of encoded tuples across the tree",
)
def tree_groupby_aggregate(
    tree: TreeTopology,
    distribution: Distribution,
    *,
    op: str = "sum",
    seed: int = 0,
    tag: str = "R",
    payload_bits: int = DEFAULT_PAYLOAD_BITS,
    pre_aggregate: bool = True,
    bits_per_element: int = 64,
) -> ProtocolResult:
    """Aggregate encoded (key, value) tuples per key across the tree.

    ``outputs[v]`` maps each key owned by node ``v`` to its aggregate.
    ``pre_aggregate=False`` ships raw tuples instead of per-node
    partials (the ablation).  Note ``sum``/``count`` partials must fit
    the payload width; choose ``payload_bits`` accordingly.
    """
    if op not in _REDUCERS:
        raise ProtocolError(
            f"unsupported op {op!r}; choose from {sorted(_REDUCERS)}"
        )
    tree.require_symmetric("tree_groupby_aggregate")
    distribution.validate_for(tree)

    computes = sorted(tree.compute_nodes, key=node_sort_key)
    sizes = {v: distribution.size(v, tag) for v in computes}
    total = sum(sizes.values())
    cluster = make_cluster(tree, distribution, bits_per_element=bits_per_element)
    if total == 0:
        return ProtocolResult.from_ledger(
            "tree-groupby", cluster.ledger,
            outputs={v: KeyValueArrays.empty() for v in computes},
            meta={"op": op, "payload_bits": payload_bits},
        )

    hasher = WeightedNodeHasher(
        computes,
        [max(sizes[v], 0) for v in computes],
        derive_seed(seed, "groupby"),
    )

    # `count` partials are counts, not payload values: pre-combine emits
    # (key, count) pairs which downstream must combine with `sum`.
    combine_op = op
    final_op = "sum" if op == "count" else op

    with cluster.round() as ctx:
        for v in computes:
            local = cluster.local(v, tag)
            if not len(local):
                continue
            keys, values = decode_tuples(local, payload_bits=payload_bits)
            if pre_aggregate:
                keys, values = combine_per_key(keys, values, combine_op)
                payload = encode_tuples(
                    keys, values, payload_bits=payload_bits
                )
            else:
                payload = local
            ctx.exchange(v, hasher.assign_indices(keys), payload, tag=_RECV)

    outputs: dict = {}
    for v in computes:
        received = cluster.local(v, _RECV)
        keys, values = decode_tuples(received, payload_bits=payload_bits)
        # Pre-aggregated `count` partials are counts, combined by `sum`;
        # raw tuples finalize under the original op.
        final_keys, final_values = combine_per_key(
            keys, values, final_op if pre_aggregate else op
        )
        # columnar output contract: the aggregation arrays go out as-is
        # (a Mapping-compatible view, no per-key boxing)
        outputs[v] = KeyValueArrays(final_keys, final_values)
    return ProtocolResult.from_ledger(
        "tree-groupby",
        cluster.ledger,
        outputs=outputs,
        meta={
            "op": op,
            "pre_aggregate": pre_aggregate,
            "payload_bits": payload_bits,
        },
    )

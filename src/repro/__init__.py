"""topoMPC — topology-aware massively parallel computation.

A faithful, executable reproduction of *"Algorithms for a Topology-aware
Massively Parallel Computation Model"* (Hu, Koutris, Blanas — PODS 2021):
the cost model of Blanas et al. as a simulator, the paper's algorithms
and lower bounds for set intersection, cartesian product and sorting on
symmetric tree networks, topology-agnostic baselines, and an experiment
harness.

Quick start::

    import repro

    tree = repro.two_level([4, 4], uplink_bandwidth=2.0)
    dist = repro.random_distribution(tree, r_size=1_000, s_size=5_000,
                                     policy="zipf", seed=0)
    report = repro.run("set-intersection", tree, dist)
    print(report.cost, report.lower_bound, report.ratio)

Every protocol lives in a central catalog (``repro.list_protocols()``,
``python -m repro protocols``); ``repro.run(task, ...)`` dispatches
through it and ``repro.run_many(plans)`` evaluates whole grids
concurrently.

See ``examples/`` for complete scenarios and DESIGN.md for the module map.
"""

from repro.errors import (
    AnalysisError,
    DistributionError,
    PackingError,
    PlanError,
    ProtocolError,
    ReproError,
    TopologyError,
)
from repro.topology import (
    Dagger,
    PathOracle,
    TreeTopology,
    ascii_tree,
    build_dagger,
    caterpillar,
    fat_tree,
    from_parent_map,
    mpc_star,
    normalize,
    optimal_cover,
    random_tree,
    star,
    two_level,
)
from repro.data import (
    Distribution,
    adversarial_sorted_distribution,
    distribute,
    make_set_pair,
    make_sort_input,
    place_proportional,
    place_single_heavy,
    place_uniform,
    place_zipf,
    random_distribution,
    random_tuple_distribution,
)
from repro.data.generators import (
    gnm_random_graph,
    planted_components_graph,
    powerlaw_graph,
    random_graph_distribution,
)
from repro.sim import Cluster, CostLedger, ProtocolResult
from repro.core.common import LowerBound
from repro.core.intersection import (
    balanced_partition,
    intersection_lower_bound,
    star_intersect,
    tree_intersect,
)
from repro.core.cartesian import (
    cartesian_lower_bound,
    generalized_star_cartesian_product,
    unequal_cartesian_lower_bound,
    star_cartesian_product,
    tree_cartesian_product,
    whc_cartesian_product,
)
from repro.core.sorting import (
    sorting_lower_bound,
    terasort,
    verify_sorted_output,
    weighted_terasort,
)
from repro.baselines import (
    classic_hypercube_cartesian_product,
    gather_cartesian_product,
    gather_intersect,
    gather_sort,
    uniform_hash_intersect,
)
from repro.queries import (
    decode_tuples,
    encode_tuples,
    equijoin_lower_bound,
    tree_equijoin,
    tree_groupby_aggregate,
)
from repro.registry import (
    ProtocolSpec,
    TaskSpec,
    get_protocol,
    get_task,
    list_protocols,
    protocols_for,
    register_protocol,
    register_task,
    tasks,
)
from repro.engine import RunPlan, run, run_many, run_plan
from repro.topology.artifacts import (
    ArtifactCache,
    TopologyArtifacts,
    topology_fingerprint,
    use_artifacts,
)
from repro.plan.optimizer import PlanCache
from repro.session import EngineSession
from repro.graphs import (
    PlacedGraph,
    SuperstepDriver,
    decode_edges,
    encode_edges,
    run_components,
    run_degrees,
    run_neighborhood_aggregate,
    run_triangles,
)
from repro.obs import (
    auditing,
    chrome_trace,
    collecting,
    get_tracer,
    span_metrics,
    tracing,
    write_chrome_trace,
)

# pre-registry spelling of span_metrics; at the top level there is no
# submodule named "metrics" to collide with, so the alias stays
metrics = span_metrics
from repro.report import GraphRunReport, PlanReport
from repro.analysis import (
    RunReport,
    run_cartesian,
    run_intersection,
    run_sorting,
    summarize_reports,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "TopologyError",
    "DistributionError",
    "ProtocolError",
    "PackingError",
    "AnalysisError",
    "PlanError",
    # topology
    "TreeTopology",
    "star",
    "mpc_star",
    "two_level",
    "fat_tree",
    "caterpillar",
    "random_tree",
    "from_parent_map",
    "normalize",
    "build_dagger",
    "optimal_cover",
    "Dagger",
    "PathOracle",
    "ascii_tree",
    # data
    "Distribution",
    "make_set_pair",
    "make_sort_input",
    "distribute",
    "place_uniform",
    "place_zipf",
    "place_single_heavy",
    "place_proportional",
    "random_distribution",
    "adversarial_sorted_distribution",
    "random_tuple_distribution",
    # simulator
    "Cluster",
    "CostLedger",
    "ProtocolResult",
    "LowerBound",
    # algorithms
    "intersection_lower_bound",
    "star_intersect",
    "tree_intersect",
    "balanced_partition",
    "cartesian_lower_bound",
    "star_cartesian_product",
    "tree_cartesian_product",
    "whc_cartesian_product",
    "generalized_star_cartesian_product",
    "unequal_cartesian_lower_bound",
    "sorting_lower_bound",
    "terasort",
    "weighted_terasort",
    "verify_sorted_output",
    # baselines
    "uniform_hash_intersect",
    "classic_hypercube_cartesian_product",
    "gather_intersect",
    "gather_sort",
    "gather_cartesian_product",
    # relational operators (the paper's future-work direction)
    "encode_tuples",
    "decode_tuples",
    "tree_equijoin",
    "equijoin_lower_bound",
    "tree_groupby_aggregate",
    # registry + engine
    "ProtocolSpec",
    "TaskSpec",
    "register_protocol",
    "register_task",
    "get_protocol",
    "get_task",
    "protocols_for",
    "list_protocols",
    "tasks",
    "run",
    "run_many",
    "RunPlan",
    # session / serving layer
    "EngineSession",
    "ArtifactCache",
    "TopologyArtifacts",
    "topology_fingerprint",
    "use_artifacts",
    "PlanCache",
    # query planner (repro.plan has the full subsystem API)
    "run_plan",
    "PlanReport",
    # graph analytics (repro.graphs has the full subsystem API)
    "PlacedGraph",
    "SuperstepDriver",
    "encode_edges",
    "decode_edges",
    "run_components",
    "run_triangles",
    "run_degrees",
    "run_neighborhood_aggregate",
    "GraphRunReport",
    "gnm_random_graph",
    "powerlaw_graph",
    "planted_components_graph",
    "random_graph_distribution",
    # observability (repro.obs has the full subsystem API)
    "tracing",
    "collecting",
    "auditing",
    "get_tracer",
    "chrome_trace",
    "span_metrics",
    "metrics",
    "write_chrome_trace",
    # analysis
    "RunReport",
    "run_intersection",
    "run_cartesian",
    "run_sorting",
    "summarize_reports",
]

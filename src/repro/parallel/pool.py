"""Persistent worker-process pool with a barrier-synchronized job API.

A :class:`WorkerPool` owns ``num_workers`` long-lived OS processes
("ranks"), one task queue per rank plus one shared result queue, and a
:class:`~repro.parallel.shmem.SharedArrayPool` for the segments jobs
reference.  Two entry points cover the substrate's needs:

* :meth:`WorkerPool.broadcast` — one job per rank, wait for *all*
  replies.  This is the round barrier: a superstep's communication
  kernels run on every rank and the master proceeds only when the whole
  round has been delivered.
* :meth:`WorkerPool.scatter` — a work list dealt round-robin across
  ranks (``engine.run_many``'s process executor).

Jobs name their function as ``"module:callable"`` and carry one
picklable payload; heavy data travels through shared memory, not the
queues.  Workers import the target lazily and cache it, so the pool is
generic — round kernels, plan execution, and test helpers all dispatch
through the same loop.

Failure handling is explicit because the callers are protocols with a
correctness contract: a worker that dies (e.g. SIGKILL) or a round that
exceeds its deadline raises :class:`~repro.errors.ProtocolError` naming
the guilty rank(s), and the pool terminates itself — killing the
remaining workers and unlinking every shared segment — so no
``/dev/shm`` blocks outlive the failure.  An exception *raised by* a
job, in contrast, leaves the pool healthy: it is shipped back, rebuilt
on the master, annotated with the worker rank, and re-raised.
"""

from __future__ import annotations

import atexit
import importlib
import os
import pickle
import queue as queue_module
import threading
import time
import traceback
from typing import Callable, Sequence

import multiprocessing

from repro.errors import ProtocolError
from repro.obs.metrics import LATENCY_BUCKETS, get_registry
from repro.obs.tracer import get_tracer
from repro.parallel.shmem import SharedArrayPool, detach_all

#: Globals a job function can read inside a worker process.  ``None`` on
#: the master.  ``WORKER_RNG`` is the rank's independent random stream,
#: derived spawn-safely from the pool seed (see
#: :func:`repro.util.seeding.rank_generator`).
WORKER_RANK: int | None = None
WORKER_COUNT: int | None = None
WORKER_RNG = None

_POLL_SECONDS = 0.05


def default_start_method() -> str:
    """``fork`` where the platform offers it (fast), else ``spawn``."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


def annotate_error(error: BaseException, note: str) -> None:
    """Attach ``note`` to ``error`` (``add_note`` on 3.11+, args fold)."""
    if hasattr(error, "add_note"):  # Python >= 3.11
        error.add_note(note)
    elif error.args:
        error.args = (f"{error.args[0]} [{note}]",) + error.args[1:]
    else:
        error.args = (note,)


def _pack_error(error: BaseException) -> dict:
    """Serialize a worker exception for the trip home.

    The exception object itself is pickled when possible (so the master
    re-raises the genuine type); the repr/traceback fallback covers
    exceptions holding unpicklable state.
    """
    try:
        blob = pickle.dumps(error)
    except Exception:
        blob = None
    return {
        "blob": blob,
        "repr": repr(error),
        "traceback": traceback.format_exc(),
        "notes": list(getattr(error, "__notes__", ())),
    }


def _unpack_error(packed: dict, rank: int) -> BaseException:
    error: BaseException | None = None
    if packed["blob"] is not None:
        try:
            error = pickle.loads(packed["blob"])
        except Exception:
            error = None
    if error is None:
        error = ProtocolError(
            f"worker job failed with {packed['repr']}\n{packed['traceback']}"
        )
    for note in packed["notes"]:
        if note not in getattr(error, "__notes__", ()):
            annotate_error(error, note)
    annotate_error(error, f"raised in worker rank {rank}")
    return error


# ---------------------------------------------------------------------- #
# worker process
# ---------------------------------------------------------------------- #

_RESOLVED: dict[str, Callable] = {}


def _resolve(target: str) -> Callable:
    func = _RESOLVED.get(target)
    if func is None:
        module_name, _, attr = target.partition(":")
        if not module_name or not attr:
            raise ProtocolError(
                f"job target must look like 'module:function', got {target!r}"
            )
        func = getattr(importlib.import_module(module_name), attr)
        _RESOLVED[target] = func
    return func


def _worker_main(rank, num_workers, seed, task_queue, result_queue):
    """The worker loop: pull jobs, run them, report outcomes."""
    global WORKER_RANK, WORKER_COUNT, WORKER_RNG
    WORKER_RANK = rank
    WORKER_COUNT = num_workers
    from repro.sim.cluster import reset_backend
    from repro.util.seeding import rank_generator

    # A fork during ``use_backend("process")`` must not leak that state
    # into the worker: jobs here always run on the simulator.
    reset_backend()
    WORKER_RNG = rank_generator(seed, rank)
    while True:
        item = task_queue.get()
        if item is None:
            break
        job_id, target, payload = item
        try:
            value = _resolve(target)(payload)
            message = (rank, job_id, True, value)
        except BaseException as error:  # noqa: BLE001 - shipped to master
            message = (rank, job_id, False, _pack_error(error))
        try:
            result_queue.put(message)
        except Exception as error:  # pragma: no cover - unpicklable value
            result_queue.put((rank, job_id, False, _pack_error(error)))
    detach_all()


def _sleep_kernel(payload) -> str:
    """Busy job for the robustness tests: sleep ``payload`` seconds."""
    time.sleep(float(payload))
    return "slept"


def _echo_kernel(payload):
    """Identity job (pool smoke tests)."""
    return payload


def _raise_kernel(payload):
    """Failing job (pool error-path tests): raises an annotated ValueError."""
    error = ValueError(f"boom on {payload!r}")
    annotate_error(error, "kernel-side note")
    raise error


def _rank_probe(payload):
    """Report this worker's rank/pid and first RNG draws (seeding tests)."""
    draws = int(payload.get("draws", 0))
    return {
        "rank": WORKER_RANK,
        "count": WORKER_COUNT,
        "pid": os.getpid(),
        "draws": (
            WORKER_RNG.integers(0, 2**63, size=draws).tolist() if draws else []
        ),
    }


# ---------------------------------------------------------------------- #
# master side
# ---------------------------------------------------------------------- #


class WorkerPool:
    """``num_workers`` persistent ranks plus the segments they share."""

    def __init__(
        self,
        num_workers: int,
        *,
        start_method: str | None = None,
        seed: int = 0,
    ) -> None:
        if num_workers < 1:
            raise ProtocolError(
                f"a worker pool needs at least one rank, got {num_workers}"
            )
        if WORKER_RANK is not None:
            # e.g. run_many(executor="process") over plans that
            # themselves ask for backend="process".
            raise ProtocolError(
                "nested worker pools are not supported: this process is "
                f"already worker rank {WORKER_RANK}"
            )
        self.num_workers = num_workers
        self.start_method = start_method or default_start_method()
        self.seed = seed
        self.shm = SharedArrayPool()
        # Serializes whole jobs (and the segment allocator) when several
        # threads share one pool — e.g. run_many threads whose plans all
        # select backend="process".  Reentrant so a caller may hold it
        # around a lease + broadcast sequence.
        self.lock = threading.RLock()
        self._context = multiprocessing.get_context(self.start_method)
        self._results = self._context.Queue()
        self._tasks = []
        self._processes = []
        self._job_counter = 0
        self._closed = False
        self._broken: str | None = None
        for rank in range(num_workers):
            tasks = self._context.Queue()
            process = self._context.Process(
                target=_worker_main,
                args=(rank, num_workers, seed, tasks, self._results),
                name=f"repro-worker-{rank}",
                daemon=True,
            )
            process.start()
            self._tasks.append(tasks)
            self._processes.append(process)

    # ------------------------------------------------------------------ #
    # state
    # ------------------------------------------------------------------ #

    @property
    def pids(self) -> list[int]:
        """Worker PIDs by rank (the robustness tests SIGKILL one)."""
        return [process.pid for process in self._processes]

    @property
    def closed(self) -> bool:
        return self._closed

    def _check_usable(self) -> None:
        if self._closed:
            raise ProtocolError(
                "worker pool is closed"
                + (f" (reason: {self._broken})" if self._broken else "")
            )

    # ------------------------------------------------------------------ #
    # job execution
    # ------------------------------------------------------------------ #

    def broadcast(
        self,
        target: str,
        payloads: Sequence,
        *,
        timeout: float | None = None,
        label: str = "job",
    ) -> list:
        """Run ``payloads[r]`` on rank ``r`` for every rank; barrier.

        Returns the per-rank results in rank order once *all* ranks have
        replied.  A worker death or deadline overrun terminates the pool
        and raises :class:`ProtocolError`; an exception raised by the
        job itself is re-raised (lowest rank first) with the pool left
        healthy.
        """
        self._check_usable()
        if len(payloads) != self.num_workers:
            raise ProtocolError(
                f"broadcast needs one payload per rank "
                f"({self.num_workers}), got {len(payloads)}"
            )
        jobs = []
        for rank, payload in enumerate(payloads):
            jobs.append((rank, target, payload))
        registry = get_registry()
        started = time.perf_counter() if registry.enabled else 0.0
        with get_tracer().span(
            "pool.barrier",
            category="barrier",
            label=label,
            workers=self.num_workers,
        ):
            outcomes = self._run(jobs, timeout=timeout, label=label)
        if registry.enabled:
            registry.counter(
                "repro_pool_broadcasts_total", workers=str(self.num_workers)
            ).inc()
            registry.histogram(
                "repro_pool_barrier_seconds", buckets=LATENCY_BUCKETS
            ).observe(time.perf_counter() - started)
        failures = [
            (rank, value)
            for rank, (ok, value) in enumerate(outcomes)
            if not ok
        ]
        if failures:
            rank, packed = failures[0]
            raise _unpack_error(packed, rank)
        return [value for _, value in outcomes]

    def scatter(
        self,
        target: str,
        items: Sequence,
        *,
        timeout: float | None = None,
        label: str = "job",
    ) -> list:
        """Deal ``items`` round-robin across ranks; results in item order."""
        self._check_usable()
        if not items:
            return []
        jobs = [
            (index % self.num_workers, target, payload)
            for index, payload in enumerate(items)
        ]
        outcomes = self._run(jobs, timeout=timeout, label=label)
        for index, (ok, value) in enumerate(outcomes):
            if not ok:
                raise _unpack_error(value, index % self.num_workers)
        return [value for _, value in outcomes]

    def _run(
        self, jobs: list, *, timeout: float | None, label: str
    ) -> list:
        """Submit ``(rank, target, payload)`` jobs; gather in job order."""
        with self.lock:
            return self._run_locked(jobs, timeout=timeout, label=label)

    def _run_locked(
        self, jobs: list, *, timeout: float | None, label: str
    ) -> list:
        pending: dict[int, int] = {}  # job id -> rank
        order: list[int] = []
        for rank, target, payload in jobs:
            job_id = self._job_counter
            self._job_counter += 1
            pending[job_id] = rank
            order.append(job_id)
            self._tasks[rank].put((job_id, target, payload))
        deadline = None if timeout is None else time.monotonic() + timeout
        collected: dict[int, tuple[bool, object]] = {}
        while pending:
            wait = _POLL_SECONDS
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    self._fail(
                        f"{label} timed out after {timeout:.3g}s waiting for "
                        f"worker rank(s) {sorted(set(pending.values()))}"
                    )
                wait = min(wait, remaining)
            try:
                rank, job_id, ok, value = self._results.get(timeout=wait)
            except queue_module.Empty:
                self._check_workers(pending, label)
                continue
            if job_id in pending:
                del pending[job_id]
                collected[job_id] = (ok, value)
        return [collected[job_id] for job_id in order]

    def _check_workers(self, pending: dict, label: str) -> None:
        dead = [
            (rank, self._processes[rank].exitcode)
            for rank in sorted(set(pending.values()))
            if not self._processes[rank].is_alive()
        ]
        if dead:
            description = ", ".join(
                f"rank {rank} (exit code {code})" for rank, code in dead
            )
            self._fail(f"{label} lost worker {description}")

    def _fail(self, reason: str) -> None:
        """Terminate the pool and surface ``reason`` as a ProtocolError.

        The active span path (engine run > superstep/stage > round >
        barrier) is folded into the message: even the default no-op
        tracer tracks span *names*, so a timeout or crash deep inside
        ``run_many`` names the enclosing work without a debugger.
        """
        path = get_tracer().current_path()
        if path:
            reason = f"{reason} [active spans: {' > '.join(path)}]"
        self.terminate(reason=reason)
        raise ProtocolError(reason)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def shutdown(self, *, join_timeout: float = 5.0) -> None:
        """Stop workers gracefully and unlink every shared segment."""
        if self._closed:
            return
        self._closed = True
        for tasks in self._tasks:
            try:
                tasks.put(None)
            except Exception:  # pragma: no cover - queue already broken
                pass
        for process in self._processes:
            process.join(timeout=join_timeout)
        for process in self._processes:
            if process.is_alive():  # pragma: no cover - stuck worker
                process.kill()
                process.join(timeout=join_timeout)
        self._drain_queues()
        self.shm.destroy()

    def terminate(self, *, reason: str | None = None) -> None:
        """Kill workers immediately and unlink every shared segment."""
        if self._closed:
            return
        self._closed = True
        self._broken = reason
        for process in self._processes:
            if process.is_alive():
                process.kill()
        for process in self._processes:
            process.join(timeout=5.0)
        self._drain_queues()
        self.shm.destroy()

    def _drain_queues(self) -> None:
        for q in self._tasks + [self._results]:
            try:
                q.cancel_join_thread()
                q.close()
            except Exception:  # pragma: no cover - context-specific
                pass


# ---------------------------------------------------------------------- #
# shared pools
# ---------------------------------------------------------------------- #

_SHARED_POOLS: dict[tuple, WorkerPool] = {}
_SHARED_POOLS_LOCK = threading.Lock()


def get_pool(
    num_workers: int,
    *,
    start_method: str | None = None,
    seed: int = 0,
) -> WorkerPool:
    """A process-wide shared pool (spawned once per configuration).

    Spawning workers costs tens to hundreds of milliseconds; protocol
    runs under ``backend="process"`` would pay it per run without this
    cache.  Pools live until :func:`shutdown_pools` (registered at
    interpreter exit) or until they break.
    """
    key = (num_workers, start_method or default_start_method(), seed)
    # Check-then-create must be atomic: run_many's thread executor asks
    # for the same configuration from many threads at once, and a lost
    # race would orphan a fully-spawned pool (workers + shared segments
    # nobody ever shuts down).
    with _SHARED_POOLS_LOCK:
        pool = _SHARED_POOLS.get(key)
        if pool is None or pool.closed:
            pool = WorkerPool(
                num_workers, start_method=start_method, seed=seed
            )
            _SHARED_POOLS[key] = pool
        return pool


def shutdown_pools() -> None:
    """Shut down every shared pool and unlink their segments."""
    with _SHARED_POOLS_LOCK:
        for pool in list(_SHARED_POOLS.values()):
            pool.shutdown()
        _SHARED_POOLS.clear()


atexit.register(shutdown_pools)

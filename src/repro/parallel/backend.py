"""The process backend: protocol rounds executed across OS processes.

:class:`ParallelCluster` is a second execution substrate behind the
:class:`~repro.sim.cluster.Cluster` surface.  The simulator models a
round's parallelism purely in the :class:`~repro.sim.ledger.CostLedger`;
here the round's communication work — grouping the scatter, delivering
per-destination payloads, producing the received fragments — actually
executes on worker processes, one *rank* per contiguous block of
simulated compute nodes, with the columnar round payloads carried in
``multiprocessing.shared_memory`` arrays and each round closed by a
barrier over all ranks.

How a round runs
----------------

1.  The protocol registers transfers on the master exactly as on the
    simulator (:meth:`RoundContext.exchange` and friends); nothing in
    protocol code knows which substrate it is on.
2.  At finalization the master resolves the unicast stream into the
    same per-tag ``(dst_ids, payload)`` columns the simulator builds
    (literally the same code,
    :meth:`RoundContext._collect_unicasts`), copies them into shared
    segments, and broadcasts one round job per rank.
3.  Every rank selects the elements destined to *its* nodes
    (``rank_of[dst] == rank`` — selection preserves registration
    order), groups them with one stable argsort, and writes the
    grouped payload into its own shared output block.  The master
    blocks on the barrier until all ranks reply.
4.  The master maps each rank's ``(dst, tag, start, end)`` reply into
    zero-copy storage views, charges the ledger through the same
    vectorized tree-flow accountant as the simulator, and recycles the
    input segments for the next round.

Because stable selection + stable grouping commute with the
simulator's stable grouping of the whole round, per-``(dst, tag)``
storage bytes, received counts, and per-edge ledger loads are
*byte-identical* to the simulated substrate — which
:class:`~repro.parallel.oracle.LedgerOracle` asserts run-for-run when
``oracle=True``.

The multicast stream (Steiner replication) is finalized master-side
through the inherited :meth:`_deliver_multicasts`: delivery there is
zero-copy slice sharing into the columnar store (no per-element work
to parallelize), and running it master-side keeps the chunk structure
— and therefore the compaction counts — identical to the simulator's
by construction.

Failure surface: a worker crash or a round-deadline overrun raises
:class:`~repro.errors.ProtocolError` annotated with the guilty rank
and the round index, and the pool tears down its shared segments — no
``/dev/shm`` blocks survive a failed run.
"""

from __future__ import annotations

import weakref
from time import perf_counter

import numpy as np

from repro.data.distribution import Distribution
from repro.errors import ProtocolError
from repro.obs.metrics import (
    MetricsRegistry,
    NullRegistry,
    get_registry,
    use_registry,
)
from repro.obs.tracer import get_tracer
from repro.parallel import pool as pool_module
from repro.parallel.pool import WorkerPool, annotate_error, get_pool
from repro.parallel.shmem import SharedArrayPool, attach_array
from repro.sim.cluster import Cluster, RoundContext, register_backend
from repro.topology.tree import TreeTopology
from repro.util.grouping import cached_group_slices

#: Dispatch target of the per-rank round kernel.
ROUND_KERNEL = "repro.parallel.backend:_round_kernel"


def _round_kernel(payload: dict) -> dict:
    """Worker side of one round: select, group, and emit owned payloads.

    ``payload`` carries the rank-ownership lookup, the round's per-tag
    shared columns, and this rank's output block.  Selection by
    ``flatnonzero`` keeps registration order; ``group_slices`` is the
    same stable grouping primitive the simulator uses, so each
    ``(dst, tag)`` chunk is byte-identical to the simulator's.

    When the master traces the run (``payload["trace"]``), the kernel
    times its own work with ``perf_counter`` — CLOCK_MONOTONIC, shared
    machine-wide with the master on the platforms the pool supports —
    and ships the interval back in the reply so the master can merge a
    rank-qualified span at its true timeline position.

    When the master collects metrics (``payload["metrics"]``), the
    kernel accumulates its rank-local delivery counts into a private
    registry and ships the snapshot back in the reply — the same
    over-the-barrier route the rank spans take — for the master to
    merge.  Every element is owned by exactly one rank, so the merged
    per-tag totals equal the simulator's master-side counts.
    """
    trace = payload.get("trace", False)
    t_start = perf_counter() if trace else 0.0
    rank = pool_module.WORKER_RANK
    rank_of = payload["rank_of"]
    local_registry = MetricsRegistry() if payload.get("metrics") else None
    out = attach_array(payload["out"])
    cursor = 0
    slices: list[list[tuple[int, int, int]]] = []
    for entry in payload["tags"]:
        dst = attach_array(entry["dst"])
        values = attach_array(entry["payload"])
        mine = np.flatnonzero(rank_of[dst] == rank)
        tag_slices: list[tuple[int, int, int]] = []
        if mine.size:
            if local_registry is not None:
                local_registry.counter(
                    "repro_delivered_elements_total", tag=entry["tag"]
                ).inc(int(mine.size))
            order, uniques, starts, ends = cached_group_slices(dst[mine])
            out[cursor : cursor + mine.size] = values[mine][order]
            for dst_id, start, end in zip(
                uniques.tolist(), starts.tolist(), ends.tolist()
            ):
                tag_slices.append(
                    (int(dst_id), cursor + int(start), cursor + int(end))
                )
            cursor += int(mine.size)
        slices.append(tag_slices)
    result = {"slices": slices, "elements": cursor}
    if trace:
        result["span"] = (t_start, perf_counter())
    if local_registry is not None:
        result["metrics"] = local_registry.snapshot()
    return result


def _release_segments(shm: SharedArrayPool, segments: list) -> None:
    """Finalizer: hand a dead cluster's retained blocks back to the pool."""
    while segments:
        shm.release(segments.pop())


class ParallelRoundContext(RoundContext):
    """A round whose delivery work runs on the cluster's worker ranks."""

    def _finalize_bulk(self) -> None:
        cluster: ParallelCluster = self._cluster  # type: ignore[assignment]
        tracer = get_tracer()
        phases = (
            {"group": 0.0, "deliver": 0.0, "charge": 0.0}
            if tracer.enabled
            else None
        )
        cluster.ledger.open_round()
        round_index = cluster.ledger.num_rounds - 1
        loads: dict = {}
        try:
            if self._unicast_stream:
                loads = self._deliver_unicasts_parallel(round_index, phases)
            if self._multicasts:
                # Master-side Steiner replication (see module docstring).
                self._deliver_multicasts(loads, phases)
        except ProtocolError as error:
            annotate_error(
                error,
                f"process backend: round {round_index} "
                f"on {cluster.tree.name!r} failed",
            )
            raise
        if loads:
            t0 = perf_counter() if phases is not None else 0.0
            cluster.ledger.add_loads(loads.keys(), loads.values())
            if phases is not None:
                phases["charge"] += perf_counter() - t0
        cluster.ledger.close_round()
        registry = get_registry()
        if registry.enabled:
            self._record_round_metrics(registry)
        if phases is not None:
            self._annotate_round(tracer, phases)
        if cluster._oracle is not None:
            cluster._oracle.replay_round(
                cluster, self._unicast_stream, self._multicasts
            )

    def _deliver_unicasts_parallel(
        self, round_index: int, phases: dict | None = None
    ) -> dict:
        """Ship the round's columns to the ranks; map replies to storage."""
        cluster: ParallelCluster = self._cluster  # type: ignore[assignment]
        # The pool lock spans the lease + broadcast + install sequence:
        # clusters on other threads sharing this pool must not interleave
        # their rounds with ours (reentrant, so broadcast re-acquires).
        with cluster.pool.lock:
            return self._deliver_unicasts_locked(round_index, phases)

    def _deliver_unicasts_locked(
        self, round_index: int, phases: dict | None = None
    ) -> dict:
        cluster: ParallelCluster = self._cluster  # type: ignore[assignment]
        storage = cluster._storage
        shm = cluster.pool.shm
        num_workers = cluster.num_workers
        tracer = get_tracer()
        registry = get_registry()
        t0 = perf_counter() if phases is not None else 0.0
        routing, by_tag, pair_matrix = self._collect_unicasts()
        node_names = routing.nodes
        rank_of = cluster._rank_lookup(routing)
        round_segments = []  # input columns, recycled after the barrier
        tag_entries = []
        per_rank = np.zeros(num_workers, dtype=np.int64)
        for tag, parts in by_tag.items():
            if len(parts) == 1:
                all_dst, all_payload = parts[0]
            else:
                all_dst = np.concatenate([p[0] for p in parts])
                all_payload = np.concatenate([p[1] for p in parts])
            count = len(all_dst)
            dst_segment, dst_view = shm.lease_array(all_dst.dtype, count)
            dst_view[:] = all_dst
            payload_segment, payload_view = shm.lease_array(np.int64, count)
            payload_view[:] = all_payload
            round_segments += [dst_segment, payload_segment]
            per_rank += np.bincount(
                rank_of[all_dst], minlength=num_workers
            )
            tag_entries.append(
                {
                    "tag": tag,
                    "dst": dst_segment.spec(all_dst.dtype, count),
                    "payload": payload_segment.spec(np.int64, count),
                }
            )
        out_blocks = []
        payloads = []
        for rank in range(num_workers):
            segment, view = shm.lease_array(np.int64, int(per_rank[rank]))
            out_blocks.append((segment, view))
            payloads.append(
                {
                    "round": round_index,
                    "rank_of": rank_of,
                    "tags": tag_entries,
                    "out": segment.spec(np.int64, int(per_rank[rank])),
                    "trace": phases is not None,
                    "metrics": registry.enabled,
                }
            )
        if phases is not None:
            t1 = perf_counter()
            phases["group"] += t1 - t0
        results = cluster.pool.broadcast(
            ROUND_KERNEL,
            payloads,
            timeout=cluster.round_timeout,
            label=f"round {round_index}",
        )
        for rank, result in enumerate(results):
            segment, view = out_blocks[rank]
            cluster._retained_segments.append(segment)
            if "metrics" in result:
                # fold the rank's delivery deltas into the master
                # registry; integer counter addition commutes, so the
                # merge order across ranks is immaterial
                registry.merge_snapshot(result["metrics"])
            if phases is not None and "span" in result:
                # merge the rank's kernel interval into the master trace
                # under a rank-qualified name on its own track
                start, end = result["span"]
                tracer.add_event(
                    f"rank{rank}/round {round_index}",
                    start,
                    end,
                    track=f"rank {rank}",
                    category="worker-round",
                    attrs={
                        "rank": rank,
                        "round": round_index,
                        "elements": result["elements"],
                    },
                )
            for entry, tag_slices in zip(tag_entries, result["slices"]):
                tag = entry["tag"]
                for dst_id, start, end in tag_slices:
                    # a read-only view into the retained shared block:
                    # delivery stays zero-copy and the stored fragment
                    # cannot be rewritten through the shm mapping
                    chunk = view[start:end]
                    chunk.setflags(write=False)
                    storage.append(node_names[dst_id], tag, chunk)
        for segment in round_segments:
            shm.release(segment)
        if phases is not None:
            t2 = perf_counter()
            phases["deliver"] += t2 - t1
        loads = self._apply_pair_loads(routing, pair_matrix)
        if phases is not None:
            phases["charge"] += perf_counter() - t2
        return loads


class ParallelCluster(Cluster):
    """Cluster whose rounds execute across shared-memory worker ranks.

    Parameters beyond the :class:`Cluster` ones:

    num_workers:
        Rank count; compute nodes are assigned to ranks in contiguous
        blocks of the canonical compute order.
    pool:
        An explicit :class:`~repro.parallel.pool.WorkerPool` to run on
        (the scale benchmark reuses one pool across repeats); by
        default a process-wide shared pool for ``num_workers`` is used.
    round_timeout:
        Per-round barrier deadline in seconds; overrunning it kills
        the pool and raises :class:`ProtocolError` with rank + round.
    oracle:
        When true, every round is replayed on a shadow simulator
        cluster and checked for byte-identical ledger loads and
        received counts (full storage via :meth:`verify_oracle`).
    """

    def __init__(
        self,
        tree: TreeTopology,
        distribution: Distribution | None = None,
        *,
        bits_per_element: int = 64,
        exchange_mode: str | None = None,
        num_workers: int = 2,
        start_method: str | None = None,
        pool: WorkerPool | None = None,
        round_timeout: float | None = None,
        oracle: bool = False,
        seed: int = 0,
        artifacts=None,
    ) -> None:
        if exchange_mode not in (None, "bulk"):
            raise ProtocolError(
                "the process backend implements the bulk exchange path "
                f"only, not {exchange_mode!r}"
            )
        if pool is None:
            pool = get_pool(num_workers, start_method=start_method, seed=seed)
        self.pool = pool
        self.num_workers = pool.num_workers
        self.round_timeout = round_timeout
        self._retained_segments: list = []
        self._finalizer = weakref.finalize(
            self, _release_segments, pool.shm, self._retained_segments
        )
        # The oracle must exist before super().__init__ loads the
        # distribution: ``load`` goes through ``put``, which mirrors.
        from repro.parallel.oracle import LedgerOracle

        self._oracle = (
            LedgerOracle(tree, bits_per_element=bits_per_element)
            if oracle
            else None
        )
        super().__init__(
            tree,
            distribution,
            bits_per_element=bits_per_element,
            exchange_mode="bulk",
            artifacts=artifacts,
        )

    # ------------------------------------------------------------------ #
    # substrate surface
    # ------------------------------------------------------------------ #

    @property
    def backend(self) -> str:
        return "process"

    def rank_of(self, node) -> int:
        """The worker rank that owns ``node``'s deliveries."""
        computes = self.compute_order
        try:
            index = computes.index(node)
        except ValueError:
            raise ProtocolError(f"{node!r} is not a compute node") from None
        return (index * self.num_workers) // len(computes)

    def _rank_lookup(self, routing) -> np.ndarray:
        """Routing-index -> owning rank (``-1`` for routers).

        Cached on the shared topology artifacts keyed by the rank
        count, so a session's clusters stop rebuilding it per run.
        """
        return self._artifacts.rank_lookup(routing, self.num_workers)

    def _make_round_context(self) -> RoundContext:
        return ParallelRoundContext(self)

    # ------------------------------------------------------------------ #
    # storage mirroring (oracle)
    # ------------------------------------------------------------------ #

    def put(self, node, tag: str, values) -> None:
        super().put(node, tag, values)
        if self._oracle is not None:
            with use_registry(NullRegistry()):
                self._oracle.shadow.put(node, tag, values)

    def take(self, node, tag: str) -> np.ndarray:
        values = super().take(node, tag)
        if self._oracle is not None:
            # the shadow's read may compact its column; mute the
            # registry so the mirror doesn't double-count storage
            # metrics the real cluster already recorded
            with use_registry(NullRegistry()):
                self._oracle.shadow.take(node, tag)
        return values

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def verify_oracle(self) -> None:
        """Assert full byte-identity against the shadow simulator run."""
        if self._oracle is None:
            raise ProtocolError(
                "cluster was built without oracle=True; nothing to verify"
            )
        self._oracle.verify(self)

    def close(self) -> None:
        """Return retained shared blocks; storage views become invalid."""
        self._storage.clear()
        _release_segments(self.pool.shm, self._retained_segments)


register_backend("process", ParallelCluster)

"""Shared-memory array blocks: allocation, recycling, worker attachment.

The parallel substrate moves a round's columnar payloads — destination
id arrays and element arrays — between the master and its worker
processes through :class:`multiprocessing.shared_memory.SharedMemory`
segments instead of pickled queue messages, so a 10^6-element shuffle
crosses the process boundary as one page-table mapping rather than a
copy per queue hop.

Ownership model
---------------

* The **master** allocates every segment through a
  :class:`SharedArrayPool` and is the only process that ever creates or
  unlinks one.  Freed segments go back to a size-class free list and
  are recycled for later rounds (allocation rounds sizes up to a power
  of two so a slightly larger round reuses the previous round's block).
* **Workers** only ever *attach* by name via :func:`attach_array`; the
  attachment is cached per process and never registered with the
  ``resource_tracker`` (registration is suppressed during the attach),
  so a worker exiting neither unlinks nor warns about a segment the
  master still owns — the well-known CPython gotcha with cross-process
  ``SharedMemory`` use.
* :meth:`SharedArrayPool.destroy` closes and unlinks everything; the
  worker pool calls it on shutdown, so a clean exit leaves no
  ``/dev/shm`` blocks behind (the robustness tests assert exactly
  that).

An :class:`ArraySpec` is the picklable handle shipped in job payloads:
``(segment name, dtype, element count)``; both sides reconstruct the
numpy view with :meth:`ArraySpec.open` / :func:`attach_array`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from itertools import count
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.errors import AnalysisError

#: Prefix of every segment the substrate creates; the leak tests (and a
#: worried operator) can ``ls /dev/shm/repro-shm-*`` to find strays.
SEGMENT_PREFIX = "repro-shm"

_SEGMENT_SEQUENCE = count()

#: Smallest segment we bother allocating; sub-page blocks fragment the
#: free list without saving memory.
_MIN_SEGMENT_BYTES = 4096


#: Segments whose ``close()`` failed because a numpy view is still
#: alive.  Kept referenced so their ``__del__`` (which would retry the
#: close and raise an unraisable ``BufferError`` at GC time) never
#: runs; the OS reclaims the pages when the process exits.
_GRAVEYARD: list = []


def _close_or_park(shm: shared_memory.SharedMemory) -> None:
    try:
        shm.close()
    except BufferError:
        _GRAVEYARD.append(shm)


def _round_up_pow2(nbytes: int) -> int:
    """Size class for recycling: next power of two >= ``nbytes``."""
    size = _MIN_SEGMENT_BYTES
    while size < nbytes:
        size <<= 1
    return size


@dataclass(frozen=True)
class ArraySpec:
    """A picklable handle to a numpy array living in a shared segment."""

    name: str
    dtype: str
    count: int

    def open(self, buffer) -> np.ndarray:
        """View the first ``count`` elements of ``buffer`` as ``dtype``."""
        return np.frombuffer(buffer, dtype=np.dtype(self.dtype), count=self.count)


class Segment:
    """One master-owned shared-memory block (plus its recycling size)."""

    __slots__ = ("shm", "capacity")

    def __init__(self, shm: shared_memory.SharedMemory, capacity: int) -> None:
        self.shm = shm
        self.capacity = capacity

    @property
    def name(self) -> str:
        return self.shm.name

    def ndarray(self, dtype, num_elements: int) -> np.ndarray:
        """A writable view of the segment's first ``num_elements``."""
        return np.frombuffer(self.shm.buf, dtype=dtype, count=num_elements)

    def spec(self, dtype, num_elements: int) -> ArraySpec:
        return ArraySpec(
            name=self.name, dtype=np.dtype(dtype).str, count=num_elements
        )


class SharedArrayPool:
    """Master-side allocator with a power-of-two free list.

    ``lease_array`` is the workhorse: it returns a ``(segment, view)``
    pair sized for ``num_elements`` of ``dtype``, reusing a free block
    when one is large enough.  Callers hand blocks back with
    ``release`` when the round no longer references them; blocks whose
    views were installed into cluster storage stay leased until the
    cluster closes.
    """

    def __init__(self) -> None:
        self._free: dict[int, list[Segment]] = {}
        self._all: dict[str, Segment] = {}
        self._destroyed = False

    # ------------------------------------------------------------------ #
    # allocation
    # ------------------------------------------------------------------ #

    def _allocate(self, nbytes: int) -> Segment:
        if self._destroyed:
            raise AnalysisError("shared-memory pool already destroyed")
        capacity = _round_up_pow2(max(int(nbytes), 1))
        bucket = self._free.get(capacity)
        if bucket:
            return bucket.pop()
        name = f"{SEGMENT_PREFIX}-{os.getpid()}-{next(_SEGMENT_SEQUENCE)}"
        shm = shared_memory.SharedMemory(
            name=name, create=True, size=capacity
        )
        segment = Segment(shm, capacity)
        self._all[segment.name] = segment
        return segment

    def lease_array(
        self, dtype, num_elements: int
    ) -> tuple[Segment, np.ndarray]:
        """Lease a segment holding ``num_elements`` of ``dtype``."""
        dtype = np.dtype(dtype)
        segment = self._allocate(dtype.itemsize * max(num_elements, 1))
        return segment, segment.ndarray(dtype, num_elements)

    def release(self, segment: Segment) -> None:
        """Return a leased segment to the free list for recycling."""
        if self._destroyed or segment.name not in self._all:
            return
        self._free.setdefault(segment.capacity, []).append(segment)

    # ------------------------------------------------------------------ #
    # teardown / introspection
    # ------------------------------------------------------------------ #

    @property
    def num_segments(self) -> int:
        return len(self._all)

    @property
    def segment_names(self) -> list[str]:
        return sorted(self._all)

    def destroy(self) -> None:
        """Close and unlink every segment this pool ever created."""
        if self._destroyed:
            return
        self._destroyed = True
        for segment in self._all.values():
            # A BufferError here means a numpy view into the segment is
            # still alive (cluster storage after an aborted round); the
            # segment is parked instead of closed, the unlink below
            # still removes the /dev/shm entry, and the mapping stays
            # valid in-process until the last view dies.
            _close_or_park(segment.shm)
            try:
                segment.shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._all.clear()
        self._free.clear()


# ---------------------------------------------------------------------- #
# worker side
# ---------------------------------------------------------------------- #

#: Per-process cache of attached segments, ``name -> SharedMemory``.
#: Segment names are never reused within one master process (a global
#: sequence number), so a cached attachment can never alias a different
#: block.
_ATTACHED: dict[str, shared_memory.SharedMemory] = {}


def _attach(name: str) -> shared_memory.SharedMemory:
    shm = _ATTACHED.get(name)
    if shm is None:
        # Attaching registers the segment with the resource tracker as
        # if this process were the owner.  Under ``fork`` the worker
        # *shares* the master's tracker process, so an unregister-after
        # approach would erase the master's own registration (and its
        # later ``unlink`` would then crash the tracker).  Suppress
        # registration during the attach instead — the portable
        # pre-3.13 spelling of ``track=False``.
        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            shm = shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register
        _ATTACHED[name] = shm
    return shm


def attach_array(spec: ArraySpec) -> np.ndarray:
    """Open ``spec`` in this process (workers; cached per segment)."""
    return spec.open(_attach(spec.name).buf)


def detach_all() -> None:
    """Close every cached attachment (worker shutdown path)."""
    for shm in _ATTACHED.values():
        _close_or_park(shm)
    _ATTACHED.clear()

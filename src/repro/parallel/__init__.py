"""Real-parallel execution substrate: shared-memory worker processes.

Importing this package registers the ``"process"`` execution backend
with :mod:`repro.sim.cluster`, making
``make_cluster``/``use_backend("process")`` — and therefore
``engine.run(..., backend="process")`` — able to run protocol rounds
across OS processes with the simulated ledger as byte-identical oracle.
"""

from repro.parallel.backend import ParallelCluster, ParallelRoundContext
from repro.parallel.oracle import (
    LedgerOracle,
    OracleMismatch,
    assert_clusters_identical,
)
from repro.parallel.pool import (
    WorkerPool,
    default_start_method,
    get_pool,
    shutdown_pools,
)
from repro.parallel.shmem import SharedArrayPool, attach_array

__all__ = [
    "LedgerOracle",
    "OracleMismatch",
    "ParallelCluster",
    "ParallelRoundContext",
    "SharedArrayPool",
    "WorkerPool",
    "assert_clusters_identical",
    "attach_array",
    "default_start_method",
    "get_pool",
    "shutdown_pools",
]

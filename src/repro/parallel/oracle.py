"""The simulated ledger as byte-identical oracle for the process backend.

The simulator (:class:`~repro.sim.cluster.Cluster` under the ``bulk``
exchange mode) is the repo's ground truth for the Section 2 cost model:
its accounting has its own A/B oracle (the legacy per-send path) and
property-test coverage.  The process substrate must therefore not be
*approximately* right — every run must produce exactly the storage
bytes, received counts, and per-edge ledger loads the simulator
produces.  This module enforces that contract two ways:

* :class:`LedgerOracle` — attached to a
  :class:`~repro.parallel.backend.ParallelCluster` built with
  ``oracle=True``.  It maintains a *shadow* simulator cluster: ``put``
  and ``take`` are mirrored as they happen, and after every parallel
  round the recorded transfer streams are replayed through the
  simulator's own finalizer on the shadow, then the round's per-edge
  loads and cumulative received counts are compared exactly.
  :meth:`LedgerOracle.verify` additionally compares the full per-node,
  per-tag storage bytes and the ledger totals.
* :func:`assert_clusters_identical` — compares two independently run
  clusters (the scale benchmark runs the same prepared round on both
  substrates and calls this).

All comparisons are exact (integer loads, ``array_equal`` on int64
payloads) — "close enough" is not a concept here.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ProtocolError
from repro.obs.metrics import NullRegistry, use_registry
from repro.obs.tracer import NullTracer, use_tracer
from repro.sim.cluster import Cluster
from repro.topology.tree import TreeTopology, node_sort_key


class OracleMismatch(ProtocolError):
    """The process backend diverged from the simulated ledger."""


class LedgerOracle:
    """Shadow simulator replaying a parallel cluster's rounds."""

    def __init__(
        self, tree: TreeTopology, *, bits_per_element: int = 64
    ) -> None:
        self.shadow = Cluster(
            tree, bits_per_element=bits_per_element, exchange_mode="bulk"
        )

    def replay_round(
        self, cluster: Cluster, unicast_stream: list, multicasts: list
    ) -> None:
        """Replay one round's streams on the shadow; compare the round.

        The streams are the already-validated records the parallel
        round context collected; injecting them into a shadow
        :class:`RoundContext` runs the simulator's bulk finalizer on
        byte-for-byte the same inputs the workers got.
        """
        # The shadow is a verification artifact, not part of the run:
        # replay under a no-op tracer and registry so a traced or
        # metered process-backend round doesn't also emit a duplicate
        # simulator round span or double-count round metrics.  The
        # *auditor* is deliberately left installed — the replay runs
        # through the shadow's own ``round()``, so auditing a
        # process-backend run checks the simulator's finalization of
        # the very same streams for free.
        with use_tracer(NullTracer()), use_registry(NullRegistry()):
            with self.shadow.round() as context:
                context._unicast_stream.extend(unicast_stream)
                context._multicasts.extend(multicasts)
        index = self.shadow.ledger.num_rounds - 1
        expected = self.shadow.ledger.round_loads(index)
        actual = cluster.ledger.round_loads(index)
        if expected != actual:
            diverging = {
                edge: (expected.get(edge), actual.get(edge))
                for edge in set(expected) | set(actual)
                if expected.get(edge) != actual.get(edge)
            }
            raise OracleMismatch(
                f"round {index}: process-backend edge loads diverged from "
                f"the simulated ledger on {len(diverging)} edge(s): "
                f"{_preview(diverging)}"
            )
        for node in self.shadow.compute_order:
            expected_count = self.shadow.received_elements(node)
            actual_count = cluster.received_elements(node)
            if expected_count != actual_count:
                raise OracleMismatch(
                    f"round {index}: node {node!r} received "
                    f"{actual_count} elements on the process backend, "
                    f"{expected_count} on the simulator"
                )

    def verify(self, cluster: Cluster) -> None:
        """Full A/B check: storage bytes, received counts, ledger totals."""
        assert_clusters_identical(
            cluster, self.shadow, a_name="process", b_name="oracle"
        )


def _preview(mapping: dict, limit: int = 3) -> str:
    items = sorted(mapping.items(), key=lambda kv: repr(kv[0]))[:limit]
    suffix = "" if len(mapping) <= limit else ", ..."
    return "{" + ", ".join(f"{k!r}: {v!r}" for k, v in items) + suffix + "}"


def assert_clusters_identical(
    a: Cluster,
    b: Cluster,
    *,
    a_name: str = "A",
    b_name: str = "B",
) -> None:
    """Exact equality of two clusters' observable state.

    Checks, in order: round count, per-round per-edge loads, total
    cost, per-node received counts, per-node tag sets, and per-node
    per-tag storage bytes (``local()`` views).  Raises
    :class:`OracleMismatch` naming the first divergence.

    Runs under a muted metrics registry: reading every column may
    lazily compact it, and a verification pass must not perturb the
    backend-agnostic storage counters it is there to safeguard.
    """
    with use_registry(NullRegistry()):
        _assert_clusters_identical(a, b, a_name=a_name, b_name=b_name)


def _assert_clusters_identical(
    a: Cluster,
    b: Cluster,
    *,
    a_name: str,
    b_name: str,
) -> None:
    if a.ledger.num_rounds != b.ledger.num_rounds:
        raise OracleMismatch(
            f"{a_name} ran {a.ledger.num_rounds} rounds, "
            f"{b_name} {b.ledger.num_rounds}"
        )
    for index in range(a.ledger.num_rounds):
        loads_a = a.ledger.round_loads(index)
        loads_b = b.ledger.round_loads(index)
        if loads_a != loads_b:
            diverging = {
                edge: (loads_a.get(edge), loads_b.get(edge))
                for edge in set(loads_a) | set(loads_b)
                if loads_a.get(edge) != loads_b.get(edge)
            }
            raise OracleMismatch(
                f"round {index} loads differ between {a_name} and "
                f"{b_name} on {len(diverging)} edge(s): "
                f"{_preview(diverging)}"
            )
    if a.ledger.total_cost() != b.ledger.total_cost():
        raise OracleMismatch(
            f"total cost differs: {a_name}={a.ledger.total_cost()!r} "
            f"{b_name}={b.ledger.total_cost()!r}"
        )
    nodes = sorted(
        set(a.tree.compute_nodes) | set(b.tree.compute_nodes),
        key=node_sort_key,
    )
    for node in nodes:
        if a.received_elements(node) != b.received_elements(node):
            raise OracleMismatch(
                f"node {node!r} received {a.received_elements(node)} "
                f"({a_name}) vs {b.received_elements(node)} ({b_name})"
            )
        tags_a, tags_b = a.tags_at(node), b.tags_at(node)
        if tags_a != tags_b:
            raise OracleMismatch(
                f"node {node!r} holds tags {sorted(map(str, tags_a))} "
                f"({a_name}) vs {sorted(map(str, tags_b))} ({b_name})"
            )
        for tag in sorted(tags_a):
            payload_a = a.local(node, tag)
            payload_b = b.local(node, tag)
            if not np.array_equal(payload_a, payload_b):
                raise OracleMismatch(
                    f"storage bytes differ at node {node!r} tag {tag!r}: "
                    f"{len(payload_a)} vs {len(payload_b)} elements "
                    f"({a_name} vs {b_name})"
                )

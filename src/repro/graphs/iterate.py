"""The iterative superstep driver for multi-round graph protocols.

The paper's protocols are one-shot; the dominant related work (Andoni
et al., Behnezhad et al.) solves graph problems by *iterating*
shuffle/aggregate supersteps.  :class:`SuperstepDriver` is the bridge:
it runs a workload as a sequence of steps on one master
:class:`~repro.sim.cluster.Cluster`, where each step is either

* a **protocol step** — a registered protocol dispatched through the
  engine (``groupby-aggregate`` with ``op="min"`` is one hash-to-min
  round); the inner run's per-round :class:`~repro.sim.ledger.CostLedger`
  is replayed into the master ledger round by round, so the driver's
  total cost is exactly the sum of the composed protocols' costs under
  the Section 2 accounting; or
* a **cluster round** — communication the driver performs directly on
  its own cluster (e.g. pushing updated labels back to the nodes that
  subscribe to them), charged through the same ledger.

Every step also contributes one :class:`~repro.report.RunReport` row,
and :meth:`SuperstepDriver.report` packages the rows into a
:class:`~repro.report.GraphRunReport` with per-superstep visibility.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter
from typing import Iterator

from repro.obs.metrics import get_registry
from repro.obs.tracer import get_tracer
from repro.report import GraphRunReport, RunReport
from repro.sim.cluster import Cluster, RoundContext, make_cluster
from repro.sim.ledger import CostLedger
from repro.sim.protocol import ProtocolResult
from repro.topology.tree import TreeTopology


class SuperstepDriver:
    """Compose registered protocols and raw rounds on one master ledger."""

    def __init__(
        self, tree: TreeTopology, *, bits_per_element: int = 64
    ) -> None:
        self._tree = tree
        self._cluster = make_cluster(tree, bits_per_element=bits_per_element)
        self._steps: list[RunReport] = []

    @property
    def tree(self) -> TreeTopology:
        return self._tree

    @property
    def cluster(self) -> Cluster:
        """The driver's cluster: storage for return legs, master ledger."""
        return self._cluster

    @property
    def ledger(self) -> CostLedger:
        """The master ledger accumulating every step's rounds."""
        return self._cluster.ledger

    @property
    def steps(self) -> list[RunReport]:
        """One report row per communication step, in execution order."""
        return list(self._steps)

    @property
    def total_cost(self) -> float:
        return self.ledger.total_cost()

    @property
    def num_rounds(self) -> int:
        return self.ledger.num_rounds

    # ------------------------------------------------------------------ #
    # steps
    # ------------------------------------------------------------------ #

    def protocol_step(
        self,
        task: str,
        distribution,
        *,
        label: str,
        protocol: str | None = None,
        seed: int = 0,
        verify: bool = True,
        **opts,
    ) -> ProtocolResult:
        """Run one registered protocol as a superstep; absorb its ledger.

        The call goes through :func:`repro.engine.run_with_result`, so
        the step is verified and bounded exactly like a standalone run;
        ``label`` lands in the step report's ``placement`` column.
        """
        # Imported lazily: the engine imports the graph task modules,
        # which build on this driver.
        from repro.engine import run_with_result

        with get_tracer().span(
            label, category="superstep", task=task, step="protocol"
        ):
            report, result = run_with_result(
                task,
                self._tree,
                distribution,
                protocol=protocol,
                seed=seed,
                placement=label,
                verify=verify,
                **opts,
            )
            self._absorb(result.ledger)
        self._record_step_metrics(task, "protocol", distribution.total())
        self._steps.append(report)
        return result

    @contextmanager
    def cluster_round(
        self,
        *,
        task: str,
        protocol: str,
        label: str,
        input_size: int = 0,
    ) -> Iterator[RoundContext]:
        """Open one driver-level communication round on the master cluster.

        Sends registered inside the block are routed, delivered and
        charged by the shared cluster; on exit the round becomes one
        zero-bound :class:`RunReport` row labelled ``label``.
        """
        started = perf_counter()
        with get_tracer().span(
            label, category="superstep", task=task, step="cluster-round"
        ):
            with self._cluster.round() as ctx:
                yield ctx
        index = self.ledger.num_rounds - 1
        self._record_step_metrics(task, "cluster-round", input_size)
        self._steps.append(
            RunReport(
                task=task,
                protocol=protocol,
                topology=self._tree.name,
                placement=label,
                input_size=input_size,
                rounds=1,
                cost=self.ledger.round_cost(index),
                lower_bound=0.0,
                meta={"driver_round": index},
                wall_time_s=perf_counter() - started,
            )
        )

    def set_last_input_size(self, input_size: int) -> None:
        """Record a step's input volume after the round has closed.

        Return legs only know how many elements they shipped once the
        round's sends are enumerated, which is after
        :meth:`cluster_round` already built the report row.
        """
        if not self._steps:
            return
        from dataclasses import replace

        previous = self._steps[-1].input_size
        task = self._steps[-1].task
        self._steps[-1] = replace(self._steps[-1], input_size=input_size)
        registry = get_registry()
        if registry.enabled and input_size > previous:
            # The round's element count was unknown when the row was
            # built; count the late-reported volume now.
            registry.counter(
                "repro_superstep_elements_total",
                task=task,
                phase="cluster-round",
            ).inc(input_size - previous)

    def _record_step_metrics(
        self, task: str, phase: str, elements: int
    ) -> None:
        """Per-phase superstep counters (the Snippet-1 discipline).

        ``phase`` distinguishes engine-dispatched protocol steps from
        driver-level cluster rounds, so a workload's step mix — and the
        element volume each phase moved — is scrapeable per task.
        """
        registry = get_registry()
        if not registry.enabled:
            return
        registry.counter(
            "repro_supersteps_total", task=task, phase=phase
        ).inc()
        if elements:
            registry.counter(
                "repro_superstep_elements_total", task=task, phase=phase
            ).inc(int(elements))

    def _absorb(self, ledger: CostLedger) -> None:
        """Replay an inner protocol's per-round loads into the master.

        Round boundaries are preserved, so the master's round costs (and
        hence the total) match the inner run's exactly.
        """
        for index in range(ledger.num_rounds):
            self.ledger.open_round()
            for edge, load in ledger.round_loads(index).items():
                self.ledger.add_load(edge, load)
            self.ledger.close_round()

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #

    def report(
        self,
        *,
        task: str,
        protocol: str,
        placement: str = "custom",
        num_vertices: int,
        num_edges: int,
        lower_bound: float = 0.0,
        converged: bool = True,
        meta: dict | None = None,
        wall_time_s: float | None = None,
    ) -> GraphRunReport:
        """Package the accumulated step rows as a :class:`GraphRunReport`.

        ``wall_time_s`` defaults to the sum of the step rows' measured
        times (when every step carries one); pass an explicit
        end-to-end measurement to include driver-side compute between
        steps.
        """
        if wall_time_s is None and self._steps:
            step_times = [step.wall_time_s for step in self._steps]
            if all(t is not None for t in step_times):
                wall_time_s = sum(step_times)
        return GraphRunReport(
            task=task,
            protocol=protocol,
            topology=self._tree.name,
            placement=placement,
            num_vertices=num_vertices,
            num_edges=num_edges,
            supersteps=tuple(self._steps),
            lower_bound=lower_bound,
            converged=converged,
            meta=meta or {},
            wall_time_s=wall_time_s,
        )

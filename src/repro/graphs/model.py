"""Graphs on the 64-bit element substrate.

An edge ``(src, dst)`` packs into a single ``int64`` as
``src << VERTEX_BITS | dst``, so one edge costs exactly one element in
the ledger — the same per-tuple accounting every relational operator in
the package uses.  :data:`VERTEX_BITS` is 20, which caps vertex ids at
``2^20`` and is chosen so a *wedge* ``(a, b, c)`` — the intermediate
relation of the triangle-count plan — still fits the planner's 62-bit
row limit (``3 x 20 = 60`` bits) and a ``(vertex, label)`` message fits
the keyed-tuple encoding (``20 + 20`` bits).

A :class:`PlacedGraph` is the graph analogue of
:class:`~repro.data.distribution.Distribution` for relations: it wraps
a distribution whose fragments hold packed edges under one tag (default
``"E"``), records the vertex count, and exposes the edge/degree
accessors the workloads and verifiers need.  Edges are stored once per
undirected edge in canonical ``src < dst`` orientation; protocols that
need both directions (label propagation) expand fragments locally,
which is free computation in the model.
"""

from __future__ import annotations

import numpy as np

from repro.data.distribution import Distribution
from repro.errors import DistributionError
from repro.topology.tree import NodeId, TreeTopology, node_sort_key

VERTEX_BITS = 20
MAX_VERTICES = 1 << VERTEX_BITS
_DST_MASK = np.int64(MAX_VERTICES - 1)

DEFAULT_EDGE_TAG = "E"


def encode_edges(src: np.ndarray, dst: np.ndarray) -> np.ndarray:
    """Pack aligned endpoint arrays into one ``int64`` per edge."""
    src_array = np.asarray(src, dtype=np.int64)
    dst_array = np.asarray(dst, dtype=np.int64)
    if src_array.shape != dst_array.shape:
        raise DistributionError(
            f"{len(src_array)} sources but {len(dst_array)} destinations"
        )
    for name, array in (("src", src_array), ("dst", dst_array)):
        if len(array) and (array.min() < 0 or array.max() >= MAX_VERTICES):
            raise DistributionError(
                f"{name} vertex ids must be in [0, 2^{VERTEX_BITS})"
            )
    return (src_array << np.int64(VERTEX_BITS)) | dst_array


def decode_edges(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Unpack packed edges back into ``(src, dst)`` arrays."""
    packed = np.asarray(values, dtype=np.int64)
    return packed >> np.int64(VERTEX_BITS), packed & _DST_MASK


def canonical_edges(edges: np.ndarray) -> np.ndarray:
    """Deduplicated ``(m, 2)`` edges with ``src < dst``; rejects loops."""
    array = np.asarray(edges, dtype=np.int64)
    if array.ndim != 2 or (len(array) and array.shape[1] != 2):
        raise DistributionError(
            f"edges must be an (m, 2) array, got shape {array.shape}"
        )
    if len(array) == 0:
        return array.reshape(0, 2)
    if np.any(array[:, 0] == array[:, 1]):
        raise DistributionError("self-loops are not supported")
    lo = np.minimum(array[:, 0], array[:, 1])
    hi = np.maximum(array[:, 0], array[:, 1])
    return np.unique(
        np.stack([lo, hi], axis=1), axis=0
    )


class PlacedGraph:
    """One graph's edges, fragment by compute node, over a distribution.

    Parameters
    ----------
    distribution:
        A :class:`Distribution` whose ``tag`` fragments hold packed
        edges (see :func:`encode_edges`).
    num_vertices:
        Size of the vertex id space; defaults to ``max endpoint + 1``.
        Isolated vertices (ids with no incident edge) are allowed but
        carry no data, so connectivity and degrees are reported for
        non-isolated vertices only.
    tag:
        The relation tag under which edges are stored.
    """

    def __init__(
        self,
        distribution: Distribution,
        *,
        num_vertices: int | None = None,
        tag: str = DEFAULT_EDGE_TAG,
    ) -> None:
        self._distribution = distribution
        self._tag = str(tag)
        endpoints_max = -1
        for node in distribution.nodes:
            fragment = distribution.fragment(node, self._tag)
            if not len(fragment):
                continue
            src, dst = decode_edges(fragment)
            if src.min() < 0 or dst.min() < 0:
                raise DistributionError("negative vertex id in placed edges")
            endpoints_max = max(endpoints_max, int(src.max()), int(dst.max()))
        if num_vertices is None:
            num_vertices = endpoints_max + 1
        if endpoints_max >= num_vertices:
            raise DistributionError(
                f"edge endpoint {endpoints_max} outside the declared vertex "
                f"space [0, {num_vertices})"
            )
        if num_vertices > MAX_VERTICES:
            raise DistributionError(
                f"num_vertices {num_vertices} exceeds 2^{VERTEX_BITS}"
            )
        self._num_vertices = int(num_vertices)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @classmethod
    def from_edges(
        cls,
        tree: TreeTopology,
        edges: np.ndarray,
        *,
        num_vertices: int | None = None,
        policy: str = "uniform",
        seed: int = 0,
        tag: str = DEFAULT_EDGE_TAG,
    ) -> "PlacedGraph":
        """Place ``(m, 2)`` edges on ``tree`` under a named policy.

        Edges are canonicalized (``src < dst``, duplicates and loops
        removed), packed, shuffled by ``seed`` and dealt to compute
        nodes under the same placement policies relations use
        (``uniform`` / ``zipf`` / ``single-heavy`` / ``proportional``).
        """
        # Imported here: data.generators lazily imports this module for
        # random_graph_distribution, so a top-level import would cycle.
        from repro.data.generators import distribute, placement_sizes
        from repro.util.seeding import derive_seed

        canonical = canonical_edges(edges)
        packed = encode_edges(canonical[:, 0], canonical[:, 1])
        nodes = tree.left_to_right_compute_order()
        sizes = placement_sizes(tree, len(packed), policy, nodes)
        distribution = distribute(
            packed,
            sizes,
            tag=tag,
            shuffle_seed=derive_seed(seed, "place-graph"),
        )
        return cls(distribution, num_vertices=num_vertices, tag=tag)

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #

    @property
    def distribution(self) -> Distribution:
        """The underlying per-node placement (feed this to the engine)."""
        return self._distribution

    @property
    def tag(self) -> str:
        return self._tag

    @property
    def num_vertices(self) -> int:
        return self._num_vertices

    @property
    def num_edges(self) -> int:
        return self._distribution.total(self._tag)

    @property
    def nodes(self) -> frozenset:
        return self._distribution.nodes

    def fragment_edges(self, node: NodeId) -> np.ndarray:
        """The ``(m_v, 2)`` edges initially placed at ``node``."""
        fragment = self._distribution.fragment(node, self._tag)
        src, dst = decode_edges(fragment)
        return np.stack([src, dst], axis=1) if len(src) else np.empty(
            (0, 2), np.int64
        )

    def edges(self) -> np.ndarray:
        """All edges concatenated in deterministic node order."""
        parts = [
            self.fragment_edges(node)
            for node in sorted(self._distribution.nodes, key=node_sort_key)
        ]
        parts = [p for p in parts if len(p)]
        if not parts:
            return np.empty((0, 2), np.int64)
        return np.concatenate(parts)

    def vertices(self) -> np.ndarray:
        """Sorted non-isolated vertex ids (endpoints of some edge)."""
        edges = self.edges()
        if not len(edges):
            return np.empty(0, np.int64)
        return np.unique(edges)

    def degrees(self) -> np.ndarray:
        """Undirected degree per vertex id (length ``num_vertices``)."""
        edges = self.edges()
        counts = np.zeros(self._num_vertices, dtype=np.int64)
        if len(edges):
            counts += np.bincount(
                edges.ravel(), minlength=self._num_vertices
            )
        return counts

    def describe(self) -> str:
        lines = [
            f"PlacedGraph(n={self.num_vertices}, m={self.num_edges}, "
            f"tag={self._tag!r})"
        ]
        for node in sorted(self._distribution.nodes, key=node_sort_key):
            lines.append(
                f"  {node}: {self._distribution.size(node, self._tag)} edges"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"PlacedGraph(num_vertices={self.num_vertices}, "
            f"num_edges={self.num_edges}, nodes={len(self.nodes)})"
        )

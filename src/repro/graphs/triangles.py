"""Triangle counting compiled as two equi-join stages through the planner.

A triangle ``x < y < z`` is one result row of the cyclic self-join

    E1(a, b) ⋈ E2(b, c) ⋈ E3(a, c)

over three renamings of the *oriented* edge relation (every edge stored
as ``a < b``), so counting triangles is exactly the kind of
multi-relation query the ``plan/`` subsystem compiles: two equi-join
shuffle stages (the second with the ``a = a``/``c = c`` residual),
each dispatched to a registered ``equijoin`` protocol.  The flavours
pin the per-stage protocol:

* ``tree`` — the optimizer's join order, every shuffle the paper's
  distribution-aware tree equi-join;
* ``uniform-hash`` — the same order with the MPC hash-join baseline;
* ``gather`` — the planner's gather-everything strategy.

The compiled pipeline reports per-stage rows; the registered protocol
summarizes them into one :class:`~repro.sim.protocol.ProtocolResult`
(the stage rows ride along in ``meta["supersteps"]``, and the
result's ledger is empty — cost/rounds are the authoritative totals,
exactly as in :class:`~repro.report.PlanReport`).
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.core.common import LowerBound
from repro.data.distribution import Distribution
from repro.errors import ProtocolError
from repro.graphs.model import (
    DEFAULT_EDGE_TAG,
    VERTEX_BITS,
    PlacedGraph,
    decode_edges,
)
from repro.graphs.reference import reference_triangle_count
from repro.registry import register_protocol, register_task
from repro.report import GraphRunReport, RunReport
from repro.sim.ledger import CostLedger
from repro.sim.protocol import ProtocolResult
from repro.topology.tree import TreeTopology, node_sort_key


# --------------------------------------------------------------------- #
# lower bound + verification
# --------------------------------------------------------------------- #


def triangles_lower_bound(
    tree: TreeTopology,
    distribution: Distribution,
    *,
    tag: str = DEFAULT_EDGE_TAG,
) -> LowerBound:
    """A per-link counting lower bound for triangle counting.

    Fix a link ``e`` and a vertex ``v`` with incident edges on both
    sides of ``e``.  The number of triangles through ``v`` depends on
    pairs of ``v``-edges from opposite sides, so whichever side
    accounts for ``v``'s triangles must learn at least one element
    about ``v`` from the other side.  A single crossing edge element
    ``(u, w)`` carries information about exactly its two endpoints,
    hence

        cost(e) >= |{v : v has incident edges on both sides}| / (2 w_e)

    — the triangle analogue of the group-by shared-key bound, with the
    factor 2 because one edge element covers two vertices.
    """
    tree.require_symmetric("the triangle-count lower bound")
    computes = sorted(tree.compute_nodes, key=node_sort_key)
    node_vertices: dict = {}
    for v in computes:
        fragment = distribution.fragment(v, tag)
        if not len(fragment):
            node_vertices[v] = np.empty(0, np.int64)
            continue
        src, dst = decode_edges(fragment)
        node_vertices[v] = np.unique(np.concatenate([src, dst]))
    per_edge: dict = {}
    for edge in tree.undirected_edges():
        a_side, b_side = tree.compute_sides(edge)
        a_parts = [node_vertices[v] for v in a_side if len(node_vertices.get(v, ()))]
        b_parts = [node_vertices[v] for v in b_side if len(node_vertices.get(v, ()))]
        if not a_parts or not b_parts:
            per_edge[edge] = 0.0
            continue
        shared = np.intersect1d(
            np.concatenate(a_parts), np.concatenate(b_parts)
        )
        per_edge[edge] = len(shared) / (
            2.0 * tree.undirected_bandwidth(edge)
        )
    return LowerBound.from_per_edge(
        per_edge, "per-link shared-vertex counting (triangles)"
    )


def _verify_triangles(
    tree: TreeTopology, distribution: Distribution, result: ProtocolResult
) -> None:
    """The per-node counts must sum to the reference triangle count."""
    tag = result.meta.get("tag", DEFAULT_EDGE_TAG)
    fragments = [
        distribution.fragment(v, tag)
        for v in sorted(distribution.nodes, key=node_sort_key)
    ]
    fragments = [f for f in fragments if len(f)]
    if fragments:
        packed = np.concatenate(fragments)
        src, dst = decode_edges(packed)
        lo, hi = np.minimum(src, dst), np.maximum(src, dst)
        canonical = np.stack([lo, hi], axis=1)
        if len(np.unique(canonical, axis=0)) != len(canonical):
            raise ProtocolError(
                "triangle counting requires a simple graph; the placement "
                "contains duplicated edges"
            )
        expected = reference_triangle_count(canonical)
    else:
        expected = 0
    produced = sum(
        output.get("num_triangles", 0) for output in result.outputs.values()
    )
    if produced != expected:
        raise ProtocolError(
            f"{result.protocol} counted {produced} of {expected} triangles"
        )


# --------------------------------------------------------------------- #
# compilation through the planner
# --------------------------------------------------------------------- #


def triangle_query():
    """The cyclic three-way self-join whose result rows are triangles."""
    from repro.plan import Join, JoinCondition, Scan

    return Join(
        inputs=(Scan("E1"), Scan("E2"), Scan("E3")),
        conditions=(
            JoinCondition(0, "b", 1, "b"),
            JoinCondition(1, "c", 2, "c"),
            JoinCondition(0, "a", 2, "a"),
        ),
    )


def triangle_catalog(
    tree: TreeTopology, distribution: Distribution, *, tag: str = DEFAULT_EDGE_TAG
) -> dict:
    """Three renamings of the oriented edge relation, placed as given.

    Each fragment is canonicalized locally (``a < b`` — free
    computation), and the same physical rows back ``E1(a, b)``,
    ``E2(b, c)`` and ``E3(a, c)``.
    """
    from repro.plan import PlacedRelation, Schema

    fragments: dict = {}
    for node in sorted(distribution.nodes, key=node_sort_key):
        packed = distribution.fragment(node, tag)
        if not len(packed):
            continue
        src, dst = decode_edges(packed)
        rows = np.stack(
            [np.minimum(src, dst), np.maximum(src, dst)], axis=1
        )
        fragments[node] = rows
    widths = (VERTEX_BITS, VERTEX_BITS)
    return {
        "E1": PlacedRelation(Schema(("a", "b"), widths), fragments),
        "E2": PlacedRelation(Schema(("b", "c"), widths), fragments),
        "E3": PlacedRelation(Schema(("a", "c"), widths), fragments),
    }


def _compile(tree: TreeTopology, catalog: dict, flavor: str):
    """A physical plan for ``flavor``.

    ``optimized`` keeps the planner's per-stage protocol choice (the
    topology-aware behaviour: whichever registered equi-join is
    estimated cheapest on this topology and placement); ``gather`` is
    the planner's centralizing strategy; ``tree`` / ``uniform-hash``
    pin every shuffle stage to that protocol, isolating what the
    protocol choice alone is worth.
    """
    from repro.plan import optimize

    if flavor == "gather":
        return optimize(triangle_query(), tree, catalog, strategy="gather")
    physical = optimize(triangle_query(), tree, catalog, strategy="optimized")
    if flavor == "optimized":
        return physical
    stages = tuple(
        replace(stage, protocol=flavor)
        if stage.kind in ("join", "groupby")
        else stage
        for stage in physical.stages
    )
    return replace(physical, stages=stages)


def _count_triangles(
    tree: TreeTopology,
    distribution: Distribution,
    *,
    flavor: str,
    protocol_name: str,
    seed: int,
    tag: str,
    bits_per_element: int,
) -> ProtocolResult:
    from repro.plan.executor import execute_plan

    catalog = triangle_catalog(tree, distribution, tag=tag)
    num_edges = distribution.total(tag)
    if num_edges == 0:
        return ProtocolResult(
            protocol=protocol_name,
            rounds=0,
            cost=0.0,
            cost_bits=0.0,
            ledger=CostLedger(tree, bits_per_element=bits_per_element),
            outputs={v: {"num_triangles": 0} for v in tree.compute_nodes},
            meta={
                "tag": tag,
                "num_edges": 0,
                "num_vertices": 0,
                "num_triangles": 0,
                "supersteps": [],
                "strategy": flavor,
            },
        )
    physical = _compile(tree, catalog, flavor)
    plan_report, output = execute_plan(
        physical, tree, catalog, seed=seed, keep_output=True
    )
    outputs: dict = {v: {"num_triangles": 0} for v in tree.compute_nodes}
    for node in output.nodes:
        outputs[node] = {"num_triangles": int(output.size(node))}
    vertices = np.unique(catalog["E1"].rows())
    meta = {
        "tag": tag,
        "num_edges": int(num_edges),
        "num_vertices": int(len(vertices)),
        "num_triangles": int(output.total_rows),
        "strategy": flavor,
        "estimated_cost": plan_report.estimated_cost,
        "supersteps": [stage.to_dict() for stage in plan_report.stages],
        "plan": [
            stage["operator"] for stage in plan_report.meta["stages"]
        ],
    }
    return ProtocolResult(
        protocol=protocol_name,
        rounds=plan_report.rounds,
        cost=plan_report.cost,
        cost_bits=plan_report.cost * bits_per_element,
        ledger=CostLedger(tree, bits_per_element=bits_per_element),
        outputs=outputs,
        meta=meta,
    )


# --------------------------------------------------------------------- #
# registered protocols
# --------------------------------------------------------------------- #


@register_protocol(
    task="triangle-count",
    name="optimized",
    accepts_seed=True,
    description="Planner-compiled joins, protocol chosen per stage",
)
def optimized_triangle_count(
    tree: TreeTopology,
    distribution: Distribution,
    *,
    seed: int = 0,
    tag: str = DEFAULT_EDGE_TAG,
    bits_per_element: int = 64,
) -> ProtocolResult:
    """Topology-aware triangle counting: the planner picks each stage."""
    return _count_triangles(
        tree,
        distribution,
        flavor="optimized",
        protocol_name="optimized-triangles",
        seed=seed,
        tag=tag,
        bits_per_element=bits_per_element,
    )


@register_protocol(
    task="triangle-count",
    name="tree",
    accepts_seed=True,
    description="Two tree equi-join stages compiled by the planner",
)
def tree_triangle_count(
    tree: TreeTopology,
    distribution: Distribution,
    *,
    seed: int = 0,
    tag: str = DEFAULT_EDGE_TAG,
    bits_per_element: int = 64,
) -> ProtocolResult:
    """Distribution-aware triangle counting (tree equi-joins per stage)."""
    return _count_triangles(
        tree,
        distribution,
        flavor="tree",
        protocol_name="tree-triangles",
        seed=seed,
        tag=tag,
        bits_per_element=bits_per_element,
    )


@register_protocol(
    task="triangle-count",
    name="uniform-hash",
    kind="baseline",
    accepts_seed=True,
    description="The same plan with uniform-hash MPC joins per stage",
)
def uniform_hash_triangle_count(
    tree: TreeTopology,
    distribution: Distribution,
    *,
    seed: int = 0,
    tag: str = DEFAULT_EDGE_TAG,
    bits_per_element: int = 64,
) -> ProtocolResult:
    """Topology-agnostic triangle counting (uniform hash joins)."""
    return _count_triangles(
        tree,
        distribution,
        flavor="uniform-hash",
        protocol_name="uniform-hash-triangles",
        seed=seed,
        tag=tag,
        bits_per_element=bits_per_element,
    )


@register_protocol(
    task="triangle-count",
    name="gather",
    kind="baseline",
    accepts_seed=True,
    description="The planner's gather-everything strategy",
)
def gather_triangle_count(
    tree: TreeTopology,
    distribution: Distribution,
    *,
    seed: int = 0,
    tag: str = DEFAULT_EDGE_TAG,
    bits_per_element: int = 64,
) -> ProtocolResult:
    """Centralizing triangle counting (gather stages)."""
    return _count_triangles(
        tree,
        distribution,
        flavor="gather",
        protocol_name="gather-triangles",
        seed=seed,
        tag=tag,
        bits_per_element=bits_per_element,
    )


register_task(
    "triangle-count",
    default_protocol="optimized",
    verifier=_verify_triangles,
    lower_bound=triangles_lower_bound,
    lower_bound_opts=("tag",),
    bound_holds_per_instance=True,
    aliases=("triangles",),
)


# --------------------------------------------------------------------- #
# facade
# --------------------------------------------------------------------- #


def run_triangles(
    tree: TreeTopology,
    graph: "PlacedGraph | Distribution",
    *,
    protocol: str | None = None,
    seed: int = 0,
    placement: str = "custom",
    verify: bool = True,
    **opts,
) -> GraphRunReport:
    """Run triangle counting and report per-stage costs."""
    from repro.engine import run_with_result

    distribution = (
        graph.distribution if isinstance(graph, PlacedGraph) else graph
    )
    report, result = run_with_result(
        "triangle-count",
        tree,
        distribution,
        protocol=protocol,
        seed=seed,
        placement=placement,
        verify=verify,
        **opts,
    )
    meta = dict(result.meta)
    steps = tuple(
        RunReport.from_dict(payload) for payload in meta.pop("supersteps", [])
    )
    return GraphRunReport(
        task=report.task,
        protocol=report.protocol,
        topology=report.topology,
        placement=placement,
        num_vertices=int(meta.get("num_vertices", 0)),
        num_edges=int(meta.get("num_edges", 0)),
        supersteps=steps,
        lower_bound=report.lower_bound,
        converged=True,
        meta=meta,
        wall_time_s=report.wall_time_s,
    )

"""Single-machine reference implementations for the graph tasks.

These are the ground truth the distributed protocols are verified
against — the graph analogue of ``np.intersect1d`` for set
intersection.  They run on the concatenated global edge list and are
deliberately simple: union-find for connectivity, sorted-adjacency
intersection for triangles, ``bincount`` for degrees.
"""

from __future__ import annotations

import numpy as np


def reference_components(edges: np.ndarray) -> dict:
    """Connected components by union-find: ``{vertex: min vertex label}``.

    Only non-isolated vertices (endpoints of some edge) appear.  The
    canonical label of a component is its minimum vertex id — the fixed
    point hash-to-min label propagation converges to, so protocol
    outputs can be compared exactly.
    """
    array = np.asarray(edges, dtype=np.int64)
    if not len(array):
        return {}
    parent: dict[int, int] = {}

    def find(v: int) -> int:
        root = v
        while parent[root] != root:
            root = parent[root]
        while parent[v] != root:  # path compression
            parent[v], v = root, parent[v]
        return root

    for u, v in array.tolist():
        parent.setdefault(u, u)
        parent.setdefault(v, v)
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[max(ru, rv)] = min(ru, rv)
    return {v: find(v) for v in parent}


def reference_triangle_count(edges: np.ndarray) -> int:
    """Count triangles via forward-adjacency intersection.

    Edges are canonicalized and deduplicated first; for each edge
    ``(u, v)`` with ``u < v``, triangles through it are the common
    higher-numbered neighbours ``|N+(u) ∩ N+(v)|`` — each triangle
    ``x < y < z`` is counted exactly once, at edge ``(x, y)``.
    """
    # Imported here (not at module top) to keep this module importable
    # on its own in docs/tests without pulling the placement machinery.
    from repro.graphs.model import canonical_edges

    canonical = canonical_edges(np.asarray(edges, dtype=np.int64))
    if len(canonical) < 3:
        return 0
    forward: dict[int, np.ndarray] = {}
    order = np.lexsort((canonical[:, 1], canonical[:, 0]))
    canonical = canonical[order]
    starts = np.concatenate(
        [[0], np.flatnonzero(np.diff(canonical[:, 0])) + 1, [len(canonical)]]
    )
    for i in range(len(starts) - 1):
        lo, hi = starts[i], starts[i + 1]
        forward[int(canonical[lo, 0])] = canonical[lo:hi, 1]
    count = 0
    for u, v in canonical.tolist():
        nu = forward.get(u)
        nv = forward.get(v)
        if nu is None or nv is None:
            continue
        count += len(np.intersect1d(nu, nv, assume_unique=True))
    return count


def reference_degrees(edges: np.ndarray, *, num_vertices: int | None = None) -> np.ndarray:
    """Undirected degree per vertex id."""
    array = np.asarray(edges, dtype=np.int64)
    if num_vertices is None:
        num_vertices = int(array.max()) + 1 if len(array) else 0
    counts = np.zeros(num_vertices, dtype=np.int64)
    if len(array):
        counts += np.bincount(array.ravel(), minlength=num_vertices)
    return counts

"""Degree and neighbourhood aggregation, reusing ``groupby-aggregate``.

No new protocol is needed: a graph's degree table is the group-by
``count`` of its incidence messages, and neighbourhood statistics
(min/max/sum of neighbour ids per vertex) are the same shuffle under a
different op.  These helpers build the keyed-tuple distribution from a
placed graph — two messages per edge, one per endpoint, produced
locally for free — and dispatch through the engine, so every
registered group-by protocol (``tree`` / ``uniform-hash`` / ``gather``)
works unchanged and the shared-key lower bound applies as-is.
"""

from __future__ import annotations

import numpy as np

from repro.data.distribution import Distribution
from repro.errors import ProtocolError
from repro.graphs.model import PlacedGraph, VERTEX_BITS, decode_edges
from repro.queries.tuples import encode_tuples
from repro.report import RunReport
from repro.topology.tree import TreeTopology, node_sort_key

_NEIGHBOUR_OPS = ("min", "max", "sum")


def incidence_distribution(
    graph: PlacedGraph,
    *,
    values: str = "ones",
    tag: str = "R",
    payload_bits: int = VERTEX_BITS,
) -> Distribution:
    """Per-node ``(vertex, value)`` messages: two per edge, placed as-is.

    ``values="ones"`` pairs every endpoint with 1 (degree counting);
    ``values="neighbour"`` pairs it with the opposite endpoint
    (neighbourhood aggregation).  The expansion is local computation —
    the shuffle is what the dispatched protocol charges.
    """
    if values not in ("ones", "neighbour"):
        raise ProtocolError(
            f"unknown incidence values {values!r}; "
            "choose 'ones' or 'neighbour'"
        )
    placements: dict = {}
    for node in sorted(graph.nodes, key=node_sort_key):
        fragment = graph.distribution.fragment(node, graph.tag)
        if not len(fragment):
            continue
        src, dst = decode_edges(fragment)
        keys = np.concatenate([src, dst])
        if values == "ones":
            payloads = np.ones(len(keys), dtype=np.int64)
        else:
            payloads = np.concatenate([dst, src])
        placements[node] = {
            tag: encode_tuples(keys, payloads, payload_bits=payload_bits)
        }
    return Distribution(placements)


def run_degrees(
    tree: TreeTopology,
    graph: PlacedGraph,
    *,
    protocol: str | None = None,
    seed: int = 0,
    placement: str = "custom",
    **opts,
) -> RunReport:
    """Degree table via group-by ``count``; outputs are ``{vertex: degree}``."""
    from repro.engine import run

    return run(
        "groupby-aggregate",
        tree,
        incidence_distribution(graph, values="ones"),
        protocol=protocol,
        seed=seed,
        placement=placement,
        op="count",
        payload_bits=VERTEX_BITS,
        **opts,
    )


def run_neighborhood_aggregate(
    tree: TreeTopology,
    graph: PlacedGraph,
    *,
    op: str = "min",
    protocol: str | None = None,
    seed: int = 0,
    placement: str = "custom",
    **opts,
) -> RunReport:
    """Aggregate each vertex's neighbour ids (one hash-to-min round)."""
    if op not in _NEIGHBOUR_OPS:
        raise ProtocolError(
            f"unsupported neighbourhood op {op!r}; "
            f"choose from {_NEIGHBOUR_OPS}"
        )
    from repro.engine import run

    # Partial sums of neighbour ids overflow the 20-bit vertex width,
    # so the `sum` op widens the payload (keys still fit: 62-40=22 bits).
    payload_bits = 40 if op == "sum" else VERTEX_BITS
    return run(
        "groupby-aggregate",
        tree,
        incidence_distribution(
            graph, values="neighbour", payload_bits=payload_bits
        ),
        protocol=protocol,
        seed=seed,
        placement=placement,
        op=op,
        payload_bits=payload_bits,
        **opts,
    )

"""Topology-aware graph analytics on the protocol substrate.

The paper's protocols are one-shot relational primitives; the dominant
related line of work (Andoni et al., Behnezhad et al.) applies
massively-parallel models to *iterative graph* computation.  This
package opens that workload family on the same cost model:

- **`model`** — edges as packed 64-bit ``(src, dst)`` elements and
  :class:`PlacedGraph`, the per-node edge placement;
- **`iterate`** — :class:`SuperstepDriver`, which composes registered
  protocols across supersteps on one master ledger and reports them as
  a :class:`~repro.report.GraphRunReport`;
- **`components`** — hash-to-min connected components (registered task
  ``connected-components`` with ``tree`` / ``uniform-hash`` /
  ``gather`` protocols);
- **`triangles`** — triangle counting compiled as two equi-join stages
  through the query planner (registered task ``triangle-count``);
- **`degrees`** — degree tables and neighbourhood aggregation reusing
  the registered ``groupby-aggregate`` protocols;
- **`reference`** — single-machine ground truth (union-find,
  adjacency-intersection counting) backing the verifiers.

Quick start::

    import repro
    from repro.graphs import run_components

    tree = repro.two_level([4, 4], uplink_bandwidth=2.0)
    dist = repro.random_graph_distribution(
        tree, num_edges=2_000, policy="zipf", seed=0
    )
    report = run_components(tree, dist)          # GraphRunReport
    print(report.summarize())

or, through the engine, ``repro.run("connected-components", tree, dist)``.
"""

from repro.graphs.model import (
    DEFAULT_EDGE_TAG,
    MAX_VERTICES,
    VERTEX_BITS,
    PlacedGraph,
    canonical_edges,
    decode_edges,
    encode_edges,
)
from repro.graphs.reference import (
    reference_components,
    reference_degrees,
    reference_triangle_count,
)
from repro.graphs.iterate import SuperstepDriver
from repro.graphs.components import (
    components_lower_bound,
    gather_connected_components,
    run_components,
    tree_connected_components,
    uniform_hash_connected_components,
)
from repro.graphs.triangles import (
    run_triangles,
    triangle_catalog,
    triangle_query,
    triangles_lower_bound,
    tree_triangle_count,
)
from repro.graphs.degrees import (
    incidence_distribution,
    run_degrees,
    run_neighborhood_aggregate,
)

__all__ = [
    "DEFAULT_EDGE_TAG",
    "MAX_VERTICES",
    "VERTEX_BITS",
    "PlacedGraph",
    "canonical_edges",
    "decode_edges",
    "encode_edges",
    "reference_components",
    "reference_degrees",
    "reference_triangle_count",
    "SuperstepDriver",
    "components_lower_bound",
    "gather_connected_components",
    "run_components",
    "tree_connected_components",
    "uniform_hash_connected_components",
    "run_triangles",
    "triangle_catalog",
    "triangle_query",
    "triangles_lower_bound",
    "tree_triangle_count",
    "run_degrees",
    "run_neighborhood_aggregate",
    "incidence_distribution",
]

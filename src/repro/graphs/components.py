"""Topology-aware connected components via hash-to-min label propagation.

The MPC connectivity literature (Andoni et al. 2018, Behnezhad et al.
2019) solves connectivity by repeated shuffle/aggregate supersteps;
this module runs the classic *hash-to-min* label propagation on the
paper's cost model, with the per-round shuffle dispatched to a
**registered** ``groupby-aggregate`` protocol so the topology-aware /
topology-agnostic comparison is inherited from the substrate:

* every vertex starts labelled with its own id;
* each superstep, every node proposes — for each locally held directed
  edge ``(u, v)`` — the message ``(v, label(u))``, plus the identity
  message ``(v, label(v))`` for every vertex it knows, and the
  proposals are min-aggregated per vertex at a hashed *owner*;
* owners push updated labels back to the *subscribers* (the nodes whose
  edge fragments touch the vertex) on the driver's cluster, and the
  iteration stops the first superstep in which no label changes —
  after at most ``diameter + 1`` supersteps per component.

The protocol flavours differ exactly where topology awareness lives:

* ``tree`` — placement-weighted ownership (the registered ``tree``
  group-by), per-node combining before the shuffle, and *delta* return
  legs (only changed labels travel back);
* ``uniform-hash`` — the textbook MPC baseline: uniform ownership, raw
  per-edge messages (no combiner, ``pre_aggregate=False``), and a full
  label refresh every superstep;
* ``gather`` — ship every edge to one node and run union-find there
  (one round; optimal when one node dominates).
"""

from __future__ import annotations

import numpy as np

from repro.core.common import LowerBound
from repro.data.columns import KeyValueArrays
from repro.data.distribution import Distribution
from repro.errors import ProtocolError
from repro.graphs.iterate import SuperstepDriver
from repro.graphs.model import (
    DEFAULT_EDGE_TAG,
    VERTEX_BITS,
    PlacedGraph,
    decode_edges,
)
from repro.graphs.reference import reference_components
from repro.queries.tuples import decode_tuples, encode_tuples
from repro.registry import register_protocol, register_task
from repro.report import GraphRunReport, RunReport
from repro.sim.protocol import ProtocolResult
from repro.topology.tree import NodeId, TreeTopology, node_sort_key

_LABEL_RECV = "cc.labels.recv"
_GATHER_RECV = "cc.gather.recv"


# --------------------------------------------------------------------- #
# lower bound + verification
# --------------------------------------------------------------------- #


def components_lower_bound(
    tree: TreeTopology,
    distribution: Distribution,
    *,
    tag: str = DEFAULT_EDGE_TAG,
) -> LowerBound:
    """A per-link counting lower bound for connectivity.

    Fix a link ``e`` and a component ``C`` whose edges are placed on
    both sides of ``e``.  Because ``C`` is connected, some vertex of
    ``C`` is incident to edges on both sides, and the final label of
    every ``C``-vertex depends on the union of ``C``'s edges — so
    whichever side emits a ``C``-label, at least one element about
    ``C`` must cross ``e``.  Distinct spanning components contribute
    independently — but the link is full-duplex and the algorithm
    chooses per component which side resolves it, splitting the forced
    crossings between the two directed channels, so only the heavier
    direction is forced:

        cost(e) >= |components spanning e| / (2 w_e)

    — the connectivity analogue of the group-by shared-key bound,
    full-duplex factor included.
    """
    tree.require_symmetric("the connectivity lower bound")
    computes = sorted(tree.compute_nodes, key=node_sort_key)
    fragments = {v: distribution.fragment(v, tag) for v in computes}
    all_edges = [f for f in fragments.values() if len(f)]
    if not all_edges:
        return LowerBound.from_per_edge(
            {edge: 0.0 for edge in tree.undirected_edges()},
            "per-link spanning-component counting (connectivity)",
        )
    src, dst = decode_edges(np.concatenate(all_edges))
    component_of = reference_components(np.stack([src, dst], axis=1))
    node_components: dict = {}
    for v, fragment in fragments.items():
        if not len(fragment):
            node_components[v] = frozenset()
            continue
        s, d = decode_edges(fragment)
        node_components[v] = frozenset(
            component_of[int(u)] for u in np.unique(np.concatenate([s, d]))
        )
    per_edge: dict = {}
    for edge in tree.undirected_edges():
        a_side, b_side = tree.compute_sides(edge)
        a_comps = frozenset().union(
            *(node_components.get(v, frozenset()) for v in a_side)
        )
        b_comps = frozenset().union(
            *(node_components.get(v, frozenset()) for v in b_side)
        )
        per_edge[edge] = len(a_comps & b_comps) / (
            2.0 * tree.undirected_bandwidth(edge)
        )
    return LowerBound.from_per_edge(
        per_edge, "per-link spanning-component counting (connectivity)"
    )


def _verify_components(
    tree: TreeTopology, distribution: Distribution, result: ProtocolResult
) -> None:
    """Each non-isolated vertex must appear once, with its component min."""
    tag = result.meta.get("tag", DEFAULT_EDGE_TAG)
    fragment_list = [
        distribution.fragment(v, tag)
        for v in sorted(distribution.nodes, key=node_sort_key)
    ]
    fragment_list = [f for f in fragment_list if len(f)]
    if fragment_list:
        src, dst = decode_edges(np.concatenate(fragment_list))
        expected = reference_components(np.stack([src, dst], axis=1))
    else:
        expected = {}
    found: dict = {}
    for node, labels in result.outputs.items():
        for vertex, label in labels.items():
            if vertex in found:
                raise ProtocolError(
                    f"{result.protocol} emitted vertex {vertex} at two nodes"
                )
            found[int(vertex)] = int(label)
    if found != expected:
        raise ProtocolError(
            f"{result.protocol} produced a wrong labelling "
            f"({len(found)} vertices vs {len(expected)} expected)"
        )


# --------------------------------------------------------------------- #
# the superstep loop
# --------------------------------------------------------------------- #


class _LocalView:
    """One node's static edge fragment expanded for propagation.

    With ``closure=True`` the view pre-computes its fragment's *local*
    connected components (free computation in the model) and each
    superstep proposes, for every vertex, the minimum label over the
    vertex's local component — the local-contraction optimization of
    the MPC connectivity literature.  Without it, proposals are the
    textbook single-hop hash-to-min messages, one per directed edge.
    """

    def __init__(self, fragment: np.ndarray, *, closure: bool) -> None:
        lo, hi = decode_edges(fragment)
        self.src = np.concatenate([lo, hi])
        self.dst = np.concatenate([hi, lo])
        self.verts = np.unique(self.src)  # sorted endpoints
        self.labels = self.verts.copy()  # hash-to-min starts at identity
        self.src_pos = np.searchsorted(self.verts, self.src)
        self.closure = closure
        if closure:
            roots = reference_components(np.stack([lo, hi], axis=1))
            root_array = np.asarray(
                [roots[int(v)] for v in self.verts], dtype=np.int64
            )
            _, self._comp_of = np.unique(root_array, return_inverse=True)
            self._comp_order = np.argsort(self._comp_of, kind="stable")
            grouped = self._comp_of[self._comp_order]
            self._comp_starts = np.concatenate(
                [[0], np.flatnonzero(np.diff(grouped)) + 1]
            )

    def candidates(self) -> tuple[np.ndarray, np.ndarray]:
        """This superstep's ``(vertex, proposed label)`` messages."""
        if self.closure:
            component_min = np.minimum.reduceat(
                self.labels[self._comp_order], self._comp_starts
            )
            return self.verts, component_min[self._comp_of]
        keys = np.concatenate([self.dst, self.verts])
        values = np.concatenate([self.labels[self.src_pos], self.labels])
        return keys, values

    def update(self, vertices: np.ndarray, labels: np.ndarray) -> None:
        positions = np.searchsorted(self.verts, vertices)
        inside = (positions < len(self.verts)) & (
            self.verts[np.minimum(positions, len(self.verts) - 1)] == vertices
        )
        self.labels[positions[inside]] = labels[inside]


def _hash_to_min(
    tree: TreeTopology,
    distribution: Distribution,
    *,
    seed: int,
    tag: str,
    shuffle_protocol: str,
    pre_aggregate: bool,
    delta_return: bool,
    local_closure: bool,
    max_supersteps: int | None,
    bits_per_element: int,
) -> tuple[SuperstepDriver, dict, dict]:
    """Shared superstep loop; flavours differ only in the knobs above."""
    tree.require_symmetric("connected components")
    distribution.validate_for(tree)
    computes = sorted(tree.compute_nodes, key=node_sort_key)
    views = {
        v: _LocalView(distribution.fragment(v, tag), closure=local_closure)
        for v in computes
        if distribution.size(v, tag)
    }
    driver = SuperstepDriver(tree, bits_per_element=bits_per_element)
    base_meta = {
        "tag": tag,
        "payload_bits": VERTEX_BITS,
        "num_edges": distribution.total(tag),
    }
    if not views:
        outputs: dict = {v: KeyValueArrays.empty() for v in computes}
        return driver, outputs, dict(
            base_meta, num_vertices=0, num_supersteps=0, converged=True
        )

    subscribers: dict[int, set] = {}
    for node, view in views.items():
        for vertex in view.verts.tolist():
            subscribers.setdefault(vertex, set()).add(node)
    all_vertices = sorted(subscribers)
    vert_arr = np.asarray(all_vertices, dtype=np.int64)
    # Return legs group label updates by *subscriber set*: deduplicate
    # the sets once (many vertices share one), so each superstep only
    # touches arrays — a subset id per vertex, per-node membership flags
    # per subset — instead of per-vertex Python set algebra.
    subset_ids: dict[frozenset, int] = {}
    vertex_subset = np.empty(len(vert_arr), dtype=np.intp)
    for i, vertex in enumerate(all_vertices):
        key = frozenset(subscribers[vertex])
        vertex_subset[i] = subset_ids.setdefault(key, len(subset_ids))
    subset_members = list(subset_ids)  # subset id -> frozenset of nodes
    is_member = {
        node: np.asarray(
            [node in members for members in subset_members], dtype=bool
        )
        for node in views
    }
    prev_labels = vert_arr.copy()  # identity is globally known
    if max_supersteps is None:
        max_supersteps = len(all_vertices) + 2

    converged = False
    owner_outputs: dict = {}
    for step in range(1, max_supersteps + 1):
        placements = {}
        for node, view in views.items():
            keys, values = view.candidates()
            placements[node] = {
                "R": encode_tuples(keys, values, payload_bits=VERTEX_BITS)
            }
        result = driver.protocol_step(
            "groupby-aggregate",
            Distribution(placements),
            protocol=shuffle_protocol,
            label=f"superstep {step} shuffle",
            seed=seed,
            op="min",
            payload_bits=VERTEX_BITS,
            pre_aggregate=pre_aggregate,
            bits_per_element=bits_per_element,
        )
        owner_outputs = result.outputs
        # Read each owner's output columns directly: vertex and label
        # arrays, their positions in the global vertex order, and which
        # labels actually changed this superstep.  Group-by protocols
        # emit :class:`KeyValueArrays`, so the columns are zero-copy;
        # plain dicts (third-party shuffles) fall back to fromiter.
        per_owner = []
        num_changed = 0
        for node in sorted(owner_outputs, key=node_sort_key):
            groups = owner_outputs[node]
            if not groups:
                continue
            keys_column = getattr(groups, "keys_array", None)
            if keys_column is not None:
                verts = keys_column
                labels = groups.values_array
            else:
                verts = np.fromiter(groups.keys(), np.int64, len(groups))
                labels = np.fromiter(groups.values(), np.int64, len(groups))
            positions = np.searchsorted(vert_arr, verts)
            changed_mask = labels != prev_labels[positions]
            num_changed += int(changed_mask.sum())
            per_owner.append((node, verts, labels, positions, changed_mask))
        if num_changed == 0:
            converged = True
            break
        sent_pairs = 0
        with driver.cluster_round(
            task="connected-components",
            protocol="label-return",
            label=f"superstep {step} return",
        ) as ctx:
            for node, verts, labels, positions, changed_mask in per_owner:
                if delta_return:
                    verts_out = verts[changed_mask]
                    labels_out = labels[changed_mask]
                    pos_out = positions[changed_mask]
                else:
                    verts_out, labels_out, pos_out = verts, labels, positions
                if not len(verts_out):
                    continue
                subset_of = vertex_subset[pos_out]
                member_mask = is_member.get(node)
                if member_mask is not None:
                    # The owner also holds edges of some of these
                    # vertices: its local view updates for free.
                    own = member_mask[subset_of]
                    if own.any():
                        views[node].update(verts_out[own], labels_out[own])
                # Batched subscriber-subset return: one Steiner
                # destination set per subset present (its subscribers
                # minus the sender; vertices whose only subscriber is
                # the sender ship nothing), one exchange_multicast for
                # all subsets together.
                used, group_ids = np.unique(subset_of, return_inverse=True)
                destination_sets = [
                    subset_members[sid] - {node} for sid in used.tolist()
                ]
                nonempty = np.asarray(
                    [bool(dsts) for dsts in destination_sets], dtype=bool
                )
                mask = nonempty[group_ids]
                if not mask.any():
                    continue
                ctx.exchange_multicast(
                    node,
                    group_ids[mask],
                    destination_sets,
                    encode_tuples(
                        verts_out[mask],
                        labels_out[mask],
                        payload_bits=VERTEX_BITS,
                    ),
                    tag=_LABEL_RECV,
                )
                sent_pairs += int(mask.sum())
        driver.set_last_input_size(sent_pairs)
        for node, view in views.items():
            received = driver.cluster.take(node, _LABEL_RECV)
            if len(received):
                vertices, labels = decode_tuples(
                    received, payload_bits=VERTEX_BITS
                )
                view.update(vertices, labels)
        for _, verts, labels, positions, _ in per_owner:
            prev_labels[positions] = labels
    if not converged:
        raise ProtocolError(
            f"hash-to-min did not converge within {max_supersteps} supersteps"
        )
    outputs = {
        node: (
            groups
            if isinstance(groups, KeyValueArrays)
            else KeyValueArrays.from_dict(groups)
        )
        for node, groups in owner_outputs.items()
    }
    for node in computes:
        outputs.setdefault(node, KeyValueArrays.empty())
    meta = dict(
        base_meta,
        num_vertices=len(all_vertices),
        num_supersteps=step,
        converged=True,
    )
    return driver, outputs, meta


def _finalize(
    protocol_name: str, driver: SuperstepDriver, outputs: dict, meta: dict
) -> ProtocolResult:
    meta = dict(meta)
    meta["supersteps"] = [report.to_dict() for report in driver.steps]
    return ProtocolResult.from_ledger(
        protocol_name, driver.ledger, outputs=outputs, meta=meta
    )


# --------------------------------------------------------------------- #
# registered protocols
# --------------------------------------------------------------------- #


@register_protocol(
    task="connected-components",
    name="tree",
    accepts_seed=True,
    description="Hash-to-min over placement-weighted tree shuffles",
)
def tree_connected_components(
    tree: TreeTopology,
    distribution: Distribution,
    *,
    seed: int = 0,
    tag: str = DEFAULT_EDGE_TAG,
    max_supersteps: int | None = None,
    bits_per_element: int = 64,
) -> ProtocolResult:
    """Distribution-aware hash-to-min: local contraction, delta returns.

    Each node proposes one combined candidate per locally known vertex
    (the minimum over the vertex's *local* connected component — free
    computation), the shuffle is the placement-weighted registered
    ``tree`` group-by, and only labels that actually changed travel
    back to their subscribers.
    """
    driver, outputs, meta = _hash_to_min(
        tree,
        distribution,
        seed=seed,
        tag=tag,
        shuffle_protocol="tree",
        pre_aggregate=True,
        delta_return=True,
        local_closure=True,
        max_supersteps=max_supersteps,
        bits_per_element=bits_per_element,
    )
    return _finalize("tree-components", driver, outputs, meta)


@register_protocol(
    task="connected-components",
    name="uniform-hash",
    kind="baseline",
    accepts_seed=True,
    description="Textbook MPC hash-to-min: raw messages, uniform owners",
)
def uniform_hash_connected_components(
    tree: TreeTopology,
    distribution: Distribution,
    *,
    seed: int = 0,
    tag: str = DEFAULT_EDGE_TAG,
    max_supersteps: int | None = None,
    bits_per_element: int = 64,
) -> ProtocolResult:
    """Topology-agnostic hash-to-min, as the MPC papers state it.

    One message per directed edge per superstep (no combiner), owners
    hashed uniformly regardless of placement or bandwidth, and a full
    label refresh back to subscribers every superstep.
    """
    driver, outputs, meta = _hash_to_min(
        tree,
        distribution,
        seed=seed,
        tag=tag,
        shuffle_protocol="uniform-hash",
        pre_aggregate=False,
        delta_return=False,
        local_closure=False,
        max_supersteps=max_supersteps,
        bits_per_element=bits_per_element,
    )
    return _finalize("uniform-hash-components", driver, outputs, meta)


@register_protocol(
    task="connected-components",
    name="gather",
    kind="baseline",
    description="Ship every edge to one node; union-find there",
)
def gather_connected_components(
    tree: TreeTopology,
    distribution: Distribution,
    *,
    target: NodeId | None = None,
    tag: str = DEFAULT_EDGE_TAG,
    bits_per_element: int = 64,
) -> ProtocolResult:
    """One round: centralize the edge list, solve locally."""
    distribution.validate_for(tree)
    computes = sorted(tree.compute_nodes, key=node_sort_key)
    if target is None:
        target = max(computes, key=lambda v: distribution.size(v, tag))
    driver = SuperstepDriver(tree, bits_per_element=bits_per_element)
    total_edges = distribution.total(tag)
    if total_edges:
        with driver.cluster_round(
            task="connected-components",
            protocol="gather-components",
            label="gather edges",
            input_size=total_edges,
        ) as ctx:
            for node in computes:
                if node == target:
                    continue
                fragment = distribution.fragment(node, tag)
                if len(fragment):
                    ctx.send(node, target, fragment, tag=_GATHER_RECV)
    gathered = np.concatenate(
        [distribution.fragment(target, tag), driver.cluster.take(target, _GATHER_RECV)]
    )
    src, dst = decode_edges(gathered)
    labelling = (
        reference_components(np.stack([src, dst], axis=1)) if len(src) else {}
    )
    outputs: dict = {v: KeyValueArrays.empty() for v in computes}
    outputs[target] = KeyValueArrays.from_dict(labelling)
    meta = {
        "tag": tag,
        "target": target,
        "num_vertices": len(labelling),
        "num_edges": int(total_edges),
        "num_supersteps": 1 if total_edges else 0,
        "converged": True,
    }
    return _finalize("gather-components", driver, outputs, meta)


register_task(
    "connected-components",
    default_protocol="tree",
    verifier=_verify_components,
    lower_bound=components_lower_bound,
    lower_bound_opts=("tag",),
    bound_holds_per_instance=True,
    aliases=("cc", "components", "connectivity"),
)


# --------------------------------------------------------------------- #
# facade
# --------------------------------------------------------------------- #


def run_components(
    tree: TreeTopology,
    graph: "PlacedGraph | Distribution",
    *,
    protocol: str | None = None,
    seed: int = 0,
    placement: str = "custom",
    verify: bool = True,
    **opts,
) -> GraphRunReport:
    """Run connected components and report per-superstep costs.

    The iterative counterpart of :func:`repro.engine.run`: the flat
    engine report is expanded back into per-superstep rows (the
    protocol records them in its ``meta``) so convergence behaviour is
    visible round by round.
    """
    from repro.engine import run_with_result

    distribution = (
        graph.distribution if isinstance(graph, PlacedGraph) else graph
    )
    report, result = run_with_result(
        "connected-components",
        tree,
        distribution,
        protocol=protocol,
        seed=seed,
        placement=placement,
        verify=verify,
        **opts,
    )
    meta = dict(result.meta)
    steps = tuple(
        RunReport.from_dict(payload) for payload in meta.pop("supersteps", [])
    )
    return GraphRunReport(
        task=report.task,
        protocol=report.protocol,
        topology=report.topology,
        placement=placement,
        num_vertices=int(meta.get("num_vertices", 0)),
        num_edges=int(meta.get("num_edges", 0)),
        supersteps=steps,
        lower_bound=report.lower_bound,
        converged=bool(meta.get("converged", False)),
        meta=meta,
        wall_time_s=report.wall_time_s,
    )

"""Serve-layer benchmark: cold one-shot engine vs warm session (qps).

The session layer (:class:`repro.EngineSession`) exists for one
reason: a serving deployment answers many queries against *one*
topology, and rebuilding topology artifacts and re-running the plan
optimizer per query is pure waste.  This harness quantifies exactly
that waste on a mixed workload of cached-shape queries — task runs
(intersection, equijoin, group-by, sorting over a few pregenerated
placements) interleaved with multi-join plan queries — replayed twice
on a shared fat tree:

* **cold** — every query through the stateless module-level engine
  (``repro.run`` / ``repro.run_plan``): artifacts rebuilt, plans
  re-optimized, per query;
* **warm** — the same queries, same seeds, through one long-lived
  :class:`~repro.session.EngineSession`.

The headline number is throughput (queries/second) and its ratio; the
headline *guarantee* is byte-identity — every warm report, stage
reports and ledger meta included, must equal its cold twin once
wall-clock fields are stripped.  A separate small case replays a slice
of the workload on the ``process`` backend, whose workers verify their
exchanges against the simulated-ledger oracle, so identity is checked
on real parallel execution too.  Results accumulate in
``BENCH_SERVE.json`` (one entry per invocation) and feed the
regression sentinel: identity flips fail, throughput-ratio regressions
warn.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field

import numpy as np

from repro.analysis.speed import fat_tree, write_trajectory
from repro.data.generators import random_distribution
from repro.engine import run as engine_run
from repro.engine import run_plan as engine_run_plan
from repro.errors import AnalysisError
from repro.plan.logical import chain_query, star_query
from repro.plan.relation import chain_catalog, star_catalog
from repro.session import EngineSession
from repro.topology.tree import TreeTopology

#: Default trajectory file name; lives at the repo root by convention.
TRAJECTORY_FILE = "BENCH_SERVE.json"

#: Minimum warm/cold throughput ratios.  Full grid: the session must at
#: least double serving throughput on the mixed workload (measured
#: ~2.9x on the 144-node tree; 2x is the contract).  Small grid (CI
#: smoke): the tiny 16-node topology leaves much less fixed cost to
#: amortize, so only a conservative floor is asserted — a session that
#: stops sharing artifacts or plans lands near 1x and still fails.
FULL_MIN_SPEEDUP = 2.0
SMALL_MIN_SPEEDUP = 1.15
#: The process-backend case exists to verify identity on real parallel
#: execution; IPC dominates its wall clock, so timing is not gated.
IDENTITY_ONLY_MIN_SPEEDUP = 0.0

#: Fields stripped before comparing warm and cold reports: wall-clock
#: is the only thing allowed to differ, and the metrics summary embeds
#: registry state (counter totals) rather than query output.
_NONDETERMINISTIC_KEYS = ("wall_time_s", "metrics")


@dataclass
class ServeCase:
    """One cold-vs-warm replay of a serve workload."""

    name: str
    topology: str
    num_queries: int
    cold_seconds: float = 0.0
    warm_seconds: float = 0.0
    identical: bool = False
    cost_elements: float = 0.0
    min_speedup: float = SMALL_MIN_SPEEDUP
    artifact_cache: dict = field(default_factory=dict)
    plan_cache: dict = field(default_factory=dict)

    @property
    def cold_qps(self) -> float:
        return self.num_queries / self.cold_seconds if self.cold_seconds else 0.0

    @property
    def warm_qps(self) -> float:
        return self.num_queries / self.warm_seconds if self.warm_seconds else 0.0

    @property
    def speedup(self) -> float:
        if self.warm_seconds <= 0:
            return float("inf")
        return self.cold_seconds / self.warm_seconds

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "topology": self.topology,
            "queries": self.num_queries,
            "cold_s": round(self.cold_seconds, 6),
            "warm_s": round(self.warm_seconds, 6),
            "cold_qps": round(self.cold_qps, 2),
            "warm_qps": round(self.warm_qps, 2),
            "speedup": round(self.speedup, 2),
            "min_speedup": self.min_speedup,
            "identical": self.identical,
            "cost_elements": self.cost_elements,
            "artifact_cache": dict(self.artifact_cache),
            "plan_cache": dict(self.plan_cache),
        }


def strip_report(report) -> dict:
    """A report as a nested dict with wall-clock fields removed.

    Works for :class:`~repro.report.RunReport` and
    :class:`~repro.report.PlanReport` alike (plan reports nest stage
    reports; ``asdict`` recurses, the scrub follows).  What remains —
    costs, rounds, bounds, ledger meta, output counts — is exactly the
    deterministic content the byte-identity guarantee covers.
    """

    def scrub(value):
        if isinstance(value, dict):
            return {
                key: scrub(inner)
                for key, inner in value.items()
                if key not in _NONDETERMINISTIC_KEYS
            }
        if isinstance(value, (list, tuple)):
            return [scrub(inner) for inner in value]
        if isinstance(value, np.ndarray):
            # arrays in protocol meta would poison dict equality
            # (ambiguous truth value); lists compare element-wise.
            return value.tolist()
        return value

    return scrub(asdict(report))


@dataclass(frozen=True)
class _Query:
    """One workload cell: a task run or a plan run, fully specified."""

    kind: str  # "task" | "plan"
    task: str | None = None
    distribution_index: int = 0
    query_index: int = 0
    seed: int = 0


def build_workload(
    tree: TreeTopology, num_queries: int, *, rows: int = 200, seed: int = 7
) -> tuple[list[_Query], list, list]:
    """A deterministic mixed workload over pregenerated inputs.

    Every fourth query is a multi-join plan query (round-robin over a
    chain and a star shape — the plan cache's bread and butter); the
    rest cycle the four registered tasks over four placements (zipf,
    uniform, proportional, and a second zipf seed).  Inputs are
    pregenerated so both replays time *serving*, not data generation,
    and seeds vary per query index so hashing-based protocols exercise
    distinct randomness while staying replay-deterministic.
    """
    placements = [
        ("zipf", 0),
        ("uniform", 1),
        ("proportional", 2),
        ("zipf", 3),
    ]
    distributions = [
        random_distribution(
            tree,
            r_size=rows,
            s_size=rows * 2,
            policy=policy,
            seed=seed + offset,
        )
        for policy, offset in placements
    ]
    # One pinned catalog holding both benchmark shapes: chain relations
    # R0..R3 and a star fact/dimension set (disjoint names, one dict).
    catalog = chain_catalog(tree, num_relations=4, rows=rows, seed=seed)
    catalog.update(
        star_catalog(tree, num_satellites=2, rows=rows, seed=seed)
    )
    plan_queries = [chain_query(3), star_query(2), chain_query(4)]
    tasks = ["set-intersection", "equijoin", "groupby-aggregate", "sorting"]
    workload = []
    plan_count = 0
    task_count = 0
    for index in range(num_queries):
        if index % 4 == 3:
            workload.append(
                _Query(
                    kind="plan",
                    query_index=plan_count % len(plan_queries),
                    seed=plan_count % 5,
                )
            )
            plan_count += 1
        else:
            # Cycle tasks and placements on their own counter (the
            # global index skips every fourth slot, which would starve
            # one task forever), rotating the pairing each lap so every
            # task eventually meets every placement.
            workload.append(
                _Query(
                    kind="task",
                    task=tasks[task_count % len(tasks)],
                    distribution_index=(
                        task_count + task_count // len(tasks)
                    )
                    % len(distributions),
                    seed=index % 7,
                )
            )
            task_count += 1
    return workload, distributions, (catalog, plan_queries)


def _replay_cold(
    tree: TreeTopology,
    workload: list[_Query],
    distributions: list,
    plan_inputs,
    *,
    backend: str | None = None,
    num_workers: int | None = None,
) -> tuple[list, float]:
    """Every query through the stateless one-shot engine."""
    catalog, plan_queries = plan_inputs
    reports = []
    start = time.perf_counter()
    for query in workload:
        if query.kind == "task":
            reports.append(
                engine_run(
                    query.task,
                    tree,
                    distributions[query.distribution_index],
                    seed=query.seed,
                    backend=backend,
                    num_workers=num_workers,
                )
            )
        else:
            reports.append(
                engine_run_plan(
                    plan_queries[query.query_index],
                    tree,
                    catalog,
                    seed=query.seed,
                )
            )
    return reports, time.perf_counter() - start


def _replay_warm(
    tree: TreeTopology,
    workload: list[_Query],
    distributions: list,
    plan_inputs,
    *,
    backend: str | None = None,
    num_workers: int | None = None,
) -> tuple[list, float, EngineSession]:
    """The same queries through one long-lived session.

    Session construction (artifact prebuild, pool prestart) is timed
    *inside* the warm window: the comparison is honest end-to-end
    serving time, with the one-time warm-up amortized over the batch.
    """
    catalog, plan_queries = plan_inputs
    reports = []
    start = time.perf_counter()
    with EngineSession(
        tree, catalog=catalog, backend=backend, num_workers=num_workers
    ) as session:
        for query in workload:
            if query.kind == "task":
                reports.append(
                    session.run(
                        query.task,
                        distributions[query.distribution_index],
                        seed=query.seed,
                    )
                )
            else:
                reports.append(
                    session.run_plan(
                        plan_queries[query.query_index], seed=query.seed
                    )
                )
    return reports, time.perf_counter() - start, session


def serve_case(
    name: str,
    tree: TreeTopology,
    num_queries: int,
    *,
    rows: int = 200,
    seed: int = 7,
    backend: str | None = None,
    num_workers: int | None = None,
) -> ServeCase:
    """Replay one workload cold and warm; measure, then compare bytes."""
    workload, distributions, plan_inputs = build_workload(
        tree, num_queries, rows=rows, seed=seed
    )
    cold_reports, cold_seconds = _replay_cold(
        tree,
        workload,
        distributions,
        plan_inputs,
        backend=backend,
        num_workers=num_workers,
    )
    warm_reports, warm_seconds, session = _replay_warm(
        tree,
        workload,
        distributions,
        plan_inputs,
        backend=backend,
        num_workers=num_workers,
    )
    case = ServeCase(
        name=name,
        topology=tree.name,
        num_queries=num_queries,
        cold_seconds=cold_seconds,
        warm_seconds=warm_seconds,
    )
    case.identical = all(
        strip_report(cold) == strip_report(warm)
        for cold, warm in zip(cold_reports, warm_reports)
    )
    case.cost_elements = float(
        sum(report.cost for report in warm_reports)
    )
    case.artifact_cache = session.artifact_cache.stats()
    case.plan_cache = session.plan_cache.stats()
    return case


def run_serve_suite(*, small: bool = False, seed: int = 7) -> list[ServeCase]:
    """The committed serve grid: the big sim mix + the process oracle mix.

    Full grid: 1000 mixed queries on a 144-node fat tree (the 2x
    throughput contract), plus 16 queries on the process backend whose
    workers cross-check the simulated ledger (identity only).  Small
    grid: 120 and 8 queries on a 16-node tree for CI smoke.
    """
    if small:
        sim_tree, sim_queries, min_speedup = fat_tree(4), 120, SMALL_MIN_SPEEDUP
        process_tree, process_queries = fat_tree(3), 8
    else:
        sim_tree, sim_queries, min_speedup = fat_tree(12), 1000, FULL_MIN_SPEEDUP
        process_tree, process_queries = fat_tree(3), 16
    cases = []
    case = serve_case(
        "mixed serve workload", sim_tree, sim_queries, seed=seed
    )
    case.min_speedup = min_speedup
    cases.append(case)
    case = serve_case(
        "process-backend oracle mix",
        process_tree,
        process_queries,
        seed=seed,
        backend="process",
        num_workers=2,
    )
    case.min_speedup = IDENTITY_ONLY_MIN_SPEEDUP
    cases.append(case)
    return cases


def check_serve_cases(
    cases: list[ServeCase], *, min_speedup: float | None = None
) -> None:
    """The serve contract: byte-identical answers, bounded slowdown."""
    for case in cases:
        if not case.identical:
            raise AnalysisError(
                f"{case.name} on {case.topology}: warm session reports "
                "diverged from cold one-shot runs — session state leaked "
                "into query results"
            )
        budget = case.min_speedup if min_speedup is None else min_speedup
        if case.speedup < budget:
            raise AnalysisError(
                f"{case.name} on {case.topology}: warm/cold throughput "
                f"ratio {case.speedup:.2f}x under the {budget:.1f}x budget "
                f"(cold {case.cold_seconds:.2f}s vs warm "
                f"{case.warm_seconds:.2f}s) — is the session rebuilding "
                "artifacts or re-optimizing cached plans?"
            )


def write_serve_trajectory(cases: list[ServeCase], *, grid: str, path=None):
    """Append one run to ``BENCH_SERVE.json`` (env: ``BENCH_SERVE_JSON``)."""
    import os

    override = os.environ.get("BENCH_SERVE_JSON")
    if path is None and override:
        path = override
    if path is None:
        from repro.analysis.speed import default_trajectory_path

        path = default_trajectory_path().with_name(TRAJECTORY_FILE)
    return write_trajectory(
        cases, grid=grid, path=path, benchmark="bench_serve"
    )


def serve_table(cases: list[ServeCase]) -> tuple[list[str], list[list]]:
    """Headers and rows for the text-table renderers."""
    headers = [
        "workload",
        "topology",
        "queries",
        "cold",
        "warm",
        "cold qps",
        "warm qps",
        "speedup",
        "identical",
    ]
    rows = [
        [
            case.name,
            case.topology,
            case.num_queries,
            f"{case.cold_seconds:.2f}s",
            f"{case.warm_seconds:.2f}s",
            f"{case.cold_qps:.1f}",
            f"{case.warm_qps:.1f}",
            f"{case.speedup:.2f}x",
            "yes" if case.identical else "NO",
        ]
        for case in cases
    ]
    return headers, rows

"""Experiment harness: run protocols against instances, compare to bounds.

Execution lives in :mod:`repro.engine` (the single ``run()`` entry point
plus the ``run_many`` batch API); :mod:`repro.analysis.runner` keeps the
legacy per-task wrappers (``run_intersection``, ``run_cartesian``,
``run_sorting``), each returning a :class:`repro.report.RunReport`
with cost, lower bound, ratio, and round count.
:mod:`repro.analysis.suites` defines the standard topology/placement
grid the Table 1 benchmark sweeps, and :func:`suites.standard_plans`
exposes that grid as engine plans.
"""

from repro.report import RunReport, aggregate, summarize_reports
from repro.analysis.runner import run_cartesian, run_intersection, run_sorting
from repro.analysis.suites import (
    placement_policies,
    standard_plans,
    standard_topologies,
)
from repro.analysis.sweeps import Sweep, ascii_chart

__all__ = [
    "RunReport",
    "aggregate",
    "summarize_reports",
    "run_intersection",
    "run_cartesian",
    "run_sorting",
    "standard_topologies",
    "standard_plans",
    "placement_policies",
    "Sweep",
    "ascii_chart",
]

"""Experiment harness: run protocols against instances, compare to bounds.

:mod:`repro.analysis.runner` provides the one-call entry points used by
the examples and benchmarks (``run_intersection``, ``run_cartesian``,
``run_sorting``), each returning a :class:`repro.analysis.report.RunReport`
with cost, lower bound, ratio, and round count.
:mod:`repro.analysis.suites` defines the standard topology/placement
grid the Table 1 benchmark sweeps.
"""

from repro.analysis.report import RunReport, summarize_reports
from repro.analysis.runner import run_cartesian, run_intersection, run_sorting
from repro.analysis.suites import placement_policies, standard_topologies
from repro.analysis.sweeps import Sweep, ascii_chart

__all__ = [
    "RunReport",
    "summarize_reports",
    "run_intersection",
    "run_cartesian",
    "run_sorting",
    "standard_topologies",
    "placement_policies",
    "Sweep",
    "ascii_chart",
]

"""Scaling benchmark of the process substrate (workers × workload grid).

``bench speed`` answers "is the bulk exchange fast?"; this harness
answers the next question: *does adding worker processes make a round
faster, without changing a single byte of its outcome?*  Every grid
cell drives one prepared hot-path round — the uniform-hash relational
shuffle and the connected-components superstep shuffle from
:mod:`repro.analysis.speed` — through
:class:`~repro.parallel.backend.ParallelCluster` at 1, 2, 4 and 8
worker ranks, and for each cell:

* times the round (best of ``repeats``, pool pre-warmed so process
  startup is excluded — that cost is amortized across a protocol's
  rounds in real use), and
* replays the identical round against the simulated ledger
  (``oracle=True``) asserting byte-identical storage, received counts
  and per-edge loads.

Byte-identity is asserted on *every* cell, always.  Speedup assertions
are honest about the machine: a grid run on fewer cores than worker
ranks cannot speed up, so :func:`check_scale_cases` only enforces the
monotone-speedup contract on cells whose rank count the CPU can
actually host (``os.cpu_count()``), and the trajectory entry records
the core count so historical rows are interpretable.

Results accumulate in ``BENCH_SCALE.json`` next to ``BENCH_SPEED.json``.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.speed import (
    fat_tree,
    prepare_components,
    prepare_uniform_hash,
    round_phases,
    write_trajectory,
)
from repro.errors import AnalysisError
from repro.obs.tracer import tracing
from repro.parallel.backend import ParallelCluster
from repro.parallel.oracle import OracleMismatch
from repro.parallel.pool import get_pool
from repro.topology.tree import TreeTopology

#: Default trajectory file name; lives at the repo root by convention.
TRAJECTORY_FILE = "BENCH_SCALE.json"

#: Multi-worker cells must beat the 1-worker baseline by this factor
#: (only enforced where the CPU actually has the cores; see
#: :func:`check_scale_cases`).
MIN_PARALLEL_SPEEDUP = 1.2

#: Tolerated regression when going from ``k`` to ``2k`` workers before
#: the monotonicity check fails (scheduling noise allowance).
MONOTONE_TOLERANCE = 0.85


@dataclass
class ScaleCase:
    """One grid cell: a workload on a topology at one worker count."""

    name: str
    topology: str
    num_compute_nodes: int
    num_elements: int
    num_workers: int
    seconds: float = 0.0
    #: The 1-worker time of the same (workload, topology) pair; filled
    #: in by :func:`run_scale_suite` once the baseline cell has run.
    baseline_seconds: float = 0.0
    identical: bool = False
    mismatch: str = ""
    cost_elements: float = 0.0
    #: Tracer-derived group/deliver/charge split of one traced round at
    #: this worker count (master-side attribution; see bench speed).
    phases: dict = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        """Speedup over the 1-worker cell of the same workload."""
        if self.seconds <= 0:
            return float("inf")
        return self.baseline_seconds / self.seconds

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "topology": self.topology,
            "nodes": self.num_compute_nodes,
            "elements": self.num_elements,
            "workers": self.num_workers,
            "seconds": round(self.seconds, 6),
            "baseline_s": round(self.baseline_seconds, 6),
            "speedup": round(self.speedup, 2),
            "cost_elements": self.cost_elements,
            "identical": self.identical,
            "phases": dict(self.phases),
        }


def _run_parallel_round(
    tree: TreeTopology, prepared: list, pool, *, oracle: bool
) -> tuple[float, ParallelCluster]:
    """One prepared round on the process substrate; returns (seconds, cluster)."""
    cluster = ParallelCluster(tree, pool=pool, oracle=oracle)
    start = time.perf_counter()
    with cluster.round() as ctx:
        for node, targets, payload in prepared:
            ctx.exchange(node, targets, payload, tag="recv")
    return time.perf_counter() - start, cluster


def time_scale_case(
    name: str,
    tree: TreeTopology,
    prepared: list,
    num_workers: int,
    *,
    seed: int = 7,
    repeats: int = 3,
) -> ScaleCase:
    """Best-of-``repeats`` round time at ``num_workers`` ranks + identity.

    Timing runs skip the oracle (its shadow replay would serialize the
    round we are timing); one extra oracle run then proves the cell
    byte-identical to the simulated ledger.
    """
    case = ScaleCase(
        name=name,
        topology=tree.name,
        num_compute_nodes=tree.num_compute_nodes,
        num_elements=int(sum(len(entry[-1]) for entry in prepared)),
        num_workers=num_workers,
    )
    pool = get_pool(num_workers, seed=seed)
    best = float("inf")
    cluster = None
    for _ in range(repeats):
        elapsed, cluster = _run_parallel_round(
            tree, prepared, pool, oracle=False
        )
        best = min(best, elapsed)
        cluster.close()
    case.seconds = best
    # Attribute one traced round (oracle off — the shadow replay would
    # distort the phase timings) before the byte-identity run.
    with tracing() as tracer:
        _, cluster = _run_parallel_round(tree, prepared, pool, oracle=False)
        cluster.close()
    case.phases = round_phases(tracer)
    try:
        _, cluster = _run_parallel_round(tree, prepared, pool, oracle=True)
        cluster.verify_oracle()
        case.cost_elements = cluster.ledger.total_cost()
        case.identical = True
    except OracleMismatch as error:
        case.mismatch = str(error)
    finally:
        if cluster is not None:
            cluster.close()
    return case


def run_scale_suite(
    *,
    small: bool = False,
    seed: int = 7,
    repeats: int = 3,
    workers_grid: tuple | None = None,
) -> list[ScaleCase]:
    """The scaling grid: workloads × fat trees × worker counts.

    The full grid is the acceptance configuration — 64- and 256-node
    fat trees, ~10^6-element shuffles, 1/2/4/8 workers; ``small=True``
    is the CI smoke shape (64 nodes, 200k elements, 1 and 2 workers).
    """
    if small:
        grids = [(8,)]  # 64 nodes
        num_elements = 200_000
        workers = workers_grid or (1, 2)
    else:
        grids = [(8,), (16,)]  # 64 and 256 nodes
        num_elements = 1_000_000
        workers = workers_grid or (1, 2, 4, 8)
    workloads = [prepare_uniform_hash, prepare_components]
    cases = []
    for (num_racks,) in grids:
        tree = fat_tree(num_racks)
        for prepare in workloads:
            prepared, label = prepare(tree, num_elements, seed)
            baseline = None
            for num_workers in workers:
                case = time_scale_case(
                    label,
                    tree,
                    prepared,
                    num_workers,
                    seed=seed,
                    repeats=repeats,
                )
                if baseline is None:
                    baseline = case.seconds
                case.baseline_seconds = baseline
                cases.append(case)
    return cases


def check_scale_cases(
    cases: list[ScaleCase],
    *,
    require_speedup: bool | None = None,
    available_cpus: int | None = None,
) -> None:
    """The harness's contract: identity always, speedup where possible.

    Byte-identity against the simulated ledger is asserted on every
    cell unconditionally — that is the substrate's correctness claim.
    The performance claim (multi-worker cells beat the 1-worker
    baseline, and more workers never regress past
    :data:`MONOTONE_TOLERANCE`) is physics-bound: it is only enforced
    on cells whose rank count fits in ``available_cpus`` (default
    ``os.cpu_count()``).  ``require_speedup`` forces the check on
    (tests) or off (cross-machine reruns) regardless of core count.
    """
    for case in cases:
        if not case.identical:
            raise AnalysisError(
                f"{case.name} on {case.topology} at {case.num_workers} "
                "worker(s): process backend diverged from the simulated "
                f"ledger: {case.mismatch or 'oracle check did not run'}"
            )
    cpus = available_cpus if available_cpus is not None else os.cpu_count()
    by_workload: dict[tuple, list[ScaleCase]] = {}
    for case in cases:
        by_workload.setdefault((case.name, case.topology), []).append(case)
    for (name, topology), group in by_workload.items():
        group = sorted(group, key=lambda c: c.num_workers)
        previous = None
        for case in group:
            checkable = (
                require_speedup
                if require_speedup is not None
                else cpus is not None and case.num_workers <= cpus
            )
            if not checkable or case.num_workers == 1:
                previous = case
                continue
            if case.speedup < MIN_PARALLEL_SPEEDUP:
                raise AnalysisError(
                    f"{name} on {topology}: {case.num_workers} workers "
                    f"ran at {case.speedup:.2f}x the 1-worker time, under "
                    f"the {MIN_PARALLEL_SPEEDUP:.1f}x budget "
                    f"({case.seconds:.3f}s vs {case.baseline_seconds:.3f}s)"
                )
            if (
                previous is not None
                and previous.num_workers > 1
                and case.seconds > previous.seconds / MONOTONE_TOLERANCE
            ):
                raise AnalysisError(
                    f"{name} on {topology}: {case.num_workers} workers "
                    f"({case.seconds:.3f}s) regressed past "
                    f"{previous.num_workers} workers "
                    f"({previous.seconds:.3f}s)"
                )
            previous = case


def default_trajectory_path() -> Path:
    """``BENCH_SCALE.json`` at the repo root (env ``BENCH_SCALE_JSON``)."""
    override = os.environ.get("BENCH_SCALE_JSON")
    if override:
        return Path(override)
    root = Path(__file__).resolve().parents[3]
    if (root / "pyproject.toml").exists():
        return root / TRAJECTORY_FILE
    return Path(TRAJECTORY_FILE)  # pragma: no cover - installed usage


def write_scale_trajectory(
    cases: list[ScaleCase],
    *,
    grid: str,
    path: str | os.PathLike | None = None,
) -> Path:
    """Append one scaling-run entry to ``BENCH_SCALE.json``."""
    return write_trajectory(
        cases,
        grid=grid,
        path=path if path is not None else default_trajectory_path(),
        benchmark="bench_scale",
        extra={"cpu_count": os.cpu_count()},
    )


def scale_table(cases: list[ScaleCase]) -> tuple[list[str], list[list]]:
    """Headers and rows for the text-table renderers."""
    headers = [
        "shuffle",
        "topology",
        "nodes",
        "elements",
        "workers",
        "time",
        "speedup",
        "identical",
    ]
    rows = [
        [
            case.name,
            case.topology,
            case.num_compute_nodes,
            case.num_elements,
            case.num_workers,
            f"{case.seconds * 1000:.1f}ms",
            f"{case.speedup:.2f}x",
            "yes" if case.identical else "NO",
        ]
        for case in cases
    ]
    return headers, rows

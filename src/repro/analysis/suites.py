"""Standard topology/placement suites the benchmarks sweep.

The Table 1 claims are "for every symmetric tree and every initial
placement"; the suite approximates that universal quantifier with the
topology families the paper names (star, two-level tree, fat tree —
Section 2.1 — plus a caterpillar for diameter stress and seeded random
trees) crossed with the placement regimes the analyses distinguish
(uniform, Zipf-skewed, one dominant node, bandwidth-proportional).
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.data.distribution import Distribution
from repro.data.generators import (
    random_distribution,
    random_graph_distribution,
    random_tuple_distribution,
)
from repro.engine import RunPlan
from repro.topology.builders import (
    caterpillar,
    fat_tree,
    random_tree,
    star,
    two_level,
)
from repro.topology.normalize import normalize
from repro.topology.tree import TreeTopology


def standard_topologies(*, include_random: bool = True) -> list[TreeTopology]:
    """The benchmark topology family (all symmetric, finite bandwidths)."""
    topologies = [
        star(8, name="star-uniform(8)"),
        star(8, bandwidth=[1, 1, 2, 2, 4, 4, 8, 8], name="star-hetero(8)"),
        two_level([4, 4], uplink_bandwidth=2.0, name="two-level(4,4)"),
        two_level(
            [2, 4, 6],
            leaf_bandwidth=[4.0, 2.0, 1.0],
            uplink_bandwidth=[2.0, 2.0, 2.0],
            name="two-level-skewed(2,4,6)",
        ),
        fat_tree(2, 3, leaf_bandwidth=1.0, level_scale=2.0),
        caterpillar(4, 2, spine_bandwidth=2.0),
    ]
    if include_random:
        for seed in (11, 23):
            topologies.append(
                normalize(
                    random_tree(12, seed=seed), virtual_bandwidth="sum"
                ).tree
            )
    return topologies


def placement_policies() -> list[str]:
    """The placement regimes crossed with every topology."""
    return ["uniform", "zipf", "single-heavy", "proportional"]


DEFAULT_SUITE_TASKS = ("set-intersection", "cartesian-product", "sorting")

# The multi-input relational tasks need keyed-tuple workloads, not the
# set pairs the paper's three tasks consume; standard_plans builds the
# matching instance per task so the whole catalog sweeps on one grid.
TUPLE_SUITE_TASKS = ("equijoin", "groupby-aggregate")

# The graph tasks run on a placed edge list (tag "E"); standard_plans
# generates one G(n, m) instance per grid cell, sized off the same
# r_size knob the relational instances use.
GRAPH_SUITE_TASKS = ("connected-components", "triangle-count")

ALL_SUITE_TASKS = DEFAULT_SUITE_TASKS + TUPLE_SUITE_TASKS + GRAPH_SUITE_TASKS


def _instance_kind(task: str) -> str:
    if task in TUPLE_SUITE_TASKS:
        return "tuple"
    if task in GRAPH_SUITE_TASKS:
        return "graph"
    return "set"


def standard_plans(
    *,
    r_size: int,
    s_size: int,
    seed: int = 0,
    run_seed: int | None = None,
    tasks: Iterable[str] = DEFAULT_SUITE_TASKS,
    include_random: bool = True,
) -> list[RunPlan]:
    """The full suite as engine plans: (topology × placement × task).

    ``seed`` controls instance generation (which data lands where);
    ``run_seed`` controls protocol randomness (hash functions,
    splitter samples) and defaults to ``seed``.  Set-valued tasks run
    on a shared set-pair instance per grid cell; the relational tasks
    (``equijoin``, ``groupby-aggregate``) get a keyed-tuple instance
    and the graph tasks (``connected-components``, ``triangle-count``)
    a placed G(n, m) edge list on the same topology and placement, so
    every registered task — not just the paper's three — sweeps the
    same grid.  Feed the result to :func:`repro.engine.run_many` to
    evaluate the grid concurrently; report order follows the grid
    order.
    """
    task_list = list(tasks)
    kinds = {_instance_kind(t) for t in task_list}
    plans = []
    for tree in standard_topologies(include_random=include_random):
        for policy in placement_policies():
            instances = {}
            if "set" in kinds:
                instances["set"] = random_distribution(
                    tree,
                    r_size=r_size,
                    s_size=s_size,
                    policy=policy,
                    seed=seed,
                )
            if "tuple" in kinds:
                instances["tuple"] = random_tuple_distribution(
                    tree,
                    r_size=r_size,
                    s_size=s_size,
                    policy=policy,
                    seed=seed,
                )
            if "graph" in kinds:
                instances["graph"] = random_graph_distribution(
                    tree,
                    num_edges=r_size,
                    policy=policy,
                    seed=seed,
                )
            for task in task_list:
                plans.append(
                    RunPlan(
                        task=task,
                        tree=tree,
                        distribution=instances[_instance_kind(task)],
                        seed=seed if run_seed is None else run_seed,
                        placement=policy,
                    )
                )
    return plans


def instance_grid(
    *,
    r_size: int,
    s_size: int,
    seed: int = 0,
    include_random: bool = True,
    tuples: bool = False,
) -> Iterable[tuple[TreeTopology, str, Distribution]]:
    """Yield ``(topology, policy, distribution)`` across the full suite.

    ``tuples=True`` yields keyed-tuple instances (for the relational
    tasks) instead of set pairs.
    """
    generator = random_tuple_distribution if tuples else random_distribution
    for tree in standard_topologies(include_random=include_random):
        for policy in placement_policies():
            yield tree, policy, generator(
                tree,
                r_size=r_size,
                s_size=s_size,
                policy=policy,
                seed=seed,
            )

"""Standard topology/placement suites the benchmarks sweep.

The Table 1 claims are "for every symmetric tree and every initial
placement"; the suite approximates that universal quantifier with the
topology families the paper names (star, two-level tree, fat tree —
Section 2.1 — plus a caterpillar for diameter stress and seeded random
trees) crossed with the placement regimes the analyses distinguish
(uniform, Zipf-skewed, one dominant node, bandwidth-proportional).
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.data.distribution import Distribution
from repro.data.generators import random_distribution
from repro.engine import RunPlan
from repro.topology.builders import (
    caterpillar,
    fat_tree,
    random_tree,
    star,
    two_level,
)
from repro.topology.normalize import normalize
from repro.topology.tree import TreeTopology


def standard_topologies(*, include_random: bool = True) -> list[TreeTopology]:
    """The benchmark topology family (all symmetric, finite bandwidths)."""
    topologies = [
        star(8, name="star-uniform(8)"),
        star(8, bandwidth=[1, 1, 2, 2, 4, 4, 8, 8], name="star-hetero(8)"),
        two_level([4, 4], uplink_bandwidth=2.0, name="two-level(4,4)"),
        two_level(
            [2, 4, 6],
            leaf_bandwidth=[4.0, 2.0, 1.0],
            uplink_bandwidth=[2.0, 2.0, 2.0],
            name="two-level-skewed(2,4,6)",
        ),
        fat_tree(2, 3, leaf_bandwidth=1.0, level_scale=2.0),
        caterpillar(4, 2, spine_bandwidth=2.0),
    ]
    if include_random:
        for seed in (11, 23):
            topologies.append(
                normalize(
                    random_tree(12, seed=seed), virtual_bandwidth="sum"
                ).tree
            )
    return topologies


def placement_policies() -> list[str]:
    """The placement regimes crossed with every topology."""
    return ["uniform", "zipf", "single-heavy", "proportional"]


DEFAULT_SUITE_TASKS = ("set-intersection", "cartesian-product", "sorting")


def standard_plans(
    *,
    r_size: int,
    s_size: int,
    seed: int = 0,
    run_seed: int | None = None,
    tasks: Iterable[str] = DEFAULT_SUITE_TASKS,
    include_random: bool = True,
) -> list[RunPlan]:
    """The full suite as engine plans: (topology × placement × task).

    ``seed`` controls instance generation (which data lands where);
    ``run_seed`` controls protocol randomness (hash functions,
    splitter samples) and defaults to ``seed``.  Feed the result to
    :func:`repro.engine.run_many` to evaluate the Table 1 grid
    concurrently; report order follows the grid order.
    """
    return [
        RunPlan(
            task=task,
            tree=tree,
            distribution=dist,
            seed=seed if run_seed is None else run_seed,
            placement=policy,
        )
        for tree, policy, dist in instance_grid(
            r_size=r_size,
            s_size=s_size,
            seed=seed,
            include_random=include_random,
        )
        for task in tasks
    ]


def instance_grid(
    *,
    r_size: int,
    s_size: int,
    seed: int = 0,
    include_random: bool = True,
) -> Iterable[tuple[TreeTopology, str, Distribution]]:
    """Yield ``(topology, policy, distribution)`` across the full suite."""
    for tree in standard_topologies(include_random=include_random):
        for policy in placement_policies():
            yield tree, policy, random_distribution(
                tree,
                r_size=r_size,
                s_size=s_size,
                policy=policy,
                seed=seed,
            )

"""Compatibility shim: the report types moved to :mod:`repro.report`.

The engine (:mod:`repro.engine`) returns :class:`repro.report.RunReport`
and cannot depend on the analysis package (which depends on the engine),
so the report module now lives at the package top level.  Importing from
``repro.analysis.report`` keeps working.
"""

from repro.report import (
    REPORT_HEADERS,
    RunReport,
    aggregate,
    summarize_reports,
)

__all__ = ["RunReport", "REPORT_HEADERS", "summarize_reports", "aggregate"]

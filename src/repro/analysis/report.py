"""Run reports: one row per (task, protocol, topology, placement) cell."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.errors import AnalysisError
from repro.util.text import render_table


@dataclass(frozen=True)
class RunReport:
    """Outcome of one protocol execution compared against its lower bound."""

    task: str
    protocol: str
    topology: str
    placement: str
    input_size: int
    rounds: int
    cost: float
    lower_bound: float
    meta: dict = field(default_factory=dict)

    @property
    def ratio(self) -> float:
        """``cost / lower_bound`` (the optimality ratio of Table 1)."""
        if self.lower_bound > 0:
            return self.cost / self.lower_bound
        return 0.0 if self.cost == 0 else float("inf")

    def as_row(self) -> list:
        return [
            self.task,
            self.protocol,
            self.topology,
            self.placement,
            self.input_size,
            self.rounds,
            self.cost,
            self.lower_bound,
            self.ratio,
        ]


REPORT_HEADERS = [
    "task",
    "protocol",
    "topology",
    "placement",
    "N",
    "rounds",
    "cost",
    "lower bound",
    "ratio",
]


def summarize_reports(
    reports: Sequence[RunReport], *, title: str | None = None
) -> str:
    """Render reports as a text table, one row per run."""
    if not reports:
        raise AnalysisError("no reports to summarize")
    return render_table(
        REPORT_HEADERS, [r.as_row() for r in reports], title=title
    )


def aggregate(reports: Iterable[RunReport]) -> dict:
    """Max rounds and max/mean ratio per task — the Table 1 claims."""
    by_task: dict[str, list[RunReport]] = {}
    for report in reports:
        by_task.setdefault(report.task, []).append(report)
    summary: dict = {}
    for task, rows in sorted(by_task.items()):
        finite = [r.ratio for r in rows if r.ratio != float("inf")]
        summary[task] = {
            "runs": len(rows),
            "max_rounds": max(r.rounds for r in rows),
            "max_ratio": max(finite) if finite else float("inf"),
            "mean_ratio": sum(finite) / len(finite) if finite else float("inf"),
        }
    return summary

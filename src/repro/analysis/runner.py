"""Legacy per-task runners, kept as thin wrappers over the engine.

The original API exposed one ``run_*`` function per task, each with its
own hard-coded dispatch table.  Dispatch now lives in
:mod:`repro.registry` and execution in :mod:`repro.engine`; these
wrappers survive so existing callers (tests, benchmarks, examples,
downstream notebooks) keep working unchanged.  New code should call
:func:`repro.engine.run` directly.

The ``*_PROTOCOLS`` mappings are snapshots of the registry taken at
import time — views for the old ``sorted(INTERSECTION_PROTOCOLS)``
idiom, not dispatch tables.  Query :func:`repro.registry.protocols_for`
for live metadata.
"""

from __future__ import annotations

from repro.report import RunReport
from repro.data.distribution import Distribution
from repro.engine import run
from repro.registry import protocol_table
from repro.topology.tree import TreeTopology

INTERSECTION_PROTOCOLS = protocol_table("set-intersection")
CARTESIAN_PROTOCOLS = protocol_table("cartesian-product")
SORTING_PROTOCOLS = protocol_table("sorting")


def run_intersection(
    tree: TreeTopology,
    distribution: Distribution,
    *,
    protocol: str = "tree",
    seed: int = 0,
    placement: str = "custom",
    verify: bool = True,
) -> RunReport:
    """Run a set-intersection protocol; verify the output equals ``R ∩ S``."""
    return run(
        "set-intersection",
        tree,
        distribution,
        protocol=protocol,
        seed=seed,
        placement=placement,
        verify=verify,
    )


def run_cartesian(
    tree: TreeTopology,
    distribution: Distribution,
    *,
    protocol: str = "tree",
    placement: str = "custom",
    verify: bool = True,
) -> RunReport:
    """Run a cartesian-product protocol; verify all pairs are enumerated."""
    return run(
        "cartesian-product",
        tree,
        distribution,
        protocol=protocol,
        placement=placement,
        verify=verify,
    )


def run_sorting(
    tree: TreeTopology,
    distribution: Distribution,
    *,
    protocol: str = "wts",
    seed: int = 0,
    placement: str = "custom",
    verify: bool = True,
) -> RunReport:
    """Run a sorting protocol; verify the output is a valid sorted layout."""
    return run(
        "sorting",
        tree,
        distribution,
        protocol=protocol,
        seed=seed,
        placement=placement,
        verify=verify,
    )

"""One-call experiment runners for the three tasks.

Each runner executes a named protocol on a (topology, distribution)
instance, computes the matching lower bound, verifies task correctness
(the reproduction never reports cost for a wrong answer), and returns a
:class:`~repro.analysis.report.RunReport`.
"""

from __future__ import annotations

from typing import Callable, Hashable

import numpy as np

from repro.analysis.report import RunReport
from repro.baselines.gather import (
    gather_cartesian_product,
    gather_intersect,
    gather_sort,
)
from repro.baselines.hypercube import classic_hypercube_cartesian_product
from repro.baselines.uniform_hash import uniform_hash_intersect
from repro.core.cartesian import (
    cartesian_lower_bound,
    star_cartesian_product,
    tree_cartesian_product,
)
from repro.core.intersection import (
    intersection_lower_bound,
    star_intersect,
    tree_intersect,
)
from repro.core.sorting import (
    sorting_lower_bound,
    terasort,
    verify_sorted_output,
    weighted_terasort,
)
from repro.data.distribution import Distribution
from repro.errors import AnalysisError, ProtocolError
from repro.topology.tree import TreeTopology

INTERSECTION_PROTOCOLS: dict[str, Callable] = {
    "tree": tree_intersect,
    "star": star_intersect,
    "uniform-hash": uniform_hash_intersect,
    "gather": gather_intersect,
}

CARTESIAN_PROTOCOLS: dict[str, Callable] = {
    "tree": tree_cartesian_product,
    "star": star_cartesian_product,
    "classic-hypercube": classic_hypercube_cartesian_product,
    "gather": gather_cartesian_product,
}

SORTING_PROTOCOLS: dict[str, Callable] = {
    "wts": weighted_terasort,
    "terasort": terasort,
    "gather": gather_sort,
}


def _resolve(registry: dict[str, Callable], protocol: str) -> Callable:
    try:
        return registry[protocol]
    except KeyError:
        raise AnalysisError(
            f"unknown protocol {protocol!r}; choose from {sorted(registry)}"
        ) from None


def run_intersection(
    tree: TreeTopology,
    distribution: Distribution,
    *,
    protocol: str = "tree",
    seed: int = 0,
    placement: str = "custom",
    verify: bool = True,
) -> RunReport:
    """Run a set-intersection protocol; verify the output equals ``R ∩ S``."""
    runner = _resolve(INTERSECTION_PROTOCOLS, protocol)
    kwargs = {"seed": seed} if protocol in ("tree", "star", "uniform-hash") else {}
    result = runner(tree, distribution, **kwargs)
    if verify:
        expected = np.intersect1d(
            distribution.relation("R"), distribution.relation("S")
        )
        found = (
            np.unique(np.concatenate(list(result.outputs.values())))
            if result.outputs
            else np.empty(0, np.int64)
        )
        if len(found) != len(expected) or np.any(found != expected):
            raise ProtocolError(
                f"{result.protocol} produced a wrong intersection "
                f"({len(found)} vs {len(expected)} elements)"
            )
    bound = intersection_lower_bound(tree, distribution)
    return RunReport(
        task="set-intersection",
        protocol=result.protocol,
        topology=tree.name,
        placement=placement,
        input_size=distribution.total(),
        rounds=result.rounds,
        cost=result.cost,
        lower_bound=bound.value,
        meta={"result": result.meta, "bound": bound.description},
    )


def run_cartesian(
    tree: TreeTopology,
    distribution: Distribution,
    *,
    protocol: str = "tree",
    placement: str = "custom",
    verify: bool = True,
) -> RunReport:
    """Run a cartesian-product protocol; verify all pairs are enumerated."""
    runner = _resolve(CARTESIAN_PROTOCOLS, protocol)
    result = runner(tree, distribution)
    if verify:
        expected = distribution.total("R") * distribution.total("S")
        produced = sum(o["num_pairs"] for o in result.outputs.values())
        if produced != expected:
            raise ProtocolError(
                f"{result.protocol} enumerated {produced} of {expected} pairs"
            )
    bound = cartesian_lower_bound(tree, distribution)
    return RunReport(
        task="cartesian-product",
        protocol=result.protocol,
        topology=tree.name,
        placement=placement,
        input_size=distribution.total(),
        rounds=result.rounds,
        cost=result.cost,
        lower_bound=bound.value,
        meta={"result": result.meta, "bound": bound.description},
    )


def run_sorting(
    tree: TreeTopology,
    distribution: Distribution,
    *,
    protocol: str = "wts",
    seed: int = 0,
    placement: str = "custom",
    verify: bool = True,
) -> RunReport:
    """Run a sorting protocol; verify the output is a valid sorted layout."""
    runner = _resolve(SORTING_PROTOCOLS, protocol)
    kwargs = {"seed": seed} if protocol in ("wts", "terasort") else {}
    result = runner(tree, distribution, **kwargs)
    if verify:
        verify_sorted_output(
            tree,
            result.outputs,
            result.meta["order"],
            distribution.relation("R"),
        )
    bound = sorting_lower_bound(tree, distribution)
    return RunReport(
        task="sorting",
        protocol=result.protocol,
        topology=tree.name,
        placement=placement,
        input_size=distribution.total(),
        rounds=result.rounds,
        cost=result.cost,
        lower_bound=bound.value,
        meta={"result": result.meta, "bound": bound.description},
    )

"""Parametric sweeps and plain-text charts.

The paper's claims are about *trends* — cost tracking a bound across
input sizes, skew levels, bandwidth spreads.  A :class:`Sweep` runs a
runner over a parameter grid and collects named series;
:func:`ascii_chart` renders them as a character plot so examples and
logs can show the trend without a plotting dependency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.engine import run
from repro.errors import AnalysisError

_MARKERS = "ox+*#@%&"


@dataclass
class Sweep:
    """Collects ``(x, y)`` points into named series."""

    name: str = "sweep"
    series: dict = field(default_factory=dict)

    def add(self, series_name: str, x: float, y: float) -> None:
        self.series.setdefault(series_name, []).append((float(x), float(y)))

    def run(
        self,
        xs: Sequence[float],
        runners: Mapping[str, Callable[[float], float]],
    ) -> "Sweep":
        """Evaluate each named runner at each x; returns self."""
        for x in xs:
            for series_name, runner in runners.items():
                self.add(series_name, x, runner(x))
        return self

    def run_protocols(
        self,
        xs: Sequence[float],
        make_instance: Callable,
        *,
        task: str,
        protocols: Sequence[str],
        metric: str = "cost",
        seed: int = 0,
        include_bound: bool = True,
        opts: Mapping | None = None,
    ) -> "Sweep":
        """Sweep registered protocols over a parameter via the engine.

        ``make_instance(x)`` builds the ``(tree, distribution)`` pair for
        each grid point; every protocol contributes one series of the
        report attribute named by ``metric``, plus a shared
        ``lower-bound`` series unless disabled.  ``opts`` are forwarded
        to every run unchanged — the hook the multi-input tasks need
        (``payload_bits=...`` for the relational operators, ``op=...``
        for aggregation).  Returns self.
        """
        extra = dict(opts or {})
        for x in xs:
            tree, distribution = make_instance(x)
            bound = None
            for protocol in protocols:
                report = run(
                    task,
                    tree,
                    distribution,
                    protocol=protocol,
                    seed=seed,
                    **extra,
                )
                self.add(protocol, x, getattr(report, metric))
                bound = report.lower_bound
            if include_bound and metric == "cost" and bound is not None:
                self.add("lower-bound", x, bound)
        return self

    def ratios(self, numerator: str, denominator: str) -> list[float]:
        """Pointwise ratio of two series sharing the same x grid."""
        top = dict(self.series.get(numerator, []))
        bottom = dict(self.series.get(denominator, []))
        if set(top) != set(bottom):
            raise AnalysisError(
                f"series {numerator!r} and {denominator!r} have different x grids"
            )
        return [
            top[x] / bottom[x] if bottom[x] else float("inf")
            for x in sorted(top)
        ]

    def chart(self, **kwargs) -> str:
        return ascii_chart(self.series, title=self.name, **kwargs)


def _scale(value: float, lo: float, hi: float, steps: int, log: bool) -> int:
    if log:
        value, lo, hi = math.log10(value), math.log10(lo), math.log10(hi)
    if hi == lo:
        return 0
    position = (value - lo) / (hi - lo)
    return min(steps - 1, max(0, round(position * (steps - 1))))


def ascii_chart(
    series: Mapping[str, Sequence[tuple[float, float]]],
    *,
    title: str | None = None,
    width: int = 64,
    height: int = 16,
    log_x: bool = False,
    log_y: bool = False,
) -> str:
    """Render named point series on a character canvas with a legend.

    Each series gets a marker; later series overwrite earlier ones on
    collisions.  Log scales require strictly positive coordinates.
    """
    points = [
        (x, y) for values in series.values() for (x, y) in values
    ]
    if not points:
        raise AnalysisError("nothing to plot")
    if (log_x and any(x <= 0 for x, _ in points)) or (
        log_y and any(y <= 0 for _, y in points)
    ):
        raise AnalysisError("log scales need positive coordinates")
    x_lo, x_hi = min(x for x, _ in points), max(x for x, _ in points)
    y_lo, y_hi = min(y for _, y in points), max(y for _, y in points)

    canvas = [[" "] * width for _ in range(height)]
    legend = []
    for index, (name, values) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        legend.append(f"{marker} {name}")
        for x, y in values:
            column = _scale(x, x_lo, x_hi, width, log_x)
            row = height - 1 - _scale(y, y_lo, y_hi, height, log_y)
            canvas[row][column] = marker

    y_labels = [f"{y_hi:.3g}", f"{y_lo:.3g}"]
    gutter = max(len(label) for label in y_labels) + 1
    lines = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(canvas):
        if row_index == 0:
            prefix = y_labels[0].rjust(gutter)
        elif row_index == height - 1:
            prefix = y_labels[1].rjust(gutter)
        else:
            prefix = " " * gutter
        lines.append(f"{prefix}|{''.join(row)}")
    lines.append(" " * gutter + "+" + "-" * width)
    x_left = f"{x_lo:.3g}"
    x_right = f"{x_hi:.3g}"
    padding = width - len(x_left) - len(x_right)
    lines.append(
        " " * (gutter + 1) + x_left + " " * max(1, padding) + x_right
    )
    lines.append("  ".join(legend))
    return "\n".join(lines)

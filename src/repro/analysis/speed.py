"""Wall-clock benchmark of the bulk-exchange substrate (A/B harness).

The simulator's hot paths are the hashed shuffle — every element of a
relation (or every hash-to-min message of a graph superstep) routed to
a hashed destination through one communication round — and the
replicated shuffle, where every element is multicast to a Steiner
destination set (the intersection protocols' R-replication).  This
module times exactly those rounds — target assignment and local data
are precomputed, because they are identical work in both
implementations — under the two exchange modes the cluster supports:

* ``bulk`` — the production path: one :meth:`RoundContext.exchange` /
  :meth:`RoundContext.exchange_multicast` call per node, grouped with
  one stable argsort per round and charged through the vectorized
  tree-flow / Steiner-flow accountants;
* ``per-send`` — the legacy path: one ``send`` scan per destination
  (one ``multicast`` per destination-set group), with per-transfer
  accounting.

Both modes must produce *identical* per-edge ledger loads, per-node
received counts, and per-node storage contents; the harness verifies
this on every case before reporting the speedup.  Results accumulate in
a ``BENCH_*.json`` perf-trajectory file (one run entry per invocation)
so future PRs can see whether the hot path regressed.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.data.generators import random_distribution, random_graph_distribution
from repro.errors import AnalysisError
from repro.graphs.model import VERTEX_BITS, decode_edges
from repro.obs.tracer import tracing
from repro.queries.tuples import encode_tuples
from repro.sim.cluster import Cluster, use_exchange_mode
from repro.topology.builders import two_level
from repro.topology.tree import TreeTopology
from repro.util.hashing import WeightedNodeHasher
from repro.util.seeding import derive_seed

#: Default trajectory file name; lives at the repo root by convention.
TRAJECTORY_FILE = "BENCH_SPEED.json"

#: Minimum speedups the harness asserts.  Full grid: the headline >=3x
#: claim for unicast shuffles and >=4x for the replication-heavy
#: multicast workload (one vectorized gather per round since the
#: columnar data plane replaced the per-(group, member) append loop).
#: The end-to-end superstep case runs a whole protocol — planning,
#: hashing and convergence logic are mode-independent work that dilutes
#: the round-level speedup, hence the lower budget (measured ~1.7x in
#: isolation, budgeted with headroom for suite-order cache effects).  Small grid (CI
#: smoke): a conservative timing budget — a regression to per-element
#: Python loops lands far below 1x, so this still fails CI without
#: being flaky on noisy runners.
FULL_MIN_SPEEDUP = 3.0
REPLICATION_FULL_MIN_SPEEDUP = 4.0
END_TO_END_FULL_MIN_SPEEDUP = 1.3
SMALL_MIN_SPEEDUP = 1.3
END_TO_END_SMALL_MIN_SPEEDUP = 1.2


@dataclass
class SpeedCase:
    """One timed shuffle: a topology, a prepared round, and its results."""

    name: str
    topology: str
    num_compute_nodes: int
    num_elements: int
    per_send_seconds: float = 0.0
    bulk_seconds: float = 0.0
    ledger_identical: bool = False
    cost_elements: float = 0.0
    #: Per-case speedup budget; filled in by :func:`run_speed_suite`
    #: (grid-dependent), fallback for hand-built cases.
    min_speedup: float = SMALL_MIN_SPEEDUP
    #: Tracer-derived attribution of one bulk round: where the time
    #: went (``t_group_s`` / ``t_deliver_s`` / ``t_charge_s``), measured
    #: on a separate traced run so the timed repeats stay untouched.
    phases: dict = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        if self.bulk_seconds <= 0:
            return float("inf")
        return self.per_send_seconds / self.bulk_seconds

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "topology": self.topology,
            "nodes": self.num_compute_nodes,
            "elements": self.num_elements,
            "per_send_s": round(self.per_send_seconds, 6),
            "bulk_s": round(self.bulk_seconds, 6),
            "speedup": round(self.speedup, 2),
            "min_speedup": self.min_speedup,
            "cost_elements": self.cost_elements,
            "ledger_identical": self.ledger_identical,
            "phases": dict(self.phases),
        }


def fat_tree(num_racks: int, *, rack_size: int | None = None) -> TreeTopology:
    """A symmetric two-level fat tree with ``num_racks**2`` leaves."""
    size = num_racks if rack_size is None else rack_size
    return two_level(
        [size] * num_racks,
        leaf_bandwidth=2.0,
        uplink_bandwidth=4.0,
        name=f"fat-tree({num_racks}x{size})",
    )


def _prepare_uniform_hash(
    tree: TreeTopology, num_elements: int, seed: int
) -> tuple[list, str]:
    """The uniform-hash relational shuffle: elements hashed to nodes."""
    distribution = random_distribution(
        tree,
        r_size=num_elements,
        s_size=0,
        policy="proportional",
        seed=seed,
    )
    cluster = Cluster(tree, distribution)
    computes = cluster.compute_order
    hasher = WeightedNodeHasher(
        computes, [1.0] * len(computes), derive_seed(seed, "bench-speed")
    )
    prepared = []
    for node in computes:
        local = cluster.local(node, "R")
        if len(local):
            prepared.append((node, hasher.assign_indices(local), local))
    return prepared, "uniform-hash shuffle"


def _prepare_components(
    tree: TreeTopology, num_elements: int, seed: int
) -> tuple[list, str]:
    """The connected-components superstep shuffle (uniform-hash flavour).

    One hash-to-min message per directed edge plus one identity message
    per locally known vertex, exactly what the textbook MPC baseline
    ships every superstep; messages are (vertex, label) tuples packed
    on the 64-bit substrate and hashed to a uniform owner by vertex.
    The graph is sized so the shuffle moves ~``num_elements`` messages
    (empirically ~4 messages per edge at the default density).
    """
    distribution = random_graph_distribution(
        tree,
        num_edges=max(1_000, num_elements // 4),
        policy="proportional",
        seed=seed,
    )
    cluster = Cluster(tree, distribution)
    computes = cluster.compute_order
    hasher = WeightedNodeHasher(
        computes, [1.0] * len(computes), derive_seed(seed, "bench-speed-cc")
    )
    prepared = []
    for node in computes:
        fragment = cluster.local(node, "E")
        if not len(fragment):
            continue
        lo, hi = decode_edges(fragment)
        src = np.concatenate([lo, hi])
        dst = np.concatenate([hi, lo])
        verts = np.unique(src)
        keys = np.concatenate([dst, verts])
        values = np.concatenate([src, verts])  # superstep 1: label == id
        payload = encode_tuples(keys, values, payload_bits=VERTEX_BITS)
        prepared.append((node, hasher.assign_indices(keys), payload))
    return prepared, "connected-components superstep shuffle"


def _prepare_replication(
    tree: TreeTopology, num_elements: int, seed: int
) -> tuple[list, str]:
    """The replication-heavy intersection round (StarIntersect's R-leg).

    Every node's R fragment is hashed to an owner and each element is
    *replicated* to the Steiner destination set ``{owner} | Vβ`` — the
    routing Algorithm 1 uses for the small relation, with a synthetic
    data-rich ``Vβ`` of ~12 evenly spaced nodes standing in for the
    placement-derived one so the destination sets stay comparably
    heavy on every grid size.  This is the round shape whose per-group
    multicast loop used to dominate the replicated-tuple protocols.
    """
    distribution = random_distribution(
        tree,
        r_size=num_elements,
        s_size=0,
        policy="proportional",
        seed=seed,
    )
    cluster = Cluster(tree, distribution)
    computes = cluster.compute_order
    stride = max(1, len(computes) // 12)
    beta = frozenset(computes[::stride][:12])
    hasher = WeightedNodeHasher(
        computes, [1.0] * len(computes), derive_seed(seed, "bench-speed-mc")
    )
    destination_sets = [beta | {v} for v in computes]
    prepared = []
    for node in computes:
        local = cluster.local(node, "R")
        if len(local):
            prepared.append(
                (node, hasher.assign_indices(local), destination_sets, local)
            )
    return prepared, "intersection R-replication multicast"


# Public aliases: the scale benchmark (analysis/scale.py) drives the
# same prepared workloads through the process substrate.
prepare_uniform_hash = _prepare_uniform_hash
prepare_components = _prepare_components
prepare_replication = _prepare_replication


def _run_round(
    tree: TreeTopology, prepared: list, mode: str, tag: str = "recv"
) -> tuple[float, Cluster]:
    cluster = Cluster(tree, exchange_mode=mode)
    start = time.perf_counter()
    with cluster.round() as ctx:
        for entry in prepared:
            if len(entry) == 3:
                node, targets, payload = entry
                ctx.exchange(node, targets, payload, tag=tag)
            else:
                node, group_ids, destination_sets, payload = entry
                ctx.exchange_multicast(
                    node, group_ids, destination_sets, payload, tag=tag
                )
    return time.perf_counter() - start, cluster


def round_phases(tracer) -> dict:
    """Extract the group/deliver/charge split from a traced round.

    Finds the first round span whose attrs carry the phase timings (the
    cluster only records them while a recording tracer is installed)
    and returns them rounded to microseconds; empty when no such span
    was captured.  Shared with :mod:`repro.analysis.scale`.
    """
    for event in tracer.events:
        attrs = event.attrs
        if attrs.get("category") == "round" and "t_group_s" in attrs:
            return {
                key: round(attrs[key], 6)
                for key in ("t_group_s", "t_deliver_s", "t_charge_s")
            }
    return {}


def _equivalent(a: Cluster, b: Cluster, tag: str = "recv") -> bool:
    if a.ledger.round_loads(0) != b.ledger.round_loads(0):
        return False
    for node in a.compute_order:
        if a.received_elements(node) != b.received_elements(node):
            return False
        if not np.array_equal(a.local(node, tag), b.local(node, tag)):
            return False
    return True


def time_case(
    name: str,
    tree: TreeTopology,
    prepared: list,
    *,
    repeats: int = 3,
) -> SpeedCase:
    """Best-of-``repeats`` round times in both modes, plus equivalence."""
    num_elements = int(sum(len(entry[-1]) for entry in prepared))
    case = SpeedCase(
        name=name,
        topology=tree.name,
        num_compute_nodes=tree.num_compute_nodes,
        num_elements=num_elements,
    )
    bulk_cluster: Cluster | None = None
    per_send_cluster: Cluster | None = None
    bulk_best = per_send_best = float("inf")
    for _ in range(repeats):
        elapsed, bulk_cluster = _run_round(tree, prepared, "bulk")
        bulk_best = min(bulk_best, elapsed)
        elapsed, per_send_cluster = _run_round(tree, prepared, "per-send")
        per_send_best = min(per_send_best, elapsed)
    case.bulk_seconds = bulk_best
    case.per_send_seconds = per_send_best
    case.ledger_identical = _equivalent(bulk_cluster, per_send_cluster)
    case.cost_elements = bulk_cluster.ledger.total_cost()
    # One extra *traced* bulk round attributes the time to the round's
    # group/deliver/charge phases; kept out of the timed repeats so the
    # reported seconds stay tracing-free.
    with tracing() as tracer:
        _run_round(tree, prepared, "bulk")
    case.phases = round_phases(tracer)
    return case


def time_components_end_to_end(
    tree: TreeTopology,
    num_edges: int,
    seed: int,
    *,
    repeats: int = 3,
) -> SpeedCase:
    """Whole-protocol A/B: hash-to-min end to end, bulk vs per-send.

    Unlike the single-round cases, this times the complete
    ``uniform-hash`` connected-components protocol — every superstep
    shuffle, every label-return multicast, plus all the mode-independent
    protocol logic in between — under both exchange modes, exercising
    the full columnar data plane (array-valued group-by outputs, the
    zero-copy label columns each superstep reads back, and the compacted
    storage every round lands in).  The two runs must agree on the
    ledger cost, the round count, and every per-node output labelling.
    """
    from repro.graphs.components import uniform_hash_connected_components

    distribution = random_graph_distribution(
        tree, num_edges=num_edges, policy="proportional", seed=seed
    )
    results: dict = {}
    best: dict = {}
    for mode in ("bulk", "per-send"):
        best[mode] = float("inf")
        with use_exchange_mode(mode):
            for _ in range(repeats):
                start = time.perf_counter()
                results[mode] = uniform_hash_connected_components(
                    tree, distribution, seed=seed
                )
                best[mode] = min(best[mode], time.perf_counter() - start)
    bulk, per_send = results["bulk"], results["per-send"]
    case = SpeedCase(
        name="end-to-end components supersteps",
        topology=tree.name,
        num_compute_nodes=tree.num_compute_nodes,
        num_elements=int(distribution.total()),
    )
    case.bulk_seconds = best["bulk"]
    case.per_send_seconds = best["per-send"]
    case.cost_elements = bulk.cost
    case.ledger_identical = (
        bulk.cost == per_send.cost
        and bulk.rounds == per_send.rounds
        and bulk.outputs == per_send.outputs
    )
    return case


def run_speed_suite(
    *, small: bool = False, seed: int = 7, repeats: int = 5
) -> list[SpeedCase]:
    """Time the hot-path shuffles and the end-to-end superstep loop."""
    if small:
        grids = [(8,)]  # 64 nodes
        num_elements = 200_000
    else:
        grids = [(8,), (16,)]  # 64 and 256 nodes
        num_elements = 1_000_000
    # The end-to-end case is sized by supersteps, not shuffle volume:
    # 10k edges converge in ~10 hash-to-min rounds on either grid, and
    # the grid key already separates the 64- and 256-node baselines.
    num_edges = 10_000
    workloads = [
        (_prepare_uniform_hash, FULL_MIN_SPEEDUP),
        (_prepare_components, FULL_MIN_SPEEDUP),
        (_prepare_replication, REPLICATION_FULL_MIN_SPEEDUP),
    ]
    cases = []
    for (num_racks,) in grids:
        tree = fat_tree(num_racks)
        for prepare, full_budget in workloads:
            prepared, label = prepare(tree, num_elements, seed)
            case = time_case(label, tree, prepared, repeats=repeats)
            case.min_speedup = SMALL_MIN_SPEEDUP if small else full_budget
            cases.append(case)
        case = time_components_end_to_end(
            tree, num_edges, seed, repeats=max(2, repeats - 2)
        )
        case.min_speedup = (
            END_TO_END_SMALL_MIN_SPEEDUP
            if small
            else END_TO_END_FULL_MIN_SPEEDUP
        )
        cases.append(case)
    return cases


def check_cases(
    cases: list[SpeedCase], *, min_speedup: float | None = None
) -> None:
    """The harness's two guarantees: exact accounting, bounded slowdown.

    Each case carries its own grid-dependent budget
    (:attr:`SpeedCase.min_speedup`); an explicit ``min_speedup``
    overrides all of them (used by tests).
    """
    for case in cases:
        if not case.ledger_identical:
            raise AnalysisError(
                f"{case.name} on {case.topology}: bulk exchange diverged "
                "from the per-send path (ledger/storage mismatch)"
            )
        budget = case.min_speedup if min_speedup is None else min_speedup
        if case.speedup < budget:
            raise AnalysisError(
                f"{case.name} on {case.topology}: speedup "
                f"{case.speedup:.2f}x under the {budget:.1f}x budget "
                f"(bulk {case.bulk_seconds:.3f}s vs per-send "
                f"{case.per_send_seconds:.3f}s) — did a per-element "
                "Python loop sneak back into the hot path?"
            )


def default_trajectory_path() -> Path:
    """Resolve the trajectory file: env override, repo root, else cwd.

    The convention keeps ``BENCH_*.json`` at the repo root; when the
    package runs from a checkout (``src/repro/analysis/speed.py``) that
    root is three levels up, recognisable by its ``pyproject.toml``.
    An installed package falls back to the working directory.
    """
    override = os.environ.get("BENCH_SPEED_JSON")
    if override:
        return Path(override)
    root = Path(__file__).resolve().parents[3]
    if (root / "pyproject.toml").exists():
        return root / TRAJECTORY_FILE
    return Path(TRAJECTORY_FILE)  # pragma: no cover - installed usage


def write_trajectory(
    cases: list,
    *,
    grid: str,
    path: str | os.PathLike | None = None,
    max_runs: int = 50,
    benchmark: str = "bench_speed",
    extra: dict | None = None,
) -> Path:
    """Append one run entry to a ``BENCH_*.json`` trajectory file.

    Shared by every substrate benchmark: ``cases`` only needs a
    ``to_dict()`` per item, ``benchmark`` names the harness, and
    ``extra`` merges additional run-level facts (e.g. the machine's
    core count for the scaling grid).
    """
    path = Path(path) if path is not None else default_trajectory_path()
    payload: dict = {"benchmark": benchmark, "unit": "seconds", "runs": []}
    if path.exists():
        try:
            existing = json.loads(path.read_text())
            if isinstance(existing.get("runs"), list):
                payload["runs"] = existing["runs"]
        except (ValueError, OSError):  # pragma: no cover - corrupt file
            pass
    entry = {
        "date": time.strftime("%Y-%m-%d"),
        "grid": grid,
        "cases": [case.to_dict() for case in cases],
    }
    if extra:
        entry.update(extra)
    payload["runs"].append(entry)
    payload["runs"] = payload["runs"][-max_runs:]
    path.write_text(json.dumps(payload, indent=2, allow_nan=False) + "\n")
    return path


def speed_table(cases: list[SpeedCase]) -> tuple[list[str], list[list]]:
    """Headers and rows for the text-table renderers."""
    headers = [
        "shuffle",
        "topology",
        "nodes",
        "elements",
        "per-send",
        "bulk",
        "speedup",
    ]
    rows = [
        [
            case.name,
            case.topology,
            case.num_compute_nodes,
            case.num_elements,
            f"{case.per_send_seconds * 1000:.1f}ms",
            f"{case.bulk_seconds * 1000:.1f}ms",
            f"{case.speedup:.2f}x",
        ]
        for case in cases
    ]
    return headers, rows

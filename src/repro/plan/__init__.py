"""Topology-aware query planner: logical plans to protocol pipelines.

The paper names relational query processing as the motivating
application of the topology-aware cost model; this package is the layer
that turns the registered protocols into an actual query system.  A
query is a tree of logical operators (:mod:`repro.plan.logical`):
scans, filters, multi-way equi-joins and group-by aggregations over
named, multi-column relations (:mod:`repro.plan.relation`).  The
optimizer (:mod:`repro.plan.optimizer`) picks a join order and, for
every communication stage, a registered protocol — the paper's
topology-aware tree algorithms or the uniform-hash / gather baselines —
by scoring candidates with the cost estimator (:mod:`repro.plan.cost`),
which combines the registry's lower bounds with topology statistics.
The executor (:mod:`repro.plan.executor`) then runs the chosen physical
plan stage by stage on one cluster, materializing every intermediate
result as a new :class:`~repro.data.distribution.Distribution` and
accumulating per-stage :class:`~repro.report.RunReport` rows into a
:class:`~repro.report.PlanReport`.

Quick start::

    from repro.plan import Schema, chain_catalog, chain_query, optimize
    from repro.plan.executor import execute_plan

    catalog = chain_catalog(tree, num_relations=3, rows=2_000, seed=0)
    query = chain_query(3)
    physical = optimize(query, tree, catalog)
    print(physical.explain())
    report = execute_plan(physical, tree, catalog, seed=0)

or, through the facade, ``repro.run_plan(query, tree, catalog)``.
"""

from repro.plan.logical import (
    Filter,
    GroupBy,
    Join,
    JoinCondition,
    LogicalPlan,
    Scan,
    chain_query,
    evaluate_reference,
    star_query,
)
from repro.plan.relation import (
    PlacedRelation,
    Schema,
    chain_catalog,
    star_catalog,
)
from repro.plan.cost import (
    CostModel,
    RelationStats,
    estimate_gather_cost,
    estimate_tree_cost,
    estimate_uniform_hash_cost,
)
from repro.plan.optimizer import (
    PhysicalPlan,
    PhysicalStage,
    PlanCache,
    optimize,
)
from repro.plan.executor import execute_plan

__all__ = [
    # logical algebra
    "LogicalPlan",
    "Scan",
    "Filter",
    "Join",
    "JoinCondition",
    "GroupBy",
    "chain_query",
    "star_query",
    "evaluate_reference",
    # relations
    "Schema",
    "PlacedRelation",
    "chain_catalog",
    "star_catalog",
    # cost model
    "CostModel",
    "RelationStats",
    "estimate_tree_cost",
    "estimate_uniform_hash_cost",
    "estimate_gather_cost",
    # optimizer + executor
    "optimize",
    "PhysicalPlan",
    "PhysicalStage",
    "PlanCache",
    "execute_plan",
]

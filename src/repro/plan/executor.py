"""Run a compiled physical plan stage by stage on one cluster.

Each communication stage is dispatched through the engine to a
*registered* protocol — the executor never reimplements shuffles.  For
a join stage it re-packs both input relations around the stage's join
key (key high, remaining columns as the payload), builds a fresh
:class:`~repro.data.distribution.Distribution` from the per-node
fragments, and runs the chosen ``equijoin`` protocol with
``materialize=True``; the materialized ``(key, left payload, right
payload)`` rows are unpacked back into a
:class:`~repro.plan.relation.PlacedRelation` *where the protocol left
them* — intermediate data never teleports between stages, exactly as
the model prices it.  Group-by stages ship ``(key, value)`` pairs
through a registered ``groupby-aggregate`` protocol the same way;
filters run locally and cost nothing, as computation does in the model.

Every stage contributes one :class:`~repro.report.RunReport` (cost,
rounds, the task's per-stage lower bound); the whole pipeline becomes a
:class:`~repro.report.PlanReport`.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from repro.data.distribution import Distribution
from repro.engine import run_with_result
from repro.errors import PlanError
from repro.obs.metrics import RATIO_BUCKETS, get_registry
from repro.obs.tracer import get_tracer
from repro.plan.optimizer import AGGREGATE_BITS, PhysicalPlan, PhysicalStage
from repro.plan.relation import PlacedRelation, Schema
from repro.queries.tuples import encode_tuples
from repro.report import PlanReport, RunReport
from repro.topology.tree import TreeTopology, node_sort_key
from repro.util.seeding import derive_seed


def _empty_stage_report(
    stage: PhysicalStage, index: int, tree: TreeTopology, task: str
) -> RunReport:
    """A zero-cost row for a stage skipped because an input was empty."""
    return RunReport(
        task=task,
        protocol=stage.protocol or "local",
        topology=tree.name,
        placement=f"stage {index}",
        input_size=0,
        rounds=0,
        cost=0.0,
        lower_bound=0.0,
        meta={"skipped": "empty input"},
    )


def _execute_join(
    stage: PhysicalStage,
    index: int,
    tree: TreeTopology,
    left: PlacedRelation,
    right: PlacedRelation,
    *,
    seed: int,
    verify: bool,
) -> tuple[RunReport | None, PlacedRelation]:
    out_schema = stage.schema
    if left.total_rows == 0 or right.total_rows == 0:
        return None, PlacedRelation(out_schema, {})

    left_payload_schema = left.schema.drop(stage.left_column)
    right_payload_schema = right.schema.drop(stage.right_column)
    shared_bits = max(
        left_payload_schema.total_bits, right_payload_schema.total_bits
    )
    left_encoded, _, _ = left.key_payload(
        stage.left_column, payload_bits=shared_bits
    )
    right_encoded, _, _ = right.key_payload(
        stage.right_column, payload_bits=shared_bits
    )
    placements: dict = {}
    for node in tree.compute_nodes:
        fragments = {}
        if node in left_encoded and len(left_encoded[node]):
            fragments["R"] = left_encoded[node]
        if node in right_encoded and len(right_encoded[node]):
            fragments["S"] = right_encoded[node]
        if fragments:
            placements[node] = fragments
    report, result = run_with_result(
        "equijoin",
        tree,
        Distribution(placements),
        protocol=stage.protocol,
        seed=derive_seed(seed, "plan-stage", index),
        placement=f"stage {index}",
        verify=verify,
        payload_bits=shared_bits,
        materialize=True,
    )

    fragments = {}
    for node, output in result.outputs.items():
        pairs = output.get("pairs")
        if pairs is None or not len(pairs):
            continue
        left_columns = dict(
            zip(
                left_payload_schema.columns,
                left_payload_schema.unpack(pairs[:, 1]).T,
            )
        )
        right_columns = dict(
            zip(
                right_payload_schema.columns,
                right_payload_schema.unpack(pairs[:, 2]).T,
            )
        )
        keys = pairs[:, 0]
        keep = np.ones(len(pairs), dtype=bool)
        for left_name, right_name in stage.residual:
            # A residual condition may reuse the stage's join-key column
            # (e.g. A.a = B.b and A.a = B.c): that column was dropped
            # from the payload, but its values are exactly `keys`.
            left_values = (
                keys
                if left_name == stage.left_column
                else left_columns[left_name]
            )
            right_values = (
                keys
                if right_name == stage.right_column
                else right_columns[right_name]
            )
            keep &= left_values == right_values
        named = {stage.left_column: keys, **left_columns}
        for name, values in right_columns.items():
            if name not in {b for _, b in stage.residual}:
                named[name] = values
        rows = np.stack(
            [named[c][keep] for c in out_schema.columns], axis=1
        )
        if len(rows):
            fragments[node] = rows
    return report, PlacedRelation(out_schema, fragments)


def _execute_groupby(
    stage: PhysicalStage,
    index: int,
    tree: TreeTopology,
    child: PlacedRelation,
    *,
    seed: int,
    verify: bool,
) -> tuple[RunReport | None, PlacedRelation]:
    out_schema = stage.schema
    if child.total_rows == 0:
        return None, PlacedRelation(out_schema, {})
    key_index = child.schema.index(stage.key)
    value_index = child.schema.index(stage.agg_value)
    placements: dict = {}
    for node in sorted(child.nodes, key=node_sort_key):
        rows = child.fragment(node)
        if not len(rows):
            continue
        placements[node] = {
            "R": encode_tuples(
                rows[:, key_index],
                rows[:, value_index],
                payload_bits=AGGREGATE_BITS,
            )
        }
    report, result = run_with_result(
        "groupby-aggregate",
        tree,
        Distribution(placements),
        protocol=stage.protocol,
        seed=derive_seed(seed, "plan-stage", index),
        placement=f"stage {index}",
        verify=verify,
        op=stage.op,
        payload_bits=AGGREGATE_BITS,
    )
    fragments = {}
    for node, groups in result.outputs.items():
        if not groups:
            continue
        keys = getattr(groups, "keys_array", None)
        if keys is not None:
            # Array output contract: columns arrive sorted by key, so
            # the stage output is a single stack — no boxing, no sort.
            fragments[node] = np.stack([keys, groups.values_array], axis=1)
            continue
        keys = np.fromiter(groups.keys(), np.int64, len(groups))
        values = np.fromiter(groups.values(), np.int64, len(groups))
        order = np.argsort(keys, kind="stable")
        fragments[node] = np.stack([keys[order], values[order]], axis=1)
    return report, PlacedRelation(out_schema, fragments)


def _record_stage_metrics(stage: PhysicalStage, report: RunReport) -> None:
    """Record a finished stage's estimate accuracy on the registry.

    The actual/estimated cost ratio (1.0 = the optimizer was exact)
    lands in a fixed-bucket histogram, so a drifting cost model shows
    up as mass migrating out of the 0.75–1.5 buckets over a service's
    lifetime — the planner counterpart of the round-level audit.
    """
    registry = get_registry()
    if not registry.enabled:
        return
    registry.counter("repro_plan_stages_total", kind=stage.kind).inc()
    if stage.est_cost > 0 and report.cost > 0:
        ratio = report.cost / stage.est_cost
        registry.histogram(
            "repro_stage_cost_ratio", buckets=RATIO_BUCKETS, kind=stage.kind
        ).observe(ratio)
        registry.gauge(
            "repro_stage_last_cost_ratio", kind=stage.kind
        ).set(ratio)


def execute_plan(
    physical: PhysicalPlan,
    tree: TreeTopology,
    catalog: dict,
    *,
    seed: int = 0,
    verify: bool = True,
    keep_output: bool = False,
):
    """Execute ``physical`` on ``tree``; returns a :class:`PlanReport`.

    ``catalog`` must hold the base relations the plan scans.  With
    ``keep_output=True`` the final :class:`PlacedRelation` is returned
    alongside the report (for output inspection and the property
    tests' multiset comparison).
    """
    tracer = get_tracer()
    started = perf_counter()
    results: list[PlacedRelation] = []
    stage_reports: list[RunReport] = []
    with tracer.span(
        f"plan.execute {physical.query}",
        category="plan",
        query=physical.query,
        strategy=physical.strategy,
        topology=physical.topology,
        estimated_cost=physical.estimated_cost,
    ):
        for index, stage in enumerate(physical.stages):
            if stage.kind == "scan":
                relation = catalog.get(stage.relation)
                if relation is None:
                    raise PlanError(
                        f"catalog has no relation {stage.relation!r}"
                    )
                if tuple(relation.schema.columns) != stage.output_columns:
                    raise PlanError(
                        f"catalog relation {stage.relation!r} no longer "
                        "matches the compiled schema; re-run the optimizer"
                    )
                results.append(relation)
                continue
            if stage.kind == "filter":
                child = results[stage.inputs[0]]
                results.append(
                    child.filter(stage.column, stage.op, stage.value)
                )
                continue
            if stage.kind == "join":
                with tracer.span(
                    f"stage {index} join",
                    category="stage",
                    operator=stage.describe(),
                    protocol=stage.protocol or "local",
                    est_cost=stage.est_cost,
                    est_rows=stage.est_rows,
                ) as span:
                    report, produced = _execute_join(
                        stage,
                        index,
                        tree,
                        results[stage.inputs[0]],
                        results[stage.inputs[1]],
                        seed=seed,
                        verify=verify,
                    )
                    if report is None:
                        report = _empty_stage_report(
                            stage, index, tree, "equijoin"
                        )
                    span.set(cost=report.cost, rounds=report.rounds)
                _record_stage_metrics(stage, report)
                stage_reports.append(report)
                results.append(produced)
                continue
            if stage.kind == "groupby":
                with tracer.span(
                    f"stage {index} groupby",
                    category="stage",
                    operator=stage.describe(),
                    protocol=stage.protocol or "local",
                    est_cost=stage.est_cost,
                    est_rows=stage.est_rows,
                ) as span:
                    report, produced = _execute_groupby(
                        stage,
                        index,
                        tree,
                        results[stage.inputs[0]],
                        seed=seed,
                        verify=verify,
                    )
                    if report is None:
                        report = _empty_stage_report(
                            stage, index, tree, "groupby-aggregate"
                        )
                    span.set(cost=report.cost, rounds=report.rounds)
                _record_stage_metrics(stage, report)
                stage_reports.append(report)
                results.append(produced)
                continue
            raise PlanError(f"unknown stage kind {stage.kind!r}")

    output = results[physical.output]
    report = PlanReport(
        query=physical.query,
        strategy=physical.strategy,
        topology=physical.topology,
        stages=tuple(stage_reports),
        estimated_cost=physical.estimated_cost,
        output_rows=output.total_rows,
        meta={
            "stages": [
                {
                    "stage": i,
                    "operator": s.describe(),
                    "protocol": s.protocol or "local",
                    "est_rows": s.est_rows,
                    "est_cost": s.est_cost,
                }
                for i, s in enumerate(physical.stages)
            ],
        },
        wall_time_s=perf_counter() - started,
    )
    if keep_output:
        return report, output
    return report

"""Cost and cardinality estimation for candidate physical operators.

The optimizer needs two numbers per candidate stage: *how many rows*
come out (cardinality, for join ordering) and *what the shuffle costs*
(for protocol choice).  Both come from statistics the model lets
protocols know in advance — per-node fragment sizes, relation
cardinalities and per-column distinct counts — combined with the
topology's link structure:

* **gather** is deterministic, so its estimate is exact: every element
  on the far side of a link crosses it toward the target;
* **uniform-hash** routes each element to a uniformly random compute
  node, so per-link loads are plain expectations;
* **tree** (the paper's distribution-aware protocols) hashes toward
  data-rich nodes; the estimate is the expected load of a
  placement-weighted shuffle, floored by the registry's Theorem-1-style
  lower bound on the stage instance — an estimate can be optimistic,
  but never below what any correct protocol must pay.

Cardinalities use the classic independence estimates: ``|A ⋈ B| ≈
|A||B| / max(d_A, d_B)`` per equality, distinct counts capped by the
estimated row count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.errors import PlanError
from repro.plan.relation import PlacedRelation
from repro.topology.tree import NodeId, TreeTopology, node_sort_key

# The tree protocols replicate the smaller relation across the
# balanced-partition blocks, which a plain shuffle expectation misses;
# measured stage costs sit at 1.3-2x the max(expectation, bound)
# estimate across the standard suite (see bench_planner), so estimates
# are inflated by this calibration factor.  Erring high is deliberate:
# an optimistic tree estimate would beat the *exact* gather estimate in
# near-ties and lose at runtime, while a pessimistic one merely picks a
# baseline that performs as predicted.
TREE_COST_CALIBRATION = 1.8


@dataclass(frozen=True)
class RelationStats:
    """Cardinality statistics for one (possibly estimated) relation.

    Attributes
    ----------
    rows:
        Total row count (estimated for intermediates, exact for bases).
    distinct:
        Estimated distinct values per column name.
    profile:
        Estimated rows per compute node — where the relation lives, the
        input the per-link cost estimators work from.
    """

    rows: float
    distinct: dict = field(default_factory=dict)
    profile: dict = field(default_factory=dict)

    def distinct_of(self, column: str) -> float:
        value = self.distinct.get(column)
        if value is None:
            raise PlanError(f"no distinct-count statistic for {column!r}")
        return max(1.0, min(float(value), max(self.rows, 1.0)))


def stats_of(relation: PlacedRelation) -> RelationStats:
    """Exact statistics of a base relation (the model's prior knowledge)."""
    rows = relation.rows()
    distinct = {
        name: int(len(np.unique(rows[:, i]))) if len(rows) else 0
        for i, name in enumerate(relation.schema.columns)
    }
    return RelationStats(
        rows=float(len(rows)),
        distinct=distinct,
        profile={n: float(s) for n, s in relation.sizes().items()},
    )


def join_stats(
    left: RelationStats,
    right: RelationStats,
    on: Sequence[tuple],
    out_columns: Sequence[str],
) -> RelationStats:
    """Estimated statistics of a binary equi-join's output."""
    if not on:
        raise PlanError("join estimate needs at least one column pair")
    rows = left.rows * right.rows
    for left_column, right_column in on:
        rows /= max(
            left.distinct_of(left_column), right.distinct_of(right_column)
        )
    joined = 0.0 if left.rows == 0 or right.rows == 0 else rows
    distinct = {}
    for name in out_columns:
        if name in left.distinct:
            base = left.distinct[name]
        elif name in right.distinct:
            base = right.distinct[name]
        else:
            raise PlanError(f"output column {name!r} came from neither side")
        distinct[name] = min(float(base), max(joined, 1.0))
    return RelationStats(rows=joined, distinct=distinct, profile={})


def filter_stats(stats: RelationStats, column: str, op: str) -> RelationStats:
    """Estimated statistics after ``column <op> value``."""
    d = stats.distinct_of(column)
    if op == "==":
        selectivity = 1.0 / d
    elif op == "!=":
        selectivity = (d - 1.0) / d
    else:
        selectivity = 1.0 / 3.0
    rows = stats.rows * selectivity
    distinct = {
        name: min(float(value), max(rows, 1.0))
        for name, value in stats.distinct.items()
    }
    if op == "==":
        distinct[column] = 1.0
    profile = {
        node: size * selectivity for node, size in stats.profile.items()
    }
    return RelationStats(rows=rows, distinct=distinct, profile=profile)


def groupby_stats(stats: RelationStats, key: str) -> RelationStats:
    """Estimated statistics after grouping on ``key``."""
    groups = stats.distinct_of(key) if stats.rows else 0.0
    return RelationStats(
        rows=groups, distinct={key: groups}, profile={}
    )


# --------------------------------------------------------------------- #
# per-link shuffle estimates
# --------------------------------------------------------------------- #


def _shuffle_cost(
    tree: TreeTopology,
    profiles: Sequence[Mapping[NodeId, float]],
    destination_weights: Mapping[NodeId, float],
) -> float:
    """Expected ``max_e load(e) / w_e`` of hashing ``profiles`` by weight.

    Each element at node ``v`` is routed independently to node ``u``
    with probability proportional to ``destination_weights[u]``; the
    expected load of the directed link ``a -> b`` is then
    ``size(side of a) * P(destination on side of b)``.
    """
    total_weight = sum(destination_weights.values())
    if total_weight <= 0:
        return 0.0
    combined = {}
    for profile in profiles:
        for node, size in profile.items():
            combined[node] = combined.get(node, 0.0) + float(size)
    side_sizes = tree.side_weights(combined)
    side_weights = tree.side_weights(destination_weights)
    worst = 0.0
    for edge in tree.undirected_edges():
        a_size, b_size = side_sizes[edge]
        a_weight, b_weight = side_weights[edge]
        a, b = edge
        forward = a_size * (b_weight / total_weight) / tree.bandwidth(a, b)
        backward = b_size * (a_weight / total_weight) / tree.bandwidth(b, a)
        worst = max(worst, forward, backward)
    return worst


def _uniform_weights(tree: TreeTopology) -> dict:
    return {v: 1.0 for v in tree.compute_nodes}


def estimate_uniform_hash_cost(
    tree: TreeTopology, profiles: Sequence[Mapping[NodeId, float]]
) -> float:
    """Expected stage cost of the uniform-hash baseline."""
    return _shuffle_cost(tree, profiles, _uniform_weights(tree))


def estimate_tree_cost(
    tree: TreeTopology, profiles: Sequence[Mapping[NodeId, float]]
) -> float:
    """Estimated stage cost of the distribution-aware tree protocols.

    Expected load of a placement-weighted shuffle, floored by the
    Theorem-1-style per-link bound (for every link, any correct keyed
    protocol pays at least ``min(totals..., side sums) / w_e``), then
    scaled by :data:`TREE_COST_CALIBRATION`.
    """
    combined = {}
    for profile in profiles:
        for node, size in profile.items():
            combined[node] = combined.get(node, 0.0) + float(size)
    weights = {v: combined.get(v, 0.0) for v in tree.compute_nodes}
    if all(w <= 0 for w in weights.values()):
        return 0.0
    expectation = _shuffle_cost(tree, profiles, weights)
    totals = [sum(p.values()) for p in profiles]
    side_sizes = tree.side_weights(combined)
    bound = 0.0
    for edge in tree.undirected_edges():
        a_size, b_size = side_sizes[edge]
        cap = min(totals + [a_size, b_size])
        bound = max(bound, cap / tree.undirected_bandwidth(edge))
    return TREE_COST_CALIBRATION * max(expectation, bound)


def estimate_gather_cost(
    tree: TreeTopology, profiles: Sequence[Mapping[NodeId, float]]
) -> tuple[float, NodeId]:
    """Exact stage cost of gathering everything at the best target."""
    combined = {v: 0.0 for v in tree.compute_nodes}
    for profile in profiles:
        for node, size in profile.items():
            combined[node] = combined.get(node, 0.0) + float(size)
    target = max(
        sorted(combined, key=node_sort_key), key=lambda v: combined[v]
    )
    side_sizes = tree.side_weights(combined)
    cost = 0.0
    for edge in tree.undirected_edges():
        a_side, b_side = tree.compute_sides(edge)
        a_size, b_size = side_sizes[edge]
        a, b = edge
        if target in b_side:
            cost = max(cost, a_size / tree.bandwidth(a, b))
        else:
            cost = max(cost, b_size / tree.bandwidth(b, a))
    return cost, target


# --------------------------------------------------------------------- #
# the stage-level cost model
# --------------------------------------------------------------------- #


class CostModel:
    """Scores candidate ``(operator, protocol)`` stages on one topology.

    Estimates both the stage cost and the output *placement profile*
    (where the result rows land), which feeds the next stage's
    estimate — a gather stage leaves everything on one node, a uniform
    shuffle spreads it evenly, a weighted shuffle follows the data.
    """

    def __init__(self, tree: TreeTopology) -> None:
        self.tree = tree
        self._computes = sorted(tree.compute_nodes, key=node_sort_key)

    def _spread(self, rows: float, weights: Mapping[NodeId, float]) -> dict:
        total = sum(weights.values())
        if total <= 0:
            return {v: rows / len(self._computes) for v in self._computes}
        return {
            v: rows * weights.get(v, 0.0) / total for v in self._computes
        }

    def join_stage(
        self,
        left: RelationStats,
        right: RelationStats,
        protocol: str,
        out_rows: float,
    ) -> tuple[float, dict]:
        """``(estimated cost, output profile)`` of one join shuffle."""
        profiles = [left.profile, right.profile]
        if protocol == "gather":
            cost, target = estimate_gather_cost(self.tree, profiles)
            return cost, {target: out_rows}
        if protocol == "uniform-hash":
            cost = estimate_uniform_hash_cost(self.tree, profiles)
            return cost, self._spread(out_rows, _uniform_weights(self.tree))
        if protocol == "tree":
            cost = estimate_tree_cost(self.tree, profiles)
            combined = {
                v: left.profile.get(v, 0.0) + right.profile.get(v, 0.0)
                for v in self._computes
            }
            return cost, self._spread(out_rows, combined)
        raise PlanError(f"no cost estimator for join protocol {protocol!r}")

    def groupby_stage(
        self,
        child: RelationStats,
        groups: float,
        protocol: str,
    ) -> tuple[float, dict]:
        """``(estimated cost, output profile)`` of one aggregation stage.

        The tree and uniform-hash protocols pre-aggregate locally, so
        each node ships at most ``min(rows_v, groups)`` partials; the
        gather baseline ships raw tuples.
        """
        partials = {
            v: min(size, groups) for v, size in child.profile.items()
        }
        if protocol == "gather":
            cost, target = estimate_gather_cost(self.tree, [child.profile])
            return cost, {target: groups}
        if protocol == "uniform-hash":
            cost = estimate_uniform_hash_cost(self.tree, [partials])
            return cost, self._spread(groups, _uniform_weights(self.tree))
        if protocol == "tree":
            weights = {
                v: child.profile.get(v, 0.0) for v in self._computes
            }
            if all(w <= 0 for w in weights.values()):
                return 0.0, {v: 0.0 for v in self._computes}
            cost = _shuffle_cost(self.tree, [partials], weights)
            return cost, self._spread(groups, weights)
        raise PlanError(
            f"no cost estimator for group-by protocol {protocol!r}"
        )

    def supported_protocols(self, operator: str) -> tuple:
        """Protocol names this model can score for ``operator``.

        Ordered by estimate confidence — ``gather`` is deterministic
        (its estimate is exact), the hash shuffles are expectations —
        so stable min-by-cost selection breaks ties toward the
        candidate whose estimate cannot be wrong.
        """
        if operator in ("join", "groupby"):
            return ("gather", "uniform-hash", "tree")
        raise PlanError(f"unknown operator kind {operator!r}")

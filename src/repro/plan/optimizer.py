"""Compile a logical plan into a physical protocol pipeline.

The optimizer makes the two decisions the logical algebra leaves open:

* **join order** — multi-way joins are flattened into their leaf inputs
  and every connected left-deep order is enumerated (chain and star
  queries have few inputs, so exhaustive enumeration is exact); each
  candidate order is scored by the estimated cost of its shuffle stages
  under the cardinality model of :mod:`repro.plan.cost`;
* **protocol per stage** — for every join and group-by stage, each
  protocol registered for the task (the paper's topology-aware ``tree``
  algorithms, the ``uniform-hash`` MPC baseline, the ``gather``
  baseline) is scored on the estimated placement profile of the stage's
  inputs, and the cheapest wins.

Three strategies share this machinery: ``optimized`` (min-cost order,
min-cost protocols), ``gather`` (the order as written, every stage the
gather baseline — the "ship everything to one node" plan), and
``worst-order`` (the max-cost order with min-cost protocols — isolating
what join ordering alone is worth).
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass
from itertools import permutations
from weakref import WeakKeyDictionary

from repro.errors import PlanError
from repro.obs.metrics import get_registry
from repro.plan.cost import (
    CostModel,
    RelationStats,
    filter_stats,
    groupby_stats,
    join_stats,
    stats_of,
)
from repro.plan.logical import Filter, GroupBy, Join, LogicalPlan, Scan
from repro.plan.relation import MAX_PAYLOAD_BITS, MAX_ROW_BITS, Schema
from repro.registry import protocols_for
from repro.topology.artifacts import topology_fingerprint
from repro.topology.tree import TreeTopology, node_sort_key
from repro.util.text import render_table

STRATEGIES = ("optimized", "gather", "worst-order")

# Exhaustive left-deep enumeration is exact but factorial; the planner
# targets the paper's chain/star benchmark queries, not 20-way joins.
MAX_JOIN_INPUTS = 8

# Beam width for per-order protocol-sequence search; 81 = 3^4 keeps the
# search exhaustive up to four shuffle stages (five-way joins).
PROTOCOL_BEAM = 81

AGGREGATE_BITS = 40


@dataclass(frozen=True)
class PhysicalStage:
    """One step of the compiled pipeline.

    ``kind`` is ``"scan"``, ``"filter"``, ``"join"`` or ``"groupby"``;
    ``inputs`` are indices of earlier stages, and the stage's own index
    in :attr:`PhysicalPlan.stages` names its output.  ``est_rows`` and
    ``est_cost`` are the optimizer's predictions, kept so ``--explain``
    and the reports can show estimated against measured cost.
    """

    kind: str
    output_columns: tuple
    output_bits: tuple
    inputs: tuple = ()
    relation: str | None = None
    column: str | None = None
    op: str | None = None
    value: int | None = None
    left_column: str | None = None
    right_column: str | None = None
    residual: tuple = ()
    key: str | None = None
    agg_value: str | None = None
    protocol: str | None = None
    est_rows: float = 0.0
    est_cost: float = 0.0

    @property
    def schema(self) -> Schema:
        return Schema(self.output_columns, self.output_bits)

    def describe(self) -> str:
        if self.kind == "scan":
            return f"scan {self.relation}"
        if self.kind == "filter":
            return (
                f"filter #{self.inputs[0]} "
                f"({self.column} {self.op} {self.value})"
            )
        if self.kind == "join":
            residual = "".join(
                f", {a}={b}" for a, b in self.residual
            )
            return (
                f"join #{self.inputs[0]} ⋈ #{self.inputs[1]} on "
                f"{self.left_column}={self.right_column}{residual}"
            )
        return (
            f"groupby #{self.inputs[0]} key={self.key} "
            f"{self.op}({self.agg_value})"
        )


@dataclass(frozen=True)
class PhysicalPlan:
    """The compiled pipeline plus the optimizer's cost predictions."""

    query: str
    strategy: str
    topology: str
    stages: tuple
    output: int
    estimated_cost: float

    @property
    def output_schema(self) -> Schema:
        return self.stages[self.output].schema

    def shuffle_stages(self) -> list:
        """Indices of stages that actually communicate."""
        return [
            i
            for i, stage in enumerate(self.stages)
            if stage.kind in ("join", "groupby")
        ]

    def explain(self) -> str:
        """A human-readable physical plan, one row per stage."""
        rows = []
        for i, stage in enumerate(self.stages):
            rows.append(
                [
                    f"#{i}",
                    stage.describe(),
                    stage.protocol or "local",
                    f"{stage.est_rows:.0f}",
                    f"{stage.est_cost:.1f}",
                ]
            )
        return render_table(
            ["stage", "operator", "protocol", "est rows", "est cost"],
            rows,
            title=(
                f"{self.strategy} plan for {self.query} on {self.topology} "
                f"(estimated cost {self.estimated_cost:.1f})"
            ),
        )


# --------------------------------------------------------------------- #
# join flattening
# --------------------------------------------------------------------- #


def _flatten_join(join: Join) -> tuple[list, list]:
    """Expand directly nested joins into leaves + leaf-indexed conditions."""
    leaves: list = []
    conditions: list = []

    def expand(node: Join) -> list:
        spans = []
        for child in node.inputs:
            if isinstance(child, Join):
                spans.append(expand(child))
            else:
                leaves.append(child)
                spans.append([len(leaves) - 1])
        for cond in node.conditions:
            left_span = spans[cond.left_input]
            right_span = spans[cond.right_input]
            conditions.append(
                (left_span[0], cond.left_column, right_span[0], cond.right_column)
            )
        return [i for span in spans for i in span]

    expand(join)
    return leaves, conditions


# --------------------------------------------------------------------- #
# the compiler
# --------------------------------------------------------------------- #


@dataclass
class _Candidate:
    """One simulated merge order: its stages-to-be and total cost."""

    order: tuple
    steps: list
    cost: float


class _Compiler:
    def __init__(
        self,
        tree: TreeTopology,
        catalog: dict,
        strategy: str,
    ) -> None:
        if strategy not in STRATEGIES:
            raise PlanError(
                f"unknown strategy {strategy!r}; choose from {list(STRATEGIES)}"
            )
        self.tree = tree
        self.catalog = catalog
        self.strategy = strategy
        self.model = CostModel(tree)
        self.stages: list = []
        self.join_protocols = self._candidates("equijoin", "join")
        self.groupby_protocols = self._candidates("groupby-aggregate", "groupby")

    def _candidates(self, task: str, operator: str) -> tuple:
        registered = set(protocols_for(task))
        supported = self.model.supported_protocols(operator)
        names = tuple(n for n in supported if n in registered)
        if not names:
            raise PlanError(
                f"no registered {task} protocol has a cost estimator"
            )
        return names

    def _emit(self, stage: PhysicalStage) -> int:
        self.stages.append(stage)
        return len(self.stages) - 1

    # -------------------------------------------------------------- #
    # node compilation
    # -------------------------------------------------------------- #

    def compile(self, plan: LogicalPlan) -> tuple[int, RelationStats, Schema]:
        if isinstance(plan, Scan):
            return self._compile_scan(plan)
        if isinstance(plan, Filter):
            return self._compile_filter(plan)
        if isinstance(plan, GroupBy):
            return self._compile_groupby(plan)
        if isinstance(plan, Join):
            return self._compile_join(plan)
        raise PlanError(f"unknown logical operator {plan!r}")

    def _compile_scan(self, plan: Scan) -> tuple[int, RelationStats, Schema]:
        relation = self.catalog.get(plan.relation)
        if relation is None:
            raise PlanError(
                f"catalog has no relation {plan.relation!r}; "
                f"it holds {sorted(map(str, self.catalog))}"
            )
        stats = stats_of(relation)
        schema = relation.schema
        index = self._emit(
            PhysicalStage(
                kind="scan",
                relation=plan.relation,
                output_columns=schema.columns,
                output_bits=schema.bits,
                est_rows=stats.rows,
            )
        )
        return index, stats, schema

    def _compile_filter(self, plan: Filter) -> tuple[int, RelationStats, Schema]:
        child, child_stats, schema = self.compile(plan.child)
        schema.index(plan.column)  # validates the column exists
        stats = filter_stats(child_stats, plan.column, plan.op)
        index = self._emit(
            PhysicalStage(
                kind="filter",
                inputs=(child,),
                column=plan.column,
                op=plan.op,
                value=int(plan.value),
                output_columns=schema.columns,
                output_bits=schema.bits,
                est_rows=stats.rows,
            )
        )
        return index, stats, schema

    def _compile_groupby(self, plan: GroupBy) -> tuple[int, RelationStats, Schema]:
        child, child_stats, schema = self.compile(plan.child)
        key_bits = schema.width(plan.key)
        schema.index(plan.value)
        if key_bits > MAX_ROW_BITS - MAX_PAYLOAD_BITS:
            raise PlanError(
                f"group-by key {plan.key!r} is {key_bits} bits wide; the "
                f"shuffle encoding supports at most "
                f"{MAX_ROW_BITS - MAX_PAYLOAD_BITS} key bits"
            )
        groups = groupby_stats(child_stats, plan.key).rows
        protocol, cost, profile = self._pick_groupby_protocol(
            child_stats, groups
        )
        agg_bits = (
            schema.width(plan.value)
            if plan.op in ("min", "max")
            else AGGREGATE_BITS
        )
        columns = (plan.key, f"{plan.op}_{plan.value}")
        bits = (key_bits, agg_bits)
        stats = RelationStats(
            rows=groups, distinct={plan.key: groups}, profile=profile
        )
        index = self._emit(
            PhysicalStage(
                kind="groupby",
                inputs=(child,),
                key=plan.key,
                agg_value=plan.value,
                op=plan.op,
                protocol=protocol,
                output_columns=columns,
                output_bits=bits,
                est_rows=groups,
                est_cost=cost,
            )
        )
        return index, stats, Schema(columns, bits)

    def _pick_groupby_protocol(
        self, child_stats: RelationStats, groups: float
    ) -> tuple[str, float, dict]:
        if self.strategy == "gather":
            cost, profile = self.model.groupby_stage(
                child_stats, groups, "gather"
            )
            return "gather", cost, profile
        best = None
        for name in self.groupby_protocols:
            cost, profile = self.model.groupby_stage(
                child_stats, groups, name
            )
            if best is None or cost < best[1]:
                best = (name, cost, profile)
        return best

    # -------------------------------------------------------------- #
    # joins
    # -------------------------------------------------------------- #

    def _compile_join(self, plan: Join) -> tuple[int, RelationStats, Schema]:
        leaves, conditions = _flatten_join(plan)
        if len(leaves) > MAX_JOIN_INPUTS:
            raise PlanError(
                f"join has {len(leaves)} inputs; exhaustive ordering "
                f"supports at most {MAX_JOIN_INPUTS}"
            )
        compiled = [self.compile(leaf) for leaf in leaves]
        # Conditions that name a nested-join span refer to whichever of
        # its leaves holds the column; resolve by schema lookup.
        resolved = []
        for li, lcol, ri, rcol in conditions:
            resolved.append(
                (
                    self._owning_leaf(compiled, leaves, li, lcol),
                    lcol,
                    self._owning_leaf(compiled, leaves, ri, rcol),
                    rcol,
                )
            )
        candidate = self._choose_order(compiled, resolved)
        return self._emit_join_steps(compiled, candidate)

    def _owning_leaf(self, compiled, leaves, start: int, column: str) -> int:
        _, _, schema = compiled[start]
        if column in schema.columns:
            return start
        for i, (_, _, other) in enumerate(compiled):
            if column in other.columns:
                return i
        raise PlanError(f"no join input has column {column!r}")

    def _choose_order(self, compiled, conditions) -> _Candidate:
        k = len(compiled)
        written = tuple(range(k))
        if self.strategy == "gather":
            candidate = self._simulate(compiled, conditions, written)
            if candidate is not None:
                return candidate
        best: _Candidate | None = None
        seen_any = False
        for order in permutations(range(k)):
            candidate = self._simulate(compiled, conditions, order)
            if candidate is None:
                continue
            seen_any = True
            if best is None:
                best = candidate
            elif self.strategy == "worst-order":
                if candidate.cost > best.cost:
                    best = candidate
            elif candidate.cost < best.cost:
                best = candidate
        if not seen_any:
            raise PlanError(
                "join inputs are not connected by the conditions; "
                "cross products are not supported"
            )
        return best

    def _simulate(self, compiled, conditions, order) -> _Candidate | None:
        """Score one merge order; ``None`` if some step lacks a condition.

        Phase one walks the merges and derives everything that does not
        depend on protocol choice: stage key pairs, residual equalities,
        output columns and cardinality estimates.  Phase two assigns a
        protocol to every stage by searching protocol *sequences* — a
        gather stage leaves all data on one node and makes every later
        stage nearly free, which no greedy per-stage choice can see.
        """
        steps = self._merge_walk(compiled, conditions, order)
        if steps is None:
            return None
        return self._assign_protocols(compiled, order, steps)

    def _merge_walk(self, compiled, conditions, order) -> list | None:
        first = order[0]
        merged = {first}
        stats = compiled[first][1]
        columns = list(compiled[first][2].columns)
        bits = list(compiled[first][2].bits)
        # Maps (leaf, original column) -> current column name, tracking
        # join-key merges so later conditions survive dropped columns.
        names = {
            (i, c): c for i, (_, _, schema) in enumerate(compiled)
            for c in schema.columns
        }
        steps = []
        for new in order[1:]:
            pairs = []
            for li, lcol, ri, rcol in conditions:
                if li in merged and ri == new:
                    pairs.append((names[(li, lcol)], rcol))
                elif ri in merged and li == new:
                    pairs.append((names[(ri, rcol)], lcol))
            if not pairs:
                return None
            new_stats = compiled[new][1]
            new_schema = compiled[new][2]
            key_left, key_right = pairs[0]
            out = join_stats(stats, new_stats, pairs, [])
            dropped = {b for _, b in pairs}
            out_columns = [key_left] + [c for c in columns if c != key_left]
            out_bits = [
                max(
                    bits[columns.index(key_left)],
                    new_schema.width(key_right),
                )
            ] + [bits[columns.index(c)] for c in columns if c != key_left]
            for c in new_schema.columns:
                if c in dropped:
                    continue
                if c in out_columns:
                    return None  # name collision under this order
                out_columns.append(c)
                out_bits.append(new_schema.width(c))
            for a, b in pairs:
                names[(new, b)] = a
            distinct = dict(out.distinct)
            for c in out_columns:
                if c not in distinct:
                    source = (
                        stats.distinct.get(c)
                        if c in columns
                        else new_stats.distinct.get(c)
                    )
                    distinct[c] = min(
                        float(source if source is not None else out.rows),
                        max(out.rows, 1.0),
                    )
            stats = RelationStats(
                rows=out.rows, distinct=distinct, profile={}
            )
            steps.append(
                {
                    "new": new,
                    "left_column": key_left,
                    "right_column": key_right,
                    "residual": tuple(pairs[1:]),
                    "columns": tuple(out_columns),
                    "bits": tuple(out_bits),
                    "stats": stats,
                }
            )
            merged.add(new)
            columns, bits = out_columns, out_bits
        return steps

    def _assign_protocols(self, compiled, order, steps) -> _Candidate:
        """Pick each stage's protocol by beam search over sequences.

        States carry the cost so far and the current placement profile
        (each protocol leaves the data somewhere different).  A beam of
        :data:`PROTOCOL_BEAM` keeps the search exhaustive for every
        sequence length the benchmark queries reach (``3^m`` states fit
        the beam for ``m <= 4`` stages) and near-optimal beyond.
        """
        first_stats = compiled[order[0]][1]
        protocols = (
            ("gather",) if self.strategy == "gather" else self.join_protocols
        )
        states = [(0.0, first_stats, [])]
        for step in steps:
            right_stats = compiled[step["new"]][1]
            out_stats = step["stats"]
            expanded = []
            for total, left_stats, chosen in states:
                for name in protocols:
                    cost, profile = self.model.join_stage(
                        left_stats, right_stats, name, out_stats.rows
                    )
                    expanded.append(
                        (
                            total + cost,
                            RelationStats(
                                rows=out_stats.rows,
                                distinct=out_stats.distinct,
                                profile=profile,
                            ),
                            chosen + [(name, cost)],
                        )
                    )
            expanded.sort(key=lambda state: state[0])
            states = expanded[:PROTOCOL_BEAM]
        total, final_stats, chosen = states[0]
        annotated = []
        for step, (name, cost) in zip(steps, chosen):
            annotated.append(
                {
                    **step,
                    "protocol": name,
                    "cost": cost,
                    "stats": RelationStats(
                        rows=step["stats"].rows,
                        distinct=step["stats"].distinct,
                        profile={},
                    ),
                }
            )
        # The emitted stages need the profile the chosen sequence
        # produces, so replay it for the annotation.
        left_stats = first_stats
        for entry in annotated:
            _, profile = self.model.join_stage(
                left_stats,
                compiled[entry["new"]][1],
                entry["protocol"],
                entry["stats"].rows,
            )
            left_stats = RelationStats(
                rows=entry["stats"].rows,
                distinct=entry["stats"].distinct,
                profile=profile,
            )
            entry["stats"] = left_stats
        return _Candidate(order=tuple(order), steps=annotated, cost=total)

    def _emit_join_steps(
        self, compiled, candidate: _Candidate
    ) -> tuple[int, RelationStats, Schema]:
        current = compiled[candidate.order[0]][0]
        stats = compiled[candidate.order[0]][1]
        schema = compiled[candidate.order[0]][2]
        for step in candidate.steps:
            new_index = compiled[step["new"]][0]
            index = self._emit(
                PhysicalStage(
                    kind="join",
                    inputs=(current, new_index),
                    left_column=step["left_column"],
                    right_column=step["right_column"],
                    residual=step["residual"],
                    protocol=step["protocol"],
                    output_columns=step["columns"],
                    output_bits=step["bits"],
                    est_rows=step["stats"].rows,
                    est_cost=step["cost"],
                )
            )
            current = index
            stats = step["stats"]
            schema = Schema(step["columns"], step["bits"])
        return current, stats, schema


# --------------------------------------------------------------------- #
# plan cache
# --------------------------------------------------------------------- #


class PlanCache:
    """A bounded, thread-safe LRU of compiled :class:`PhysicalPlan` s.

    A serving session sees the same handful of query *shapes* over and
    over; the left-deep order enumeration and per-stage protocol beam
    search dominate small-plan latency, and their output depends only on
    the logical plan, the topology structure, and the catalog's
    placement statistics.  The cache key captures exactly those three
    (:meth:`key`): the logical plan's deterministic ``describe()``
    string, the structural :func:`topology_fingerprint` (label-blind, so
    renamed builds of one network share plans), and a per-relation
    statistics digest — schema, row/distinct counts, and the per-node
    fragment profile — so *any* data movement or re-placement changes
    the key and misses, never serving a stale plan.  Cached plans are
    frozen dataclasses shared by reference.

    Admission is lower-bound-gated: the ``optimized`` strategy's
    estimate is the model's cheapest achievable cost for the shape, so
    a baseline plan (``gather`` / ``worst-order``) estimated at more
    than ``admit_ratio`` times the cached optimized sibling is *not*
    admitted — deliberately bad diagnostic plans should not evict
    serving traffic.  Hits and misses are recorded on the installed
    metrics registry as ``repro_plan_cache_hits_total`` /
    ``_misses_total`` (rejections as ``_rejected_total``).
    """

    def __init__(
        self, max_entries: int = 128, *, admit_ratio: float = 8.0
    ) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if admit_ratio < 1.0:
            raise ValueError(f"admit_ratio must be >= 1.0, got {admit_ratio}")
        self._max_entries = max_entries
        self._admit_ratio = admit_ratio
        self._lock = threading.RLock()
        self._entries: dict[tuple, PhysicalPlan] = {}
        # Per-relation stats digests, keyed weakly by the PlacedRelation
        # object: relations are immutable containers, so one digest per
        # object lifetime is sound, and sessions pinning a catalog pay
        # the (row-scanning) digest once instead of per lookup.
        self._relation_digests: WeakKeyDictionary = WeakKeyDictionary()
        self.hits = 0
        self.misses = 0
        self.rejected = 0

    def _relation_digest(self, name: str, relation) -> str:
        digest = self._relation_digests.get(relation)
        if digest is None:
            stats = stats_of(relation)
            hasher = hashlib.blake2b(digest_size=16)
            hasher.update(repr(relation.schema.columns).encode())
            hasher.update(repr(relation.schema.bits).encode())
            hasher.update(repr(stats.rows).encode())
            hasher.update(repr(sorted(stats.distinct.items())).encode())
            hasher.update(
                repr(
                    sorted(
                        stats.profile.items(),
                        key=lambda item: node_sort_key(item[0]),
                    )
                ).encode()
            )
            digest = hasher.hexdigest()
            self._relation_digests[relation] = digest
        return f"{name}={digest}"

    def key(
        self,
        query: LogicalPlan,
        tree: TreeTopology,
        catalog: dict,
        strategy: str,
    ) -> tuple:
        """The (shape, topology, placement-stats, strategy) cache key."""
        with self._lock:
            catalog_part = tuple(
                self._relation_digest(name, catalog[name])
                for name in sorted(catalog)
            )
        return (
            query.describe(),
            topology_fingerprint(tree),
            catalog_part,
            strategy,
        )

    def lookup(self, key: tuple) -> PhysicalPlan | None:
        """The cached plan for ``key``, with LRU touch; ``None`` on miss."""
        registry = get_registry()
        with self._lock:
            plan = self._entries.get(key)
            if plan is not None:
                self._entries.pop(key)
                self._entries[key] = plan
                self.hits += 1
                if registry.enabled:
                    registry.counter(
                        "repro_plan_cache_hits_total", strategy=key[3]
                    ).inc()
                return plan
            self.misses += 1
            if registry.enabled:
                registry.counter(
                    "repro_plan_cache_misses_total", strategy=key[3]
                ).inc()
            return None

    def admit(self, key: tuple, plan: PhysicalPlan) -> bool:
        """Cache ``plan`` unless admission control rejects it."""
        registry = get_registry()
        with self._lock:
            if plan.strategy != "optimized":
                sibling = self._entries.get(key[:3] + ("optimized",))
                if (
                    sibling is not None
                    and plan.estimated_cost
                    > self._admit_ratio * max(sibling.estimated_cost, 1e-12)
                ):
                    self.rejected += 1
                    if registry.enabled:
                        registry.counter(
                            "repro_plan_cache_rejected_total",
                            strategy=plan.strategy,
                        ).inc()
                    return False
            self._entries[key] = plan
            while len(self._entries) > self._max_entries:
                evicted = next(iter(self._entries))
                del self._entries[evicted]
            return True

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        """Hit/miss/rejection counts and current size, for summaries."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "rejected": self.rejected,
            }


def optimize(
    query: LogicalPlan,
    tree: TreeTopology,
    catalog: dict,
    *,
    strategy: str = "optimized",
    cache: PlanCache | None = None,
) -> PhysicalPlan:
    """Compile ``query`` into a :class:`PhysicalPlan` for ``tree``.

    ``catalog`` maps base relation names to
    :class:`~repro.plan.relation.PlacedRelation` instances; their exact
    statistics seed the cardinality model.  ``strategy`` is one of
    ``optimized`` / ``gather`` / ``worst-order``.  With a
    :class:`PlanCache`, a repeated (shape, topology, placement) triple
    returns the previously compiled frozen plan without re-running the
    order/protocol search.
    """
    if cache is not None:
        key = cache.key(query, tree, catalog, strategy)
        cached = cache.lookup(key)
        if cached is not None:
            return cached
    compiler = _Compiler(tree, catalog, strategy)
    output, _, _ = compiler.compile(query)
    stages = tuple(compiler.stages)
    plan = PhysicalPlan(
        query=query.describe(),
        strategy=strategy,
        topology=tree.name,
        stages=stages,
        output=output,
        estimated_cost=sum(s.est_cost for s in stages),
    )
    if cache is not None:
        cache.admit(key, plan)
    return plan

"""The logical operator algebra: what a query asks, not how it runs.

A logical plan is an immutable tree of four operators over named,
multi-column relations:

* :class:`Scan` — read a base relation from the catalog;
* :class:`Filter` — keep rows satisfying ``column <op> value`` (free in
  the cost model: filtering is local computation);
* :class:`Join` — an *n*-ary equi-join with explicit pairwise
  conditions, the optimizer's playground (it picks the order and a
  protocol per binary stage);
* :class:`GroupBy` — aggregate one value column per key column.

The algebra deliberately carries no physical detail — no protocols, no
orders, no placements.  :func:`evaluate_reference` gives the plan's
meaning as a plain single-machine computation, which the property tests
hold the distributed executor to.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.errors import PlanError

_FILTER_OPS = ("==", "!=", "<", "<=", ">", ">=")
_GROUP_OPS = ("sum", "count", "min", "max")


@dataclass(frozen=True)
class Scan:
    """Read base relation ``relation`` from the catalog."""

    relation: str

    def describe(self) -> str:
        return f"scan({self.relation})"


@dataclass(frozen=True)
class Filter:
    """Keep the rows of ``child`` where ``column <op> value``."""

    child: "LogicalPlan"
    column: str
    op: str
    value: int

    def __post_init__(self) -> None:
        if self.op not in _FILTER_OPS:
            raise PlanError(
                f"unknown filter operator {self.op!r}; "
                f"choose from {list(_FILTER_OPS)}"
            )

    def describe(self) -> str:
        return (
            f"filter({self.child.describe()}, "
            f"{self.column} {self.op} {self.value})"
        )


@dataclass(frozen=True)
class JoinCondition:
    """Equality between one column of two join inputs (by input index)."""

    left_input: int
    left_column: str
    right_input: int
    right_column: str

    def __post_init__(self) -> None:
        if self.left_input == self.right_input:
            raise PlanError(
                "a join condition must connect two distinct inputs"
            )


@dataclass(frozen=True)
class Join:
    """*n*-ary equi-join of ``inputs`` under pairwise ``conditions``."""

    inputs: tuple
    conditions: tuple

    def __post_init__(self) -> None:
        object.__setattr__(self, "inputs", tuple(self.inputs))
        object.__setattr__(self, "conditions", tuple(self.conditions))
        if len(self.inputs) < 2:
            raise PlanError("a join needs at least two inputs")
        if not self.conditions:
            raise PlanError(
                "a join needs at least one equality condition "
                "(cartesian products run via the cartesian-product task)"
            )
        for cond in self.conditions:
            for side in (cond.left_input, cond.right_input):
                if not 0 <= side < len(self.inputs):
                    raise PlanError(
                        f"join condition references input {side} but there "
                        f"are only {len(self.inputs)} inputs"
                    )

    def describe(self) -> str:
        parts = ", ".join(child.describe() for child in self.inputs)
        conds = ", ".join(
            f"{c.left_input}.{c.left_column}={c.right_input}.{c.right_column}"
            for c in self.conditions
        )
        return f"join([{parts}] on {conds})"


@dataclass(frozen=True)
class GroupBy:
    """Aggregate ``value`` per distinct ``key`` of ``child`` with ``op``."""

    child: "LogicalPlan"
    key: str
    value: str
    op: str = "sum"

    def __post_init__(self) -> None:
        if self.op not in _GROUP_OPS:
            raise PlanError(
                f"unknown aggregate {self.op!r}; choose from {list(_GROUP_OPS)}"
            )
        if self.key == self.value:
            raise PlanError("group-by key and value must differ")

    def describe(self) -> str:
        return (
            f"groupby({self.child.describe()}, key={self.key}, "
            f"{self.op}({self.value}))"
        )


LogicalPlan = Scan | Filter | Join | GroupBy


# --------------------------------------------------------------------- #
# query builders for the standard benchmark shapes
# --------------------------------------------------------------------- #


def chain_query(num_relations: int = 3) -> Join:
    """``R0(x0,x1) ⋈ R1(x1,x2) ⋈ ... `` — the chain join over a
    :func:`~repro.plan.relation.chain_catalog`."""
    if num_relations < 2:
        raise PlanError("a chain query needs at least two relations")
    return Join(
        inputs=tuple(Scan(f"R{i}") for i in range(num_relations)),
        conditions=tuple(
            JoinCondition(i, f"x{i + 1}", i + 1, f"x{i + 1}")
            for i in range(num_relations - 1)
        ),
    )


def star_query(num_satellites: int = 2) -> Join:
    """``F ⋈ D1 ⋈ D2 ⋈ ...`` on the shared key ``k`` — the star join
    over a :func:`~repro.plan.relation.star_catalog`."""
    if num_satellites < 1:
        raise PlanError("a star query needs at least one satellite")
    return Join(
        inputs=(Scan("F"),)
        + tuple(Scan(f"D{i}") for i in range(1, num_satellites + 1)),
        conditions=tuple(
            JoinCondition(0, "k", i, "k")
            for i in range(1, num_satellites + 1)
        ),
    )


# --------------------------------------------------------------------- #
# reference semantics (single machine, no cost model)
# --------------------------------------------------------------------- #


def _reference_table(
    plan: LogicalPlan, catalog: Mapping
) -> tuple[list, np.ndarray]:
    """Evaluate ``plan`` naively; returns ``(columns, rows)``."""
    if isinstance(plan, Scan):
        relation = catalog.get(plan.relation)
        if relation is None:
            raise PlanError(
                f"catalog has no relation {plan.relation!r}; "
                f"it holds {sorted(map(str, catalog))}"
            )
        return list(relation.schema.columns), relation.rows()
    if isinstance(plan, Filter):
        columns, rows = _reference_table(plan.child, catalog)
        if plan.column not in columns:
            raise PlanError(f"filter on unknown column {plan.column!r}")
        index = columns.index(plan.column)
        ops = {
            "==": np.equal, "!=": np.not_equal, "<": np.less,
            "<=": np.less_equal, ">": np.greater, ">=": np.greater_equal,
        }
        mask = ops[plan.op](rows[:, index], np.int64(plan.value))
        return columns, rows[mask]
    if isinstance(plan, GroupBy):
        columns, rows = _reference_table(plan.child, catalog)
        for name in (plan.key, plan.value):
            if name not in columns:
                raise PlanError(f"group-by on unknown column {name!r}")
        key_index = columns.index(plan.key)
        value_index = columns.index(plan.value)
        groups: dict = {}
        for key, value in zip(
            rows[:, key_index].tolist(), rows[:, value_index].tolist()
        ):
            if plan.op == "count":
                groups[key] = groups.get(key, 0) + 1
            elif plan.op == "sum":
                groups[key] = groups.get(key, 0) + value
            elif plan.op == "min":
                groups[key] = min(groups.get(key, value), value)
            else:
                groups[key] = max(groups.get(key, value), value)
        out = np.array(
            sorted(groups.items()), dtype=np.int64
        ).reshape(-1, 2)
        return [plan.key, f"{plan.op}_{plan.value}"], out
    if isinstance(plan, Join):
        tables = [
            _reference_table(child, catalog) for child in plan.inputs
        ]
        merged_columns, merged_rows = tables[0]
        merged_inputs = {0}
        remaining = set(range(1, len(plan.inputs)))
        conditions = list(plan.conditions)
        while remaining:
            # Prefer an input connected to the merged set; fall back to
            # any remaining input (the Join constructor guarantees at
            # least one condition overall, and validation below catches
            # conditions that never become applicable).
            chosen = None
            for cond in conditions:
                sides = {cond.left_input, cond.right_input}
                inside, outside = sides & merged_inputs, sides & remaining
                if inside and outside:
                    chosen = outside.pop()
                    break
            if chosen is None:
                raise PlanError(
                    "join inputs are not connected by the conditions"
                )
            columns, rows = tables[chosen]
            merged_columns, merged_rows = _nested_loop_join(
                merged_columns,
                merged_rows,
                columns,
                rows,
                _applicable(conditions, merged_inputs, chosen, plan),
            )
            merged_inputs.add(chosen)
            remaining.discard(chosen)
        return merged_columns, merged_rows
    raise PlanError(f"unknown logical operator {plan!r}")


def _applicable(conditions, merged_inputs, new_input, plan) -> list:
    """Conditions joining the merged inputs to ``new_input`` as
    ``(merged_column, new_column)`` name pairs."""
    pairs = []
    for cond in conditions:
        sides = {cond.left_input: cond.left_column,
                 cond.right_input: cond.right_column}
        if new_input in sides and (set(sides) - {new_input}) <= merged_inputs:
            new_column = sides.pop(new_input)
            merged_column = next(iter(sides.values()))
            pairs.append((merged_column, new_column))
    return pairs


def _nested_loop_join(
    left_columns: list,
    left_rows: np.ndarray,
    right_columns: list,
    right_rows: np.ndarray,
    on: list,
) -> tuple[list, np.ndarray]:
    """Hash join of two in-memory tables on column-name pairs."""
    if not on:
        raise PlanError("join stage without an applicable condition")
    left_keys = [left_columns.index(a) for a, _ in on]
    right_keys = [right_columns.index(b) for _, b in on]
    keep_right = [
        i for i in range(len(right_columns)) if i not in right_keys
    ]
    overlap = set(left_columns) & {right_columns[i] for i in keep_right}
    if overlap:
        raise PlanError(
            f"join would duplicate output columns {sorted(overlap)}"
        )
    table: dict = {}
    for i, row in enumerate(right_rows):
        table.setdefault(tuple(row[right_keys].tolist()), []).append(i)
    matches_left: list = []
    matches_right: list = []
    for i, row in enumerate(left_rows):
        for j in table.get(tuple(row[left_keys].tolist()), ()):
            matches_left.append(i)
            matches_right.append(j)
    columns = list(left_columns) + [right_columns[i] for i in keep_right]
    if not matches_left:
        return columns, np.empty((0, len(columns)), dtype=np.int64)
    out = np.concatenate(
        [
            left_rows[matches_left],
            right_rows[np.asarray(matches_right)][:, keep_right],
        ],
        axis=1,
    )
    return columns, out


def evaluate_reference(plan: LogicalPlan, catalog: Mapping) -> Counter:
    """The plan's meaning: its output row multiset, columns sorted by name.

    Computed naively on one machine.  The distributed executor must
    produce exactly this multiset (compare with
    ``PlacedRelation.multiset()``), whatever join order and protocols
    the optimizer chose.
    """
    columns, rows = _reference_table(plan, catalog)
    order = sorted(range(len(columns)), key=lambda i: columns[i])
    return Counter(map(tuple, rows[:, order].tolist()))

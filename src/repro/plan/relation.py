"""Multi-column relations on the 64-bit element substrate.

The simulator ships 1-D ``int64`` arrays and charges one element per
value, so a relational row must fit one element to keep the model's
per-tuple accounting.  A :class:`Schema` assigns each named column a bit
width and packs a row into a single non-negative ``int64`` (at most 62
bits total, like :mod:`repro.queries.tuples`); a
:class:`PlacedRelation` holds the unpacked rows of one relation,
fragment by compute node — the planner's unit of data flow.  Between
pipeline stages the executor re-packs a relation around the next join
key (:meth:`PlacedRelation.key_payload`), runs a registered protocol on
the resulting :class:`~repro.data.distribution.Distribution`, and
unpacks the materialized pairs back into rows.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.data.distribution import Distribution
from repro.data.generators import placement_sizes
from repro.errors import PlanError
from repro.topology.tree import NodeId, TreeTopology, node_sort_key
from repro.util.seeding import derive_seed

# encode_tuples in repro.queries.tuples caps the payload at 40 bits and
# the key at 62 - payload_bits; schema packing inherits both limits.
MAX_ROW_BITS = 62
MAX_PAYLOAD_BITS = 40


@dataclass(frozen=True)
class Schema:
    """Named columns with fixed bit widths, packable into one element.

    Attributes
    ----------
    columns:
        Column names, unique within the schema.
    bits:
        Bit width per column (values must lie in ``[0, 2**bits)``).
        The total width is capped at 62 bits so any full row — and any
        projection used as a shuffle payload — fits the simulator's
        signed 64-bit elements.
    """

    columns: tuple
    bits: tuple

    def __post_init__(self) -> None:
        columns = tuple(str(c) for c in self.columns)
        bits = tuple(int(b) for b in self.bits)
        object.__setattr__(self, "columns", columns)
        object.__setattr__(self, "bits", bits)
        if len(columns) != len(bits):
            raise PlanError(
                f"{len(columns)} columns but {len(bits)} bit widths"
            )
        if not columns:
            raise PlanError("a schema needs at least one column")
        if len(set(columns)) != len(columns):
            raise PlanError(f"duplicate column names in {columns}")
        if any(b < 1 for b in bits):
            raise PlanError("column widths must be at least 1 bit")
        if sum(bits) > MAX_ROW_BITS:
            raise PlanError(
                f"schema {columns} needs {sum(bits)} bits; rows must fit "
                f"{MAX_ROW_BITS} bits to ship as single elements"
            )

    @property
    def arity(self) -> int:
        return len(self.columns)

    @property
    def total_bits(self) -> int:
        return sum(self.bits)

    def index(self, column: str) -> int:
        """Position of ``column``; raises :class:`PlanError` if absent."""
        try:
            return self.columns.index(column)
        except ValueError:
            raise PlanError(
                f"unknown column {column!r}; schema has {list(self.columns)}"
            ) from None

    def width(self, column: str) -> int:
        return self.bits[self.index(column)]

    def drop(self, column: str) -> "Schema":
        """The schema without ``column`` (must leave at least one)."""
        keep = self.index(column)
        columns = tuple(c for i, c in enumerate(self.columns) if i != keep)
        bits = tuple(b for i, b in enumerate(self.bits) if i != keep)
        if not columns:
            raise PlanError("cannot drop the only column of a schema")
        return Schema(columns, bits)

    def pack(self, rows: np.ndarray) -> np.ndarray:
        """Pack ``(n, arity)`` rows into ``n`` elements, first column high."""
        rows = np.asarray(rows, dtype=np.int64)
        if rows.ndim != 2 or rows.shape[1] != self.arity:
            raise PlanError(
                f"expected rows of shape (n, {self.arity}), got {rows.shape}"
            )
        packed = np.zeros(len(rows), dtype=np.int64)
        for i, width in enumerate(self.bits):
            column = rows[:, i]
            if len(column) and (
                column.min() < 0 or column.max() >= np.int64(1) << width
            ):
                raise PlanError(
                    f"column {self.columns[i]!r} has values outside "
                    f"[0, 2^{width})"
                )
            packed = (packed << width) | column
        return packed

    def unpack(self, values: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`pack`: ``n`` elements to ``(n, arity)`` rows."""
        values = np.asarray(values, dtype=np.int64)
        rows = np.empty((len(values), self.arity), dtype=np.int64)
        remaining = values.copy()
        for i in range(self.arity - 1, -1, -1):
            width = self.bits[i]
            mask = (np.int64(1) << width) - np.int64(1)
            rows[:, i] = remaining & mask
            remaining >>= width
        return rows


class PlacedRelation:
    """One relation's rows, fragment by compute node.

    Parameters
    ----------
    schema:
        Column names and widths shared by every fragment.
    fragments:
        ``{node: rows}`` with ``rows`` a ``(n, arity)`` integer array;
        nodes may be omitted or hold empty arrays.

    The container is immutable in the same sense as
    :class:`~repro.data.distribution.Distribution`: accessors copy, and
    transformations return new instances.
    """

    def __init__(
        self, schema: Schema, fragments: Mapping[NodeId, np.ndarray]
    ) -> None:
        self.schema = schema
        self._fragments: dict[NodeId, np.ndarray] = {}
        for node, rows in fragments.items():
            array = np.asarray(rows, dtype=np.int64)
            if array.size == 0:
                array = array.reshape(0, schema.arity)
            if array.ndim != 2 or array.shape[1] != schema.arity:
                raise PlanError(
                    f"fragment at {node!r} has shape {array.shape}; "
                    f"expected (n, {schema.arity})"
                )
            self._fragments[node] = array.copy()

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #

    @property
    def nodes(self) -> frozenset:
        return frozenset(self._fragments)

    def fragment(self, node: NodeId) -> np.ndarray:
        """Rows held at ``node`` (copy; empty when the node is absent)."""
        rows = self._fragments.get(node)
        if rows is None:
            return np.empty((0, self.schema.arity), dtype=np.int64)
        return rows.copy()

    def size(self, node: NodeId) -> int:
        return int(len(self._fragments.get(node, ())))

    def sizes(self) -> dict:
        return {node: len(rows) for node, rows in self._fragments.items()}

    @property
    def total_rows(self) -> int:
        return sum(len(rows) for rows in self._fragments.values())

    def rows(self) -> np.ndarray:
        """All rows concatenated in deterministic node order."""
        parts = [
            self._fragments[node]
            for node in sorted(self._fragments, key=node_sort_key)
            if len(self._fragments[node])
        ]
        if not parts:
            return np.empty((0, self.schema.arity), dtype=np.int64)
        return np.concatenate(parts)

    def column(self, name: str) -> np.ndarray:
        return self.rows()[:, self.schema.index(name)]

    def multiset(self, *, columns: Sequence[str] | None = None) -> Counter:
        """Row multiset as a :class:`Counter` of tuples.

        ``columns`` selects and orders the projection; by default the
        columns are sorted by name, so relations produced under
        different join orders (hence different column orders) compare
        equal whenever they agree as logical relations.
        """
        names = (
            sorted(self.schema.columns) if columns is None else list(columns)
        )
        indices = [self.schema.index(n) for n in names]
        rows = self.rows()[:, indices]
        return Counter(map(tuple, rows.tolist()))

    # ------------------------------------------------------------------ #
    # stage encodings
    # ------------------------------------------------------------------ #

    def key_payload(
        self, column: str, *, payload_bits: int | None = None
    ) -> tuple[dict, Schema, int]:
        """Encode fragments as ``key << payload_bits | payload`` elements.

        ``column`` becomes the key; the remaining columns pack into the
        payload.  Returns ``(encoded_fragments, payload_schema,
        payload_bits)`` ready to feed a registered keyed protocol
        (equi-join, group-by).  ``payload_bits`` may be forced upward so
        the two sides of a join share one width.
        """
        payload_schema = self.schema.drop(column)
        needed = payload_schema.total_bits
        width = needed if payload_bits is None else int(payload_bits)
        if width < needed:
            raise PlanError(
                f"payload needs {needed} bits but only {width} offered"
            )
        if width > MAX_PAYLOAD_BITS:
            raise PlanError(
                f"payload of {payload_schema.columns} needs {width} bits; "
                f"the element encoding caps payloads at {MAX_PAYLOAD_BITS} "
                "bits — use narrower columns or aggregate earlier"
            )
        key_width = self.schema.width(column)
        if key_width + width > MAX_ROW_BITS:
            raise PlanError(
                f"key {column!r} ({key_width} bits) plus payload "
                f"({width} bits) exceeds {MAX_ROW_BITS} bits"
            )
        key_index = self.schema.index(column)
        payload_indices = [
            i for i in range(self.schema.arity) if i != key_index
        ]
        encoded: dict = {}
        for node, rows in self._fragments.items():
            keys = rows[:, key_index]
            payload = payload_schema.pack(rows[:, payload_indices])
            encoded[node] = (keys << np.int64(width)) | payload
        return encoded, payload_schema, width

    def to_distribution(self, column: str, *, tag: str = "R") -> Distribution:
        """One-relation :class:`Distribution` keyed on ``column``."""
        encoded, _, _ = self.key_payload(column)
        return Distribution({node: {tag: values} for node, values in encoded.items()})

    # ------------------------------------------------------------------ #
    # transformations
    # ------------------------------------------------------------------ #

    def filter(self, column: str, op: str, value: int) -> "PlacedRelation":
        """Keep rows where ``column <op> value`` (a free local step)."""
        comparator = _COMPARATORS.get(op)
        if comparator is None:
            raise PlanError(
                f"unknown filter operator {op!r}; "
                f"choose from {sorted(_COMPARATORS)}"
            )
        index = self.schema.index(column)
        return PlacedRelation(
            self.schema,
            {
                node: rows[comparator(rows[:, index], np.int64(value))]
                for node, rows in self._fragments.items()
            },
        )

    def __repr__(self) -> str:
        return (
            f"PlacedRelation(columns={list(self.schema.columns)}, "
            f"rows={self.total_rows}, nodes={len(self._fragments)})"
        )


_COMPARATORS = {
    "==": np.equal,
    "!=": np.not_equal,
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
}


# --------------------------------------------------------------------- #
# catalog generators (used by the CLI, benchmarks, examples and tests)
# --------------------------------------------------------------------- #


def random_placed_relation(
    tree: TreeTopology,
    schema: Schema,
    *,
    rows: int,
    key_space: int,
    seed: int = 0,
    policy: str = "uniform",
) -> PlacedRelation:
    """A random relation with every column uniform in ``[0, key_space)``."""
    for column in schema.columns:
        if key_space > (1 << schema.width(column)):
            raise PlanError(
                f"key_space {key_space} exceeds column {column!r} width"
            )
    nodes = tree.left_to_right_compute_order()
    rng = np.random.default_rng(derive_seed(seed, "plan-relation"))
    data = rng.integers(
        0, key_space, size=(rows, schema.arity), dtype=np.int64
    )
    sizes = placement_sizes(tree, rows, policy, nodes)
    fragments: dict = {}
    offset = 0
    for node in nodes:
        fragments[node] = data[offset : offset + sizes[node]]
        offset += sizes[node]
    return PlacedRelation(schema, fragments)


def chain_catalog(
    tree: TreeTopology,
    *,
    num_relations: int = 3,
    rows: int = 2_000,
    key_space: int = 1_024,
    column_bits: int = 10,
    seed: int = 0,
    policy: str = "uniform",
) -> dict:
    """Base relations for a chain join ``R0(x0,x1) ⋈ R1(x1,x2) ⋈ ...``.

    Relation ``Ri`` has columns ``(x{i}, x{i+1})``, so consecutive
    relations share exactly one column — the classic chain query.
    """
    if key_space > (1 << column_bits):
        raise PlanError("key_space exceeds the column width")
    catalog: dict = {}
    for i in range(num_relations):
        schema = Schema((f"x{i}", f"x{i + 1}"), (column_bits, column_bits))
        catalog[f"R{i}"] = random_placed_relation(
            tree,
            schema,
            rows=rows,
            key_space=key_space,
            seed=derive_seed(seed, "chain", i),
            policy=policy,
        )
    return catalog


def star_catalog(
    tree: TreeTopology,
    *,
    num_satellites: int = 2,
    rows: int = 2_000,
    key_space: int = 1_024,
    column_bits: int = 10,
    seed: int = 0,
    policy: str = "uniform",
) -> dict:
    """Base relations for a star join: a fact ``F(k, a0)`` against
    dimension relations ``D1(k, a1), D2(k, a2), ...`` all sharing ``k``."""
    if key_space > (1 << column_bits):
        raise PlanError("key_space exceeds the column width")
    catalog = {
        "F": random_placed_relation(
            tree,
            Schema(("k", "a0"), (column_bits, column_bits)),
            rows=rows,
            key_space=key_space,
            seed=derive_seed(seed, "star", 0),
            policy=policy,
        )
    }
    for i in range(1, num_satellites + 1):
        catalog[f"D{i}"] = random_placed_relation(
            tree,
            Schema(("k", f"a{i}"), (column_bits, column_bits)),
            rows=rows,
            key_space=key_space,
            seed=derive_seed(seed, "star", i),
            policy=policy,
        )
    return catalog

"""Workload generators: relations and their initial placements.

Two orthogonal choices define every experiment instance:

* **what the data is** — :func:`make_set_pair` builds the relation pair
  ``(R, S)`` with a controlled intersection size; :func:`make_sort_input`
  builds a totally ordered set;
* **where it starts** — the ``place_*`` policies split a relation across
  compute nodes: uniformly (the classic MPC assumption), Zipf-skewed,
  single-node-heavy (the regime where "gather at the heavy node" wins),
  proportional to link bandwidth, or adversarially interleaved by rank
  (the initial distribution constructed in the proof of Theorem 6 /
  Figure 5, which forces any correct sort to shuffle half of each link's
  lighter side).

All generators are deterministic in their ``seed``.
"""

from __future__ import annotations

from typing import Hashable, Mapping, Sequence

import numpy as np

from repro.data.distribution import Distribution
from repro.errors import DistributionError
from repro.topology.tree import NodeId, TreeTopology
from repro.util.seeding import derive_seed

PlacementSizes = Mapping[NodeId, int]


def make_set_pair(
    r_size: int,
    s_size: int,
    *,
    intersection_size: int | None = None,
    seed: int = 0,
    domain: int = 2**40,
) -> tuple[np.ndarray, np.ndarray]:
    """Two sets ``R``, ``S`` with exactly ``intersection_size`` common values.

    Defaults to an intersection of ``min(|R|, |S|) // 4``.  Elements are
    distinct random integers in ``[0, domain)``, shuffled so fragment
    boundaries carry no structure.
    """
    if intersection_size is None:
        intersection_size = min(r_size, s_size) // 4
    if intersection_size > min(r_size, s_size):
        raise DistributionError(
            f"intersection {intersection_size} exceeds min(|R|,|S|)"
            f"={min(r_size, s_size)}"
        )
    total_distinct = r_size + s_size - intersection_size
    if total_distinct > domain:
        raise DistributionError("domain too small for the requested sizes")
    rng = np.random.default_rng(derive_seed(seed, "set-pair"))
    pool = rng.choice(domain, size=total_distinct, replace=False).astype(np.int64)
    common = pool[:intersection_size]
    r_only = pool[intersection_size : r_size]
    s_only = pool[r_size:]
    r_values = np.concatenate([common, r_only])
    s_values = np.concatenate([common, s_only])
    rng.shuffle(r_values)
    rng.shuffle(s_values)
    return r_values, s_values


def make_sort_input(
    size: int, *, seed: int = 0, domain: int = 2**40
) -> np.ndarray:
    """``size`` distinct random integers (a totally ordered set)."""
    rng = np.random.default_rng(derive_seed(seed, "sort-input"))
    return rng.choice(domain, size=size, replace=False).astype(np.int64)


# --------------------------------------------------------------------- #
# placement size policies
# --------------------------------------------------------------------- #


def place_uniform(total: int, nodes: Sequence[NodeId]) -> dict:
    """Split ``total`` as evenly as possible — the classic MPC assumption."""
    if not nodes:
        raise DistributionError("no nodes to place data on")
    base, extra = divmod(total, len(nodes))
    return {
        node: base + (1 if index < extra else 0)
        for index, node in enumerate(nodes)
    }


def place_zipf(
    total: int, nodes: Sequence[NodeId], *, exponent: float = 1.0
) -> dict:
    """Zipf-skewed sizes: node ``i`` gets weight ``1 / (i+1)^exponent``."""
    if not nodes:
        raise DistributionError("no nodes to place data on")
    weights = np.array(
        [1.0 / (i + 1) ** exponent for i in range(len(nodes))]
    )
    return place_by_weights(total, nodes, weights)


def place_single_heavy(
    total: int, nodes: Sequence[NodeId], *, heavy_fraction: float = 0.8,
    heavy_index: int = 0,
) -> dict:
    """One node holds ``heavy_fraction`` of the data, the rest share evenly.

    With ``heavy_fraction > 0.5`` this produces the ``max_v N_v > N/2``
    regime in which gathering everything at the heavy node is optimal
    (Algorithm 4 / the wTS short-circuit).
    """
    if not 0.0 <= heavy_fraction <= 1.0:
        raise DistributionError("heavy_fraction must be in [0, 1]")
    if not nodes:
        raise DistributionError("no nodes to place data on")
    heavy = int(round(total * heavy_fraction))
    sizes = {node: 0 for node in nodes}
    heavy_node = nodes[heavy_index % len(nodes)]
    sizes[heavy_node] = heavy
    rest = [n for n in nodes if n != heavy_node]
    if rest:
        for node, amount in place_uniform(total - heavy, rest).items():
            sizes[node] = amount
    else:
        sizes[heavy_node] = total
    return sizes


def place_proportional(
    total: int, nodes: Sequence[NodeId], weights: Mapping[NodeId, float]
) -> dict:
    """Sizes proportional to given per-node weights (e.g. link bandwidth)."""
    weight_list = np.array([float(weights[n]) for n in nodes])
    return place_by_weights(total, nodes, weight_list)


def placement_sizes(
    tree: TreeTopology,
    total: int,
    policy: str,
    nodes: Sequence[NodeId] | None = None,
    *,
    zipf_exponent: float = 1.0,
    heavy_fraction: float = 0.8,
) -> dict:
    """Per-node sizes for a named placement policy — the single dispatch.

    ``policy`` is one of ``uniform``, ``zipf``, ``single-heavy``,
    ``proportional`` (to compute-node uplink bandwidth, with infinite
    links weighted as if they carried the whole input).  Every
    generator that accepts a policy name routes through here.
    """
    if nodes is None:
        nodes = tree.left_to_right_compute_order()
    if policy == "uniform":
        return place_uniform(total, nodes)
    if policy == "zipf":
        return place_zipf(total, nodes, exponent=zipf_exponent)
    if policy == "single-heavy":
        return place_single_heavy(
            total, nodes, heavy_fraction=heavy_fraction
        )
    if policy == "proportional":
        uplinks = {
            n: tree.bandwidth(n, tree.neighbors(n)[0]) for n in nodes
        }
        finite = {
            n: (w if np.isfinite(w) else max(1.0, float(total)))
            for n, w in uplinks.items()
        }
        return place_proportional(total, nodes, finite)
    raise DistributionError(f"unknown placement policy {policy!r}")


def place_by_weights(
    total: int, nodes: Sequence[NodeId], weights: np.ndarray
) -> dict:
    """Largest-remainder apportionment of ``total`` by ``weights``."""
    if len(nodes) != len(weights):
        raise DistributionError("one weight per node required")
    weights = np.asarray(weights, dtype=np.float64)
    if np.any(weights < 0) or weights.sum() <= 0:
        raise DistributionError("weights must be non-negative, not all zero")
    exact = weights / weights.sum() * total
    floors = np.floor(exact).astype(np.int64)
    deficit = int(total - floors.sum())
    remainders = exact - floors
    order = np.argsort(-remainders, kind="stable")
    for i in range(deficit):
        floors[order[i]] += 1
    return {node: int(size) for node, size in zip(nodes, floors)}


# --------------------------------------------------------------------- #
# assembling distributions
# --------------------------------------------------------------------- #


def distribute(
    values: np.ndarray,
    sizes: PlacementSizes,
    *,
    tag: str,
    shuffle_seed: int | None = None,
) -> Distribution:
    """Place ``values`` on nodes according to per-node ``sizes``.

    Sizes must sum to ``len(values)``.  When ``shuffle_seed`` is given the
    values are shuffled first, decoupling fragment boundaries from value
    order; leave it ``None`` to preserve order (required by the
    adversarial sorted placement).
    """
    total = sum(sizes.values())
    if total != len(values):
        raise DistributionError(
            f"sizes sum to {total} but there are {len(values)} values"
        )
    data = np.asarray(values, dtype=np.int64)
    if shuffle_seed is not None:
        data = data.copy()
        np.random.default_rng(derive_seed(shuffle_seed, "distribute", tag)).shuffle(data)
    placements: dict = {}
    offset = 0
    for node, size in sizes.items():
        placements[node] = {tag: data[offset : offset + size]}
        offset += size
    return Distribution(placements)


def merge_distributions(*parts: Distribution) -> Distribution:
    """Combine distributions over disjoint relation tags."""
    placements: dict = {}
    seen_tags: set[str] = set()
    for part in parts:
        overlap = seen_tags & set(part.tags)
        if overlap:
            raise DistributionError(f"duplicate relation tags {sorted(overlap)}")
        seen_tags |= set(part.tags)
        for node in part.nodes:
            target = placements.setdefault(node, {})
            for tag in part.tags:
                fragment = part.fragment(node, tag)
                if len(fragment):
                    target[tag] = fragment
    return Distribution(placements)


def random_distribution(
    tree: TreeTopology,
    *,
    r_size: int,
    s_size: int,
    intersection_size: int | None = None,
    policy: str = "uniform",
    seed: int = 0,
    r_tag: str = "R",
    s_tag: str = "S",
    zipf_exponent: float = 1.0,
    heavy_fraction: float = 0.8,
) -> Distribution:
    """One-call workload: an ``(R, S)`` pair placed by a named policy.

    ``policy`` is one of ``uniform``, ``zipf``, ``single-heavy``,
    ``proportional`` (to compute-node uplink bandwidth).
    """
    nodes = tree.left_to_right_compute_order()
    r_values, s_values = make_set_pair(
        r_size, s_size, intersection_size=intersection_size, seed=seed
    )

    def sizes_for(total: int) -> dict:
        return placement_sizes(
            tree,
            total,
            policy,
            nodes,
            zipf_exponent=zipf_exponent,
            heavy_fraction=heavy_fraction,
        )

    r_part = distribute(
        r_values,
        sizes_for(r_size),
        tag=r_tag,
        shuffle_seed=derive_seed(seed, "place-R"),
    )
    s_part = distribute(
        s_values,
        sizes_for(s_size),
        tag=s_tag,
        shuffle_seed=derive_seed(seed, "place-S"),
    )
    return merge_distributions(r_part, s_part)


def random_tuple_distribution(
    tree: TreeTopology,
    *,
    r_size: int,
    s_size: int,
    key_space: int | None = None,
    payload_bits: int = 20,
    policy: str = "uniform",
    seed: int = 0,
    r_tag: str = "R",
    s_tag: str = "S",
) -> Distribution:
    """Keyed-tuple workload for the multi-input tasks (join, group-by).

    Both relations hold ``(key, payload)`` tuples packed by
    :func:`repro.queries.tuples.encode_tuples`, with keys uniform in
    ``[0, key_space)`` (default: ``max(r_size, s_size) // 2``, giving a
    join selectivity of a few matches per key) and random payloads.
    Placement policies are the same as :func:`random_distribution`.
    """
    # Imported here: repro.queries imports this module's placement
    # helpers, so a top-level import would be circular.
    from repro.queries.tuples import encode_tuples

    if key_space is None:
        key_space = max(1, max(r_size, s_size) // 2)
    nodes = tree.left_to_right_compute_order()
    rng = np.random.default_rng(derive_seed(seed, "tuple-pair"))
    # Payload values stay small so per-key aggregates (sums of all of a
    # key's payloads) still fit the payload width — the group-by
    # protocols ship partial sums re-encoded at the same width.
    payload_limit = min(1 << payload_bits, 1024)

    def encoded(total: int) -> np.ndarray:
        keys = rng.integers(0, key_space, size=total)
        payloads = rng.integers(0, payload_limit, size=total)
        return encode_tuples(keys, payloads, payload_bits=payload_bits)

    r_part = distribute(
        encoded(r_size), placement_sizes(tree, r_size, policy, nodes), tag=r_tag
    )
    s_part = distribute(
        encoded(s_size), placement_sizes(tree, s_size, policy, nodes), tag=s_tag
    )
    return merge_distributions(r_part, s_part)


# --------------------------------------------------------------------- #
# graph workloads
# --------------------------------------------------------------------- #


def gnm_random_graph(
    num_vertices: int, num_edges: int, *, seed: int = 0
) -> np.ndarray:
    """A uniform simple graph ``G(n, m)``: ``(m, 2)`` edges, ``src < dst``.

    Edges are distinct uniform samples from all ``n (n - 1) / 2``
    vertex pairs; deterministic in ``seed``.
    """
    if num_vertices < 0 or num_edges < 0:
        raise DistributionError("graph sizes must be non-negative")
    max_edges = num_vertices * (num_vertices - 1) // 2
    if num_edges > max_edges:
        raise DistributionError(
            f"{num_edges} edges requested but a simple graph on "
            f"{num_vertices} vertices has at most {max_edges}"
        )
    if num_edges == 0:
        return np.empty((0, 2), np.int64)
    rng = np.random.default_rng(derive_seed(seed, "gnm"))
    # Sample edge *indices* without replacement from the upper triangle,
    # then invert the row-major pair numbering — exact and vectorised.
    chosen = rng.choice(max_edges, size=num_edges, replace=False).astype(
        np.int64
    )
    # Pair k maps to (u, v): u is the largest integer with
    # u*(2n - u - 1)/2 <= k; solve by binary search over the offsets.
    offsets = np.cumsum(
        np.arange(num_vertices - 1, 0, -1, dtype=np.int64)
    )  # offsets[u] = #pairs with src <= u
    src = np.searchsorted(offsets, chosen, side="right")
    base = np.where(src > 0, offsets[src - 1], 0)
    dst = src + 1 + (chosen - base)
    return np.stack([src, dst], axis=1)


def powerlaw_graph(
    num_vertices: int,
    num_edges: int,
    *,
    exponent: float = 2.0,
    seed: int = 0,
    max_attempts: int = 64,
) -> np.ndarray:
    """A heavy-tailed simple graph: endpoints drawn with Zipfian weights.

    Vertex ``i`` is sampled with probability proportional to
    ``(i + 1) ** -exponent``, so low-numbered vertices become hubs —
    the skewed-degree regime where placement-aware shuffles matter
    most.  Self-loops and duplicates are rejected and resampled;
    raises :class:`DistributionError` if ``num_edges`` distinct edges
    cannot be found in ``max_attempts`` batches.
    """
    if exponent < 0:
        raise DistributionError("exponent must be non-negative")
    max_edges = num_vertices * (num_vertices - 1) // 2
    if num_edges > max_edges:
        raise DistributionError(
            f"{num_edges} edges requested but a simple graph on "
            f"{num_vertices} vertices has at most {max_edges}"
        )
    if num_edges == 0:
        return np.empty((0, 2), np.int64)
    rng = np.random.default_rng(derive_seed(seed, "powerlaw"))
    weights = (np.arange(1, num_vertices + 1, dtype=np.float64)) ** -exponent
    weights /= weights.sum()
    found = np.empty((0, 2), np.int64)
    for _ in range(max_attempts):
        batch = rng.choice(
            num_vertices, size=(2 * num_edges, 2), p=weights
        ).astype(np.int64)
        batch = batch[batch[:, 0] != batch[:, 1]]
        lo = np.minimum(batch[:, 0], batch[:, 1])
        hi = np.maximum(batch[:, 0], batch[:, 1])
        found = np.unique(
            np.concatenate([found, np.stack([lo, hi], axis=1)]), axis=0
        )
        if len(found) >= num_edges:
            # Keep a deterministic uniform subsample of the distinct
            # edges found so far, preserving the degree skew.
            keep = rng.choice(len(found), size=num_edges, replace=False)
            return found[np.sort(keep)]
    raise DistributionError(
        f"could not draw {num_edges} distinct power-law edges "
        f"(exponent {exponent}) in {max_attempts} batches; "
        "lower the exponent or the edge count"
    )


def planted_components_graph(
    num_components: int,
    component_size: int,
    *,
    intra_edges: int | None = None,
    seed: int = 0,
) -> np.ndarray:
    """Disjoint planted components, each connected by construction.

    Component ``i`` owns the vertex block ``[i * component_size,
    (i + 1) * component_size)`` and holds a random spanning tree plus
    ``intra_edges`` extra random intra-block edges (default:
    ``component_size``), so a correct connectivity algorithm must
    recover exactly the blocks — the ground truth the property tests
    assert.
    """
    if num_components < 1 or component_size < 2:
        raise DistributionError(
            "need at least one component of at least two vertices"
        )
    if intra_edges is None:
        intra_edges = component_size
    parts = []
    for index in range(num_components):
        offset = index * component_size
        rng = np.random.default_rng(
            derive_seed(seed, "planted", index)
        )
        # Random spanning tree: attach each vertex to a random earlier one.
        order = rng.permutation(component_size).astype(np.int64)
        attach = np.array(
            [order[rng.integers(0, i)] for i in range(1, component_size)],
            dtype=np.int64,
        )
        tree_edges = np.stack([order[1:], attach], axis=1)
        extra = rng.integers(
            0, component_size, size=(intra_edges, 2)
        ).astype(np.int64)
        extra = extra[extra[:, 0] != extra[:, 1]]
        block = np.concatenate([tree_edges, extra]) + offset
        lo = np.minimum(block[:, 0], block[:, 1])
        hi = np.maximum(block[:, 0], block[:, 1])
        parts.append(np.unique(np.stack([lo, hi], axis=1), axis=0))
    return np.concatenate(parts)


GRAPH_KINDS = ("gnm", "powerlaw", "planted")


def random_graph_distribution(
    tree: TreeTopology,
    *,
    num_edges: int,
    num_vertices: int | None = None,
    kind: str = "gnm",
    policy: str = "uniform",
    seed: int = 0,
    tag: str = "E",
    exponent: float = 2.0,
    num_components: int = 4,
) -> Distribution:
    """One-call graph workload: edges generated and placed by policy.

    ``kind`` picks the generator (``gnm`` / ``powerlaw`` / ``planted``)
    and ``policy`` the placement regime, mirroring
    :func:`random_distribution` for relations.  Returns the placed
    edge distribution (tag ``"E"``); wrap it in
    :class:`repro.graphs.PlacedGraph` for the graph accessors.
    """
    # Imported here: repro.graphs builds on this module's placement
    # helpers, so a top-level import would be circular.
    from repro.graphs.model import PlacedGraph

    if num_vertices is None:
        # The default must admit a simple graph: the smallest n with
        # n(n-1)/2 >= num_edges, but at least num_edges // 2 so typical
        # instances stay sparse (average degree ~4).
        import math

        feasible = (1 + math.isqrt(1 + 8 * num_edges)) // 2
        while feasible * (feasible - 1) // 2 < num_edges:
            feasible += 1
        num_vertices = max(4, num_edges // 2, feasible)
    if kind == "gnm":
        edges = gnm_random_graph(num_vertices, num_edges, seed=seed)
    elif kind == "powerlaw":
        edges = powerlaw_graph(
            num_vertices, num_edges, exponent=exponent, seed=seed
        )
    elif kind == "planted":
        size = max(2, num_vertices // max(num_components, 1))
        edges = planted_components_graph(
            num_components, size, seed=seed
        )
    else:
        raise DistributionError(
            f"unknown graph kind {kind!r}; choose from {GRAPH_KINDS}"
        )
    return PlacedGraph.from_edges(
        tree,
        edges,
        num_vertices=num_vertices,
        policy=policy,
        seed=seed,
        tag=tag,
    ).distribution


def adversarial_sorted_distribution(
    tree: TreeTopology,
    sizes: PlacementSizes | None = None,
    *,
    total: int | None = None,
    tag: str = "R",
    root: NodeId | None = None,
) -> Distribution:
    """The adversarial placement from the proof of Theorem 6 (Figure 5).

    Values ``1..N`` are laid out in the sequence
    ``r1, r3, ..., r2, r4, ...`` (all odd ranks, then all even ranks) and
    dealt to compute nodes in left-to-right traversal order, each node
    taking ``sizes[v]`` consecutive entries.  Any correct sort must then
    move, across every link, a constant fraction of the lighter side's
    data — making this the placement on which the Theorem 6 lower bound
    is tight.

    Provide either explicit per-node ``sizes`` or a ``total`` to split
    uniformly.
    """
    order = tree.left_to_right_compute_order(root)
    if sizes is None:
        if total is None:
            raise DistributionError("provide sizes or total")
        sizes = place_uniform(total, order)
    n = sum(sizes.values())
    odd_ranks = np.arange(1, n + 1, 2, dtype=np.int64)
    even_ranks = np.arange(2, n + 1, 2, dtype=np.int64)
    sequence = np.concatenate([odd_ranks, even_ranks])
    ordered_sizes = {node: int(sizes.get(node, 0)) for node in order}
    extra = set(sizes) - set(order)
    if extra:
        raise DistributionError(
            f"sizes given for unknown compute nodes {sorted(map(str, extra))}"
        )
    return distribute(sequence, ordered_sizes, tag=tag)

"""Input data substrate: relation fragments placed on compute nodes.

The paper departs from prior MPC work by making the *initial data
placement* a first-class input: every algorithm and every lower bound is
parameterised by the per-node fragment sizes ``N_v``.  This package holds
the :class:`~repro.data.distribution.Distribution` container (placement +
statistics) and generators for the placement regimes the paper's analyses
distinguish, including the adversarial interleaved placement used in the
proof of the sorting lower bound (Theorem 6).
"""

from repro.data.distribution import Distribution
from repro.data.generators import (
    adversarial_sorted_distribution,
    distribute,
    make_set_pair,
    make_sort_input,
    place_proportional,
    place_single_heavy,
    place_uniform,
    place_zipf,
    random_distribution,
    random_tuple_distribution,
)

__all__ = [
    "Distribution",
    "make_set_pair",
    "make_sort_input",
    "distribute",
    "place_uniform",
    "place_zipf",
    "place_single_heavy",
    "place_proportional",
    "adversarial_sorted_distribution",
    "random_distribution",
    "random_tuple_distribution",
]

"""Array-valued protocol outputs: parallel key/value columns per node.

Group-by style protocols historically reported ``outputs[node]`` as a
``{int: int}`` dict — built by boxing every aggregated key and value
into Python ints, and unboxed right back into arrays by every consumer
(the plan executor re-collects fragments, hash-to-min re-scatters its
labels every superstep).  :class:`KeyValueArrays` is the columnar
replacement: the sorted unique keys and their values stay the int64
arrays the kernels produced, zero-copy end to end, while the class
remains a :class:`collections.abc.Mapping` — ``len``, ``in``,
``[key]``, ``.items()``, and ``== {…}`` all behave exactly like the
dict they replace, so existing verifiers and tests keep working
unchanged (the compatibility view the data-plane contract promises).
"""

from __future__ import annotations

from typing import Iterator, Mapping

import numpy as np

from repro.errors import ProtocolError


def _as_column(values, what: str) -> np.ndarray:
    array = np.asarray(values, dtype=np.int64)
    if array.ndim != 1:
        raise ProtocolError(f"{what} must be a one-dimensional array")
    view = array.view()
    view.setflags(write=False)
    return view


class KeyValueArrays(Mapping):
    """A sorted ``{key: value}`` mapping backed by parallel int64 arrays.

    ``keys`` must be strictly increasing (sorted, unique) — the shape
    every aggregation kernel in the package already emits
    (:func:`~repro.queries.aggregate.combine_per_key` returns sorted
    unique keys) — so membership and lookup are ``searchsorted``, and
    consumers that want columns read :attr:`keys_array` /
    :attr:`values_array` without any conversion.
    """

    __slots__ = ("_keys", "_values")

    def __init__(self, keys, values) -> None:
        self._keys = _as_column(keys, "keys")
        self._values = _as_column(values, "values")
        if len(self._keys) != len(self._values):
            raise ProtocolError(
                f"{len(self._keys)} keys but {len(self._values)} values"
            )
        if len(self._keys) > 1 and not np.all(np.diff(self._keys) > 0):
            raise ProtocolError(
                "keys must be strictly increasing (sorted and unique)"
            )

    @classmethod
    def empty(cls) -> "KeyValueArrays":
        return cls(np.empty(0, np.int64), np.empty(0, np.int64))

    @classmethod
    def from_dict(cls, mapping: Mapping) -> "KeyValueArrays":
        """Build from any ``{int: int}`` mapping (sorts by key)."""
        keys = np.fromiter(mapping.keys(), np.int64, len(mapping))
        values = np.fromiter(mapping.values(), np.int64, len(mapping))
        order = np.argsort(keys, kind="stable")
        return cls(keys[order], values[order])

    # ------------------------------------------------------------------ #
    # columnar surface (the zero-copy path)
    # ------------------------------------------------------------------ #

    @property
    def keys_array(self) -> np.ndarray:
        """The sorted unique keys as a read-only int64 column."""
        return self._keys

    @property
    def values_array(self) -> np.ndarray:
        """Values parallel to :attr:`keys_array` (read-only)."""
        return self._values

    # ------------------------------------------------------------------ #
    # Mapping surface (the dict-compatibility view)
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._keys)

    def __iter__(self) -> Iterator[int]:
        return iter(self._keys.tolist())

    def _position(self, key) -> int:
        index = int(np.searchsorted(self._keys, key))
        if index < len(self._keys) and self._keys[index] == key:
            return index
        return -1

    def __contains__(self, key) -> bool:
        try:
            return self._position(key) >= 0
        except (TypeError, ValueError):
            return False

    def __getitem__(self, key) -> int:
        index = self._position(key)
        if index < 0:
            raise KeyError(key)
        return int(self._values[index])

    def items(self):
        return list(zip(self._keys.tolist(), self._values.tolist()))

    def values(self):
        return self._values.tolist()

    def to_dict(self) -> dict:
        """An actual ``{int: int}`` dict (for callers that must have one)."""
        return dict(self.items())

    def __eq__(self, other) -> bool:
        if isinstance(other, KeyValueArrays):
            return np.array_equal(
                self._keys, other._keys
            ) and np.array_equal(self._values, other._values)
        if isinstance(other, Mapping):
            if len(other) != len(self._keys):
                return False
            return all(
                key in other and other[key] == value
                for key, value in self.items()
            )
        return NotImplemented

    def __ne__(self, other) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    __hash__ = None  # mapping peers compare by content, never hash

    def __repr__(self) -> str:
        preview = ", ".join(
            f"{k}: {v}" for k, v in list(self.items())[:4]
        )
        suffix = ", ..." if len(self) > 4 else ""
        return f"KeyValueArrays({{{preview}{suffix}}}, n={len(self)})"

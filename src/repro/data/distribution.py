"""Initial data placement across compute nodes.

A :class:`Distribution` records, for each compute node, the fragment of
each relation it initially holds (the paper's ``X_0(v)``), and exposes the
statistics the algorithms are allowed to know in advance: the topology,
the link bandwidths, and the per-node, per-relation cardinalities
(Section 2, "Computation").  Elements are 64-bit integers — the paper's
sets are drawn from an abstract ordered domain, and integers exercise
exactly the same code paths while keeping hashing and sorting vectorised.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping

import numpy as np

from repro.errors import DistributionError
from repro.topology.tree import NodeId, TreeTopology, node_sort_key


_EMPTY = np.empty(0, np.int64)
_EMPTY.setflags(write=False)


def _as_fragment(values) -> np.ndarray:
    array = np.asarray(values, dtype=np.int64)
    if array.ndim != 1:
        raise DistributionError(
            f"relation fragments must be one-dimensional, got shape {array.shape}"
        )
    view = array.view()
    view.setflags(write=False)
    return view


class Distribution:
    """Per-node relation fragments, with the statistics protocols may use.

    Parameters
    ----------
    placements:
        ``{node: {relation_tag: fragment}}``.  Fragments are 1-D integer
        arrays (anything ``np.asarray`` accepts).  Nodes with no data may
        be omitted or mapped to empty dicts.

    The container is immutable: fragments are stored and served as
    read-only views (never copied — the zero-copy handoff between plan
    stages and cluster seeding rides on this), and derivation methods
    (:meth:`remap`, :meth:`restrict`) return new instances sharing the
    same underlying arrays.
    """

    def __init__(
        self, placements: Mapping[NodeId, Mapping[str, Iterable[int]]]
    ) -> None:
        self._fragments: dict[NodeId, dict[str, np.ndarray]] = {}
        tags: set[str] = set()
        for node, relations in placements.items():
            node_fragments: dict[str, np.ndarray] = {}
            for tag, values in relations.items():
                fragment = _as_fragment(values)
                node_fragments[str(tag)] = fragment
                tags.add(str(tag))
            self._fragments[node] = node_fragments
        self._tags = frozenset(tags)

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #

    @property
    def tags(self) -> frozenset:
        """The relation names present anywhere in the placement."""
        return self._tags

    @property
    def nodes(self) -> frozenset:
        """Nodes that appear in the placement (possibly with empty data)."""
        return frozenset(self._fragments)

    def fragment(self, node: NodeId, tag: str) -> np.ndarray:
        """The fragment of relation ``tag`` initially on ``node``.

        Returned as a **read-only zero-copy view** of the stored column;
        callers that need to mutate must ``.copy()`` explicitly.

        Tags are stored under their string form (``__init__`` and the
        cluster both normalize with ``str``), so lookups normalize too —
        a non-string tag must find the data it was stored under, not
        silently read as empty.
        """
        return self._fragments.get(node, {}).get(str(tag), _EMPTY)

    def size(self, node: NodeId, tag: str | None = None) -> int:
        """``|R_v|`` for one relation, or ``N_v`` summed over relations."""
        relations = self._fragments.get(node, {})
        if tag is not None:
            return int(len(relations.get(str(tag), ())))
        return int(sum(len(f) for f in relations.values()))

    def sizes(self, tag: str | None = None) -> dict:
        """Per-node sizes as a plain dict (zero-size nodes included)."""
        return {node: self.size(node, tag) for node in self._fragments}

    def total(self, tag: str | None = None) -> int:
        """Total number of elements, for one relation or overall (``N``)."""
        return sum(self.size(node, tag) for node in self._fragments)

    def relation(self, tag: str) -> np.ndarray:
        """All elements of relation ``tag``, concatenated in node order."""
        tag = str(tag)
        parts = [
            self._fragments[node].get(tag, np.empty(0, np.int64))
            for node in sorted(self._fragments, key=node_sort_key)
        ]
        if not parts:
            return np.empty(0, np.int64)
        return np.concatenate(parts)

    # ------------------------------------------------------------------ #
    # validation
    # ------------------------------------------------------------------ #

    def validate_for(self, tree: TreeTopology) -> None:
        """Check the placement only uses compute nodes of ``tree``."""
        strays = self.nodes - tree.compute_nodes
        nonempty_strays = [n for n in strays if self.size(n) > 0]
        if nonempty_strays:
            raise DistributionError(
                "data placed on non-compute nodes: "
                f"{sorted(map(str, nonempty_strays))}"
            )

    def require_partition(self, tag: str) -> None:
        """Check relation ``tag`` has no element on two nodes (Section 2).

        The model assumes the initial fragments partition the input with
        no duplication; set-valued tasks additionally need global element
        uniqueness, which this enforces.
        """
        full = self.relation(tag)
        if len(np.unique(full)) != len(full):
            raise DistributionError(
                f"relation {tag!r} contains duplicated elements; initial "
                "fragments must partition a set"
            )

    # ------------------------------------------------------------------ #
    # derivation
    # ------------------------------------------------------------------ #

    def remap(self, node_map: Mapping[NodeId, NodeId]) -> "Distribution":
        """Relocate fragments according to ``node_map`` (for normalization).

        Nodes not mentioned in ``node_map`` keep their placement.  Two old
        nodes must not map to the same new node.
        """
        targets = [node_map.get(n, n) for n in self._fragments]
        if len(set(targets)) != len(targets):
            raise DistributionError("node_map merges two placements")
        return Distribution(
            {
                node_map.get(node, node): dict(relations)
                for node, relations in self._fragments.items()
            }
        )

    def restrict(self, tags: Iterable[str]) -> "Distribution":
        """Keep only the given relations."""
        keep = {str(t) for t in tags}
        return Distribution(
            {
                node: {
                    tag: fragment
                    for tag, fragment in relations.items()
                    if tag in keep
                }
                for node, relations in self._fragments.items()
            }
        )

    def with_fragment(
        self, node: NodeId, tag: str, values: Iterable[int]
    ) -> "Distribution":
        """Return a new instance with one fragment replaced.

        Unchanged fragments are shared (read-only), not copied.
        """
        updated: dict = {
            n: dict(relations) for n, relations in self._fragments.items()
        }
        updated.setdefault(node, {})[str(tag)] = _as_fragment(values)
        return Distribution(updated)

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #

    def describe(self) -> str:
        """A one-line-per-node summary of the placement."""
        lines = []
        for node in sorted(self._fragments, key=node_sort_key):
            counts = ", ".join(
                f"|{tag}_v|={len(fragment)}"
                for tag, fragment in sorted(self._fragments[node].items())
            )
            lines.append(f"{node}: {counts or 'empty'}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"Distribution(nodes={len(self._fragments)}, "
            f"tags={sorted(self._tags)}, total={self.total()})"
        )

"""Command-line entry point: reproduce the paper's results from a shell.

Usage::

    python -m repro table1              # the Table 1 suite
    python -m repro compare             # topology-aware vs baselines
    python -m repro topology            # draw the builder topologies
    python -m repro table1 --r-size 2000 --s-size 2000 --seed 7

Each command prints the same plain-text tables the benchmark harness
records, so the headline claims can be checked without pytest.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.report import aggregate, summarize_reports
from repro.analysis.runner import run_cartesian, run_intersection, run_sorting
from repro.analysis.suites import instance_grid, standard_topologies
from repro.data.generators import random_distribution
from repro.topology.builders import star, two_level
from repro.topology.render import ascii_tree
from repro.util.text import render_table


def _cmd_table1(args: argparse.Namespace) -> int:
    reports = []
    for tree, policy, dist in instance_grid(
        r_size=args.r_size, s_size=args.s_size, seed=args.seed
    ):
        reports.append(
            run_intersection(tree, dist, placement=policy, seed=args.seed)
        )
        reports.append(run_cartesian(tree, dist, placement=policy))
        reports.append(
            run_sorting(tree, dist, placement=policy, seed=args.seed)
        )
    if args.verbose:
        print(summarize_reports(reports, title="All runs"))
        print()
    summary = aggregate(reports)
    rows = [
        [
            task,
            stats["runs"],
            stats["max_rounds"],
            f"{stats['max_ratio']:.2f}",
            f"{stats['mean_ratio']:.2f}",
        ]
        for task, stats in summary.items()
    ]
    print(
        render_table(
            ["task", "runs", "max rounds", "max ratio", "mean ratio"],
            rows,
            title=(
                "Table 1 reproduction "
                f"(|R|={args.r_size}, |S|={args.s_size}, seed={args.seed})"
            ),
        )
    )
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    tree = two_level(
        [4, 4],
        leaf_bandwidth=[8.0, 1.0],
        uplink_bandwidth=[8.0, 1.0],
        name="hetero two-level",
    )
    dist = random_distribution(
        tree,
        r_size=args.r_size,
        s_size=args.s_size,
        policy="proportional",
        seed=args.seed,
    )
    rows = []
    for task, aware_protocol, base_protocol, runner in (
        ("intersection", "tree", "uniform-hash", run_intersection),
        ("cartesian", "tree", "classic-hypercube", run_cartesian),
        ("sorting", "wts", "terasort", run_sorting),
    ):
        kwargs = {"seed": args.seed} if task != "cartesian" else {}
        aware = runner(tree, dist, protocol=aware_protocol, **kwargs)
        base = runner(tree, dist, protocol=base_protocol, **kwargs)
        rows.append(
            [
                task,
                f"{aware.cost:.0f}",
                f"{base.cost:.0f}",
                f"{base.cost / aware.cost:.2f}x",
            ]
        )
    print(
        render_table(
            ["task", "topology-aware", "MPC-style baseline", "speedup"],
            rows,
            title=f"Head-to-head on {tree.name} "
            f"(|R|={args.r_size}, |S|={args.s_size})",
        )
    )
    return 0


def _cmd_topology(args: argparse.Namespace) -> int:
    for tree in standard_topologies(include_random=False):
        print(f"== {tree.name} ==")
        print(ascii_tree(tree))
        print()
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Topology-aware MPC reproduction (PODS 2021)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--r-size", type=int, default=2_000)
    parser.add_argument("--s-size", type=int, default=2_000)
    parser.add_argument(
        "--verbose", action="store_true", help="print per-instance rows"
    )
    parser.add_argument(
        "command",
        choices=["table1", "compare", "topology"],
        help="which reproduction to run",
    )
    args = parser.parse_args(argv)
    handlers = {
        "table1": _cmd_table1,
        "compare": _cmd_compare,
        "topology": _cmd_topology,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())

"""Command-line entry point: reproduce the paper's results from a shell.

Usage::

    python -m repro table1              # the Table 1 suite
    python -m repro compare             # topology-aware vs baselines
    python -m repro topology            # draw the builder topologies
    python -m repro protocols           # the registered protocol catalog
    python -m repro plan --explain      # planner vs gather/worst-order
    python -m repro graphs              # graph workloads vs baselines
    python -m repro bench speed         # bulk-exchange A/B wall-clock
    python -m repro bench scale         # process-substrate scaling grid
    python -m repro bench serve         # cold vs warm session A/B
    python -m repro serve --queries 500 # warm-session serving (one session)
    python -m repro table1 --r-size 2000 --s-size 2000 --seed 7
    python -m repro compare --backend process --num-workers 4

Each command prints the same plain-text tables the benchmark harness
records, so the headline claims can be checked without pytest;
``protocols``, ``compare`` and ``graphs`` take ``--json`` for
machine-consumable output.

Tracing: ``python -m repro trace cc --backend process`` runs one task
under the :mod:`repro.obs` tracer and writes a Chrome-trace JSON
(load it at ``chrome://tracing`` or https://ui.perfetto.dev), and every
other command accepts ``--trace FILE`` to record whatever it runs.

Observability: ``python -m repro metrics cc`` runs one task under the
metrics registry and prints the Prometheus exposition text (``--json``
for the raw snapshot, ``--output FILE`` to write it); every other
command accepts ``--metrics FILE`` for the same snapshot and
``--audit {record,strict}`` to check each simulated round against the
Section-2 cost model.  ``python -m repro bench check`` replays the
committed ``BENCH_*.json`` trajectories through the regression
sentinel (:mod:`repro.obs.regress`) and exits non-zero on a
regression.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.report import aggregate, summarize_reports
from repro.analysis.suites import (
    ALL_SUITE_TASKS,
    standard_plans,
    standard_topologies,
)
from repro.data.generators import random_distribution
from repro.engine import run, run_many
from repro.errors import ReproError
from repro.registry import list_protocols, tasks
from repro.topology.builders import two_level
from repro.topology.render import ascii_tree
from repro.util.text import render_table


def _cmd_table1(args: argparse.Namespace) -> int:
    plans = standard_plans(
        r_size=args.r_size,
        s_size=args.s_size,
        seed=args.seed,
        tasks=ALL_SUITE_TASKS,
    )
    if args.backend != "sim":
        for plan in plans:
            plan.backend = args.backend
            plan.num_workers = args.num_workers
    reports = run_many(plans, workers=args.workers, executor=args.executor)
    if args.verbose:
        print(summarize_reports(reports, title="All runs"))
        print()
    summary = aggregate(reports)
    fmt = lambda value: "n/a" if value is None else f"{value:.2f}"
    rows = [
        [
            task,
            stats["runs"],
            stats["max_rounds"],
            fmt(stats["max_ratio"]),
            fmt(stats["mean_ratio"]),
            fmt(stats["wall_s"]),
        ]
        for task, stats in summary.items()
    ]
    print(
        render_table(
            [
                "task",
                "runs",
                "max rounds",
                "max ratio",
                "mean ratio",
                "wall s",
            ],
            rows,
            title=(
                "Table 1 reproduction "
                f"(|R|={args.r_size}, |S|={args.s_size}, seed={args.seed})"
            ),
        )
    )
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    tree = two_level(
        [4, 4],
        leaf_bandwidth=[8.0, 1.0],
        uplink_bandwidth=[8.0, 1.0],
        name="hetero two-level",
    )
    dist = random_distribution(
        tree,
        r_size=args.r_size,
        s_size=args.s_size,
        policy="proportional",
        seed=args.seed,
    )
    rows = []
    reports = []
    for task, aware_protocol, base_protocol in (
        ("set-intersection", "tree", "uniform-hash"),
        ("cartesian-product", "tree", "classic-hypercube"),
        ("sorting", "wts", "terasort"),
    ):
        backend_opts = (
            {"backend": args.backend, "num_workers": args.num_workers}
            if args.backend != "sim"
            else {}
        )
        aware = run(
            task,
            tree,
            dist,
            protocol=aware_protocol,
            seed=args.seed,
            **backend_opts,
        )
        base = run(
            task,
            tree,
            dist,
            protocol=base_protocol,
            seed=args.seed,
            **backend_opts,
        )
        reports.extend([aware, base])
        fmt_wall = lambda r: (
            "n/a" if r.wall_time_s is None else f"{r.wall_time_s:.3f}"
        )
        rows.append(
            [
                task,
                f"{aware.cost:.0f}",
                f"{base.cost:.0f}",
                f"{base.cost / aware.cost:.2f}x",
                f"{fmt_wall(aware)}/{fmt_wall(base)}",
            ]
        )
    if args.json:
        print(json.dumps([r.to_dict() for r in reports], indent=2))
        return 0
    print(
        render_table(
            [
                "task",
                "topology-aware",
                "MPC-style baseline",
                "speedup",
                "wall s (aware/base)",
            ],
            rows,
            title=f"Head-to-head on {tree.name} "
            f"(|R|={args.r_size}, |S|={args.s_size})",
        )
    )
    return 0


def _cmd_topology(args: argparse.Namespace) -> int:
    for tree in standard_topologies(include_random=False):
        print(f"== {tree.name} ==")
        print(ascii_tree(tree))
        print()
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    """Run a multi-relation chain join across the standard suite."""
    from repro.plan import chain_catalog, chain_query, optimize
    from repro.plan.executor import execute_plan

    query = chain_query(args.relations)
    rows = []
    for tree in standard_topologies():
        catalog = chain_catalog(
            tree,
            num_relations=args.relations,
            rows=args.rows,
            seed=args.seed,
            policy=args.placement,
        )
        reports = {}
        for strategy in ("optimized", "gather", "worst-order"):
            physical = optimize(query, tree, catalog, strategy=strategy)
            reports[strategy] = execute_plan(
                physical, tree, catalog, seed=args.seed
            )
            if args.explain and strategy == "optimized":
                print(physical.explain())
                print()
        optimized = reports["optimized"]
        rows.append(
            [
                tree.name,
                f"{optimized.cost:.0f}",
                f"{optimized.estimated_cost:.0f}",
                f"{reports['gather'].cost:.0f}",
                f"{reports['worst-order'].cost:.0f}",
                f"{reports['gather'].cost / max(optimized.cost, 1e-9):.2f}x",
            ]
        )
    print(
        render_table(
            [
                "topology",
                "optimized",
                "estimated",
                "gather-everything",
                "worst-order",
                "speedup vs gather",
            ],
            rows,
            title=(
                f"Query planner: {args.relations}-relation chain join, "
                f"{args.rows} rows/relation, {args.placement} placement"
            ),
        )
    )
    return 0


def _cmd_graphs(args: argparse.Namespace) -> int:
    """Graph workloads: topology-aware vs baseline, per suite topology."""
    from repro.data.generators import random_graph_distribution
    from repro.graphs import run_components, run_triangles

    rows = []
    reports = []
    for tree in standard_topologies(include_random=False):
        dist = random_graph_distribution(
            tree,
            num_edges=args.edges,
            policy=args.placement,
            seed=args.seed,
        )
        cells = {}
        for task_label, runner, protocols in (
            ("cc", run_components, ("tree", "uniform-hash", "gather")),
            ("tri", run_triangles, ("optimized", "uniform-hash", "gather")),
        ):
            if not args.json:
                # the text table shows aware vs uniform-hash only; skip
                # the gather runs unless the JSON dump will carry them
                protocols = protocols[:2]
            for protocol in protocols:
                report = runner(
                    tree,
                    dist,
                    protocol=protocol,
                    seed=args.seed,
                    placement=args.placement,
                )
                cells[(task_label, protocol)] = report
                reports.append(report)
        cc_aware = cells[("cc", "tree")]
        cc_base = cells[("cc", "uniform-hash")]
        tri_aware = cells[("tri", "optimized")]
        tri_base = cells[("tri", "uniform-hash")]
        rows.append(
            [
                tree.name,
                f"{cc_aware.cost:.0f}",
                f"{cc_base.cost:.0f}",
                f"{cc_base.cost / max(cc_aware.cost, 1e-9):.2f}x",
                cc_aware.num_supersteps,
                f"{tri_aware.cost:.0f}",
                f"{tri_base.cost:.0f}",
                f"{tri_base.cost / max(tri_aware.cost, 1e-9):.2f}x",
            ]
        )
    if args.json:
        print(json.dumps([r.to_dict() for r in reports], indent=2))
        return 0
    print(
        render_table(
            [
                "topology",
                "cc tree",
                "cc uniform-hash",
                "cc speedup",
                "cc steps",
                "tri optimized",
                "tri uniform-hash",
                "tri speedup",
            ],
            rows,
            title=(
                f"Graph workloads ({args.edges} edges, "
                f"{args.placement} placement, seed={args.seed})"
            ),
        )
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Serve a mixed query workload through one warm session."""
    import time

    from repro.analysis.serve import build_workload
    from repro.analysis.speed import fat_tree
    from repro.session import EngineSession

    tree = fat_tree(args.racks)
    workload, distributions, (catalog, plan_queries) = build_workload(
        tree, args.queries, seed=args.seed
    )
    backend = None if args.backend == "sim" else args.backend
    num_workers = args.num_workers if backend == "process" else None
    start = time.perf_counter()
    task_count = plan_count = 0
    total_cost = 0.0
    with EngineSession(
        tree, catalog=catalog, backend=backend, num_workers=num_workers
    ) as session:
        for query in workload:
            if query.kind == "task":
                report = session.run(
                    query.task,
                    distributions[query.distribution_index],
                    seed=query.seed,
                )
                task_count += 1
            else:
                report = session.run_plan(
                    plan_queries[query.query_index], seed=query.seed
                )
                plan_count += 1
            total_cost += report.cost
        summary = session.summary()
    elapsed = time.perf_counter() - start
    qps = len(workload) / elapsed if elapsed else 0.0
    if args.json:
        print(
            json.dumps(
                {
                    "topology": tree.name,
                    "queries": len(workload),
                    "task_queries": task_count,
                    "plan_queries": plan_count,
                    "seconds": round(elapsed, 6),
                    "qps": round(qps, 2),
                    "total_cost": total_cost,
                    "session": summary,
                },
                indent=2,
            )
        )
        return 0
    artifact = summary["artifact_cache"]
    plan_cache = summary["plan_cache"]
    print(
        render_table(
            [
                "queries",
                "task/plan",
                "seconds",
                "qps",
                "artifact hits/misses",
                "plan hits/misses",
            ],
            [
                [
                    len(workload),
                    f"{task_count}/{plan_count}",
                    f"{elapsed:.2f}",
                    f"{qps:.1f}",
                    f"{artifact['hits']}/{artifact['misses']}",
                    f"{plan_cache['hits']}/{plan_cache['misses']}",
                ]
            ],
            title=(
                f"Warm session serving {tree.name} "
                f"(backend={args.backend}, seed={args.seed})"
            ),
        )
    )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    """Substrate benchmarks: ``speed`` A/B, ``scale`` grid, ``serve``,
    ``check``."""
    if args.subcommand == "scale":
        return _cmd_bench_scale(args)
    if args.subcommand == "serve":
        return _cmd_bench_serve(args)
    if args.subcommand == "check":
        return _cmd_bench_check(args)
    from repro.analysis.speed import (
        check_cases,
        run_speed_suite,
        speed_table,
        write_trajectory,
    )

    if args.subcommand != "speed":
        print(
            f"error: unknown bench subcommand {args.subcommand!r}; "
            "available: speed, scale, serve, check",
            file=sys.stderr,
        )
        return 2
    cases = run_speed_suite(small=args.small, seed=args.seed)
    check_cases(cases)
    trajectory = write_trajectory(
        cases, grid="small" if args.small else "full"
    )
    if args.json:
        print(json.dumps([case.to_dict() for case in cases], indent=2))
        return 0
    headers, rows = speed_table(cases)
    print(
        render_table(
            headers,
            rows,
            title=(
                "Bulk exchange vs legacy per-send path "
                f"(grid={'small' if args.small else 'full'}, "
                f"seed={args.seed}; trajectory appended to {trajectory})"
            ),
        )
    )
    return 0


def _cmd_bench_scale(args: argparse.Namespace) -> int:
    """The process-substrate scaling grid (``bench scale``)."""
    from repro.analysis.scale import (
        check_scale_cases,
        run_scale_suite,
        scale_table,
        write_scale_trajectory,
    )
    from repro.parallel.pool import shutdown_pools

    # --workers N caps the grid at N (always alongside the 1-worker
    # baseline); the suite default is (1, 2) small / (1, 2, 4, 8) full.
    grid = None
    if args.workers is not None:
        grid = tuple(dict.fromkeys((1, max(args.workers, 1))))
    try:
        cases = run_scale_suite(
            small=args.small, seed=args.seed, workers_grid=grid
        )
    finally:
        shutdown_pools()
    check_scale_cases(cases)
    trajectory = write_scale_trajectory(
        cases, grid="small" if args.small else "full"
    )
    if args.json:
        print(json.dumps([case.to_dict() for case in cases], indent=2))
        return 0
    headers, rows = scale_table(cases)
    print(
        render_table(
            headers,
            rows,
            title=(
                "Process-substrate scaling, oracle-verified "
                f"(grid={'small' if args.small else 'full'}, "
                f"seed={args.seed}; trajectory appended to {trajectory})"
            ),
        )
    )
    return 0


def _cmd_bench_serve(args: argparse.Namespace) -> int:
    """The cold-vs-warm session throughput A/B (``bench serve``)."""
    from repro.analysis.serve import (
        check_serve_cases,
        run_serve_suite,
        serve_table,
        write_serve_trajectory,
    )
    from repro.parallel.pool import shutdown_pools

    try:
        cases = run_serve_suite(small=args.small, seed=args.seed)
    finally:
        shutdown_pools()
    check_serve_cases(cases)
    trajectory = write_serve_trajectory(
        cases, grid="small" if args.small else "full"
    )
    if args.json:
        print(json.dumps([case.to_dict() for case in cases], indent=2))
        return 0
    headers, rows = serve_table(cases)
    print(
        render_table(
            headers,
            rows,
            title=(
                "Warm session vs cold one-shot engine "
                f"(grid={'small' if args.small else 'full'}, "
                f"seed={args.seed}; trajectory appended to {trajectory})"
            ),
        )
    )
    return 0


def _cmd_bench_check(args: argparse.Namespace) -> int:
    """Regression sentinel over the committed bench trajectories."""
    import os

    from repro.obs.regress import (
        SEVERITY,
        check_trajectory_file,
        regression_table,
    )

    paths = list(args.extra)
    if not paths:
        paths = [
            name
            for name in (
                "BENCH_SPEED.json",
                "BENCH_SCALE.json",
                "BENCH_SERVE.json",
            )
            if os.path.exists(name)
        ]
        if not paths:
            print(
                "error: no trajectory files found (looked for "
                "BENCH_SPEED.json / BENCH_SCALE.json / "
                "BENCH_SERVE.json); pass paths "
                "explicitly: repro bench check FILE ...",
                file=sys.stderr,
            )
            return 2
    worst = "pass"
    payload = {}
    for path in paths:
        verdict, checks = check_trajectory_file(path)
        if SEVERITY[verdict] > SEVERITY[worst]:
            worst = verdict
        if args.json:
            payload[path] = {
                "verdict": verdict,
                "checks": [check.to_dict() for check in checks],
            }
            continue
        headers, rows = regression_table(checks)
        print(
            render_table(
                headers,
                rows,
                title=f"bench check {path}: {verdict.upper()}",
            )
        )
        print()
    if args.json:
        payload["verdict"] = worst
        print(json.dumps(payload, indent=2))
    else:
        print(f"bench check: {worst.upper()} across {len(paths)} file(s)")
    return 1 if worst == "fail" else 0


def _one_task_instance(args: argparse.Namespace):
    """Build the (task spec, tree, distribution) triple for trace/metrics."""
    from repro.analysis.speed import fat_tree
    from repro.data.generators import (
        random_graph_distribution,
        random_tuple_distribution,
    )
    from repro.registry import get_task

    task_spec = get_task(args.subcommand or "connected-components")
    tree = fat_tree(args.racks)
    if task_spec.name in ("connected-components", "triangle-count"):
        dist = random_graph_distribution(
            tree,
            num_edges=args.edges,
            policy=args.placement,
            seed=args.seed,
        )
    elif task_spec.name in ("equijoin", "groupby-aggregate"):
        dist = random_tuple_distribution(
            tree,
            r_size=args.r_size,
            s_size=args.s_size,
            policy=args.placement,
            seed=args.seed,
        )
    else:
        dist = random_distribution(
            tree,
            r_size=args.r_size,
            s_size=args.s_size,
            policy=args.placement,
            seed=args.seed,
        )
    return task_spec, tree, dist


def _cmd_metrics(args: argparse.Namespace) -> int:
    """Run one task under the metrics registry; expose the snapshot."""
    from repro.obs import collecting, prometheus_text, write_snapshot

    task_spec, tree, dist = _one_task_instance(args)
    backend_opts = (
        {"backend": args.backend, "num_workers": args.num_workers}
        if args.backend != "sim"
        else {}
    )
    with collecting() as registry:
        report = run(
            task_spec.name,
            tree,
            dist,
            protocol=args.protocol,
            seed=args.seed,
            placement=args.placement,
            **backend_opts,
        )
    snap = registry.snapshot()
    series = sum(
        len(family) for group in snap.values() for family in group.values()
    )
    if args.output:
        try:
            write_snapshot(args.output, snap)
        except OSError as error:
            print(
                f"error: cannot write metrics file: {error}",
                file=sys.stderr,
            )
            return 2
        print(
            f"metrics: {series} series -> {args.output}", file=sys.stderr
        )
    if args.json:
        print(json.dumps(snap, indent=2, allow_nan=False))
    else:
        print(prometheus_text(snap), end="")
    print(
        f"# run: task={report.task} protocol={report.protocol} "
        f"backend={args.backend} cost={report.cost:.1f} "
        f"rounds={report.rounds}",
        file=sys.stderr,
    )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Run one task under the tracer; write a Chrome-trace JSON."""
    from repro.obs import span_metrics, tracing, write_chrome_trace

    task_spec, tree, dist = _one_task_instance(args)
    backend_opts = (
        {"backend": args.backend, "num_workers": args.num_workers}
        if args.backend != "sim"
        else {}
    )
    with tracing() as tracer:
        report = run(
            task_spec.name,
            tree,
            dist,
            protocol=args.protocol,
            seed=args.seed,
            placement=args.placement,
            **backend_opts,
        )
    output = args.output or f"{task_spec.name}.trace.json"
    try:
        payload = write_chrome_trace(
            output, tracer, metrics=span_metrics(tracer)
        )
    except OSError as error:
        print(f"error: cannot write trace file: {error}", file=sys.stderr)
        return 2
    rounds = [
        event
        for event in tracer.events
        if event.attrs.get("category") == "round"
    ]
    print(
        render_table(
            [
                "task",
                "protocol",
                "backend",
                "cost",
                "rounds",
                "wall s",
                "spans",
            ],
            [
                [
                    report.task,
                    report.protocol,
                    args.backend,
                    f"{report.cost:.1f}",
                    report.rounds,
                    (
                        "n/a"
                        if report.wall_time_s is None
                        else f"{report.wall_time_s:.4f}"
                    ),
                    len(payload["traceEvents"]),
                ]
            ],
            title=(
                f"Trace of {task_spec.name} on {tree.name} "
                f"({len(rounds)} round spans) -> {output}"
            ),
        )
    )
    return 0


def _cmd_protocols(args: argparse.Namespace) -> int:
    if args.json:
        payload = [
            {
                "task": spec.task,
                "name": spec.name,
                "kind": spec.kind,
                "accepts_seed": spec.accepts_seed,
                "topology": spec.topology,
                "description": spec.description,
            }
            for spec in list_protocols()
        ]
        print(json.dumps(payload, indent=2))
        return 0
    rows = [
        [
            spec.task,
            spec.name,
            spec.kind,
            "yes" if spec.accepts_seed else "no",
            spec.topology or "any",
            spec.description,
        ]
        for spec in list_protocols()
    ]
    print(
        render_table(
            ["task", "protocol", "kind", "seeded", "topology", "description"],
            rows,
            title=f"Protocol catalog ({len(rows)} protocols, "
            f"{len(tasks())} tasks)",
        )
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Topology-aware MPC reproduction (PODS 2021)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--r-size", type=int, default=2_000)
    parser.add_argument("--s-size", type=int, default=2_000)
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="thread-pool size for batch runs (default: executor's choice)",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="print per-instance rows"
    )
    parser.add_argument(
        "--explain",
        action="store_true",
        help="plan: print the chosen physical plan per topology",
    )
    parser.add_argument(
        "--relations",
        type=int,
        default=3,
        help="plan: number of chain-join relations (default 3)",
    )
    parser.add_argument(
        "--rows",
        type=int,
        default=1_500,
        help="plan: rows per base relation (default 1500)",
    )
    parser.add_argument(
        "--placement",
        default="proportional",
        choices=["uniform", "zipf", "single-heavy", "proportional"],
        help="plan/graphs: placement policy for the input data",
    )
    parser.add_argument(
        "--edges",
        type=int,
        default=2_000,
        help="graphs: number of edges in the generated graph (default 2000)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="protocols/compare/graphs: emit JSON instead of a text table",
    )
    parser.add_argument(
        "--small",
        action="store_true",
        help="bench: shrink the grid to CI-smoke sizes",
    )
    parser.add_argument(
        "--queries",
        type=int,
        default=200,
        help="serve: number of mixed workload queries (default 200)",
    )
    parser.add_argument(
        "--backend",
        default="sim",
        choices=["sim", "process"],
        help=(
            "table1/compare: execution substrate — the cost-model "
            "simulator or shared-memory worker processes (default sim)"
        ),
    )
    parser.add_argument(
        "--executor",
        default="thread",
        choices=["thread", "process"],
        help="table1: batch executor for the plan grid (default thread)",
    )
    parser.add_argument(
        "--num-workers",
        type=int,
        default=2,
        help="worker ranks for --backend process (default 2)",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help=(
            "record the command under the repro.obs tracer and write a "
            "Chrome-trace JSON to FILE"
        ),
    )
    parser.add_argument(
        "--metrics",
        metavar="FILE",
        default=None,
        help=(
            "record the command under the repro.obs metrics registry "
            "and write the JSON snapshot to FILE"
        ),
    )
    parser.add_argument(
        "--audit",
        default="off",
        choices=["off", "record", "strict"],
        help=(
            "audit every simulated round against the Section-2 cost "
            "model; 'record' reports violations on exit, 'strict' "
            "aborts on the first one (default off)"
        ),
    )
    parser.add_argument(
        "--racks",
        type=int,
        default=8,
        help="trace: fat-tree rack count (topology fat-tree(NxN))",
    )
    parser.add_argument(
        "--protocol",
        default=None,
        help="trace: protocol name (default: the task's registered default)",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        default=None,
        help="trace: trace file path (default <task>.trace.json)",
    )
    parser.add_argument(
        "command",
        choices=[
            "table1",
            "compare",
            "topology",
            "protocols",
            "plan",
            "graphs",
            "bench",
            "serve",
            "trace",
            "metrics",
        ],
        help="which reproduction to run",
    )
    parser.add_argument(
        "subcommand",
        nargs="?",
        default=None,
        help=(
            "bench: which benchmark to run ('speed', 'scale', 'serve' "
            "or 'check'); trace/metrics: which task to run (default "
            "connected-components)"
        ),
    )
    parser.add_argument(
        "extra",
        nargs="*",
        default=[],
        help="bench check: trajectory files (default BENCH_*.json)",
    )
    # intermixed: flags may appear between positionals, e.g.
    # ``repro bench check --json FILE``
    args = parser.parse_intermixed_args(argv)
    if args.command not in ("bench", "trace", "metrics"):
        if args.subcommand is not None:
            parser.error(f"unrecognized arguments: {args.subcommand}")
    if args.extra and not (
        args.command == "bench" and args.subcommand == "check"
    ):
        parser.error(
            f"unrecognized arguments: {' '.join(args.extra)}"
        )
    if args.command == "bench" and args.subcommand is None:
        args.subcommand = "speed"
    if args.executor == "process" and args.backend == "process":
        parser.error(
            "--executor process and --backend process are mutually "
            "exclusive (workers cannot host nested worker pools)"
        )
    handlers = {
        "table1": _cmd_table1,
        "compare": _cmd_compare,
        "topology": _cmd_topology,
        "protocols": _cmd_protocols,
        "plan": _cmd_plan,
        "graphs": _cmd_graphs,
        "bench": _cmd_bench,
        "serve": _cmd_serve,
        "trace": _cmd_trace,
        "metrics": _cmd_metrics,
    }
    try:
        return _dispatch(args, handlers)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


def _dispatch(args: argparse.Namespace, handlers: dict) -> int:
    """Run the command under whatever global instrumentation is on.

    ``--trace FILE`` / ``--metrics FILE`` record the whole command and
    write the Chrome-trace / metrics-snapshot JSON on exit (skipped for
    the commands that already own that plumbing); ``--audit`` installs
    a :class:`~repro.obs.CostAuditor` around everything and, in
    ``record`` mode, turns any violation into a non-zero exit.
    """
    from contextlib import ExitStack

    tracer = registry = auditor = None
    with ExitStack() as stack:
        if args.trace is not None and args.command != "trace":
            from repro.obs import tracing

            tracer = stack.enter_context(tracing())
        if args.metrics is not None and args.command != "metrics":
            from repro.obs import collecting

            registry = stack.enter_context(collecting())
        if args.audit != "off":
            from repro.obs import auditing

            auditor = stack.enter_context(
                auditing(strict=args.audit == "strict")
            )
        status = handlers[args.command](args)
    if tracer is not None:
        from repro.obs import span_metrics, write_chrome_trace

        try:
            write_chrome_trace(
                args.trace, tracer, metrics=span_metrics(tracer)
            )
        except OSError as error:
            print(
                f"error: cannot write trace file: {error}", file=sys.stderr
            )
            return 2
        print(
            f"trace: {len(tracer.events)} spans -> {args.trace}",
            file=sys.stderr,
        )
    if registry is not None:
        from repro.obs import write_snapshot

        try:
            snap = write_snapshot(args.metrics, registry)
        except OSError as error:
            print(
                f"error: cannot write metrics file: {error}",
                file=sys.stderr,
            )
            return 2
        series = sum(
            len(family)
            for group in snap.values()
            for family in group.values()
        )
        print(
            f"metrics: {series} series -> {args.metrics}", file=sys.stderr
        )
    if auditor is not None:
        summary = auditor.summary()
        print(
            f"audit: {summary['rounds_checked']} round(s) and "
            f"{summary['bounds_checked']} bound(s) checked, "
            f"{summary['violations']} violation(s)",
            file=sys.stderr,
        )
        if summary["violations"]:
            for violation in auditor.violations[:10]:
                print(
                    f"audit violation [{violation['invariant']}]: "
                    f"{violation['detail']}",
                    file=sys.stderr,
                )
            if status == 0:
                status = 1
    return status


if __name__ == "__main__":
    sys.exit(main())

"""The MPC model as a special case of the topology-aware model (Section 2.2).

The MPC model charges a round by the maximum data *received* by any
machine.  Encode it as an asymmetric star: compute-to-center links get
infinite bandwidth (sending is free) and center-to-compute links get
bandwidth 1 — then ``max_e |Y(e)| / w_e`` is exactly the maximum received
volume.  :func:`verify_mpc_equivalence` checks the identity on a
cluster's ledger, and :func:`mpc_uniform_distribution` builds the uniform
``N/p`` placement every prior MPC work assumes.
"""

from __future__ import annotations

import math

import numpy as np

from repro.data.distribution import Distribution
from repro.data.generators import distribute, place_uniform
from repro.sim.cluster import Cluster
from repro.topology.builders import mpc_star
from repro.topology.tree import TreeTopology

__all__ = ["mpc_star", "mpc_uniform_distribution", "verify_mpc_equivalence"]


def mpc_uniform_distribution(
    tree: TreeTopology, values: np.ndarray, *, tag: str = "R"
) -> Distribution:
    """The classic MPC assumption: each node starts with ``N/p`` elements."""
    nodes = tree.left_to_right_compute_order()
    return distribute(values, place_uniform(len(values), nodes), tag=tag)


def verify_mpc_equivalence(cluster: Cluster) -> list[tuple[float, float]]:
    """Check round cost == max received volume, per round, on an MPC star.

    Returns ``(round_cost, max_received)`` per round; they must be equal
    on the Section 2.2 star because only the unit-bandwidth downlinks
    carry cost, and the downlink into node ``v`` carries exactly what
    ``v`` receives.  Raises ``AssertionError`` on mismatch.
    """
    tree = cluster.tree
    center = tree.star_center()
    pairs: list[tuple[float, float]] = []
    for index in range(cluster.ledger.num_rounds):
        loads = cluster.ledger.round_loads(index)
        max_received = 0.0
        for (u, v), count in loads.items():
            if u == center and math.isfinite(tree.bandwidth(u, v)):
                max_received = max(
                    max_received, count / tree.bandwidth(u, v)
                )
        cost = cluster.ledger.round_cost(index)
        if not math.isclose(cost, max_received, rel_tol=1e-12, abs_tol=1e-12):
            raise AssertionError(
                f"round {index}: cost {cost} != max received {max_received}"
            )
        pairs.append((cost, max_received))
    return pairs

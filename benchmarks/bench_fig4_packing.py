"""Experiment F4 — Figure 4: packing squares proportional to bandwidth.

Figure 4 illustrates the power-of-two square packing.  Claims validated:

* the packing always exactly tiles the output grid (Lemma 5), with
  bounded overhang waste — reported as utilization;
* square dimensions track link bandwidths (equation (1)), so each
  node's received volume is proportional to its link capacity;
* as bandwidth heterogeneity grows, the weighted HyperCube's advantage
  over the classic equal-squares HyperCube grows with it, while wHC
  stays within a constant of max(Theorem 3, Theorem 4).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record_table
from repro.baselines.hypercube import classic_hypercube_cartesian_product
from repro.core.cartesian.lower_bounds import cartesian_lower_bound
from repro.core.cartesian.whc import whc_cartesian_product
from repro.data.generators import random_distribution
from repro.topology.builders import star

SPREADS = (1, 4, 16, 64)
SIZE = 4_000


def _star_with_spread(spread: int):
    bandwidths = [1.0, 1.0, float(spread) ** 0.5, float(spread) ** 0.5,
                  float(spread), float(spread), 1.0, float(spread) ** 0.5]
    return star(8, bandwidth=bandwidths, name=f"star(8) spread {spread}x")


@pytest.mark.benchmark(group="fig4")
def test_fig4_weighted_vs_classic_squares(benchmark):
    def sweep():
        rows = []
        for spread in SPREADS:
            tree = _star_with_spread(spread)
            dist = random_distribution(
                tree, r_size=SIZE, s_size=SIZE, policy="proportional", seed=77
            )
            bound = cartesian_lower_bound(tree, dist)
            weighted = whc_cartesian_product(tree, dist)
            classic = classic_hypercube_cartesian_product(tree, dist)
            rows.append((spread, bound, weighted, classic))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = []
    for spread, bound, weighted, classic in rows:
        utilization = weighted.meta["coverage"]["utilization"]
        advantage = classic.cost / weighted.cost
        table.append(
            [
                f"{spread}x",
                f"{bound.value:.0f}",
                f"{weighted.cost:.0f}",
                f"{weighted.cost / bound.value:.2f}",
                f"{classic.cost:.0f}",
                f"{advantage:.2f}",
                f"{utilization:.2f}",
            ]
        )
        # wHC within a constant of the bound at every spread.
        assert weighted.cost <= 4 * bound.value
        # grid exactly covered, overhang bounded.
        assert utilization >= 0.2

    # the weighted variant's advantage grows with heterogeneity.
    advantages = [classic.cost / weighted.cost for _, _, weighted, classic in rows]
    assert advantages[-1] > advantages[0]
    assert advantages[-1] >= 2.0

    record_table(
        f"Figure 4 — wHC vs classic HyperCube on star(8), |R|=|S|={SIZE}, "
        "bandwidth-proportional placement",
        ["bw spread", "bound", "wHC cost", "wHC ratio",
         "classic cost", "classic/wHC", "grid utilization"],
        table,
    )


@pytest.mark.benchmark(group="fig4")
def test_fig4_received_volume_tracks_bandwidth(benchmark):
    tree = _star_with_spread(16)
    dist = random_distribution(
        tree, r_size=SIZE, s_size=SIZE, policy="proportional", seed=78
    )
    result = benchmark.pedantic(
        lambda: whc_cartesian_product(tree, dist), rounds=2, iterations=1
    )
    dims = result.meta["dims"]
    # monotone: faster link -> at least as large a square.
    for a in tree.compute_nodes:
        for b in tree.compute_nodes:
            if tree.bandwidth(a, "w") >= 2 * tree.bandwidth(b, "w"):
                assert dims[a] >= dims[b]
    benchmark.extra_info["dims"] = {str(k): v for k, v in dims.items()}

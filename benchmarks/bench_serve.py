"""Experiment S3 — serving throughput of the warm session layer.

Not a paper figure: this guards the session/serving subsystem
(``repro.EngineSession``), which turns the one-shot reproduction
engine into the multi-tenant query service the ROADMAP targets.  A
mixed workload of cached-shape queries — task runs over several
placements interleaved with chain/star plan queries — is replayed
twice on a shared fat tree: cold (the stateless module-level engine,
artifacts rebuilt and plans re-optimized per query) and warm (one
long-lived session sharing topology artifacts and compiled plans).

Claims checked:

* every warm report is **byte-identical** to its cold twin once
  wall-clock fields are stripped — session state never leaks into
  query results; a slice of the workload replays on the ``process``
  backend, whose workers cross-check the simulated-ledger oracle, so
  the guarantee holds on real parallel execution too;
* the warm session serves the full-grid 1000-query mix at **>= 2x**
  the cold throughput (measured ~2.9x on the 144-node tree); the small
  grid asserts a conservative floor that still fails if the session
  stops sharing artifacts or cached plans;
* each run appends to the ``BENCH_SERVE.json`` trajectory at the repo
  root, where ``repro bench check`` warns on throughput-ratio
  regressions and fails on identity flips.

``BENCH_SMALL=1`` shrinks the grid for CI smoke runs.
"""

from __future__ import annotations

import os

import pytest

from benchmarks.conftest import record_table
from repro.analysis.serve import (
    check_serve_cases,
    run_serve_suite,
    serve_table,
    write_serve_trajectory,
)

SMALL = bool(os.environ.get("BENCH_SMALL"))
SEED = 7


@pytest.mark.benchmark(group="serve")
def test_warm_session_throughput_and_identity(benchmark):
    cases = benchmark.pedantic(
        lambda: run_serve_suite(small=SMALL, seed=SEED),
        rounds=1,
        iterations=1,
    )
    # identity is a hard gate on every case; the throughput budget is
    # grid-dependent (2x full, conservative floor small, identity-only
    # for the process oracle mix)
    check_serve_cases(cases)
    trajectory = write_serve_trajectory(
        cases, grid="small" if SMALL else "full"
    )
    headers, rows = serve_table(cases)
    record_table(
        "Serve — warm session vs cold one-shot engine "
        f"(grid={'small' if SMALL else 'full'}, seed={SEED}, "
        f"trajectory: {trajectory.name})",
        headers,
        rows,
    )
    for case in cases:
        benchmark.extra_info[f"{case.topology}.{case.name}.speedup"] = round(
            case.speedup, 2
        )

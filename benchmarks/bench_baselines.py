"""Experiment B1 — topology-aware vs topology-agnostic, head to head.

The introduction's motivating claim: algorithms designed for the uniform
MPC model leave large factors on the table once networks are
heterogeneous and placements are skewed — while on the uniform case the
topology-aware algorithms match them.  Validated on all three tasks:

* on a *uniform star with uniform placement* (the MPC assumption), the
  paper's algorithms are within ~2x of the classic ones;
* on a *heterogeneous tree with skewed placement*, the paper's
  algorithms win by growing factors.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record_table
from repro.analysis.runner import run_cartesian, run_intersection, run_sorting
from repro.data.generators import random_distribution
from repro.topology.builders import star, two_level

SIZE = 6_000


def _uniform_instance():
    tree = star(8, name="uniform star")
    dist = random_distribution(
        tree, r_size=SIZE, s_size=SIZE, policy="uniform", seed=91
    )
    return tree, dist


def _heterogeneous_instance():
    tree = two_level(
        [4, 4],
        leaf_bandwidth=[8.0, 1.0],
        uplink_bandwidth=[8.0, 1.0],
        name="hetero two-level",
    )
    dist = random_distribution(
        tree, r_size=SIZE, s_size=SIZE, policy="proportional", seed=91
    )
    return tree, dist


@pytest.mark.benchmark(group="baselines")
def test_baselines_head_to_head(benchmark):
    def sweep():
        rows = []
        for setting, (tree, dist) in (
            ("uniform/MPC", _uniform_instance()),
            ("heterogeneous", _heterogeneous_instance()),
        ):
            intersect_aware = run_intersection(tree, dist, protocol="tree", seed=5)
            intersect_base = run_intersection(
                tree, dist, protocol="uniform-hash", seed=5
            )
            cartesian_aware = run_cartesian(tree, dist, protocol="tree")
            cartesian_base = run_cartesian(
                tree, dist, protocol="classic-hypercube"
            )
            sort_aware = run_sorting(tree, dist, protocol="wts", seed=5)
            sort_base = run_sorting(tree, dist, protocol="terasort", seed=5)
            rows.append(
                (
                    setting,
                    (intersect_aware, intersect_base),
                    (cartesian_aware, cartesian_base),
                    (sort_aware, sort_base),
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = []
    for setting, intersect, cartesian, sorting in rows:
        for task_name, (aware, base) in (
            ("intersection", intersect),
            ("cartesian", cartesian),
            ("sorting", sorting),
        ):
            table.append(
                [
                    setting,
                    task_name,
                    f"{aware.cost:.0f}",
                    f"{base.cost:.0f}",
                    f"{base.cost / aware.cost:.2f}",
                ]
            )
    record_table(
        f"Baselines — topology-aware vs MPC-style (|R|=|S|={SIZE})",
        ["setting", "task", "aware cost", "baseline cost", "baseline/aware"],
        table,
    )

    uniform_rows, hetero_rows = rows
    # On the MPC case the aware algorithms are competitive: within the
    # small constants their guarantees allow (the wHC's power-of-two
    # squares cost up to ~2x against the classic lattice here).
    for aware, base in (uniform_rows[1], uniform_rows[2], uniform_rows[3]):
        assert aware.cost <= 2.5 * base.cost
    # On the heterogeneous case they win on every task...
    for aware, base in (hetero_rows[1], hetero_rows[2], hetero_rows[3]):
        assert aware.cost < base.cost
    # ...and clearly (>= 2x) on at least two of the three.
    wins = sum(
        base.cost >= 2.0 * aware.cost
        for aware, base in (hetero_rows[1], hetero_rows[2], hetero_rows[3])
    )
    assert wins >= 2

"""Experiment P1 — the topology-aware query planner.

Not a paper figure: this validates the planner subsystem built on top
of the registered protocols.  For 3-5-relation chain and star joins
across the standard topology suite, the cost-based optimizer (join
order + protocol per stage, chosen from estimates) is compared against
two baselines compiled from the same logical plan:

* **gather-everything** — every stage ships all data to one node, the
  strategy a topology-blind system degenerates to;
* **worst-order** — the most expensive join order under the same
  estimates, isolating what ordering alone is worth.

Claims checked:

* the optimized plan's *measured* cost never exceeds the gather
  baseline, on any suite topology (the planner's headline guarantee);
* the optimizer's estimates track measured cost within a small factor,
  so plan choices are made for the right reasons.

``BENCH_SMALL=1`` shrinks the grid for CI smoke runs.
"""

from __future__ import annotations

import os

import pytest

from benchmarks.conftest import record_table
from repro.analysis.suites import standard_topologies
from repro.plan import (
    chain_catalog,
    chain_query,
    optimize,
    star_catalog,
    star_query,
)
from repro.plan.executor import execute_plan

SMALL = bool(os.environ.get("BENCH_SMALL"))
ROWS = 400 if SMALL else 1_500
SEED = 7

QUERIES = [
    ("chain-3", chain_query(3), lambda tree: chain_catalog(
        tree, num_relations=3, rows=ROWS, seed=SEED, policy="proportional"
    )),
    ("star-4", star_query(3), lambda tree: star_catalog(
        tree, num_satellites=3, rows=ROWS, seed=SEED, policy="proportional"
    )),
    ("chain-5", chain_query(5), lambda tree: chain_catalog(
        tree, num_relations=5, rows=ROWS, seed=SEED, policy="proportional"
    )),
]
if SMALL:
    QUERIES = QUERIES[:2]


def _topologies():
    return standard_topologies(include_random=not SMALL)


@pytest.mark.benchmark(group="planner")
@pytest.mark.parametrize("name,query,make_catalog", QUERIES,
                         ids=[q[0] for q in QUERIES])
def test_planner_beats_gather_everywhere(benchmark, name, query, make_catalog):
    def sweep():
        rows = []
        for tree in _topologies():
            catalog = make_catalog(tree)
            reports = {}
            for strategy in ("optimized", "gather", "worst-order"):
                physical = optimize(query, tree, catalog, strategy=strategy)
                reports[strategy] = execute_plan(
                    physical, tree, catalog, seed=SEED
                )
            rows.append((tree.name, reports))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = []
    for topology, reports in rows:
        optimized = reports["optimized"]
        gather = reports["gather"]
        worst = reports["worst-order"]
        table.append(
            [
                topology,
                f"{optimized.cost:.0f}",
                f"{optimized.estimated_cost:.0f}",
                f"{gather.cost:.0f}",
                f"{worst.cost:.0f}",
                f"{gather.cost / max(optimized.cost, 1e-9):.2f}x",
            ]
        )
        # headline claim: never worse than gather-everything
        assert optimized.cost <= gather.cost + 1e-9, topology
        # answers agree in size whatever the strategy
        assert optimized.output_rows == gather.output_rows == worst.output_rows
    record_table(
        f"Planner — {name} ({ROWS} rows/relation, proportional placement)",
        [
            "topology",
            "optimized",
            "estimated",
            "gather-everything",
            "worst-order",
            "speedup",
        ],
        table,
    )


@pytest.mark.benchmark(group="planner")
def test_estimates_track_measured_cost(benchmark):
    query = chain_query(3)

    def sweep():
        ratios = []
        for tree in _topologies():
            catalog = chain_catalog(
                tree, num_relations=3, rows=ROWS, seed=SEED,
                policy="proportional",
            )
            report = execute_plan(
                optimize(query, tree, catalog), tree, catalog, seed=SEED
            )
            if report.estimated_cost > 0:
                ratios.append((tree.name, report.estimate_ratio))
        return ratios

    ratios = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record_table(
        "Planner — measured / estimated cost of the optimized plan",
        ["topology", "measured / estimated"],
        [[name, f"{ratio:.2f}"] for name, ratio in ratios],
    )
    # estimates may be conservative (tree calibration errs high) but must
    # stay within a small constant either way, or plan choices are noise
    for name, ratio in ratios:
        assert 0.2 <= ratio <= 3.0, (name, ratio)

"""Experiment S1 — wall-clock speed of the bulk-exchange substrate.

Not a paper figure: this guards the simulator's own performance, the
ROADMAP's "fast as the hardware allows" north star.  Large hashed
shuffles (the uniform-hash relational shuffle, the
connected-components superstep shuffle, and the replication-heavy
intersection multicast, 10^6 elements on 64- and 256-node fat trees)
are timed under the production ``bulk`` exchange mode and the legacy
``per-send`` mode, with target assignment precomputed so only the
round itself — grouping, delivery, accounting — is measured.

Claims checked:

* the bulk path produces **identical** per-edge ledger loads, received
  counts, and per-node storage to the per-send path on every case
  (exact equality, not approximate);
* bulk is at least ``3x`` faster on the full grid for the unicast
  shuffles and at least ``2x`` for the replication multicast (whose
  per-destination storage appends are shared work in both modes);
  under ``BENCH_SMALL=1`` a conservative ``1.3x`` timing budget still
  fails CI if a per-element Python loop sneaks back into the hot path;
* each run appends to the ``BENCH_SPEED.json`` perf trajectory at the
  repo root, so regressions are visible across PRs.

``BENCH_SMALL=1`` shrinks the grid for CI smoke runs.
"""

from __future__ import annotations

import os

import pytest

from benchmarks.conftest import record_table
from repro.analysis.speed import (
    check_cases,
    run_speed_suite,
    speed_table,
    write_trajectory,
)

SMALL = bool(os.environ.get("BENCH_SMALL"))
SEED = 7


@pytest.mark.benchmark(group="speed")
def test_bulk_exchange_speedup_and_equivalence(benchmark):
    cases = benchmark.pedantic(
        lambda: run_speed_suite(small=SMALL, seed=SEED),
        rounds=1,
        iterations=1,
    )
    # each case carries its grid-dependent budget: >=3x for the unicast
    # shuffles and >=2x for the replication workload on the full grid,
    # the conservative 1.3x CI timing budget on the small grid
    check_cases(cases)
    trajectory = write_trajectory(cases, grid="small" if SMALL else "full")
    headers, rows = speed_table(cases)
    record_table(
        "Speed — bulk exchange vs legacy per-send path "
        f"(grid={'small' if SMALL else 'full'}, seed={SEED}, "
        f"trajectory: {trajectory.name})",
        headers,
        rows,
    )
    for case in cases:
        benchmark.extra_info[f"{case.topology}.{case.name}.speedup"] = round(
            case.speedup, 2
        )

"""Experiment G1 — topology-aware graph analytics.

Not a paper figure: this validates the graph subsystem built on top of
the registered protocols.  Across the standard topology suite, the
distribution-aware workloads are compared against their
topology-agnostic MPC counterparts on the same placed instance:

* **connected components** — hash-to-min with placement-weighted tree
  shuffles, local contraction and delta returns, against the textbook
  uniform-hash formulation (raw per-edge messages, full refreshes) and
  the gather-everything baseline;
* **triangle counting** — the planner-compiled cyclic self-join
  (per-stage protocol chosen by estimate) against the same plan with
  uniform-hash joins and the gather strategy;
* **degree aggregation** — one registered group-by round, cost against
  its (full-duplex corrected) shared-key lower bound.

Claims checked:

* topology-aware connected components beats the uniform-hash baseline
  on *total cost* on every standard topology (the subsystem's headline
  guarantee — structural: combined candidates never outnumber raw
  per-edge messages, and delta returns shrink as labels converge);
* every protocol's measured cost respects the task's per-link
  counting lower bound;
* all flavours agree with the single-machine references (enforced by
  the engine verifiers on every run).

``BENCH_SMALL=1`` shrinks the grid for CI smoke runs.
"""

from __future__ import annotations

import os

import pytest

import repro
from benchmarks.conftest import record_table
from repro.analysis.suites import standard_topologies
from repro.data.generators import random_graph_distribution
from repro.graphs import run_components, run_degrees, run_triangles
from repro.graphs.model import PlacedGraph

SMALL = bool(os.environ.get("BENCH_SMALL"))
EDGES = 300 if SMALL else 1_200
SEED = 7
POLICIES = ("proportional",) if SMALL else ("proportional", "zipf")


def _topologies():
    return standard_topologies(include_random=not SMALL)


def _instances():
    for tree in _topologies():
        for policy in POLICIES:
            yield tree, policy, random_graph_distribution(
                tree, num_edges=EDGES, policy=policy, seed=SEED
            )


@pytest.mark.benchmark(group="graphs")
def test_components_beats_uniform_hash_everywhere(benchmark):
    def sweep():
        rows = []
        for tree, policy, dist in _instances():
            reports = {
                protocol: run_components(
                    tree, dist, protocol=protocol, seed=SEED, placement=policy
                )
                for protocol in ("tree", "uniform-hash", "gather")
            }
            rows.append((tree.name, policy, reports))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = []
    for topology, policy, reports in rows:
        aware = reports["tree"]
        base = reports["uniform-hash"]
        gather = reports["gather"]
        table.append(
            [
                topology,
                policy,
                f"{aware.cost:.0f}",
                f"{base.cost:.0f}",
                f"{gather.cost:.0f}",
                aware.num_supersteps,
                f"{base.cost / max(aware.cost, 1e-9):.2f}x",
            ]
        )
        # headline claim: topology-aware CC beats the MPC baseline on
        # total cost on every standard topology and placement
        assert aware.cost < base.cost, (topology, policy)
        # both converge to the verified labelling in bounded supersteps
        assert aware.converged and base.converged
        # the per-link counting bound holds for every flavour
        for report in reports.values():
            assert report.cost >= report.lower_bound - 1e-9
    record_table(
        f"Graphs — connected components ({EDGES} edges, seed={SEED})",
        [
            "topology",
            "placement",
            "tree",
            "uniform-hash",
            "gather",
            "steps",
            "speedup",
        ],
        table,
    )


@pytest.mark.benchmark(group="graphs")
def test_triangle_count_protocols_agree_and_respect_bounds(benchmark):
    def sweep():
        rows = []
        for tree, policy, dist in _instances():
            reports = {
                protocol: run_triangles(
                    tree, dist, protocol=protocol, seed=SEED, placement=policy
                )
                for protocol in ("optimized", "uniform-hash", "gather")
            }
            rows.append((tree.name, policy, reports))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = []
    for topology, policy, reports in rows:
        optimized = reports["optimized"]
        base = reports["uniform-hash"]
        counts = {r.meta["num_triangles"] for r in reports.values()}
        assert len(counts) == 1  # all flavours count the same triangles
        table.append(
            [
                topology,
                policy,
                f"{optimized.cost:.0f}",
                f"{base.cost:.0f}",
                f"{reports['gather'].cost:.0f}",
                counts.pop(),
                f"{base.cost / max(optimized.cost, 1e-9):.2f}x",
            ]
        )
        # the planner's headline guarantee (same as bench_planner):
        # never worse than the gather-everything strategy, whose
        # estimates are exact; against uniform-hash the choice is
        # estimate-driven, so the speedup column records it instead of
        # asserting (the estimator's error band is ~0.2-3x).
        assert optimized.cost <= reports["gather"].cost + 1e-9, (
            topology,
            policy,
        )
        for report in reports.values():
            assert report.cost >= report.lower_bound - 1e-9
    record_table(
        f"Graphs — triangle counting ({EDGES} edges, seed={SEED})",
        [
            "topology",
            "placement",
            "optimized",
            "uniform-hash",
            "gather",
            "triangles",
            "speedup",
        ],
        table,
    )


@pytest.mark.benchmark(group="graphs")
def test_degree_aggregation_tracks_groupby_bound(benchmark):
    def sweep():
        rows = []
        for tree in _topologies():
            dist = random_graph_distribution(
                tree, num_edges=EDGES, policy="zipf", seed=SEED
            )
            graph = PlacedGraph(dist)
            report = run_degrees(tree, graph, seed=SEED, placement="zipf")
            rows.append((tree.name, report))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = []
    for topology, report in rows:
        table.append(
            [
                topology,
                f"{report.cost:.0f}",
                f"{report.lower_bound:.0f}",
                f"{report.ratio:.2f}",
            ]
        )
        assert report.cost >= report.lower_bound - 1e-9
        # one registered group-by round does the whole job
        assert report.rounds == 1
    record_table(
        f"Graphs — degree aggregation vs shared-key bound ({EDGES} edges)",
        ["topology", "cost", "lower bound", "ratio"],
        table,
    )

"""Experiment F2 — Figure 2: the balanced partition in action.

Figure 2 illustrates a balanced partition: α-connected groups of compute
nodes merged until each block holds at least ``|R|`` data.  This bench
sweeps placement skew on a three-rack tree and validates:

* Algorithm 3's output satisfies all four Definition 1 properties at
  every skew level (certified by the verifier);
* the block structure reacts to the placement — heavier skew yields
  fewer, coarser blocks (more α-edges);
* TreeIntersect built on the partition tracks the Theorem 1 bound.

It also times Algorithm 3 itself on wide trees (it is linear-time).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record_table
from repro.analysis.runner import run_intersection
from repro.core.intersection.partition import (
    balanced_partition,
    classify_edges,
    verify_balanced_partition,
)
from repro.data.generators import random_distribution
from repro.topology.builders import caterpillar, two_level

EXPONENTS = (0.0, 0.5, 1.0, 2.0, 3.0)
R_SIZE, S_SIZE = 2_000, 10_000


@pytest.mark.benchmark(group="fig2")
def test_fig2_partition_quality_across_skew(benchmark):
    tree = two_level([4, 4, 4], uplink_bandwidth=2.0)

    def sweep():
        rows = []
        for exponent in EXPONENTS:
            dist = random_distribution(
                tree, r_size=R_SIZE, s_size=S_SIZE,
                policy="zipf", zipf_exponent=exponent, seed=33,
            )
            sizes = {v: dist.size(v) for v in tree.compute_nodes}
            blocks = balanced_partition(tree, sizes, R_SIZE)
            violations = verify_balanced_partition(
                tree, sizes, R_SIZE, blocks
            )
            classification = classify_edges(tree, sizes, R_SIZE)
            report = run_intersection(
                tree, dist, placement=f"zipf({exponent})", seed=3
            )
            rows.append(
                (exponent, blocks, violations, classification, report)
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = []
    for exponent, blocks, violations, classification, report in rows:
        assert violations == [], (exponent, violations)
        table.append(
            [
                f"{exponent:g}",
                classification.num_alpha,
                classification.num_beta,
                len(blocks),
                f"{report.cost:.0f}",
                f"{report.lower_bound:.0f}",
                f"{report.ratio:.2f}",
            ]
        )
    record_table(
        "Figure 2 — balanced partition vs placement skew "
        f"(two-level(4,4,4), |R|={R_SIZE}, |S|={S_SIZE})",
        ["zipf exp", "α-edges", "β-edges", "blocks", "cost", "bound", "ratio"],
        table,
    )

    # Definition 1 held everywhere; the partition coarsens with skew.
    block_counts = [len(blocks) for _, blocks, _, _, _ in rows]
    assert block_counts[0] >= block_counts[-1]
    # and the protocol stays within the polylog envelope throughout.
    for _, _, _, _, report in rows:
        assert report.ratio <= 6.0


@pytest.mark.benchmark(group="fig2")
def test_fig2_algorithm3_speed(benchmark):
    """Algorithm 3 runs in (near-)linear time: here, a 160-leaf caterpillar."""
    tree = caterpillar(40, 4)
    sizes = {v: (hash(v) % 50) + 1 for v in tree.compute_nodes}
    r_size = sum(sizes.values()) // 4

    blocks = benchmark(lambda: balanced_partition(tree, sizes, r_size))
    assert verify_balanced_partition(tree, sizes, r_size, blocks) == []
    benchmark.extra_info["compute_nodes"] = len(tree.compute_nodes)
    benchmark.extra_info["blocks"] = len(blocks)

"""Shared infrastructure for the benchmark harness.

Every benchmark validates one quantitative claim of the paper (see the
experiment index in DESIGN.md) and records a human-readable result table.
The tables are printed in the terminal summary so that
``pytest benchmarks/ --benchmark-only`` produces, alongside the timing
table, the model-cost numbers the paper's Table 1 and Figures 1-5 are
about.  EXPERIMENTS.md is the curated record of these outputs.
"""

from __future__ import annotations

from typing import Sequence

from repro.util.text import render_table

_RECORDED: list[str] = []


def record_table(
    title: str, headers: Sequence[str], rows: Sequence[Sequence]
) -> None:
    """Register a result table to be printed after the run."""
    _RECORDED.append(render_table(headers, rows, title=title))


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _RECORDED:
        return
    terminalreporter.section("paper reproduction results")
    for table in _RECORDED:
        terminalreporter.write_line("")
        for line in table.splitlines():
            terminalreporter.write_line(line)
    _RECORDED.clear()

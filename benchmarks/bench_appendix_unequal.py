"""Experiment X1 — Appendix A.1: the unequal-size cartesian product.

Claims validated on heterogeneous stars with ``|R| << |S|``:

* Algorithm 8 always enumerates every pair (tiles may overlap, never
  miss), in a single round;
* its cost stays within a constant of the max(Theorem 8, Theorem 9)
  bound across the size-imbalance sweep;
* the chosen strategy shifts with the instance — gathering at the
  best-connected node, scattering S to the data-rich nodes, or the
  generalized wHC — and each candidate's cost is recorded;
* the equal-size special case agrees with Algorithm 4's regime.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record_table
from repro.core.cartesian.unequal import (
    generalized_star_cartesian_product,
    unequal_cartesian_lower_bound,
)
from repro.data.generators import random_distribution
from repro.topology.builders import star

S_SIZE = 8_000
RATIOS = (1, 4, 16, 64)


@pytest.mark.benchmark(group="appendix-unequal")
def test_unequal_size_sweep(benchmark):
    tree = star(6, bandwidth=[1.0, 1.0, 2.0, 2.0, 8.0, 8.0])

    def sweep():
        rows = []
        for ratio in RATIOS:
            r_size = S_SIZE // ratio
            dist = random_distribution(
                tree, r_size=r_size, s_size=S_SIZE, policy="zipf", seed=123
            )
            bound = unequal_cartesian_lower_bound(tree, dist)
            result = generalized_star_cartesian_product(tree, dist)
            rows.append((ratio, r_size, bound, result))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = []
    for ratio, r_size, bound, result in rows:
        produced = sum(o["num_pairs"] for o in result.outputs.values())
        expected = r_size * S_SIZE
        assert produced >= expected
        assert result.rounds == 1
        assert result.cost <= 8 * bound.value, (ratio, result.meta)
        overlap = produced / expected
        table.append(
            [
                f"1:{ratio}",
                r_size,
                result.meta["strategy"],
                f"{result.cost:.0f}",
                f"{bound.value:.0f}",
                f"{result.cost / bound.value:.2f}",
                f"{overlap:.3f}",
            ]
        )
    record_table(
        f"Appendix A.1 — unequal cartesian product on star(6), |S|={S_SIZE}",
        ["|R|:|S|", "|R|", "strategy", "cost", "bound (Thm 8/9)",
         "ratio", "pairs/needed"],
        table,
    )

"""Experiment T1 — Table 1: rounds and optimality guarantees per task.

The paper's headline table claims:

=================  =============  ========  ==============================
Task               Algorithm      # Rounds  Optimality guarantee
=================  =============  ========  ==============================
Set intersection   randomized     1         O(log |V| log N)  w.h.p.
Cartesian product  deterministic  1         O(1)
Sorting            randomized     O(1)      O(1)              w.h.p.
=================  =============  ========  ==============================

``test_table1_suite`` sweeps the standard topology/placement suite,
asserts the round counts exactly, and records the measured
cost / lower-bound ratio per task — the empirical counterpart of the
guarantee column.  The three ``..._single`` benchmarks time one
representative instance per task.
"""

from __future__ import annotations

import math

import pytest

from benchmarks.conftest import record_table
from repro.analysis.suites import standard_plans
from repro.data.generators import random_distribution
from repro.engine import run, run_many
from repro.report import aggregate
from repro.topology.builders import two_level

R_SIZE = S_SIZE = 4_000


def _run_suite() -> list:
    return run_many(
        standard_plans(r_size=R_SIZE, s_size=S_SIZE, seed=42, run_seed=1)
    )


@pytest.mark.benchmark(group="table1-suite")
def test_table1_suite(benchmark):
    reports = benchmark.pedantic(_run_suite, rounds=1, iterations=1)

    # Claim 1 — round counts.
    for report in reports:
        if report.task == "set-intersection":
            assert report.rounds == 1, report
        elif report.task == "cartesian-product":
            assert report.rounds == 1, report
        else:
            assert report.rounds <= 4, report

    # Claim 2 — optimality ratios.
    summary = aggregate(reports)
    n_total = R_SIZE + S_SIZE
    polylog = math.log2(n_total) * math.log2(32)  # generous log N * log V
    assert summary["set-intersection"]["max_ratio"] <= polylog
    assert summary["cartesian-product"]["max_ratio"] <= 8.0
    assert summary["sorting"]["max_ratio"] <= 12.0

    benchmark.extra_info["instances_per_task"] = summary["sorting"]["runs"]
    for task, stats in summary.items():
        benchmark.extra_info[f"{task}.max_ratio"] = round(stats["max_ratio"], 3)

    record_table(
        "Table 1 — measured over the standard suite "
        f"(|R|=|S|={R_SIZE}, {summary['sorting']['runs']} instances/task)",
        ["task", "claimed rounds", "max rounds", "claimed ratio",
         "max ratio", "mean ratio"],
        [
            [
                "set intersection", "1",
                summary["set-intersection"]["max_rounds"],
                "O(log V log N) whp",
                f"{summary['set-intersection']['max_ratio']:.2f}",
                f"{summary['set-intersection']['mean_ratio']:.2f}",
            ],
            [
                "cartesian product", "1",
                summary["cartesian-product"]["max_rounds"],
                "O(1)",
                f"{summary['cartesian-product']['max_ratio']:.2f}",
                f"{summary['cartesian-product']['mean_ratio']:.2f}",
            ],
            [
                "sorting", "O(1)",
                summary["sorting"]["max_rounds"],
                "O(1) whp",
                f"{summary['sorting']['max_ratio']:.2f}",
                f"{summary['sorting']['mean_ratio']:.2f}",
            ],
        ],
    )


@pytest.fixture(scope="module")
def representative_instance():
    tree = two_level([4, 4], uplink_bandwidth=2.0)
    dist = random_distribution(
        tree, r_size=R_SIZE, s_size=S_SIZE, policy="zipf", seed=7
    )
    return tree, dist


@pytest.mark.benchmark(group="table1-single")
def test_intersection_single(benchmark, representative_instance):
    tree, dist = representative_instance
    report = benchmark.pedantic(
        lambda: run("set-intersection", tree, dist, seed=1),
        rounds=3,
        iterations=1,
    )
    assert report.rounds == 1
    benchmark.extra_info["model_cost"] = report.cost
    benchmark.extra_info["ratio"] = round(report.ratio, 3)


@pytest.mark.benchmark(group="table1-single")
def test_cartesian_single(benchmark, representative_instance):
    tree, dist = representative_instance
    report = benchmark.pedantic(
        lambda: run("cartesian-product", tree, dist),
        rounds=3,
        iterations=1,
    )
    assert report.rounds == 1
    benchmark.extra_info["model_cost"] = report.cost
    benchmark.extra_info["ratio"] = round(report.ratio, 3)


@pytest.mark.benchmark(group="table1-single")
def test_sorting_single(benchmark, representative_instance):
    tree, dist = representative_instance
    report = benchmark.pedantic(
        lambda: run("sorting", tree, dist, seed=1),
        rounds=3,
        iterations=1,
    )
    assert report.rounds <= 4
    benchmark.extra_info["model_cost"] = report.cost
    benchmark.extra_info["ratio"] = round(report.ratio, 3)

"""Experiment F1 — Figure 1: the same algorithms across star and tree networks.

Figure 1 presents the two canonical topology families (star, multi-router
tree).  The quantitative claim behind it — the cost model reacts to the
bottleneck link, and the algorithms adapt without modification — is
validated by sweeping the input size on a star and on a two-level tree
with slow uplinks and checking that (a) every task scales linearly in N
(single-round protocols move each element O(1) times) and (b) the tree's
slow uplinks raise cost by exactly the bottleneck factor.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record_table
from repro.data.generators import random_distribution
from repro.engine import run
from repro.topology.builders import star, two_level

SIZES = (2_000, 8_000, 32_000)


def _sweep(tree):
    rows = []
    for size in SIZES:
        dist = random_distribution(
            tree, r_size=size, s_size=size, policy="uniform", seed=21
        )
        rows.append(
            {
                "n": 2 * size,
                "intersection": run("set-intersection", tree, dist, seed=2),
                "cartesian": run("cartesian-product", tree, dist),
                "sorting": run("sorting", tree, dist, seed=2),
            }
        )
    return rows


@pytest.mark.benchmark(group="fig1")
def test_fig1_star_vs_tree(benchmark):
    star_topology = star(8, name="star(8)")
    tree_topology = two_level(
        [4, 4], leaf_bandwidth=1.0, uplink_bandwidth=0.25,
        name="two-level(4,4) slow uplinks",
    )
    results = benchmark.pedantic(
        lambda: (_sweep(star_topology), _sweep(tree_topology)),
        rounds=1,
        iterations=1,
    )
    star_rows, tree_rows = results

    table_rows = []
    for rows, name in ((star_rows, "star"), (tree_rows, "tree")):
        for row in rows:
            table_rows.append(
                [
                    name,
                    row["n"],
                    row["intersection"].cost,
                    row["cartesian"].cost,
                    row["sorting"].cost,
                ]
            )
    record_table(
        "Figure 1 — cost vs N on star(8) and a slow-uplink two-level tree",
        ["topology", "N", "intersect cost", "cartesian cost", "sort cost"],
        table_rows,
    )

    # (a) near-linear scaling: 16x data -> between 6x and 32x cost.
    # (sorting's fixed sampling overhead amortizes away, so its growth
    # can dip slightly below 16x at small N)
    for rows in (star_rows, tree_rows):
        for task in ("intersection", "cartesian", "sorting"):
            small, large = rows[0][task].cost, rows[-1][task].cost
            assert 6 * small <= large <= 32 * small, (task, small, large)

    # (b) the slow uplinks (4x slower) make every tree cost strictly
    # higher than the star cost at the same N.
    for star_row, tree_row in zip(star_rows, tree_rows):
        for task in ("intersection", "cartesian", "sorting"):
            assert tree_row[task].cost > star_row[task].cost

    benchmark.extra_info["sizes"] = list(SIZES)

"""Experiment Q1 — relational operators (the paper's future-work step).

Not a paper figure: this validates the extension layer built on the
same substrate — the distribution-aware equi-join (TreeIntersect
generalized to keyed tuples) and group-by aggregation with local
pre-aggregation.  Claims checked:

* the join stays within a constant of the Theorem 1 bound applied to
  tuple counts, on skewed placements over heterogeneous trees;
* pre-aggregation (the combiner) reduces the aggregation cost by the
  tuples-per-group factor on low-cardinality keys.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import record_table
from repro.data.distribution import Distribution
from repro.data.generators import place_zipf
from repro.queries.aggregate import tree_groupby_aggregate
from repro.queries.join import equijoin_lower_bound, tree_equijoin
from repro.queries.tuples import encode_tuples
from repro.topology.builders import two_level

NUM_FACT = 30_000
KEY_SPACES = (8, 64, 512, 4_096)


def _fact_distribution(tree, key_space: int, seed: int) -> Distribution:
    nodes = tree.left_to_right_compute_order()
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, key_space, size=NUM_FACT)
    values = rng.integers(1, 100, size=NUM_FACT)
    encoded = encode_tuples(keys, values, payload_bits=32)
    sizes = place_zipf(NUM_FACT, nodes, exponent=1.0)
    placements: dict = {}
    offset = 0
    for node in nodes:
        placements[node] = {"R": encoded[offset : offset + sizes[node]]}
        offset += sizes[node]
    return placements, keys


@pytest.mark.benchmark(group="queries")
def test_groupby_combiner_effect(benchmark):
    tree = two_level([4, 4], leaf_bandwidth=2.0, uplink_bandwidth=1.0)

    def sweep():
        rows = []
        for key_space in KEY_SPACES:
            placements, _ = _fact_distribution(tree, key_space, seed=7)
            dist = Distribution(placements)
            combined = tree_groupby_aggregate(
                tree, dist, op="sum", seed=1, payload_bits=32
            )
            raw = tree_groupby_aggregate(
                tree, dist, op="sum", seed=1, payload_bits=32,
                pre_aggregate=False,
            )
            rows.append((key_space, combined, raw))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = []
    for key_space, combined, raw in rows:
        merged_a: dict = {}
        merged_b: dict = {}
        for output in combined.outputs.values():
            merged_a.update(output)
        for output in raw.outputs.values():
            merged_b.update(output)
        assert merged_a == merged_b  # identical answers
        table.append(
            [
                key_space,
                f"{combined.cost:.0f}",
                f"{raw.cost:.0f}",
                f"{raw.cost / max(combined.cost, 1):.1f}x",
            ]
        )
    record_table(
        f"Queries — combiner effect on group-by ({NUM_FACT} tuples)",
        ["distinct keys", "pre-aggregated cost", "raw cost", "saving"],
        table,
    )
    # Fewer groups -> bigger combiner wins; monotone across the sweep.
    savings = [raw.cost / max(combined.cost, 1) for _, combined, raw in rows]
    assert savings[0] > savings[-1]
    assert savings[0] >= 5.0


@pytest.mark.benchmark(group="queries")
def test_join_tracks_theorem1(benchmark):
    tree = two_level(
        [4, 4], leaf_bandwidth=[4.0, 1.0], uplink_bandwidth=1.0
    )
    nodes = tree.left_to_right_compute_order()
    rng = np.random.default_rng(11)
    r_keys = rng.integers(0, 2_000, size=2_000)
    s_keys = rng.integers(0, 2_000, size=20_000)
    r_encoded = encode_tuples(r_keys, rng.integers(0, 100, 2_000))
    s_encoded = encode_tuples(s_keys, rng.integers(0, 100, 20_000))
    placements: dict = {}
    r_sizes = place_zipf(len(r_encoded), nodes, exponent=1.0)
    s_sizes = place_zipf(len(s_encoded), nodes, exponent=0.5)
    r_off = s_off = 0
    for node in nodes:
        placements[node] = {
            "R": r_encoded[r_off : r_off + r_sizes[node]],
            "S": s_encoded[s_off : s_off + s_sizes[node]],
        }
        r_off += r_sizes[node]
        s_off += s_sizes[node]
    dist = Distribution(placements)

    result = benchmark.pedantic(
        lambda: tree_equijoin(tree, dist, seed=3), rounds=2, iterations=1
    )
    bound = equijoin_lower_bound(tree, dist)
    assert result.rounds == 1
    assert result.cost <= 6 * bound.value
    produced = sum(o["num_pairs"] for o in result.outputs.values())
    expected = sum(
        int(np.sum(s_keys == k)) for k in np.unique(r_keys)
        for _ in range(int(np.sum(r_keys == k)))
    )
    assert produced == expected
    benchmark.extra_info["cost"] = result.cost
    benchmark.extra_info["bound"] = bound.value
    benchmark.extra_info["join_rows"] = produced

"""Experiment F5 — Figure 5: the sorting lower bound is tight.

Figure 5 depicts the rank-interleaved adversarial placement from the
Theorem 6 proof: odd ranks left of every cut, even ranks right, so any
correct sort must exchange a constant fraction of each link's lighter
side.  Claims validated here:

* on the adversarial placement, weighted TeraSort's measured cost is
  within a small constant of the Theorem 6 bound — i.e. the bound is
  *tight* and wTS is optimal on the worst case;
* on a friendly placement with identical per-node sizes (already sorted
  along the traversal), the same bound over-estimates: measured cost is
  far below it, demonstrating the bound's worst-case-over-placements
  nature;
* wTS needs exactly 4 rounds and scales linearly in N.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import record_table
from repro.core.sorting.lower_bound import sorting_lower_bound
from repro.core.sorting.ordering import verify_sorted_output
from repro.core.sorting.wts import weighted_terasort
from repro.data.distribution import Distribution
from repro.data.generators import adversarial_sorted_distribution, place_uniform
from repro.topology.builders import two_level

SIZES = (10_000, 40_000, 160_000)


def _presorted_distribution(tree, total: int) -> Distribution:
    """The friendliest placement: already sorted along the traversal."""
    order = tree.left_to_right_compute_order()
    sizes = place_uniform(total, order)
    values = np.arange(1, total + 1, dtype=np.int64)
    placements = {}
    offset = 0
    for node in order:
        placements[node] = {"R": values[offset : offset + sizes[node]]}
        offset += sizes[node]
    return Distribution(placements)


@pytest.mark.benchmark(group="fig5")
def test_fig5_adversarial_vs_presorted(benchmark):
    tree = two_level([4, 4], leaf_bandwidth=2.0, uplink_bandwidth=1.0)

    def sweep():
        rows = []
        for total in SIZES:
            adversarial = adversarial_sorted_distribution(tree, total=total)
            friendly = _presorted_distribution(tree, total)
            bound = sorting_lower_bound(tree, adversarial)
            worst = weighted_terasort(tree, adversarial, seed=4)
            best = weighted_terasort(tree, friendly, seed=4)
            verify_sorted_output(
                tree, worst.outputs, worst.meta["order"],
                adversarial.relation("R"),
            )
            rows.append((total, bound, worst, best))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = []
    for total, bound, worst, best in rows:
        table.append(
            [
                total,
                f"{bound.value:.0f}",
                f"{worst.cost:.0f}",
                f"{worst.cost / bound.value:.2f}",
                f"{best.cost:.0f}",
                worst.rounds,
            ]
        )
        # tight on the adversarial placement...
        assert worst.cost <= 4 * bound.value
        # ...and a true worst case: the friendly placement costs less.
        assert best.cost < worst.cost
        assert worst.rounds <= 4

    # linear scaling in N on the adversarial family.
    first, last = rows[0], rows[-1]
    growth = last[2].cost / first[2].cost
    assert 8 <= growth <= 32  # 16x data

    record_table(
        "Figure 5 — Theorem 6 is tight on the adversarial placement "
        "(two-level(4,4), slow uplinks)",
        ["N", "Thm 6 bound", "wTS adversarial", "ratio",
         "wTS presorted", "rounds"],
        table,
    )

"""Experiment A1 — ablations of the paper's design choices.

Each algorithm bundles several ideas; these ablations isolate them:

* TreeIntersect **without the balanced partition** (one global block):
  S-tuples then cross β-edges freely, inflating cost on trees whose
  racks could have joined locally;
* wHC **with equal squares** (the classic-HyperCube sizing): slow links
  become the bottleneck;
* weighted TeraSort **without proportional splitting** (one splitter
  interval per heavy node): heavy nodes with lots of data ship most of
  it away instead of keeping it;
* weighted TeraSort **without the gather shortcut** on a dominant node:
  pays the full 4-round machinery where one hop sufficed.

Each ablated variant must stay *correct* (the tests verify outputs) —
only its cost degrades.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import record_table
from repro.core.intersection.tree import tree_intersect
from repro.core.cartesian.whc import whc_cartesian_product, whc_dimensions
from repro.core.sorting.ordering import verify_sorted_output
from repro.core.sorting.wts import weighted_terasort
from repro.data.generators import (
    adversarial_sorted_distribution,
    random_distribution,
)
from repro.topology.builders import star, two_level
from repro.util.intmath import next_power_of_two

ROWS: list = []


@pytest.mark.benchmark(group="ablations")
def test_ablation_balanced_partition(benchmark):
    tree = two_level([4, 4], leaf_bandwidth=4.0, uplink_bandwidth=1.0)
    dist = random_distribution(
        tree, r_size=1_000, s_size=12_000, policy="uniform", seed=101
    )

    def run_both():
        full = tree_intersect(tree, dist, seed=6)
        ablated = tree_intersect(
            tree, dist, seed=6, blocks=[tree.compute_nodes]
        )
        return full, ablated

    full, ablated = benchmark.pedantic(run_both, rounds=1, iterations=1)
    truth = set(
        np.intersect1d(dist.relation("R"), dist.relation("S")).tolist()
    )
    for result in (full, ablated):
        found: set = set()
        for values in result.outputs.values():
            found |= set(values.tolist())
        assert found == truth
    assert full.cost < ablated.cost
    ROWS.append(
        ["intersection", "balanced partition", f"{full.cost:.0f}",
         f"{ablated.cost:.0f}", f"{ablated.cost / full.cost:.2f}"]
    )


@pytest.mark.benchmark(group="ablations")
def test_ablation_weighted_squares(benchmark):
    tree = star(8, bandwidth=[16, 16, 8, 8, 2, 2, 1, 1])
    dist = random_distribution(
        tree, r_size=3_000, s_size=3_000, policy="proportional", seed=102
    )
    nodes = sorted(tree.compute_nodes, key=str)
    equal_dim = next_power_of_two(
        max(1, round((6_000 * 6_000 / 4 / len(nodes)) ** 0.5))
    )

    def run_both():
        weighted = whc_cartesian_product(tree, dist)
        equal = whc_cartesian_product(
            tree, dist, dims={v: 4 * equal_dim for v in nodes}
        )
        return weighted, equal

    weighted, equal = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert sum(o["num_pairs"] for o in weighted.outputs.values()) == 3_000**2
    assert sum(o["num_pairs"] for o in equal.outputs.values()) == 3_000**2
    assert weighted.cost < equal.cost
    ROWS.append(
        ["cartesian", "weighted squares", f"{weighted.cost:.0f}",
         f"{equal.cost:.0f}", f"{equal.cost / weighted.cost:.2f}"]
    )


@pytest.mark.benchmark(group="ablations")
def test_ablation_proportional_split(benchmark):
    # A heavily skewed star: with proportional splitting the big node
    # keeps most of its data; with equal splitting it ships ~7/8 away.
    tree = star(8)
    nodes = tree.left_to_right_compute_order()
    from repro.data.generators import distribute, make_sort_input, place_zipf

    total = 30_000
    dist = distribute(
        make_sort_input(total, seed=9),
        place_zipf(total, nodes, exponent=1.2),
        tag="R",
        shuffle_seed=10,
    )

    def run_both():
        full = weighted_terasort(tree, dist, seed=7)
        ablated = weighted_terasort(
            tree, dist, seed=7, proportional_split=False
        )
        return full, ablated

    full, ablated = benchmark.pedantic(run_both, rounds=1, iterations=1)
    for result in (full, ablated):
        verify_sorted_output(
            tree, result.outputs, result.meta["order"], dist.relation("R")
        )
    assert full.cost < ablated.cost
    ROWS.append(
        ["sorting", "proportional split", f"{full.cost:.0f}",
         f"{ablated.cost:.0f}", f"{ablated.cost / full.cost:.2f}"]
    )


@pytest.mark.benchmark(group="ablations")
def test_ablation_gather_shortcut(benchmark):
    # One node just over the half-data mark, the rest still heavy
    # enough to participate: without the shortcut, wTS pays its full
    # 4-round machinery (sampling, splitters, redistribution) where a
    # single gather round suffices and is optimal.
    tree = star(4)
    dist = random_distribution(
        tree, r_size=8_000, s_size=0,
        policy="single-heavy", heavy_fraction=0.55, seed=103,
    )

    def run_both():
        full = weighted_terasort(tree, dist, seed=8)
        ablated = weighted_terasort(tree, dist, seed=8, gather_shortcut=False)
        return full, ablated

    full, ablated = benchmark.pedantic(run_both, rounds=1, iterations=1)
    for result in (full, ablated):
        verify_sorted_output(
            tree, result.outputs, result.meta["order"], dist.relation("R")
        )
    # The shortcut's benefit is synchronization: one round instead of
    # four.  Costs stay comparable either way (measured: on *friendly*
    # placements the 4-round machinery can even undercut the gather,
    # because Theorem 6's bound is worst-case over placements —
    # recorded honestly in EXPERIMENTS.md).
    assert full.rounds == 1
    assert ablated.rounds == 4
    assert full.cost <= 2.0 * ablated.cost
    assert ablated.cost <= 2.0 * full.cost
    ROWS.append(
        ["sorting", "gather shortcut (rounds 1 vs 4)", f"{full.cost:.0f}",
         f"{ablated.cost:.0f}", f"{ablated.cost / max(full.cost, 1):.2f}"]
    )
    record_table(
        "Ablations — removing each design choice (cost with / without)",
        ["task", "ablated feature", "full cost", "ablated cost", "penalty"],
        list(ROWS),
    )

"""Experiment S2 — scaling of the process execution substrate.

Not a paper figure: this guards the real-parallel substrate added on
top of the simulator.  The two hot-path shuffles from Experiment S1
(the uniform-hash relational shuffle and the connected-components
superstep shuffle, ~10^6 elements on 64- and 256-node fat trees) run
through :class:`repro.parallel.backend.ParallelCluster` at 1, 2, 4 and
8 worker ranks.

Claims checked:

* every cell of the grid is **byte-identical** to the simulated
  ledger: same per-edge loads, same received counts, same per-node
  storage bytes (the ``oracle=True`` shadow replay) — asserted
  unconditionally;
* on machines whose core count can host the rank count, multi-worker
  cells beat the 1-worker baseline by at least ``1.2x`` and adding
  workers never regresses past the scheduling-noise tolerance —
  :func:`repro.analysis.scale.check_scale_cases` skips the speedup
  (never the identity) assertions for rank counts the CPU cannot
  host, and the trajectory row records ``cpu_count`` so historical
  entries stay interpretable;
* each run appends to the ``BENCH_SCALE.json`` perf trajectory at the
  repo root, next to ``BENCH_SPEED.json``.

``BENCH_SMALL=1`` shrinks the grid for CI smoke runs (64 nodes,
200k elements, 1 and 2 workers).
"""

from __future__ import annotations

import os

import pytest

from benchmarks.conftest import record_table
from repro.analysis.scale import (
    check_scale_cases,
    run_scale_suite,
    scale_table,
    write_scale_trajectory,
)
from repro.parallel.pool import shutdown_pools

SMALL = bool(os.environ.get("BENCH_SMALL"))
SEED = 7


@pytest.mark.benchmark(group="scale")
def test_process_substrate_scaling_and_identity(benchmark):
    def suite():
        try:
            return run_scale_suite(small=SMALL, seed=SEED)
        finally:
            shutdown_pools()

    cases = benchmark.pedantic(suite, rounds=1, iterations=1)
    check_scale_cases(cases)
    trajectory = write_scale_trajectory(cases, grid="small" if SMALL else "full")
    headers, rows = scale_table(cases)
    record_table(
        "Scale — process substrate vs worker count, oracle-verified "
        f"(grid={'small' if SMALL else 'full'}, seed={SEED}, "
        f"cpus={os.cpu_count()}, trajectory: {trajectory.name})",
        headers,
        rows,
    )
    for case in cases:
        key = f"{case.topology}.{case.name}.w{case.num_workers}.speedup"
        benchmark.extra_info[key] = round(case.speedup, 2)

"""Experiment F3 — Figure 3: the oriented tree G-dagger and its root.

Figure 3 shows the two shapes of G-dagger: rooted at a compute node
(left) and at a router (right).  The claims behind it (Section 4.1):

* Lemma 4 — out-degree at most one, exactly one root — holds for every
  placement;
* when the root *is* a compute node (one node holds at least half the
  data), routing everything to it is the optimal cartesian-product
  strategy and the protocol switches to it;
* when the root is a router, the packing strategy runs and stays within
  a constant of the max(Theorem 3, Theorem 4) bound.

The bench sweeps the heavy node's share of the data across the
strategy crossover at one half.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record_table
from repro.analysis.runner import run_cartesian
from repro.data.generators import random_distribution
from repro.topology.builders import two_level
from repro.topology.dagger import build_dagger

FRACTIONS = (0.10, 0.30, 0.45, 0.55, 0.70, 0.90)
SIZE = 3_000


@pytest.mark.benchmark(group="fig3")
def test_fig3_root_location_drives_strategy(benchmark):
    tree = two_level([3, 3], leaf_bandwidth=2.0, uplink_bandwidth=1.0)

    def sweep():
        rows = []
        for fraction in FRACTIONS:
            dist = random_distribution(
                tree, r_size=SIZE, s_size=SIZE,
                policy="single-heavy", heavy_fraction=fraction, seed=55,
            )
            sizes = {v: dist.size(v) for v in tree.compute_nodes}
            dagger = build_dagger(tree, sizes)
            report = run_cartesian(
                tree, dist, placement=f"heavy={fraction:g}"
            )
            rows.append((fraction, dagger, report))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = []
    for fraction, dagger, report in rows:
        # Lemma 4 shape invariants.
        roots = [v for v in dagger.tree.nodes if v not in dagger.parent]
        assert roots == [dagger.root]
        strategy = report.meta["result"]["strategy"]
        table.append(
            [
                f"{fraction:.2f}",
                str(dagger.root),
                "compute" if dagger.root_is_compute else "router",
                strategy,
                f"{report.cost:.0f}",
                f"{report.lower_bound:.0f}",
                f"{report.ratio:.2f}",
            ]
        )
        # The strategy crossover sits exactly at the half-data mark.
        if fraction > 0.5:
            assert dagger.root_is_compute
            assert strategy == "gather-to-root"
        if fraction < 0.45:
            assert not dagger.root_is_compute
            assert strategy == "balanced-packing"
        assert report.ratio <= 4.0

    record_table(
        "Figure 3 — G-dagger root vs heavy node share "
        f"(two-level(3,3), |R|=|S|={SIZE})",
        ["heavy share", "root", "root kind", "strategy", "cost", "bound", "ratio"],
        table,
    )

"""Cost-model auditor: invariants on live rounds, violations on tampering."""

import numpy as np
import pytest

from repro.analysis.speed import fat_tree, prepare_uniform_hash
from repro.analysis.suites import ALL_SUITE_TASKS, standard_plans
from repro.data.generators import random_distribution
from repro.engine import run, run_many
from repro.errors import AuditError
from repro.obs.audit import (
    CostAuditor,
    NullAuditor,
    auditing,
    get_auditor,
    use_auditor,
)
from repro.obs.metrics import collecting
from repro.parallel.pool import shutdown_pools
from repro.registry import get_task
from repro.sim.cluster import Cluster


@pytest.fixture(autouse=True, scope="module")
def _shared_pools():
    yield
    shutdown_pools()


def _audited_round(tree_size=2, elements=2_000):
    """One real bulk round, audited; returns (auditor, cluster, ctx)."""
    tree = fat_tree(tree_size)
    prepared, _ = prepare_uniform_hash(tree, elements, 7)
    cluster = Cluster(tree)
    with auditing() as auditor:
        with cluster.round() as ctx:
            for node, targets, payload in prepared:
                ctx.exchange(node, targets, payload, tag="recv")
    return auditor, cluster, ctx


class TestCleanRounds:
    def test_real_round_has_no_violations(self):
        auditor, _, _ = _audited_round()
        assert auditor.rounds_checked == 1
        assert auditor.violations == []

    def test_full_table1_sweep_is_clean_under_strict_audit(self):
        plans = standard_plans(
            r_size=240, s_size=240, seed=1, tasks=ALL_SUITE_TASKS
        )
        with auditing(strict=True) as auditor:
            reports = run_many(plans)
        assert len(reports) == len(plans)
        summary = auditor.summary()
        assert summary["violations"] == 0
        assert summary["rounds_checked"] > len(plans)
        assert summary["bounds_checked"] > 0

    def test_process_backend_rounds_audited_clean(self):
        tree = fat_tree(4)
        dist = random_distribution(
            tree, r_size=400, s_size=400, policy="uniform", seed=3
        )
        with auditing(strict=True) as auditor:
            for task in (
                "set-intersection",
                "cartesian-product",
                "sorting",
            ):
                run(
                    task,
                    tree,
                    dist,
                    seed=1,
                    backend="process",
                    num_workers=2,
                )
        # the LedgerOracle replays every parallel round through a
        # shadow simulator round, so each run is audited on both the
        # parallel substrate and the replay
        assert auditor.summary()["violations"] == 0
        assert auditor.rounds_checked > 0


class TestViolationDetection:
    def test_conservation_violation_when_storage_delta_lies(self):
        auditor, cluster, ctx = _audited_round()
        # replay the check with the *post*-round sizes as the "before"
        # snapshot: every delivery now looks like it never landed
        after = auditor.before_round(cluster)
        auditor._check_conservation(cluster, ctx, after, "tampered")
        assert auditor.violations
        assert all(
            v["invariant"] == "conservation" for v in auditor.violations
        )

    def test_round_cost_violation_when_ledger_lies(self, monkeypatch):
        auditor, cluster, _ = _audited_round()
        monkeypatch.setattr(
            cluster.ledger, "round_cost", lambda index: 123456.0
        )
        auditor._check_charges(cluster, 0, "tampered")
        assert [v["invariant"] for v in auditor.violations] == ["round-cost"]

    def test_charge_violation_on_non_canonical_edge(self, monkeypatch):
        auditor, cluster, _ = _audited_round()
        node = cluster.compute_order[0]
        monkeypatch.setattr(
            cluster.ledger, "round_loads", lambda index: {(node, node): 5}
        )
        auditor._check_charges(cluster, 0, "tampered")
        assert "charge" in [v["invariant"] for v in auditor.violations]

    def test_charge_violation_on_negative_load(self, monkeypatch):
        auditor, cluster, _ = _audited_round()
        u, v = cluster.compute_order[0], cluster.compute_order[1]
        monkeypatch.setattr(
            cluster.ledger, "round_loads", lambda index: {(u, v): -3}
        )
        auditor._check_charges(cluster, 0, "tampered")
        assert "charge" in [x["invariant"] for x in auditor.violations]

    def test_strict_mode_raises_on_first_violation(self):
        auditor = CostAuditor(strict=True)
        with pytest.raises(AuditError, match=r"\[conservation\]"):
            auditor._violation("conservation", "synthetic")
        assert len(auditor.violations) == 1

    def test_violations_counted_on_metrics_registry(self):
        with collecting() as registry:
            auditor = CostAuditor()
            auditor._violation("charge", "synthetic")
            auditor._violation("charge", "synthetic again")
        counters = registry.snapshot()["counters"]
        assert counters["repro_audit_violations_total"] == {
            "invariant=charge": 2
        }


class TestBoundChecks:
    def test_beating_a_worst_case_bound_is_a_metric_not_a_violation(self):
        with collecting() as registry:
            auditor = CostAuditor(strict=True)
            auditor.check_bound(
                cost=10.0,
                bound=88.0,
                task="set-intersection",
                protocol="tree-intersect",
                per_instance=False,
            )
        assert auditor.violations == []
        counters = registry.snapshot()["counters"]
        assert counters["repro_bound_beats_total"] == {
            "task=set-intersection": 1
        }

    def test_beating_an_instance_valid_bound_is_a_violation(self):
        auditor = CostAuditor()
        auditor.check_bound(
            cost=10.0,
            bound=88.0,
            task="connected-components",
            protocol="tree-components",
            per_instance=True,
        )
        assert [v["invariant"] for v in auditor.violations] == [
            "lower-bound"
        ]

    def test_meeting_the_bound_is_clean_either_way(self):
        auditor = CostAuditor(strict=True)
        for per_instance in (False, True):
            auditor.check_bound(
                cost=88.0,
                bound=88.0,
                task="sorting",
                protocol="wts",
                per_instance=per_instance,
            )
        assert auditor.violations == []

    def test_graph_tasks_declare_instance_valid_bounds(self):
        assert get_task("connected-components").bound_holds_per_instance
        assert get_task("triangle-count").bound_holds_per_instance
        # the paper's Theorem 1-3 bounds are worst-case: adaptive
        # protocols may legitimately undercut them on easy instances
        assert not get_task("set-intersection").bound_holds_per_instance
        assert not get_task("sorting").bound_holds_per_instance


class TestInstallation:
    def test_default_auditor_is_null_and_inert(self):
        auditor = get_auditor()
        assert isinstance(auditor, NullAuditor)
        assert auditor.enabled is False
        assert auditor.before_round(None) is None
        auditor.check_round(None, None, None)
        auditor.check_bound(
            cost=0.0, bound=1.0, task="x", protocol="y", per_instance=True
        )

    def test_use_auditor_restores_on_error(self):
        before = get_auditor()
        with pytest.raises(RuntimeError):
            with use_auditor(CostAuditor()):
                raise RuntimeError("boom")
        assert get_auditor() is before

    def test_summary_groups_by_invariant(self):
        auditor = CostAuditor()
        auditor._violation("charge", "a")
        auditor._violation("charge", "b")
        auditor._violation("round-cost", "c")
        summary = auditor.summary()
        assert summary["violations"] == 3
        assert summary["by_invariant"] == {"charge": 2, "round-cost": 1}


class TestExpectedDeliveries:
    def test_reference_expansion_counts_multicast_fanout(self):
        tree = fat_tree(2)
        cluster = Cluster(tree)
        leaves = [n for n in cluster.compute_order]
        with auditing() as auditor:
            with cluster.round() as ctx:
                ctx.exchange(
                    leaves[0],
                    np.array([1, 1, 2]),
                    np.array([10, 20, 30], dtype=np.int64),
                    tag="uni",
                )
                ctx.multicast(
                    leaves[1],
                    [leaves[2], leaves[3]],
                    np.array([7, 8], dtype=np.int64),
                    tag="multi",
                )
        assert auditor.violations == []
        assert cluster.local_size(leaves[1], "uni") == 2
        assert cluster.local_size(leaves[2], "multi") == 2
        assert cluster.local_size(leaves[3], "multi") == 2

"""Cross-process metric merging: rank deltas sum to the sim's totals.

Every element delivered by the process backend is counted on exactly
one worker rank and shipped over the round barrier as a registry
snapshot; the master's merge must therefore reproduce the simulator's
master-side counts *byte-identically* — same families, same labels,
same integers — at any worker count and under both ``fork`` and
``spawn`` start methods.

Identity is asserted over the backend-agnostic round families only:
engine and pool families legitimately differ (they carry backend or
timing labels), which is itself asserted.
"""

import multiprocessing

import pytest

from repro.analysis.speed import fat_tree, prepare_uniform_hash
from repro.data.generators import random_distribution
from repro.engine import run
from repro.obs.metrics import collecting, get_registry
from repro.parallel import ParallelCluster
from repro.parallel.pool import get_pool, shutdown_pools
from repro.sim.cluster import Cluster

#: Counter families recorded identically by both backends (no backend
#: label by design — see Cluster._record_round_metrics; compactions are
#: backend-agnostic because both substrates deliver exactly one chunk
#: per (dst, tag) per round and protocols issue identical reads).
ROUND_FAMILIES = (
    "repro_rounds_total",
    "repro_round_elements_total",
    "repro_round_bytes_total",
    "repro_delivered_elements_total",
    "repro_storage_compactions_total",
)

#: Histogram families over per-round ledger facts, likewise identical.
ROUND_HISTOGRAMS = ("repro_round_cost", "repro_max_edge_load")

START_METHODS = [
    method
    for method in ("fork", "spawn")
    if method in multiprocessing.get_all_start_methods()
]


@pytest.fixture(autouse=True, scope="module")
def _shared_pools():
    yield
    shutdown_pools()


def _round_view(snapshot: dict) -> dict:
    return {
        "counters": {
            name: snapshot["counters"].get(name, {})
            for name in ROUND_FAMILIES
        },
        "histograms": {
            name: snapshot["histograms"].get(name, {})
            for name in ROUND_HISTOGRAMS
        },
    }


def _exchange_snapshot(tree, prepared, make_cluster, *, rounds=1) -> dict:
    with collecting() as registry:
        cluster = make_cluster()
        for _ in range(rounds):
            with cluster.round() as ctx:
                for node, targets, payload in prepared:
                    ctx.exchange(node, targets, payload, tag="recv")
        if rounds > 1:
            # Reading a multi-round column compacts it lazily; both
            # backends must count those compactions identically.
            for node in cluster.compute_order:
                cluster.local(node, "recv")
        if isinstance(cluster, ParallelCluster):
            cluster.close()
    return registry.snapshot()


class TestMergeIdentity:
    @pytest.mark.parametrize("start_method", START_METHODS)
    @pytest.mark.parametrize("workers", [1, 2, 3])
    def test_round_families_byte_identical_to_sim(
        self, workers, start_method
    ):
        tree = fat_tree(4)
        prepared, _ = prepare_uniform_hash(tree, 20_000, 7)
        sim = _exchange_snapshot(tree, prepared, lambda: Cluster(tree))
        pool = get_pool(workers, start_method=start_method, seed=7)
        proc = _exchange_snapshot(
            tree,
            prepared,
            lambda: ParallelCluster(tree, pool=pool, oracle=True),
        )
        assert _round_view(sim) == _round_view(proc)
        # sanity: the families actually recorded something
        assert sim["counters"]["repro_rounds_total"] == {"": 1}
        assert sum(sim["counters"]["repro_delivered_elements_total"].values()) == 20_000

    @pytest.mark.parametrize("workers", [1, 2])
    def test_storage_compactions_byte_identical_to_sim(self, workers):
        # Two rounds land two chunks per (node, "recv") column; reading
        # each column compacts it exactly once on either backend.
        tree = fat_tree(4)
        prepared, _ = prepare_uniform_hash(tree, 20_000, 7)
        sim = _exchange_snapshot(
            tree, prepared, lambda: Cluster(tree), rounds=2
        )
        pool = get_pool(workers, seed=7)
        proc = _exchange_snapshot(
            tree,
            prepared,
            lambda: ParallelCluster(tree, pool=pool, oracle=True),
            rounds=2,
        )
        assert _round_view(sim) == _round_view(proc)
        compactions = sim["counters"]["repro_storage_compactions_total"]
        assert compactions == {"tag=recv": tree.num_compute_nodes}

    def test_pool_metrics_exist_only_on_the_process_backend(self):
        tree = fat_tree(2)
        prepared, _ = prepare_uniform_hash(tree, 2_000, 7)
        sim = _exchange_snapshot(tree, prepared, lambda: Cluster(tree))
        pool = get_pool(2, seed=7)
        proc = _exchange_snapshot(
            tree,
            prepared,
            lambda: ParallelCluster(tree, pool=pool, oracle=True),
        )
        assert "repro_pool_broadcasts_total" not in sim["counters"]
        assert "repro_pool_broadcasts_total" in proc["counters"]
        assert "repro_pool_barrier_seconds" in proc["histograms"]

    def test_engine_run_round_families_match_across_backends(self):
        tree = fat_tree(4)
        dist = random_distribution(
            tree, r_size=500, s_size=500, policy="uniform", seed=3
        )
        with collecting() as sim_registry:
            sim_report = run("set-intersection", tree, dist, seed=1)
        with collecting() as proc_registry:
            proc_report = run(
                "set-intersection",
                tree,
                dist,
                seed=1,
                backend="process",
                num_workers=2,
            )
        assert sim_report.cost == proc_report.cost
        assert _round_view(sim_registry.snapshot()) == _round_view(
            proc_registry.snapshot()
        )
        # engine families carry the backend label and differ on it
        sim_runs = sim_registry.snapshot()["counters"]["repro_runs_total"]
        proc_runs = proc_registry.snapshot()["counters"]["repro_runs_total"]
        assert any("backend=sim" in key for key in sim_runs)
        assert any("backend=process" in key for key in proc_runs)

    def test_oracle_replay_does_not_double_count(self):
        # the process path replays each round through a shadow sim
        # cluster for verification; with metrics muted during replay the
        # round counter must still read exactly 1
        tree = fat_tree(2)
        prepared, _ = prepare_uniform_hash(tree, 2_000, 7)
        pool = get_pool(2, seed=7)
        proc = _exchange_snapshot(
            tree,
            prepared,
            lambda: ParallelCluster(tree, pool=pool, oracle=True),
        )
        assert proc["counters"]["repro_rounds_total"] == {"": 1}

    def test_disabled_registry_ships_no_worker_payloads(self):
        tree = fat_tree(2)
        prepared, _ = prepare_uniform_hash(tree, 2_000, 7)
        pool = get_pool(2, seed=7)
        cluster = ParallelCluster(tree, pool=pool, oracle=True)
        with cluster.round() as ctx:
            for node, targets, payload in prepared:
                ctx.exchange(node, targets, payload, tag="recv")
        cluster.close()
        assert not get_registry().enabled
        assert get_registry().snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }

"""Regression sentinel: verdicts over bench trajectories, real and synthetic."""

import copy
import json
from pathlib import Path

import pytest

from repro.errors import AnalysisError
from repro.obs.regress import (
    Band,
    check_trajectory,
    check_trajectory_file,
    load_trajectory,
    overall_verdict,
    regression_table,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


def _speed_run(speedup=5.0, *, grid="full", **overrides):
    case = {
        "name": "uniform-hash shuffle",
        "topology": "fat-tree(8x8)",
        "nodes": 64,
        "elements": 1_000_000,
        "per_send_s": 0.10,
        "bulk_s": 0.10 / speedup,
        "speedup": speedup,
        "cost_elements": 27478.75,
        "ledger_identical": True,
    }
    case.update(overrides)
    return {"date": "2026-08-07", "grid": grid, "cases": [case]}


def _speed_file(*runs):
    return {"benchmark": "bench_speed", "unit": "seconds", "runs": list(runs)}


class TestCommittedTrajectories:
    @pytest.mark.parametrize(
        "name", ["BENCH_SPEED.json", "BENCH_SCALE.json"]
    )
    def test_committed_file_does_not_fail(self, name):
        verdict, checks = check_trajectory_file(REPO_ROOT / name)
        assert verdict in ("pass", "warn")
        assert checks


class TestVerdicts:
    def test_synthetic_twenty_percent_speedup_regression_fails(self):
        baseline = _speed_run(5.0)
        regressed = _speed_run(5.0 * 0.8)
        checks = check_trajectory(_speed_file(baseline, baseline, regressed))
        assert overall_verdict(checks) == "fail"
        (speedup_check,) = [c for c in checks if c.metric == "speedup"]
        assert speedup_check.verdict == "fail"
        assert speedup_check.ratio == pytest.approx(0.8)

    def test_small_drift_within_band_passes(self):
        checks = check_trajectory(
            _speed_file(_speed_run(5.0), _speed_run(4.9))
        )
        assert overall_verdict(checks) == "pass"

    def test_warn_band_between_warn_and_fail(self):
        checks = check_trajectory(
            _speed_file(_speed_run(5.0), _speed_run(4.5))
        )
        assert overall_verdict(checks) == "warn"

    def test_single_run_passes_with_no_baseline(self):
        checks = check_trajectory(_speed_file(_speed_run(5.0)))
        assert overall_verdict(checks) == "pass"
        assert any(c.note == "no baseline" for c in checks)

    def test_baseline_is_median_of_prior_runs(self):
        runs = [_speed_run(s) for s in (4.0, 6.0, 100.0, 5.9)]
        checks = check_trajectory(_speed_file(*runs))
        (speedup_check,) = [c for c in checks if c.metric == "speedup"]
        assert speedup_check.baseline == 6.0  # median, not mean
        assert speedup_check.verdict == "pass"

    def test_other_grid_runs_do_not_baseline(self):
        # a tiny CI grid must not baseline the full local grid
        runs = [_speed_run(100.0, grid="small"), _speed_run(5.0)]
        checks = check_trajectory(_speed_file(*runs))
        assert overall_verdict(checks) == "pass"
        assert any(c.note == "no baseline" for c in checks)

    def test_false_identity_flag_fails_without_any_baseline(self):
        checks = check_trajectory(
            _speed_file(_speed_run(5.0, ledger_identical=False))
        )
        assert overall_verdict(checks) == "fail"
        (flag_check,) = [
            c for c in checks if c.metric == "ledger_identical"
        ]
        assert flag_check.verdict == "fail"

    def test_cost_drift_from_prior_runs_fails(self):
        checks = check_trajectory(
            _speed_file(
                _speed_run(5.0),
                _speed_run(5.0, cost_elements=99999.0),
            )
        )
        assert overall_verdict(checks) == "fail"
        (cost_check,) = [c for c in checks if c.metric == "cost_elements"]
        assert "drifted" in cost_check.note


class TestBands:
    def test_lower_is_better_normalization(self):
        band = Band("seconds", higher_is_better=False, warn_below=0.5)
        assert band.normalized(2.0, 1.0) == pytest.approx(0.5)
        assert band.verdict(0.49) == "warn"
        assert band.verdict(0.5) == "pass"

    def test_zero_baseline_is_not_a_crash(self):
        band = Band("speedup", fail_below=0.85)
        assert band.normalized(1.0, 0.0) is None
        assert band.verdict(None) == "pass"

    def test_custom_bands_override_defaults(self):
        runs = _speed_file(_speed_run(5.0), _speed_run(4.0))
        strict = check_trajectory(
            runs, bands=(Band("speedup", fail_below=0.95),)
        )
        assert overall_verdict(strict) == "fail"


class TestLoading:
    def test_malformed_files_raise_analysis_error(self, tmp_path):
        missing = tmp_path / "absent.json"
        with pytest.raises(AnalysisError, match="cannot read"):
            load_trajectory(missing)
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(AnalysisError, match="not JSON"):
            load_trajectory(bad)
        empty = tmp_path / "empty.json"
        empty.write_text(json.dumps({"benchmark": "x", "runs": []}))
        with pytest.raises(AnalysisError, match="no runs"):
            load_trajectory(empty)
        caseless = tmp_path / "caseless.json"
        caseless.write_text(json.dumps({"runs": [{"date": "x"}]}))
        with pytest.raises(AnalysisError, match="cases"):
            load_trajectory(caseless)

    def test_table_rows_align_with_checks(self):
        checks = check_trajectory(
            _speed_file(_speed_run(5.0), _speed_run(4.0))
        )
        headers, rows = regression_table(checks)
        assert len(rows) == len(checks)
        assert headers[-1] == "verdict"
        assert all(len(row) == len(headers) for row in rows)


class TestCli:
    def test_bench_check_exit_codes(self, tmp_path, capsys):
        from repro.__main__ import main

        good = tmp_path / "good.json"
        good.write_text(
            json.dumps(_speed_file(_speed_run(5.0), _speed_run(5.0)))
        )
        bad = tmp_path / "bad.json"
        bad.write_text(
            json.dumps(_speed_file(_speed_run(5.0), _speed_run(4.0 * 0.8)))
        )
        assert main(["bench", "check", str(good)]) == 0
        assert "PASS" in capsys.readouterr().out
        assert main(["bench", "check", str(good), str(bad)]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out

    def test_bench_check_json_payload(self, tmp_path, capsys):
        from repro.__main__ import main

        path = tmp_path / "solo.json"
        path.write_text(json.dumps(_speed_file(_speed_run(5.0))))
        assert main(["bench", "check", "--json", str(path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["verdict"] == "pass"
        assert payload[str(path)]["checks"]

"""The observability-off overhead guard.

The contract from the design: with no recording tracer, metrics
registry, or auditor installed, the instrumentation costs a few
thread-local attribute lookups plus a no-op span per *round* (never
per element).  This test prices the full disabled hook sequence a
round touches and asserts it stays far under 5% of the small-grid
bench_speed round time — the budget the CI smoke enforces end-to-end.
"""

from time import perf_counter

from repro.analysis.speed import _run_round, fat_tree, prepare_uniform_hash
from repro.obs.audit import NullAuditor, get_auditor
from repro.obs.metrics import NullRegistry, get_registry
from repro.obs.tracer import NullTracer, get_tracer


def _disabled_hook_seconds(repeats: int = 20_000) -> float:
    """Per-iteration cost of every hook a disabled round executes."""
    tracer = get_tracer()
    assert isinstance(tracer, NullTracer)
    assert isinstance(get_registry(), NullRegistry)
    assert isinstance(get_auditor(), NullAuditor)
    start = perf_counter()
    for index in range(repeats):
        with tracer.span(f"round {index}", category="round", backend="sim"):
            if tracer.enabled:  # the gate phase timers hide behind
                raise AssertionError("tracer should be disabled")
            tracer.annotate(cost=1.0)
        # the metrics and audit gates Cluster.round executes per round
        registry = get_registry()
        if registry.enabled:
            raise AssertionError("registry should be disabled")
        auditor = get_auditor()
        if auditor.enabled:
            raise AssertionError("auditor should be disabled")
        auditor.before_round(None)
    return (perf_counter() - start) / repeats


class TestDisabledOverhead:
    def test_null_hooks_are_under_five_percent_of_a_small_round(self):
        tree = fat_tree(4)
        prepared, _ = prepare_uniform_hash(tree, 50_000, 7)
        round_seconds = min(
            _run_round(tree, prepared, "bulk")[0] for _ in range(3)
        )
        hook_seconds = _disabled_hook_seconds()
        # A bulk round opens one round span; allow 20 hook executions
        # of headroom and the margin is still enormous (~microseconds
        # of hooks vs milliseconds of round).
        assert hook_seconds * 20 < 0.05 * round_seconds, (
            f"disabled tracing hooks cost {hook_seconds * 1e6:.2f}us each "
            f"vs a {round_seconds * 1e3:.2f}ms round — the no-op path "
            "grew real work"
        )

    def test_null_tracer_records_nothing_during_a_round(self):
        tree = fat_tree(2)
        prepared, _ = prepare_uniform_hash(tree, 2_000, 7)
        tracer = get_tracer()
        _run_round(tree, prepared, "bulk")
        assert tracer.events == ()
        assert tracer.current_path() == ()

"""Metrics registry unit behaviour: instruments, snapshots, merging."""

import json
import threading

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import AnalysisError
from repro.obs.metrics import (
    LATENCY_BUCKETS,
    MetricsRegistry,
    NullRegistry,
    collecting,
    get_registry,
    merge_snapshots,
    parse_label_key,
    prometheus_text,
    set_registry,
    use_registry,
    write_snapshot,
)


class TestInstruments:
    def test_counter_accumulates_and_labels_split_series(self):
        registry = MetricsRegistry()
        registry.counter("runs_total", task="a").inc()
        registry.counter("runs_total", task="a").inc(4)
        registry.counter("runs_total", task="b").inc()
        snap = registry.snapshot()
        assert snap["counters"]["runs_total"] == {"task=a": 5, "task=b": 1}

    def test_gauge_sets_and_overwrites(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("pool_size")
        gauge.set(3)
        registry.gauge("pool_size").set(7.5)
        assert registry.snapshot()["gauges"]["pool_size"][""] == 7.5

    def test_same_name_same_labels_is_the_same_instrument(self):
        registry = MetricsRegistry()
        first = registry.counter("x_total", tag="t")
        second = registry.counter("x_total", tag="t")
        assert first is second

    @pytest.mark.parametrize(
        "value,bound",
        [(-2, 0.0), (0, 0.0), (0.5, 1.0), (1, 1.0), (1.5, 2.0), (8, 8.0),
         (9, 16.0), (1000, 1024.0)],
    )
    def test_log2_histogram_bucket_placement(self, value, bound):
        registry = MetricsRegistry()
        registry.histogram("h").observe(value)
        buckets = registry.snapshot()["histograms"]["h"][""]["buckets"]
        assert buckets == {str(bound): 1}

    def test_fixed_buckets_overflow_to_inf(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", buckets=LATENCY_BUCKETS)
        hist.observe(0.001)
        hist.observe(9999.0)
        state = registry.snapshot()["histograms"]["lat"][""]
        assert state["buckets"][str(LATENCY_BUCKETS[2])] == 1
        assert state["buckets"]["inf"] == 1
        assert state["count"] == 2
        assert state["sum"] == pytest.approx(9999.001)

    def test_histogram_scheme_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets="log2")
        with pytest.raises(AnalysisError):
            registry.histogram("h", buckets=LATENCY_BUCKETS)


class TestSnapshotAndMerge:
    def test_snapshot_is_strict_json(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("c_total", tag="t").inc()
        registry.histogram("h").observe(3)
        registry.histogram("lat", buckets=(0.5, 2.0)).observe(10.0)
        payload = registry.snapshot()
        json.dumps(payload, allow_nan=False)
        path = tmp_path / "metrics.json"
        written = write_snapshot(path, registry)
        assert json.loads(path.read_text()) == written == payload

    def test_merge_adds_counters_and_buckets_gauges_overwrite(self):
        left = MetricsRegistry()
        left.counter("c_total").inc(2)
        left.gauge("g").set(1.0)
        left.histogram("h").observe(3)
        right = MetricsRegistry()
        right.counter("c_total").inc(5)
        right.counter("other_total", tag="x").inc()
        right.gauge("g").set(9.0)
        right.histogram("h").observe(3)
        right.histogram("h").observe(100)
        left.merge_snapshot(right.snapshot())
        snap = left.snapshot()
        assert snap["counters"]["c_total"][""] == 7
        assert snap["counters"]["other_total"] == {"tag=x": 1}
        assert snap["gauges"]["g"][""] == 9.0
        hist = snap["histograms"]["h"][""]
        assert hist["count"] == 3
        assert hist["buckets"] == {"4.0": 2, "128.0": 1}

    def test_label_key_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("c_total", task="sort", backend="sim").inc()
        (key,) = registry.snapshot()["counters"]["c_total"]
        assert parse_label_key(key) == {"task": "sort", "backend": "sim"}
        assert parse_label_key("") == {}


def _registry_from(ops) -> dict:
    """Build a snapshot from generated (kind, label, value) operations."""
    registry = MetricsRegistry()
    for kind, label, value in ops:
        if kind == "counter":
            registry.counter("c_total", tag=label).inc(value)
        else:
            registry.histogram("h_total", tag=label).observe(value)
    return registry.snapshot()


_OPS = st.lists(
    st.tuples(
        st.sampled_from(["counter", "histogram"]),
        st.sampled_from(["a", "b"]),
        st.integers(min_value=0, max_value=2**40),
    ),
    max_size=12,
)


class TestMergeAlgebra:
    @given(_OPS, _OPS, _OPS)
    def test_merge_is_associative(self, ops_a, ops_b, ops_c):
        a, b, c = map(_registry_from, (ops_a, ops_b, ops_c))
        left = merge_snapshots(merge_snapshots(a, b), c)
        right = merge_snapshots(a, merge_snapshots(b, c))
        assert left == right

    @given(_OPS, _OPS)
    def test_counter_and_histogram_merge_commutes(self, ops_a, ops_b):
        # gauges are last-writer-wins, so commutativity only holds for
        # the additive families — which is what rank merging relies on
        a, b = map(_registry_from, (ops_a, ops_b))
        assert merge_snapshots(a, b) == merge_snapshots(b, a)


class TestPrometheusText:
    def test_families_types_and_cumulative_buckets(self):
        registry = MetricsRegistry()
        registry.counter("repro_runs_total", task="sort").inc(3)
        registry.gauge("repro_last_ratio").set(1.5)
        hist = registry.histogram("repro_cost")
        hist.observe(3)
        hist.observe(100)
        text = prometheus_text(registry)
        assert "# TYPE repro_runs_total counter" in text
        assert 'repro_runs_total{task="sort"} 3' in text
        assert "# TYPE repro_last_ratio gauge" in text
        assert "# TYPE repro_cost histogram" in text
        # buckets are cumulative and +Inf closes the ladder
        assert 'repro_cost_bucket{le="4"} 1' in text
        assert 'repro_cost_bucket{le="128"} 2' in text
        assert 'repro_cost_bucket{le="+Inf"} 2' in text
        assert "repro_cost_count 2" in text
        assert text.endswith("\n")

    def test_renders_from_snapshot_dict_identically(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc()
        registry.histogram("h").observe(2)
        assert prometheus_text(registry.snapshot()) == prometheus_text(
            registry
        )


class TestInstallation:
    def test_default_registry_is_null_and_records_nothing(self):
        registry = get_registry()
        assert isinstance(registry, NullRegistry)
        assert registry.enabled is False
        registry.counter("x_total", tag="t").inc()
        registry.histogram("h").observe(5)
        assert registry.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }

    def test_collecting_installs_and_restores(self):
        before = get_registry()
        with collecting() as registry:
            assert get_registry() is registry
            assert registry.enabled
        assert get_registry() is before

    def test_use_registry_restores_on_error(self):
        before = get_registry()
        with pytest.raises(RuntimeError):
            with use_registry(MetricsRegistry()):
                raise RuntimeError("boom")
        assert get_registry() is before

    def test_installation_is_thread_local(self):
        with collecting() as registry:
            seen = []
            thread = threading.Thread(
                target=lambda: seen.append(get_registry())
            )
            thread.start()
            thread.join()
        assert isinstance(seen[0], NullRegistry)
        assert seen[0] is not registry

    def test_set_registry_returns_previous(self):
        registry = MetricsRegistry()
        previous = set_registry(registry)
        try:
            assert get_registry() is registry
        finally:
            set_registry(previous)

    def test_summary_collapses_histograms(self):
        with collecting() as registry:
            registry.counter("c_total", tag="t").inc(2)
            hist = registry.histogram("h")
            hist.observe(3)
            hist.observe(5)
        summary = registry.summary()
        assert summary["counters"]["c_total"] == {"tag=t": 2}
        assert summary["histograms"]["h"][""] == {"count": 2, "sum": 8.0}

"""Tracer behaviour: nesting, ordering, bounds, paths, thread-locality."""

import threading

import pytest

from repro.obs.tracer import (
    NullTracer,
    Tracer,
    get_tracer,
    set_tracer,
    tracing,
    use_tracer,
)


class TestSpanNesting:
    def test_children_close_before_parents(self):
        with tracing() as tracer:
            with tracer.span("outer"):
                with tracer.span("inner"):
                    pass
        names = [event.name for event in tracer.events]
        assert names == ["inner", "outer"]

    def test_depth_reflects_nesting(self):
        with tracing() as tracer:
            with tracer.span("a"):
                with tracer.span("b"):
                    with tracer.span("c"):
                        pass
        depths = {event.name: event.depth for event in tracer.events}
        assert depths == {"a": 0, "b": 1, "c": 2}

    def test_child_interval_within_parent(self):
        with tracing() as tracer:
            with tracer.span("outer"):
                with tracer.span("inner"):
                    pass
        inner, outer = tracer.events
        assert outer.start <= inner.start
        assert inner.end <= outer.end
        assert inner.duration >= 0.0

    def test_sibling_indices_are_monotone(self):
        with tracing() as tracer:
            for name in ("first", "second", "third"):
                with tracer.span(name):
                    pass
        indices = [event.index for event in tracer.events]
        assert indices == sorted(indices)
        assert len(set(indices)) == 3

    def test_exception_closes_span_and_marks_error(self):
        with tracing() as tracer:
            with pytest.raises(ValueError):
                with tracer.span("doomed"):
                    raise ValueError("boom")
        (event,) = tracer.events
        assert event.attrs["error"] == "ValueError"
        assert tracer.current_path() == ()


class TestAttributes:
    def test_span_kwargs_and_set_and_category(self):
        with tracing() as tracer:
            with tracer.span("s", category="cat", fixed=1) as span:
                span.set(late=2)
        (event,) = tracer.events
        assert event.attrs == {"fixed": 1, "late": 2, "category": "cat"}

    def test_annotate_hits_innermost_open_span(self):
        with tracing() as tracer:
            with tracer.span("outer"):
                with tracer.span("inner"):
                    tracer.annotate(cost=3.5)
        by_name = {event.name: event.attrs for event in tracer.events}
        assert by_name["inner"] == {"cost": 3.5}
        assert by_name["outer"] == {}

    def test_annotate_without_open_span_is_a_noop(self):
        with tracing() as tracer:
            tracer.annotate(cost=1)
        assert tracer.events == []


class TestBoundedBuffer:
    def test_overflow_increments_dropped(self):
        with tracing(max_events=2) as tracer:
            for index in range(5):
                with tracer.span(f"s{index}"):
                    pass
        assert len(tracer.events) == 2
        assert tracer.dropped == 3

    def test_max_events_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(max_events=0)

    def test_add_event_respects_bound(self):
        tracer = Tracer(max_events=1)
        tracer.add_event("a", 0.0, 1.0)
        tracer.add_event("b", 1.0, 2.0)
        assert [event.name for event in tracer.events] == ["a"]
        assert tracer.dropped == 1


class TestCurrentPath:
    def test_recording_tracer_path(self):
        with tracing() as tracer:
            assert tracer.current_path() == ()
            with tracer.span("outer"):
                with tracer.span("inner"):
                    assert tracer.current_path() == ("outer", "inner")
            assert tracer.current_path() == ()

    def test_null_tracer_tracks_path_without_events(self):
        tracer = NullTracer()
        with tracer.span("outer"):
            with tracer.span("inner", category="ignored", attr=1):
                assert tracer.current_path() == ("outer", "inner")
        assert tracer.current_path() == ()
        assert tracer.events == ()
        assert tracer.enabled is False


class TestInstallation:
    def test_default_is_a_null_tracer(self):
        assert isinstance(get_tracer(), NullTracer)
        assert get_tracer().enabled is False

    def test_tracing_installs_and_restores(self):
        before = get_tracer()
        with tracing() as tracer:
            assert get_tracer() is tracer
            assert tracer.enabled is True
        assert get_tracer() is before

    def test_set_tracer_returns_previous(self):
        tracer = Tracer()
        previous = set_tracer(tracer)
        try:
            assert get_tracer() is tracer
        finally:
            set_tracer(previous)

    def test_tracing_restores_on_exception(self):
        before = get_tracer()
        with pytest.raises(RuntimeError):
            with tracing():
                raise RuntimeError
        assert get_tracer() is before


class TestThreads:
    def test_installation_is_thread_local(self):
        seen = {}

        def probe():
            seen["tracer"] = get_tracer()

        with tracing() as tracer:
            thread = threading.Thread(target=probe)
            thread.start()
            thread.join()
            assert seen["tracer"] is not tracer
            assert isinstance(seen["tracer"], NullTracer)

    def test_shared_tracer_keeps_per_thread_stacks_and_tracks(self):
        tracer = Tracer()
        barrier = threading.Barrier(2)

        def work(label):
            with use_tracer(tracer):
                with tracer.span(label):
                    barrier.wait(timeout=5)
                    assert tracer.current_path() == (label,)

        threads = [
            threading.Thread(target=work, args=(f"t{i}",), name=f"worker-{i}")
            for i in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert {event.name for event in tracer.events} == {"t0", "t1"}
        assert {event.track for event in tracer.events} == {
            "worker-0",
            "worker-1",
        }

    def test_add_event_uses_explicit_track(self):
        with tracing() as tracer:
            tracer.add_event(
                "rank0/round 0",
                1.0,
                2.0,
                track="rank 0",
                category="worker-round",
                attrs={"rank": 0},
            )
        (event,) = tracer.events
        assert event.track == "rank 0"
        assert event.attrs == {"rank": 0, "category": "worker-round"}
        assert event.duration == 1.0

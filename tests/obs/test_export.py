"""Chrome-trace schema validation and metrics round-trip properties."""

import json

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs.export import chrome_trace, metrics, write_chrome_trace
from repro.obs.tracer import Tracer, tracing


def _sample_tracer() -> Tracer:
    with tracing() as tracer:
        with tracer.span("engine.run demo", category="engine", task="demo"):
            with tracer.span("round 0", category="round", round=0):
                tracer.annotate(round_cost=2.5, max_edge_load=5)
            tracer.add_event(
                "rank0/round 0",
                0.0,
                1.0,
                track="rank 0",
                category="worker-round",
                attrs={"rank": 0},
            )
    return tracer


class TestChromeTraceSchema:
    def test_required_keys_on_every_event(self):
        payload = chrome_trace(_sample_tracer())
        assert payload["displayTimeUnit"] == "ms"
        events = payload["traceEvents"]
        assert events, "expected at least one event"
        for event in events:
            assert {"name", "ph", "pid", "tid", "args"} <= set(event)
            assert event["ph"] in ("X", "M")
            if event["ph"] == "X":
                assert event["ts"] >= 0.0
                assert event["dur"] >= 0.0
                assert isinstance(event["args"], dict)

    def test_metadata_names_every_track(self):
        payload = chrome_trace(_sample_tracer())
        meta = {
            event["args"]["name"]: event["tid"]
            for event in payload["traceEvents"]
            if event["ph"] == "M"
        }
        assert meta["main"] == 0
        assert "rank 0" in meta
        used_tids = {
            event["tid"]
            for event in payload["traceEvents"]
            if event["ph"] == "X"
        }
        assert used_tids <= set(meta.values())

    def test_timestamps_relative_and_ordered(self):
        payload = chrome_trace(_sample_tracer())
        stamps = [
            event["ts"]
            for event in payload["traceEvents"]
            if event["ph"] == "X"
        ]
        assert stamps == sorted(stamps)
        assert min(stamps) == 0.0

    def test_strictly_json_serializable(self):
        tracer = _sample_tracer()
        # Inject the awkward types _jsonify exists for.
        tracer.events[0].attrs["np_int"] = np.int64(7)
        tracer.events[0].attrs["np_float"] = np.float64(1.5)
        tracer.events[0].attrs["nan"] = float("nan")
        text = json.dumps(chrome_trace(tracer), allow_nan=False)
        decoded = json.loads(text)
        args = decoded["traceEvents"][-1]["args"]
        assert args["np_int"] == 7
        assert args["nan"] is None

    def test_extra_kwargs_become_top_level_keys(self):
        tracer = _sample_tracer()
        payload = chrome_trace(tracer, metrics=metrics(tracer), grid="8x8")
        assert payload["grid"] == "8x8"
        assert payload["metrics"]["num_events"] == len(tracer.events)

    def test_empty_tracer_exports_cleanly(self):
        with tracing() as tracer:
            pass
        payload = chrome_trace(tracer)
        assert [e["ph"] for e in payload["traceEvents"]] == ["M"]
        json.dumps(payload, allow_nan=False)

    def test_write_chrome_trace_round_trips(self, tmp_path):
        tracer = _sample_tracer()
        path = tmp_path / "demo.trace.json"
        payload = write_chrome_trace(path, tracer, metrics=metrics(tracer))
        assert json.loads(path.read_text()) == payload


class TestMetrics:
    def test_aggregates_by_category(self):
        tracer = _sample_tracer()
        summary = metrics(tracer)
        assert set(summary["spans"]) == {"engine", "round", "worker-round"}
        assert summary["spans"]["round"]["count"] == 1
        assert summary["num_events"] == 3
        assert summary["dropped"] == 0

    def test_uncategorized_spans_fall_back_to_name(self):
        with tracing() as tracer:
            with tracer.span("bare"):
                pass
        assert set(metrics(tracer)["spans"]) == {"bare"}

    def test_bucket_stats_are_consistent(self):
        tracer = Tracer()
        tracer.add_event("a", 0.0, 1.0, category="c")
        tracer.add_event("b", 0.0, 3.0, category="c")
        bucket = metrics(tracer)["spans"]["c"]
        assert bucket["count"] == 2
        assert bucket["total_s"] == pytest.approx(4.0)
        assert bucket["min_s"] == pytest.approx(1.0)
        assert bucket["max_s"] == pytest.approx(3.0)
        assert bucket["mean_s"] == pytest.approx(2.0)

    @given(
        spans=st.lists(
            st.tuples(
                st.sampled_from(["round", "engine", "stage", "barrier"]),
                st.floats(
                    min_value=0.0,
                    max_value=1e3,
                    allow_nan=False,
                    allow_infinity=False,
                ),
                st.floats(
                    min_value=0.0,
                    max_value=1e3,
                    allow_nan=False,
                    allow_infinity=False,
                ),
            ),
            max_size=30,
        )
    )
    def test_metrics_json_round_trip(self, spans):
        tracer = Tracer()
        for category, start, duration in spans:
            tracer.add_event(
                category, start, start + duration, category=category
            )
        summary = metrics(tracer)
        encoded = json.dumps(summary, allow_nan=False)
        assert json.loads(encoded) == summary
        total = sum(
            bucket["count"] for bucket in summary["spans"].values()
        )
        assert total == summary["num_events"] == len(spans)


class TestTrackOrder:
    def test_rank_tracks_sort_numerically_not_lexically(self):
        tracer = Tracer()
        # arrival order is scrambled and lexical order would interleave
        # rank 10 between rank 1 and rank 2
        for rank in (10, 2, 0, 1, 11):
            tracer.add_event(
                f"rank{rank}/round 0", 0.0, 1.0, track=f"rank {rank}"
            )
        payload = chrome_trace(tracer)
        names = {
            event["args"]["name"]: event["tid"]
            for event in payload["traceEvents"]
            if event["ph"] == "M"
        }
        assert names["main"] == 0
        ranks = sorted(
            (tid, track)
            for track, tid in names.items()
            if track.startswith("rank")
        )
        assert [track for _, track in ranks] == [
            "rank 0", "rank 1", "rank 2", "rank 10", "rank 11",
        ]

    def test_non_rank_tracks_keep_first_appearance_after_ranks(self):
        tracer = Tracer()
        tracer.add_event("z", 0.0, 1.0, track="zeta")
        tracer.add_event("r", 0.0, 1.0, track="rank 1")
        tracer.add_event("a", 0.0, 1.0, track="alpha")
        payload = chrome_trace(tracer)
        names = {
            event["args"]["name"]: event["tid"]
            for event in payload["traceEvents"]
            if event["ph"] == "M"
        }
        assert names["main"] == 0
        assert names["rank 1"] == 1
        assert names["zeta"] == 2  # first appearance among non-ranks
        assert names["alpha"] == 3

    def test_every_event_tid_matches_its_track_metadata(self):
        tracer = Tracer()
        for rank in (3, 1, 2):
            tracer.add_event(
                f"rank{rank}/round 0", 0.0, 1.0, track=f"rank {rank}"
            )
        payload = chrome_trace(tracer)
        names = {
            event["args"]["name"]: event["tid"]
            for event in payload["traceEvents"]
            if event["ph"] == "M"
        }
        for event in payload["traceEvents"]:
            if event["ph"] == "X":
                rank = event["name"].split("/")[0].removeprefix("rank")
                assert event["tid"] == names[f"rank {rank}"]


class TestDroppedEvents:
    def _overflowed_tracer(self) -> Tracer:
        tracer = Tracer(max_events=2)
        for index in range(5):
            tracer.add_event(f"event {index}", 0.0, 1.0)
        assert tracer.dropped == 3
        return tracer

    def test_dropped_count_is_stamped_top_level(self):
        payload = chrome_trace(self._overflowed_tracer())
        assert payload["dropped"] == 3
        assert chrome_trace(_sample_tracer())["dropped"] == 0

    def test_write_warns_on_stderr_when_truncated(self, tmp_path, capsys):
        path = tmp_path / "t.json"
        payload = write_chrome_trace(path, self._overflowed_tracer())
        err = capsys.readouterr().err
        assert "3 event(s) dropped" in err
        assert json.loads(path.read_text())["dropped"] == payload["dropped"]

    def test_write_is_silent_when_nothing_dropped(self, tmp_path, capsys):
        write_chrome_trace(tmp_path / "t.json", _sample_tracer())
        assert capsys.readouterr().err == ""

"""Process-backend tracing: rank merge, attr identity, failure paths."""

import pytest

from repro.analysis.speed import fat_tree, prepare_uniform_hash
from repro.errors import ProtocolError
from repro.obs.tracer import get_tracer, tracing
from repro.parallel import ParallelCluster
from repro.parallel.pool import WorkerPool, get_pool, shutdown_pools
from repro.sim.cluster import Cluster

SLEEP = "repro.parallel.pool:_sleep_kernel"

ROUND_ATTRS = ("round_cost", "max_edge_load", "elements_by_tag", "bytes_by_tag")


@pytest.fixture(autouse=True, scope="module")
def _shared_pools():
    yield
    shutdown_pools()


def _round_events(tracer):
    return [
        event
        for event in tracer.events
        if event.attrs.get("category") == "round"
    ]


def _run_traced(tree, prepared, cluster_factory):
    with tracing() as tracer:
        cluster = cluster_factory()
        with cluster.round() as ctx:
            for node, targets, payload in prepared:
                ctx.exchange(node, targets, payload, tag="recv")
        if isinstance(cluster, ParallelCluster):
            cluster.close()
    return tracer


class TestProcessTraceIdentity:
    def test_round_attrs_identical_to_sim_and_ranks_merged(self):
        tree = fat_tree(4)
        prepared, _ = prepare_uniform_hash(tree, 20_000, 7)

        sim_tracer = _run_traced(tree, prepared, lambda: Cluster(tree))
        pool = get_pool(2, seed=7)
        proc_tracer = _run_traced(
            tree,
            prepared,
            lambda: ParallelCluster(tree, pool=pool, oracle=True),
        )

        (sim_round,) = _round_events(sim_tracer)
        (proc_round,) = _round_events(proc_tracer)
        for key in ROUND_ATTRS:
            assert sim_round.attrs[key] == proc_round.attrs[key], key
        assert proc_round.attrs["backend"] == "process"
        assert sim_round.attrs["backend"] == "sim"

        # The oracle's shadow replay must not have produced a second
        # round span (it runs under a muted tracer).
        assert len(_round_events(proc_tracer)) == 1

        # Worker activity arrives rank-qualified on per-rank tracks.
        worker = [
            event
            for event in proc_tracer.events
            if event.attrs.get("category") == "worker-round"
        ]
        assert {event.track for event in worker} == {"rank 0", "rank 1"}
        assert {event.name for event in worker} == {
            "rank0/round 0",
            "rank1/round 0",
        }
        for event in worker:
            assert event.attrs["round"] == 0
            assert event.duration > 0.0

        barriers = [
            event
            for event in proc_tracer.events
            if event.attrs.get("category") == "barrier"
        ]
        assert barriers, "expected a pool.barrier span"

    def test_untraced_process_round_ships_no_span_payloads(self):
        tree = fat_tree(2)
        prepared, _ = prepare_uniform_hash(tree, 2_000, 7)
        pool = get_pool(2, seed=7)
        cluster = ParallelCluster(tree, pool=pool, oracle=True)
        with cluster.round() as ctx:
            for node, targets, payload in prepared:
                ctx.exchange(node, targets, payload, tag="recv")
        cluster.close()
        assert get_tracer().events == ()


class TestFailurePathSpans:
    def test_timeout_error_carries_active_span_stack(self):
        tracer = get_tracer()  # the default no-op tracer suffices
        pool = WorkerPool(2, seed=0)
        with tracer.span("superstep 3"):
            with tracer.span("stage 1 join"):
                with pytest.raises(
                    ProtocolError,
                    match=r"active spans: superstep 3 > stage 1 join",
                ) as excinfo:
                    pool.broadcast(
                        SLEEP, [30.0, 30.0], timeout=0.3, label="round 7"
                    )
        assert "round 7" in str(excinfo.value)
        assert pool.closed

    def test_failure_without_outer_spans_names_the_barrier(self):
        pool = WorkerPool(1, seed=0)
        with pytest.raises(ProtocolError) as excinfo:
            pool.broadcast(SLEEP, [30.0], timeout=0.3, label="round 2")
        # broadcast itself runs inside a pool.barrier span, so even a
        # bare failure names where it happened.
        assert "[active spans: pool.barrier]" in str(excinfo.value)

"""Property tests for the simulator's accounting identities."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.intersection.tree import tree_intersect
from repro.data.distribution import Distribution
from repro.sim.cluster import Cluster
from tests.strategies import set_pair_instances, tree_topologies


@st.composite
def transfer_plans(draw):
    """A random tree plus a random batch of multicasts."""
    tree = draw(tree_topologies())
    computes = sorted(tree.compute_nodes, key=str)
    num_transfers = draw(st.integers(0, 10))
    transfers = []
    for _ in range(num_transfers):
        src = draw(st.sampled_from(computes))
        dsts = draw(
            st.lists(st.sampled_from(computes), min_size=1, max_size=4)
        )
        size = draw(st.integers(1, 30))
        transfers.append((src, frozenset(dsts), size))
    return tree, transfers


class TestLedgerIdentities:
    @given(plan=transfer_plans())
    @settings(max_examples=80, deadline=None)
    def test_round_cost_is_bottleneck(self, plan):
        tree, transfers = plan
        cluster = Cluster(tree)
        with cluster.round() as ctx:
            for src, dsts, size in transfers:
                ctx.multicast(src, dsts, np.arange(size), tag="x")
        loads = cluster.ledger.round_loads(0)
        expected = max(
            (count / tree.bandwidth(*edge) for edge, count in loads.items()),
            default=0.0,
        )
        assert cluster.ledger.round_cost(0) == expected

    @given(plan=transfer_plans())
    @settings(max_examples=80, deadline=None)
    def test_edge_loads_match_steiner_union(self, plan):
        tree, transfers = plan
        cluster = Cluster(tree)
        with cluster.round() as ctx:
            for src, dsts, size in transfers:
                ctx.multicast(src, dsts, np.arange(size), tag="x")
        expected: dict = {}
        for src, dsts, size in transfers:
            for edge in cluster.oracle.steiner_edges(src, dsts):
                expected[edge] = expected.get(edge, 0) + size
        assert cluster.ledger.round_loads(0) == expected

    @given(plan=transfer_plans())
    @settings(max_examples=60, deadline=None)
    def test_deliveries_complete_and_exact(self, plan):
        tree, transfers = plan
        cluster = Cluster(tree)
        with cluster.round() as ctx:
            for src, dsts, size in transfers:
                ctx.multicast(src, dsts, np.arange(size), tag="x")
        expected_per_node: dict = {}
        for _, dsts, size in transfers:
            for dst in dsts:
                expected_per_node[dst] = expected_per_node.get(dst, 0) + size
        for node in tree.compute_nodes:
            assert cluster.local_size(node, "x") == expected_per_node.get(
                node, 0
            )


class TestNormalizationEquivalence:
    @given(instance=set_pair_instances(min_nodes=4, max_nodes=9))
    @settings(max_examples=40, deadline=None)
    def test_intersection_answer_survives_normalization(self, instance):
        from repro.topology.normalize import normalize

        tree, dist = instance
        expected = set(
            np.intersect1d(dist.relation("R"), dist.relation("S")).tolist()
        )
        normalized = normalize(tree, virtual_bandwidth="sum")
        remapped = dist.remap(normalized.node_map)
        result = tree_intersect(normalized.tree, remapped, seed=5)
        found: set = set()
        for values in result.outputs.values():
            found |= set(values.tolist())
        assert found == expected

"""Property: the columnar data plane is byte-identical to its oracles.

Random mixed-round scripts (sends, hashed exchanges, multicast groups,
interleaved tags, repeated rounds onto the same columns) must leave
*exactly* the same observable state — per-edge ledger loads, per-node
received counts, per-(node, tag) storage bytes — whichever substrate
runs them:

* sim ``bulk`` (columnar store, vectorized grouping/gather) vs sim
  ``per-send`` (the legacy per-transfer path);
* the process backend at 1/2/3 workers vs sim ``bulk``.

``assert_clusters_identical`` raises on the first divergence, naming it.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.parallel import ParallelCluster
from repro.parallel.oracle import assert_clusters_identical
from repro.parallel.pool import get_pool, shutdown_pools
from repro.sim.cluster import Cluster
from tests.strategies import tree_topologies


@pytest.fixture(autouse=True, scope="module")
def _shared_pools():
    yield
    shutdown_pools()


@st.composite
def round_scripts(draw):
    """A random tree plus a multi-round mixed transfer script."""
    tree = draw(tree_topologies(min_nodes=3, max_nodes=9))
    computes = sorted(tree.compute_nodes, key=str)
    rounds = []
    offset = 0  # distinct payload values across ops, so aliasing shows
    for _ in range(draw(st.integers(1, 3))):
        ops = []
        for _ in range(draw(st.integers(0, 4))):
            kind = draw(
                st.sampled_from(("send", "exchange", "exchange_multicast"))
            )
            src = draw(st.sampled_from(computes))
            size = draw(st.integers(1, 20))
            tag = draw(st.sampled_from(("a", "b")))
            payload = np.arange(offset, offset + size, dtype=np.int64)
            offset += size
            if kind == "send":
                dst = draw(st.sampled_from(computes))
                ops.append(("send", src, dst, payload, tag))
            elif kind == "exchange":
                targets = np.asarray(
                    draw(
                        st.lists(
                            st.integers(0, len(computes) - 1),
                            min_size=size,
                            max_size=size,
                        )
                    ),
                    dtype=np.int64,
                )
                ops.append(("exchange", src, targets, payload, tag))
            else:
                num_sets = draw(st.integers(1, 3))
                sets = [
                    frozenset(
                        draw(
                            st.lists(
                                st.sampled_from(computes),
                                min_size=1,
                                max_size=3,
                            )
                        )
                    )
                    for _ in range(num_sets)
                ]
                group_ids = np.asarray(
                    draw(
                        st.lists(
                            st.integers(0, num_sets - 1),
                            min_size=size,
                            max_size=size,
                        )
                    ),
                    dtype=np.int64,
                )
                ops.append(
                    ("exchange_multicast", src, group_ids, sets, payload, tag)
                )
        rounds.append(ops)
    return tree, rounds


def _replay(cluster, rounds):
    for ops in rounds:
        with cluster.round() as ctx:
            for op in ops:
                if op[0] == "send":
                    _, src, dst, payload, tag = op
                    ctx.send(src, dst, payload, tag=tag)
                elif op[0] == "exchange":
                    _, src, targets, payload, tag = op
                    ctx.exchange(src, targets, payload, tag=tag)
                else:
                    _, src, group_ids, sets, payload, tag = op
                    ctx.exchange_multicast(
                        src, group_ids, sets, payload, tag=tag
                    )
    return cluster


class TestColumnarByteIdentity:
    @given(script=round_scripts())
    @settings(max_examples=60, deadline=None)
    def test_bulk_matches_per_send(self, script):
        tree, rounds = script
        bulk = _replay(Cluster(tree, exchange_mode="bulk"), rounds)
        per_send = _replay(Cluster(tree, exchange_mode="per-send"), rounds)
        assert_clusters_identical(
            bulk, per_send, a_name="bulk", b_name="per-send"
        )

    @pytest.mark.parametrize("workers", [1, 2, 3])
    @given(script=round_scripts())
    @settings(max_examples=10, deadline=None)
    def test_process_backend_matches_sim(self, workers, script):
        tree, rounds = script
        sim = _replay(Cluster(tree, exchange_mode="bulk"), rounds)
        pool = get_pool(workers, seed=7)
        proc = _replay(ParallelCluster(tree, pool=pool), rounds)
        try:
            assert_clusters_identical(
                proc, sim, a_name="process", b_name="sim"
            )
        finally:
            proc.close()

"""Property tests for the square packing machinery (Lemmas 5 and 8)."""

import math

from hypothesis import given, settings, strategies as st

from repro.core.cartesian.packing import (
    _SquareNode,
    coverage_report,
    merge_pool,
    pack_by_dagger,
    pack_flat,
)
from repro.core.cartesian.tree_packing import balanced_packing_tree
from repro.topology.dagger import build_dagger
from repro.util.intmath import next_power_of_two
from tests.strategies import tree_topologies


class TestMergePoolProperties:
    @given(
        sizes=st.lists(
            st.integers(0, 6).map(lambda k: 2**k), min_size=1, max_size=40
        )
    )
    @settings(max_examples=100)
    def test_area_preserved_and_capped(self, sizes):
        squares = [_SquareNode(s, owner=i) for i, s in enumerate(sizes)]
        merged = merge_pool(squares)
        assert sum(m.size**2 for m in merged) == sum(s**2 for s in sizes)
        counts: dict[int, int] = {}
        for square in merged:
            counts[square.size] = counts.get(square.size, 0) + 1
        assert all(v <= 3 for v in counts.values())

    @given(
        sizes=st.lists(
            st.integers(0, 5).map(lambda k: 2**k), min_size=1, max_size=40
        )
    )
    @settings(max_examples=100)
    def test_largest_square_dominates_total_area(self, sizes):
        # With <= 3 squares per size below the largest, the largest
        # square's area is at least 1/4 of the total (Lemma 5's core).
        squares = [_SquareNode(s, owner=i) for i, s in enumerate(sizes)]
        merged = merge_pool(squares)
        largest = max(m.size for m in merged)
        total = sum(m.size**2 for m in merged)
        assert (2 * largest) ** 2 > total


class TestPackFlatProperties:
    @given(
        grid=st.integers(2, 64),
        drawn=st.lists(
            st.integers(0, 6).map(lambda k: 2**k), min_size=1, max_size=12
        ),
    )
    @settings(max_examples=100)
    def test_lemma5_coverage(self, grid, drawn):
        # Take random dims, then top the pool up with fixed-size squares
        # until the squared sum reaches (2*grid)^2 — the Lemma 5
        # precondition — after which packing must fully cover the grid.
        dims = {f"v{i}": size for i, size in enumerate(drawn)}
        area = sum(size * size for size in drawn)
        filler = next_power_of_two(2 * grid)
        index = len(drawn)
        while area < (2 * grid) ** 2:
            dims[f"v{index}"] = filler
            area += filler * filler
            index += 1
        tiles = pack_flat(dims, grid, grid)
        report = coverage_report(tiles, grid, grid)
        assert report["grid_cells"] == grid * grid

    @given(grid=st.integers(2, 64))
    @settings(max_examples=40)
    def test_equal_squares_tile_exactly(self, grid):
        side = next_power_of_two(grid)
        dims = {f"v{i}": side // 2 for i in range(4)}
        tiles = pack_flat(dims, side, side)
        report = coverage_report(tiles, side, side)
        assert report["overhang_cells"] == 0
        assert report["unused_nodes"] == 0


class TestAlgorithm5Properties:
    @given(tree=tree_topologies(min_nodes=4), n_scale=st.integers(1, 50))
    @settings(max_examples=80, deadline=None)
    def test_plan_always_covers_grid(self, tree, n_scale):
        sizes = {v: n_scale for v in tree.compute_nodes}
        total = sum(sizes.values())
        dagger = build_dagger(tree, sizes)
        if dagger.root_is_compute:
            return
        plan = balanced_packing_tree(dagger, total)
        # Lemma 8(4): shares square-sum to 1 over compute leaves.
        assert math.isclose(
            sum(plan.share[v] ** 2 for v in plan.dims), 1.0, rel_tol=1e-9
        )
        # dims therefore cover the (N/2)^2 grid
        half = total // 2
        tiles = pack_by_dagger(dagger, plan.dims, half, half)
        coverage_report(tiles, half, half)

"""Property: warm (cached-artifact) serving is byte-identical to cold runs.

The whole session layer rests on one invariant: topology artifacts and
cached plans are pure functions of (topology structure, placement
statistics), so sharing them can never change a result.  These tests
let Hypothesis hunt for a counterexample across random trees,
placements, and interleavings that the fixed serve-benchmark grid would
miss.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.analysis.serve import strip_report
from repro.plan import PlanCache, chain_catalog, chain_query, optimize
from repro.session import EngineSession
from repro.topology.artifacts import ArtifactCache, use_artifacts
from tests.strategies import tree_topologies


def _distribution(tree, seed, policy="zipf"):
    return repro.random_distribution(
        tree, r_size=120, s_size=120, policy=policy, seed=seed
    )


class TestWarmColdIdentity:
    @given(
        tree=tree_topologies(min_nodes=4, max_nodes=10),
        seed=st.integers(0, 4),
        task=st.sampled_from(["set-intersection", "sorting", "equijoin"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_session_run_matches_cold_run(self, tree, seed, task):
        dist = _distribution(tree, seed)
        cold = repro.run(task, tree, dist, seed=seed)
        with EngineSession(tree) as session:
            warm_first = session.run(task, dist, seed=seed)
            warm_again = session.run(task, dist, seed=seed)
        assert strip_report(warm_first) == strip_report(cold)
        assert strip_report(warm_again) == strip_report(cold)

    @given(
        tree=tree_topologies(min_nodes=4, max_nodes=9),
        seed=st.integers(0, 3),
    )
    @settings(max_examples=15, deadline=None)
    def test_cached_plan_matches_fresh_compile(self, tree, seed):
        catalog = chain_catalog(tree, num_relations=3, rows=80, seed=seed)
        query = chain_query(3)
        fresh = optimize(query, tree, catalog)
        cache = PlanCache()
        optimize(query, tree, catalog, cache=cache)
        cached = optimize(query, tree, catalog, cache=cache)
        assert cache.hits == 1
        assert cached == fresh  # frozen dataclasses: structural equality

    @given(
        trees=st.lists(
            tree_topologies(min_nodes=4, max_nodes=8),
            min_size=2,
            max_size=3,
        ),
        seed=st.integers(0, 3),
    )
    @settings(max_examples=15, deadline=None)
    def test_interleaved_topologies_share_one_cache(self, trees, seed):
        """One artifact cache serving several tenants' networks at once."""
        colds = [
            repro.run("set-intersection", tree, _distribution(tree, seed))
            for tree in trees
        ]
        cache = ArtifactCache()
        with use_artifacts(cache):
            # interleave: A, B, ..., A, B, ... — every revisit must hit
            # the cache and still answer exactly like the cold runs.
            for _ in range(2):
                for tree, cold in zip(trees, colds):
                    warm = repro.run(
                        "set-intersection", tree, _distribution(tree, seed)
                    )
                    assert strip_report(warm) == strip_report(cold)
        assert cache.misses <= len(trees)
        assert cache.hits >= len(trees)


class TestProcessBackendIdentity:
    @given(
        tree=tree_topologies(min_nodes=4, max_nodes=7),
        seed=st.integers(0, 2),
    )
    @settings(max_examples=6, deadline=None)
    def test_warm_process_session_matches_cold_sim(self, tree, seed):
        dist = _distribution(tree, seed)
        cold = repro.run("set-intersection", tree, dist, seed=seed)
        with EngineSession(
            tree, backend="process", num_workers=2
        ) as session:
            warm = session.run("set-intersection", dist, seed=seed)
        assert warm.cost == cold.cost
        assert warm.rounds == cold.rounds
        assert warm.meta["result"] == cold.meta["result"]

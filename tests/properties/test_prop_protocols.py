"""Property tests: end-to-end protocol correctness on random instances.

These are the strongest tests in the suite: for arbitrary random trees,
bandwidths, and placements, every protocol must produce exactly the right
answer, and the topology-aware protocols must stay within a generous
constant of their lower bounds.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.baselines.hypercube import classic_hypercube_cartesian_product
from repro.baselines.uniform_hash import uniform_hash_intersect
from repro.core.cartesian.tree import tree_cartesian_product
from repro.core.intersection.tree import tree_intersect
from repro.core.sorting.ordering import verify_sorted_output
from repro.core.sorting.terasort import terasort
from repro.core.sorting.wts import weighted_terasort
from tests.strategies import set_pair_instances, sort_instances


def union_of_outputs(result) -> set:
    found: set = set()
    for values in result.outputs.values():
        found |= set(np.asarray(values).tolist())
    return found


class TestIntersectionProperties:
    @given(instance=set_pair_instances(), seed=st.integers(0, 100))
    @settings(max_examples=80, deadline=None)
    def test_tree_intersect_exact(self, instance, seed):
        tree, dist = instance
        expected = set(
            np.intersect1d(dist.relation("R"), dist.relation("S")).tolist()
        )
        result = tree_intersect(tree, dist, seed=seed)
        assert union_of_outputs(result) == expected
        assert result.rounds == 1

    @given(instance=set_pair_instances(), seed=st.integers(0, 100))
    @settings(max_examples=40, deadline=None)
    def test_uniform_hash_exact(self, instance, seed):
        tree, dist = instance
        expected = set(
            np.intersect1d(dist.relation("R"), dist.relation("S")).tolist()
        )
        result = uniform_hash_intersect(tree, dist, seed=seed)
        assert union_of_outputs(result) == expected


class TestCartesianProperties:
    @given(instance=set_pair_instances(max_fragment=12))
    @settings(max_examples=60, deadline=None)
    def test_tree_cartesian_counts(self, instance):
        tree, dist = instance
        r_total, s_total = dist.total("R"), dist.total("S")
        if r_total != s_total:
            # rebalance to the equal-size case the theorem covers
            return
        result = tree_cartesian_product(tree, dist)
        produced = sum(o["num_pairs"] for o in result.outputs.values())
        assert produced == r_total * s_total

    @given(instance=set_pair_instances(max_fragment=8))
    @settings(max_examples=40, deadline=None)
    def test_classic_hypercube_counts(self, instance):
        tree, dist = instance
        result = classic_hypercube_cartesian_product(tree, dist)
        produced = sum(o["num_pairs"] for o in result.outputs.values())
        assert produced == dist.total("R") * dist.total("S")


class TestSortingProperties:
    @given(instance=sort_instances(), seed=st.integers(0, 100))
    @settings(max_examples=80, deadline=None)
    def test_weighted_terasort_sorts(self, instance, seed):
        tree, dist = instance
        result = weighted_terasort(tree, dist, seed=seed)
        verify_sorted_output(
            tree, result.outputs, result.meta["order"], dist.relation("R")
        )
        assert result.rounds <= 4

    @given(instance=sort_instances(), seed=st.integers(0, 100))
    @settings(max_examples=40, deadline=None)
    def test_terasort_sorts(self, instance, seed):
        tree, dist = instance
        result = terasort(tree, dist, seed=seed)
        verify_sorted_output(
            tree, result.outputs, result.meta["order"], dist.relation("R")
        )

"""Property tests for the G-dagger orientation (Lemma 4) and cover DP."""

import pytest
from hypothesis import given, settings

from repro.topology.dagger import (
    build_dagger,
    cover_value,
    minimal_covers,
    optimal_cover,
)
from tests.strategies import node_sizes, tree_topologies


class TestLemma4:
    @given(data=tree_topologies().flatmap(
        lambda tree: node_sizes(tree).map(lambda sizes: (tree, sizes))
    ))
    @settings(max_examples=80)
    def test_unique_root_and_out_degrees(self, data):
        tree, sizes = data
        dagger = build_dagger(tree, sizes)
        # out-degree <= 1 holds structurally (parent is a dict); check
        # the unique sink and the absence of cycles.
        roots = [v for v in tree.nodes if v not in dagger.parent]
        assert roots == [dagger.root]
        for start in tree.nodes:
            seen = set()
            node = start
            while node in dagger.parent:
                assert node not in seen
                seen.add(node)
                node = dagger.parent[node]
            assert node == dagger.root

    @given(data=tree_topologies().flatmap(
        lambda tree: node_sizes(tree).map(lambda sizes: (tree, sizes))
    ))
    @settings(max_examples=80)
    def test_edges_point_to_weakly_heavier_side(self, data):
        tree, sizes = data
        dagger = build_dagger(tree, sizes)
        for node, parent in dagger.parent.items():
            edge = tree.canonical_edge(node, parent)
            minus, plus = tree.compute_sides(edge)
            node_side = minus if node in tree.edge_sides(edge)[0] else plus
            other_side = plus if node_side is minus else minus
            weight_node = sum(sizes.get(v, 0) for v in node_side)
            weight_other = sum(sizes.get(v, 0) for v in other_side)
            assert weight_node <= weight_other


class TestCoverDp:
    @given(data=tree_topologies(max_nodes=8).flatmap(
        lambda tree: node_sizes(tree).map(lambda sizes: (tree, sizes))
    ))
    @settings(max_examples=60, deadline=None)
    def test_dp_matches_enumeration(self, data):
        tree, sizes = data
        dagger = build_dagger(tree, sizes)
        if not dagger.parent:
            return
        cover, value = optimal_cover(dagger)
        enumerated = list(minimal_covers(dagger))
        assert enumerated, "at least the leaf cover exists"
        best = min(cover_value(dagger, c) for c in enumerated)
        assert value == pytest.approx(best)
        assert cover_value(dagger, cover) == pytest.approx(value)

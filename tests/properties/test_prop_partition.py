"""Property tests: Algorithm 3 always outputs a Definition 1 partition."""

from hypothesis import assume, given, settings, strategies as st

from repro.core.intersection.partition import (
    balanced_partition,
    classify_edges,
    verify_balanced_partition,
)
from tests.strategies import node_sizes, tree_topologies


@st.composite
def partition_instances(draw):
    tree = draw(tree_topologies())
    sizes = draw(node_sizes(tree, max_size=60))
    total = sum(sizes.values())
    r_size = draw(st.integers(0, max(0, total // 2)))
    return tree, sizes, r_size


class TestBalancedPartitionProperties:
    @given(instance=partition_instances())
    @settings(max_examples=150, deadline=None)
    def test_definition1_holds(self, instance):
        tree, sizes, r_size = instance
        blocks = balanced_partition(tree, sizes, r_size)
        violations = verify_balanced_partition(tree, sizes, r_size, blocks)
        assert violations == [], (sizes, r_size, blocks, violations)

    @given(instance=partition_instances())
    @settings(max_examples=100, deadline=None)
    def test_gbeta_connectivity_lemma2(self, instance):
        tree, sizes, r_size = instance
        classification = classify_edges(tree, sizes, r_size)
        assume(classification.beta)
        # Lemma 2: the β-edges induce a connected subgraph.
        vertices: set = set()
        adjacency: dict = {}
        for (a, b) in classification.beta:
            vertices |= {a, b}
            adjacency.setdefault(a, set()).add(b)
            adjacency.setdefault(b, set()).add(a)
        start = next(iter(vertices))
        seen = {start}
        stack = [start]
        while stack:
            for nxt in adjacency[stack.pop()]:
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        assert seen == vertices

    @given(instance=partition_instances())
    @settings(max_examples=100, deadline=None)
    def test_number_of_blocks_bounded(self, instance):
        tree, sizes, r_size = instance
        blocks = balanced_partition(tree, sizes, r_size)
        total = sum(sizes.values())
        if r_size > 0:
            # property (3) implies at most total / r_size blocks
            assert len(blocks) <= max(1, total // r_size)

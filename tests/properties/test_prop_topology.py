"""Property tests for topology invariants on random trees."""

from hypothesis import given, settings

from repro.topology.normalize import normalize
from repro.topology.steiner import PathOracle
from tests.strategies import tree_topologies


class TestTreeInvariants:
    @given(tree=tree_topologies())
    @settings(max_examples=60)
    def test_edge_sides_partition(self, tree):
        for edge in tree.undirected_edges():
            a_side, b_side = tree.edge_sides(edge)
            assert a_side | b_side == tree.nodes
            assert not (a_side & b_side)

    @given(tree=tree_topologies())
    @settings(max_examples=60)
    def test_paths_connect_endpoints(self, tree):
        nodes = sorted(tree.compute_nodes, key=str)
        for u in nodes[:3]:
            for v in nodes[-3:]:
                path = tree.path_nodes(u, v)
                assert path[0] == u and path[-1] == v
                assert len(path) == len(set(path))  # simple path

    @given(tree=tree_topologies())
    @settings(max_examples=60)
    def test_traversal_order_subtree_contiguity(self, tree):
        order = tree.left_to_right_compute_order()
        position = {v: i for i, v in enumerate(order)}
        for edge in tree.undirected_edges():
            for side in tree.compute_sides(edge):
                positions = sorted(position[v] for v in side)
                if positions and positions == list(
                    range(positions[0], positions[-1] + 1)
                ):
                    break
            else:
                raise AssertionError(f"edge {edge}: no contiguous side")

    @given(tree=tree_topologies())
    @settings(max_examples=40)
    def test_leaf_count_lower_bound(self, tree):
        # every tree with >= 2 nodes has >= 2 leaves
        assert len(tree.leaves()) >= 2


class TestNormalizationInvariants:
    @given(tree=tree_topologies())
    @settings(max_examples=60)
    def test_normalized_shape(self, tree):
        result = normalize(tree, virtual_bandwidth="sum")
        normalized = result.tree
        for v in normalized.compute_nodes:
            assert normalized.degree(v) <= 1
        for v in normalized.nodes:
            if v not in normalized.compute_nodes:
                assert normalized.degree(v) != 2

    @given(tree=tree_topologies())
    @settings(max_examples=60)
    def test_compute_count_preserved(self, tree):
        result = normalize(tree)
        assert len(result.tree.compute_nodes) == len(tree.compute_nodes)
        assert set(result.node_map) == set(tree.compute_nodes)


class TestSteinerInvariants:
    @given(tree=tree_topologies())
    @settings(max_examples=40)
    def test_steiner_equals_union_of_paths(self, tree):
        oracle = PathOracle(tree)
        computes = sorted(tree.compute_nodes, key=str)
        src = computes[0]
        dsts = computes[1:4] if len(computes) > 1 else computes
        union = set()
        for dst in dsts:
            union |= set(tree.path_edges(src, dst))
        assert set(oracle.steiner_edges(src, dsts)) == union

    @given(tree=tree_topologies())
    @settings(max_examples=40)
    def test_steiner_subadditive(self, tree):
        oracle = PathOracle(tree)
        computes = sorted(tree.compute_nodes, key=str)
        src = computes[0]
        full = set(oracle.steiner_edges(src, computes))
        for dst in computes:
            assert set(oracle.path_edges(src, dst)) <= full

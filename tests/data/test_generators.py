"""Unit tests for relation and placement generators."""

import numpy as np
import pytest

from repro.data.generators import (
    adversarial_sorted_distribution,
    distribute,
    make_set_pair,
    make_sort_input,
    merge_distributions,
    place_by_weights,
    place_proportional,
    place_single_heavy,
    place_uniform,
    place_zipf,
    random_distribution,
)
from repro.errors import DistributionError
from repro.topology.builders import star, two_level


class TestMakeSetPair:
    def test_sizes(self):
        r_values, s_values = make_set_pair(100, 300, seed=1)
        assert len(r_values) == 100
        assert len(s_values) == 300

    def test_exact_intersection(self):
        r_values, s_values = make_set_pair(
            100, 300, intersection_size=37, seed=1
        )
        assert len(np.intersect1d(r_values, s_values)) == 37

    def test_relations_are_sets(self):
        r_values, s_values = make_set_pair(500, 500, seed=2)
        assert len(np.unique(r_values)) == 500
        assert len(np.unique(s_values)) == 500

    def test_deterministic(self):
        first = make_set_pair(50, 50, seed=9)
        second = make_set_pair(50, 50, seed=9)
        assert np.array_equal(first[0], second[0])
        assert np.array_equal(first[1], second[1])

    def test_default_intersection(self):
        r_values, s_values = make_set_pair(100, 400, seed=0)
        assert len(np.intersect1d(r_values, s_values)) == 25

    def test_oversized_intersection_rejected(self):
        with pytest.raises(DistributionError):
            make_set_pair(10, 20, intersection_size=11)

    def test_domain_too_small_rejected(self):
        with pytest.raises(DistributionError):
            make_set_pair(100, 100, intersection_size=0, domain=50)


class TestMakeSortInput:
    def test_distinct_values(self):
        values = make_sort_input(1000, seed=3)
        assert len(np.unique(values)) == 1000

    def test_deterministic(self):
        assert np.array_equal(
            make_sort_input(100, seed=1), make_sort_input(100, seed=1)
        )


class TestPlacementPolicies:
    nodes = ["a", "b", "c", "d"]

    def test_uniform_splits_evenly(self):
        sizes = place_uniform(10, self.nodes)
        assert sorted(sizes.values()) == [2, 2, 3, 3]

    def test_uniform_total_preserved(self):
        assert sum(place_uniform(13, self.nodes).values()) == 13

    def test_uniform_rejects_empty(self):
        with pytest.raises(DistributionError):
            place_uniform(5, [])

    def test_zipf_is_skewed(self):
        sizes = place_zipf(1000, self.nodes)
        assert sizes["a"] > sizes["b"] > sizes["c"] > sizes["d"]
        assert sum(sizes.values()) == 1000

    def test_zipf_exponent_zero_is_uniform(self):
        sizes = place_zipf(100, self.nodes, exponent=0.0)
        assert sorted(sizes.values()) == [25, 25, 25, 25]

    def test_single_heavy_fraction(self):
        sizes = place_single_heavy(100, self.nodes, heavy_fraction=0.7)
        assert sizes["a"] == 70
        assert sum(sizes.values()) == 100

    def test_single_heavy_other_index(self):
        sizes = place_single_heavy(
            100, self.nodes, heavy_fraction=0.9, heavy_index=2
        )
        assert sizes["c"] == 90

    def test_single_heavy_invalid_fraction(self):
        with pytest.raises(DistributionError):
            place_single_heavy(10, self.nodes, heavy_fraction=1.5)

    def test_proportional(self):
        sizes = place_proportional(
            90, self.nodes, {"a": 1, "b": 2, "c": 3, "d": 3}
        )
        assert sizes == {"a": 10, "b": 20, "c": 30, "d": 30}

    def test_by_weights_total_exact(self):
        weights = np.array([0.3, 0.3, 0.4])
        sizes = place_by_weights(10, ["x", "y", "z"], weights)
        assert sum(sizes.values()) == 10

    def test_by_weights_rejects_all_zero(self):
        with pytest.raises(DistributionError):
            place_by_weights(10, ["x"], np.array([0.0]))


class TestDistribute:
    def test_sizes_must_match(self):
        with pytest.raises(DistributionError):
            distribute(np.arange(5), {"a": 2, "b": 2}, tag="R")

    def test_order_preserved_without_shuffle(self):
        dist = distribute(np.arange(6), {"a": 2, "b": 4}, tag="R")
        assert dist.fragment("a", "R").tolist() == [0, 1]
        assert dist.fragment("b", "R").tolist() == [2, 3, 4, 5]

    def test_shuffle_changes_order_not_content(self):
        values = np.arange(100)
        dist = distribute(values, {"a": 50, "b": 50}, tag="R", shuffle_seed=1)
        merged = np.sort(
            np.concatenate([dist.fragment("a", "R"), dist.fragment("b", "R")])
        )
        assert np.array_equal(merged, values)
        assert not np.array_equal(dist.fragment("a", "R"), values[:50])

    def test_merge_distributions(self):
        left = distribute(np.arange(4), {"a": 4}, tag="R")
        right = distribute(np.arange(4), {"b": 4}, tag="S")
        merged = merge_distributions(left, right)
        assert merged.total("R") == 4
        assert merged.total("S") == 4

    def test_merge_rejects_duplicate_tags(self):
        left = distribute(np.arange(2), {"a": 2}, tag="R")
        with pytest.raises(DistributionError):
            merge_distributions(left, left)


class TestRandomDistribution:
    def test_policies_produce_expected_totals(self):
        tree = star(4)
        for policy in ("uniform", "zipf", "single-heavy", "proportional"):
            dist = random_distribution(
                tree, r_size=40, s_size=60, policy=policy, seed=1
            )
            assert dist.total("R") == 40
            assert dist.total("S") == 60

    def test_unknown_policy_rejected(self):
        with pytest.raises(DistributionError):
            random_distribution(star(3), r_size=5, s_size=5, policy="bogus")

    def test_deterministic(self):
        tree = star(4)
        first = random_distribution(tree, r_size=30, s_size=30, seed=5)
        second = random_distribution(tree, r_size=30, s_size=30, seed=5)
        for node in tree.compute_nodes:
            assert np.array_equal(
                first.fragment(node, "R"), second.fragment(node, "R")
            )


class TestAdversarialSortedDistribution:
    def test_interleaves_odd_then_even(self):
        tree = star(2)
        dist = adversarial_sorted_distribution(tree, total=8)
        order = tree.left_to_right_compute_order()
        first = dist.fragment(order[0], "R").tolist()
        second = dist.fragment(order[1], "R").tolist()
        assert first == [1, 3, 5, 7]
        assert second == [2, 4, 6, 8]

    def test_odd_total(self):
        tree = star(2)
        dist = adversarial_sorted_distribution(tree, total=5)
        merged = sorted(
            dist.relation("R").tolist()
        )
        assert merged == [1, 2, 3, 4, 5]

    def test_explicit_sizes(self):
        tree = two_level([2, 2])
        order = tree.left_to_right_compute_order()
        sizes = {order[0]: 3, order[1]: 1, order[2]: 0, order[3]: 4}
        dist = adversarial_sorted_distribution(tree, sizes)
        assert dist.sizes("R") == {node: sizes[node] for node in order}

    def test_rejects_unknown_nodes(self):
        tree = star(2)
        with pytest.raises(DistributionError):
            adversarial_sorted_distribution(tree, {"ghost": 5})

    def test_requires_sizes_or_total(self):
        with pytest.raises(DistributionError):
            adversarial_sorted_distribution(star(2))

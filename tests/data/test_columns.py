"""Unit tests for KeyValueArrays, the array-valued output contract."""

import numpy as np
import pytest

from repro.data.columns import KeyValueArrays
from repro.errors import ProtocolError


def sample() -> KeyValueArrays:
    return KeyValueArrays([1, 5, 9], [10, 50, 90])


class TestConstruction:
    def test_rejects_length_mismatch(self):
        with pytest.raises(ProtocolError, match="keys but"):
            KeyValueArrays([1, 2], [10])

    def test_rejects_unsorted_keys(self):
        with pytest.raises(ProtocolError, match="strictly increasing"):
            KeyValueArrays([2, 1], [10, 20])

    def test_rejects_duplicate_keys(self):
        with pytest.raises(ProtocolError, match="strictly increasing"):
            KeyValueArrays([1, 1], [10, 20])

    def test_rejects_two_dimensional_columns(self):
        with pytest.raises(ProtocolError, match="one-dimensional"):
            KeyValueArrays([[1], [2]], [10, 20])

    def test_empty(self):
        empty = KeyValueArrays.empty()
        assert len(empty) == 0
        assert empty == {}
        assert not empty

    def test_from_dict_sorts(self):
        built = KeyValueArrays.from_dict({9: 90, 1: 10, 5: 50})
        assert built.keys_array.tolist() == [1, 5, 9]
        assert built == sample()


class TestColumnarSurface:
    def test_columns_are_readonly_int64(self):
        kva = sample()
        for column in (kva.keys_array, kva.values_array):
            assert column.dtype == np.int64
            assert not column.flags.writeable

    def test_columns_are_zero_copy(self):
        keys = np.array([1, 2, 3], dtype=np.int64)
        values = np.array([4, 5, 6], dtype=np.int64)
        kva = KeyValueArrays(keys, values)
        assert np.shares_memory(kva.keys_array, keys)
        assert np.shares_memory(kva.values_array, values)


class TestMappingSurface:
    def test_len_iter_contains_getitem(self):
        kva = sample()
        assert len(kva) == 3
        assert list(kva) == [1, 5, 9]
        assert 5 in kva
        assert 4 not in kva
        assert "not-an-int" not in kva
        assert kva[9] == 90
        with pytest.raises(KeyError):
            kva[2]

    def test_items_is_reiterable(self):
        kva = sample()
        items = kva.items()
        assert list(items) == [(1, 10), (5, 50), (9, 90)]
        assert list(items) == [(1, 10), (5, 50), (9, 90)]

    def test_values_and_to_dict(self):
        kva = sample()
        assert kva.values() == [10, 50, 90]
        assert kva.to_dict() == {1: 10, 5: 50, 9: 90}

    def test_get_default(self):
        assert sample().get(4, -1) == -1
        assert sample().get(5) == 50

    def test_equality_with_dict_and_peer(self):
        kva = sample()
        assert kva == {1: 10, 5: 50, 9: 90}
        assert {1: 10, 5: 50, 9: 90} == kva
        assert kva == KeyValueArrays([1, 5, 9], [10, 50, 90])
        assert kva != {1: 10, 5: 50, 9: 91}
        assert kva != {1: 10, 5: 50}
        assert kva != 7

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(sample())

    def test_repr_previews(self):
        text = repr(KeyValueArrays(range(6), range(6)))
        assert "n=6" in text
        assert "..." in text

"""Unit tests for the Distribution container."""

import numpy as np
import pytest

from repro.data.distribution import Distribution
from repro.errors import DistributionError
from repro.topology.builders import star


def sample_distribution():
    return Distribution(
        {
            "v1": {"R": [1, 2, 3], "S": [10, 11]},
            "v2": {"R": [4], "S": []},
            "v3": {},
        }
    )


class TestAccessors:
    def test_tags(self):
        assert sample_distribution().tags == frozenset({"R", "S"})

    def test_nodes_include_empty(self):
        assert sample_distribution().nodes == frozenset({"v1", "v2", "v3"})

    def test_fragment_is_readonly_view(self):
        dist = sample_distribution()
        fragment = dist.fragment("v1", "R")
        with pytest.raises(ValueError):
            fragment[0] = 99
        assert dist.fragment("v1", "R")[0] == 1

    def test_fragment_shares_storage_zero_copy(self):
        dist = sample_distribution()
        first = dist.fragment("v1", "R")
        second = dist.fragment("v1", "R")
        assert np.shares_memory(first, second)

    def test_fragment_of_absent_tag_is_empty(self):
        assert len(sample_distribution().fragment("v2", "S")) == 0

    def test_fragment_of_unknown_node_is_empty(self):
        assert len(sample_distribution().fragment("ghost", "R")) == 0

    def test_size_per_tag(self):
        dist = sample_distribution()
        assert dist.size("v1", "R") == 3
        assert dist.size("v1", "S") == 2

    def test_non_string_tags_normalize_on_lookup(self):
        # regression: __init__ stores str(tag) keys, but fragment/size/
        # relation used to look the raw tag up and silently return
        # empty data for non-string tags
        dist = Distribution({"v1": {7: [1, 2]}, "v2": {7: [3]}})
        assert dist.tags == frozenset({"7"})
        assert dist.fragment("v1", 7).tolist() == [1, 2]
        assert dist.size("v1", 7) == 2
        assert dist.relation(7).tolist() == [1, 2, 3]
        assert dist.total(7) == 3
        dist.require_partition(7)

    def test_size_total_per_node(self):
        assert sample_distribution().size("v1") == 5

    def test_sizes_dict(self):
        assert sample_distribution().sizes("R") == {"v1": 3, "v2": 1, "v3": 0}

    def test_total(self):
        dist = sample_distribution()
        assert dist.total("R") == 4
        assert dist.total() == 6

    def test_relation_concatenates_in_node_order(self):
        values = sample_distribution().relation("R")
        assert sorted(values.tolist()) == [1, 2, 3, 4]

    def test_rejects_two_dimensional_fragment(self):
        with pytest.raises(DistributionError):
            Distribution({"v1": {"R": [[1, 2], [3, 4]]}})


class TestValidation:
    def test_validate_for_accepts_compute_placement(self):
        tree = star(3)
        Distribution({"v1": {"R": [1]}}).validate_for(tree)

    def test_validate_for_rejects_router_placement(self):
        tree = star(3)
        with pytest.raises(DistributionError, match="non-compute"):
            Distribution({"w": {"R": [1]}}).validate_for(tree)

    def test_validate_for_allows_empty_stray(self):
        tree = star(3)
        Distribution({"w": {}}).validate_for(tree)

    def test_require_partition_accepts_disjoint(self):
        sample_distribution().require_partition("R")

    def test_require_partition_rejects_duplicates(self):
        dist = Distribution({"v1": {"R": [1, 2]}, "v2": {"R": [2]}})
        with pytest.raises(DistributionError, match="duplicated"):
            dist.require_partition("R")


class TestDerivation:
    def test_remap_moves_fragments(self):
        dist = sample_distribution().remap({"v1": "x"})
        assert dist.size("x", "R") == 3
        assert dist.size("v1", "R") == 0

    def test_remap_rejects_merging(self):
        with pytest.raises(DistributionError, match="merges"):
            sample_distribution().remap({"v1": "v2"})

    def test_restrict_drops_tags(self):
        dist = sample_distribution().restrict(["R"])
        assert dist.tags == frozenset({"R"})
        assert dist.total() == 4

    def test_with_fragment_replaces(self):
        dist = sample_distribution().with_fragment("v2", "R", [7, 8])
        assert dist.fragment("v2", "R").tolist() == [7, 8]
        assert sample_distribution().fragment("v2", "R").tolist() == [4]

    def test_describe_mentions_counts(self):
        assert "|R_v|=3" in sample_distribution().describe()

    def test_repr(self):
        assert "total=6" in repr(sample_distribution())

"""Unit tests for hierarchical seed derivation."""

import pytest

from repro.util.seeding import derive_seed, rank_generator, rank_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_parent_seed_matters(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_tokens_matter(self):
        assert derive_seed(0, "block", 0) != derive_seed(0, "block", 1)

    def test_token_boundaries_unambiguous(self):
        assert derive_seed(0, "ab", "c") != derive_seed(0, "a", "bc")

    def test_returns_64_bit_value(self):
        value = derive_seed(123, "x")
        assert 0 <= value < 2**64

    def test_mixed_token_types(self):
        assert derive_seed(0, 1) != derive_seed(0, "1")


class TestRankSeeding:
    def test_reproducible(self):
        assert rank_seed(42, 3) == rank_seed(42, 3)

    def test_distinct_per_rank(self):
        seeds = {rank_seed(7, rank) for rank in range(64)}
        assert len(seeds) == 64

    def test_distinct_per_run_seed(self):
        assert rank_seed(0, 1) != rank_seed(1, 1)

    def test_negative_rank_rejected(self):
        with pytest.raises(ValueError):
            rank_seed(0, -1)

    def test_matches_derive_seed_namespace(self):
        # spawn-safety contract: any process can re-derive the value
        # from (seed, rank) alone with the public derivation
        assert rank_seed(5, 2) == derive_seed(5, "worker-rank", 2)

    def test_generator_streams_reproducible(self):
        a = rank_generator(9, 1).integers(0, 2**63, size=8)
        b = rank_generator(9, 1).integers(0, 2**63, size=8)
        assert (a == b).all()

    def test_generator_streams_disjoint(self):
        draws = [
            tuple(rank_generator(9, rank).integers(0, 2**63, size=8))
            for rank in range(8)
        ]
        assert len(set(draws)) == len(draws)

"""Unit tests for hierarchical seed derivation."""

from repro.util.seeding import derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_parent_seed_matters(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_tokens_matter(self):
        assert derive_seed(0, "block", 0) != derive_seed(0, "block", 1)

    def test_token_boundaries_unambiguous(self):
        assert derive_seed(0, "ab", "c") != derive_seed(0, "a", "bc")

    def test_returns_64_bit_value(self):
        value = derive_seed(123, "x")
        assert 0 <= value < 2**64

    def test_mixed_token_types(self):
        assert derive_seed(0, 1) != derive_seed(0, "1")

"""Unit tests for the integer helpers behind the packing machinery."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.util.intmath import (
    ceil_div,
    ilog2,
    is_power_of_two,
    next_power_of_two,
    next_power_of_two_at_least,
)


class TestCeilDiv:
    def test_exact_division(self):
        assert ceil_div(12, 4) == 3

    def test_rounds_up(self):
        assert ceil_div(13, 4) == 4

    def test_zero_numerator(self):
        assert ceil_div(0, 5) == 0

    def test_rejects_zero_denominator(self):
        with pytest.raises(ValueError):
            ceil_div(1, 0)

    def test_rejects_negative_numerator(self):
        with pytest.raises(ValueError):
            ceil_div(-1, 2)

    @given(st.integers(0, 10**9), st.integers(1, 10**6))
    def test_matches_math_ceil(self, a, b):
        assert ceil_div(a, b) == math.ceil(a / b) or ceil_div(a, b) == -(-a // b)


class TestPowerOfTwo:
    def test_detects_powers(self):
        for k in range(20):
            assert is_power_of_two(1 << k)

    def test_rejects_non_powers(self):
        for value in (0, -1, 3, 5, 6, 7, 9, 100):
            assert not is_power_of_two(value)

    def test_ilog2_roundtrip(self):
        for k in range(30):
            assert ilog2(1 << k) == k

    def test_ilog2_rejects_non_power(self):
        with pytest.raises(ValueError):
            ilog2(6)

    def test_next_power_of_two_exact(self):
        assert next_power_of_two(8) == 8

    def test_next_power_of_two_rounds_up(self):
        assert next_power_of_two(9) == 16

    def test_next_power_of_two_one(self):
        assert next_power_of_two(1) == 1

    def test_next_power_of_two_rejects_zero(self):
        with pytest.raises(ValueError):
            next_power_of_two(0)

    @given(st.integers(1, 2**40))
    def test_next_power_of_two_minimal(self, value):
        result = next_power_of_two(value)
        assert is_power_of_two(result)
        assert result >= value
        assert result // 2 < value


class TestNextPowerOfTwoAtLeast:
    def test_small_values_map_to_one(self):
        assert next_power_of_two_at_least(0.0) == 1
        assert next_power_of_two_at_least(0.3) == 1
        assert next_power_of_two_at_least(1.0) == 1

    def test_just_above_one(self):
        assert next_power_of_two_at_least(1.0001) == 2

    def test_exact_power(self):
        assert next_power_of_two_at_least(64.0) == 64

    def test_rejects_nan_and_inf(self):
        with pytest.raises(ValueError):
            next_power_of_two_at_least(float("nan"))
        with pytest.raises(ValueError):
            next_power_of_two_at_least(float("inf"))

    @given(st.floats(0.0, 2**40, allow_nan=False))
    def test_minimal_covering_power(self, value):
        result = next_power_of_two_at_least(value)
        assert is_power_of_two(result)
        assert result >= value
        if value > 1.0:
            assert result / 2 < value

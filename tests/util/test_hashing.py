"""Unit tests for the deterministic weighted hashing."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.util.hashing import (
    WeightedNodeHasher,
    hash_to_unit,
    splitmix64,
)


class TestSplitmix64:
    def test_deterministic(self):
        values = np.arange(100)
        assert np.array_equal(splitmix64(values, 7), splitmix64(values, 7))

    def test_seed_changes_output(self):
        values = np.arange(100)
        assert not np.array_equal(splitmix64(values, 1), splitmix64(values, 2))

    def test_output_dtype(self):
        assert splitmix64(np.arange(4), 0).dtype == np.uint64

    def test_does_not_mutate_input(self):
        values = np.arange(10)
        splitmix64(values, 3)
        assert np.array_equal(values, np.arange(10))

    def test_handles_negative_ints(self):
        values = np.array([-5, -1, 0, 1], dtype=np.int64)
        result = splitmix64(values, 0)
        assert len(np.unique(result)) == 4

    def test_unit_interval_range(self):
        points = hash_to_unit(np.arange(10_000), 11)
        assert points.min() >= 0.0
        assert points.max() < 1.0

    def test_unit_interval_roughly_uniform(self):
        points = hash_to_unit(np.arange(100_000), 13)
        histogram, _ = np.histogram(points, bins=10, range=(0, 1))
        assert histogram.min() > 8_000  # each decile within 20% of 10k


class TestWeightedNodeHasher:
    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            WeightedNodeHasher(["a"], [1.0, 2.0], 0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            WeightedNodeHasher([], [], 0)

    def test_rejects_negative_weight(self):
        with pytest.raises(ValueError):
            WeightedNodeHasher(["a", "b"], [1.0, -1.0], 0)

    def test_rejects_all_zero_weights(self):
        with pytest.raises(ValueError):
            WeightedNodeHasher(["a", "b"], [0.0, 0.0], 0)

    def test_consistent_across_instances(self):
        values = np.arange(1000)
        first = WeightedNodeHasher(["a", "b", "c"], [1, 2, 3], 42)
        second = WeightedNodeHasher(["a", "b", "c"], [1, 2, 3], 42)
        assert first.assign(values) == second.assign(values)

    def test_zero_weight_node_gets_nothing(self):
        hasher = WeightedNodeHasher(["a", "b", "c"], [1.0, 0.0, 1.0], 5)
        assigned = hasher.assign(np.arange(5000))
        assert "b" not in assigned

    def test_probability_sums_to_one(self):
        hasher = WeightedNodeHasher(["a", "b", "c"], [3, 1, 4], 0)
        total = sum(hasher.probability(n) for n in ["a", "b", "c"])
        assert total == pytest.approx(1.0)

    def test_weights_respected_statistically(self):
        hasher = WeightedNodeHasher(["a", "b"], [1.0, 3.0], 17)
        assigned = hasher.assign_indices(np.arange(40_000))
        fraction_b = float(np.mean(assigned == 1))
        assert 0.72 <= fraction_b <= 0.78  # expect 0.75

    @given(
        weights=st.lists(st.integers(0, 50), min_size=1, max_size=8).filter(
            lambda w: sum(w) > 0
        ),
        seed=st.integers(0, 2**32),
    )
    @settings(max_examples=50)
    def test_assignment_always_in_range(self, weights, seed):
        nodes = [f"n{i}" for i in range(len(weights))]
        hasher = WeightedNodeHasher(nodes, weights, seed)
        indices = hasher.assign_indices(np.arange(200))
        assert indices.min() >= 0
        assert indices.max() < len(nodes)
        # zero-weight nodes never selected
        for index in np.unique(indices):
            assert weights[index] > 0

"""Unit tests for the content-addressed kernel caches.

ContentCache is pure memoization: a hit requires byte-identical input
(digest over content + dtype + shape), so cached kernels can never
change results — these tests pin down the hit/miss mechanics, the
eviction bounds, and the equality of cached vs uncached kernel output.
"""

import numpy as np
import pytest

from repro.util.grouping import (
    GROUP_CACHE,
    ContentCache,
    cached_group_slices,
    concat_group_slices,
    group_slices,
)
from repro.util.hashing import ASSIGN_CACHE, WeightedNodeHasher


@pytest.fixture(autouse=True)
def _fresh_caches():
    GROUP_CACHE.clear()
    ASSIGN_CACHE.clear()
    yield
    GROUP_CACHE.clear()
    ASSIGN_CACHE.clear()


class TestContentCache:
    def test_small_arrays_skip_the_cache(self):
        cache = ContentCache(min_size=8)
        assert cache.fingerprint(np.arange(7)) is None
        assert cache.fingerprint(np.arange(8)) is not None

    def test_fingerprint_distinguishes_dtype_and_shape(self):
        cache = ContentCache(min_size=1)
        a = np.arange(16, dtype=np.int64)
        assert cache.fingerprint(a) != cache.fingerprint(a.astype(np.int32))
        assert cache.fingerprint(a) != cache.fingerprint(a.reshape(4, 4))

    def test_get_put_and_counters(self):
        cache = ContentCache(min_size=1)
        key = cache.fingerprint(np.arange(4))
        assert cache.get(key) is None
        cache.put(key, "value", nbytes=10)
        assert cache.get(key) == "value"
        assert (cache.hits, cache.misses) == (1, 1)

    def test_capacity_eviction_is_lru(self):
        cache = ContentCache(capacity=2, min_size=1)
        cache.put(b"a", 1, nbytes=1)
        cache.put(b"b", 2, nbytes=1)
        cache.get(b"a")  # refresh: b is now least recent
        cache.put(b"c", 3, nbytes=1)
        assert cache.get(b"a") == 1
        assert cache.get(b"b") is None
        assert cache.get(b"c") == 3

    def test_byte_budget_eviction(self):
        cache = ContentCache(capacity=100, max_bytes=100, min_size=1)
        cache.put(b"a", 1, nbytes=60)
        cache.put(b"b", 2, nbytes=60)  # over budget: evicts a
        assert cache.get(b"a") is None
        assert cache.get(b"b") == 2

    def test_immutable_arrays_take_the_identity_fast_path(self):
        cache = ContentCache(min_size=1)
        array = np.arange(16, dtype=np.int64)
        array.setflags(write=False)
        first = cache.fingerprint(array)
        assert id(array) in cache._id_memo
        assert cache.fingerprint(array) == first
        # the fast path must agree with a from-scratch digest
        assert ContentCache(min_size=1).fingerprint(array.copy()) == first

    def test_writeable_arrays_are_never_identity_memoized(self):
        cache = ContentCache(min_size=1)
        array = np.arange(16, dtype=np.int64)
        before = cache.fingerprint(array)
        assert id(array) not in cache._id_memo
        array[0] = 99  # a mutation must change the fingerprint
        assert cache.fingerprint(array) != before

    def test_readonly_view_of_writeable_base_is_not_memoized(self):
        # the base can still mutate the bytes, so identity is not
        # enough to prove content stability
        cache = ContentCache(min_size=1)
        base = np.arange(16, dtype=np.int64)
        view = base.view()
        view.setflags(write=False)
        before = cache.fingerprint(view)
        assert id(view) not in cache._id_memo
        base[0] = 99
        assert cache.fingerprint(view) != before


class TestCachedGroupSlices:
    def test_matches_uncached_kernel(self):
        rng = np.random.default_rng(3)
        indices = rng.integers(0, 13, size=5000)
        cached = cached_group_slices(indices)
        plain = group_slices(indices)
        for a, b in zip(cached, plain):
            assert np.array_equal(a, b)

    def test_repeat_grouping_hits_and_returns_same_tuple(self):
        rng = np.random.default_rng(4)
        indices = rng.integers(0, 7, size=5000)
        hits_before = GROUP_CACHE.hits
        first = cached_group_slices(indices)
        second = cached_group_slices(indices.copy())  # equal bytes: hit
        assert second is first
        assert GROUP_CACHE.hits == hits_before + 1
        assert all(not part.flags.writeable for part in first)

    def test_small_arrays_fall_through(self):
        indices = np.asarray([2, 0, 1])
        hits, misses = GROUP_CACHE.hits, GROUP_CACHE.misses
        cached_group_slices(indices)
        cached_group_slices(indices)
        assert (GROUP_CACHE.hits, GROUP_CACHE.misses) == (hits, misses)


class TestConcatGroupSlices:
    def _parts(self):
        rng = np.random.default_rng(11)
        a = rng.integers(0, 5, size=3000)
        b = rng.integers(0, 7, size=2000)
        return [(a, len(a), 0), (None, 1500, 5), (b, len(b), 6)]

    def _materialized(self, parts):
        segments = [
            np.full(length, base, np.int64) if ids is None else ids + base
            for ids, length, base in parts
        ]
        return np.concatenate(segments)

    def test_matches_grouping_the_materialized_stream(self):
        parts = self._parts()
        result = concat_group_slices(parts)
        plain = group_slices(self._materialized(parts))
        for fused, expected in zip(result, plain):
            assert np.array_equal(fused, expected)

    def test_repeated_parts_hit_without_materializing(self):
        parts = self._parts()
        first = concat_group_slices(parts)
        hits_before = GROUP_CACHE.hits
        second = concat_group_slices([(p[0], p[1], p[2]) for p in parts])
        assert second is first
        assert GROUP_CACHE.hits == hits_before + 1

    def test_single_part_at_base_zero_delegates(self):
        rng = np.random.default_rng(12)
        ids = rng.integers(0, 9, size=4000)
        assert concat_group_slices([(ids, len(ids), 0)]) is (
            cached_group_slices(ids)
        )

    def test_small_parts_fall_back_correctly(self):
        parts = [
            (np.asarray([2, 0, 1]), 3, 0),
            (None, 2, 3),
            (np.asarray([1, 0]), 2, 4),
        ]
        result = concat_group_slices(parts)
        plain = group_slices(self._materialized(parts))
        for fused, expected in zip(result, plain):
            assert np.array_equal(fused, expected)

    def test_base_shift_distinguishes_equal_ids(self):
        ids = np.zeros(2000, dtype=np.int64)
        low = concat_group_slices([(ids, len(ids), 0), (None, 1, 1)])
        high = concat_group_slices([(ids, len(ids), 3), (None, 1, 0)])
        assert low[1].tolist() == [0, 1]
        assert high[1].tolist() == [0, 3]


class TestCachedAssignment:
    def _hasher(self, seed=5):
        nodes = [f"v{i}" for i in range(6)]
        return WeightedNodeHasher(nodes, [1.0 + i for i in range(6)], seed)

    def test_assign_indices_memoized(self):
        hasher = self._hasher()
        values = np.arange(5000, dtype=np.int64)
        first = hasher.assign_indices(values)
        second = hasher.assign_indices(values.copy())
        assert second is first
        assert not first.flags.writeable

    def test_distinct_hashers_do_not_share_entries(self):
        # the cache key mixes in the hasher token (weights + seed), so
        # equal inputs under different hashers miss each other
        values = np.arange(5000, dtype=np.int64)
        a = self._hasher(seed=5).assign_indices(values)
        b = self._hasher(seed=6).assign_indices(values)
        assert not np.array_equal(a, b)

    def test_assign_slices_is_fused_hash_plus_group(self):
        hasher = self._hasher()
        values = np.arange(5000, dtype=np.int64)
        targets, order, uniques, starts, ends = hasher.assign_slices(values)
        expected_targets = self._hasher().assign_indices(values)
        assert np.array_equal(targets, expected_targets)
        for fused, plain in zip(
            (order, uniques, starts, ends), group_slices(expected_targets)
        ):
            assert np.array_equal(fused, plain)

    def test_assign_slices_memoized(self):
        hasher = self._hasher()
        values = np.arange(5000, dtype=np.int64)
        first = hasher.assign_slices(values)
        second = hasher.assign_slices(values.copy())
        assert second is first

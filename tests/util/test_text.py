"""Unit tests for text-table rendering."""

from repro.util.text import format_value, render_table


class TestFormatValue:
    def test_none_is_blank(self):
        assert format_value(None) == ""

    def test_bool(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"

    def test_large_float_grouped(self):
        assert format_value(1234567.0) == "1,234,567"

    def test_small_float_trimmed(self):
        assert format_value(0.123456) == "0.123"

    def test_nan_and_inf(self):
        assert format_value(float("nan")) == "nan"
        assert format_value(float("inf")) == "inf"

    def test_string_passthrough(self):
        assert format_value("abc") == "abc"


class TestRenderTable:
    def test_includes_all_cells(self):
        table = render_table(["a", "b"], [[1, 2], [3, 4]])
        for cell in ("a", "b", "1", "2", "3", "4"):
            assert cell in table

    def test_title_on_first_line(self):
        table = render_table(["x"], [[1]], title="My Table")
        assert table.splitlines()[0] == "My Table"

    def test_column_widths_align(self):
        table = render_table(["col"], [["short"], ["a-much-longer-cell"]])
        lines = table.splitlines()
        rule = lines[1]
        assert len(rule) == len("a-much-longer-cell")

"""Negative-path test for the Section 2.2 equivalence checker."""

import numpy as np
import pytest

from repro.mpc import verify_mpc_equivalence
from repro.sim.cluster import Cluster
from repro.topology.builders import star


class TestEquivalenceChecker:
    def test_rejects_non_mpc_star(self):
        # On a symmetric star the uplinks also carry cost, so the
        # round cost exceeds the max-received measure and the checker
        # must flag the discrepancy... unless traffic is symmetric.
        tree = star(3, bandwidth=[1.0, 1.0, 4.0])
        cluster = Cluster(tree)
        with cluster.round() as ctx:
            # v1 sends a lot (slow uplink), v3 receives little relative
            # to its fast downlink: cost is dominated by v1's uplink,
            # which max-received cannot see.
            ctx.send("v1", "v3", np.arange(100), tag="x")
        with pytest.raises(AssertionError):
            verify_mpc_equivalence(cluster)

    def test_accepts_empty_rounds(self):
        from repro.mpc import mpc_star

        cluster = Cluster(mpc_star(3))
        with cluster.round():
            pass
        assert verify_mpc_equivalence(cluster) == [(0.0, 0.0)]
